#include "analysis/dataflow.hpp"

#include "cfg/liveness.hpp"

namespace t1000 {

InstLiveness::InstLiveness(const Program& program, const Cfg& cfg)
    : block_(compute_liveness(program, cfg)) {
  const auto n = static_cast<std::size_t>(program.size());
  before_.assign(n, {});
  after_.assign(n, {});
  for (const BasicBlock& b : cfg.blocks()) {
    RegSet live = block_.live_out[static_cast<std::size_t>(b.id)];
    for (std::int32_t i = b.last; i >= b.first; --i) {
      after_[static_cast<std::size_t>(i)] = live;
      RegSet use;
      RegSet def;
      inst_use_def(program.text[static_cast<std::size_t>(i)], &use, &def);
      live = use | (live & ~def);
      before_[static_cast<std::size_t>(i)] = live;
    }
  }
}

}  // namespace t1000
