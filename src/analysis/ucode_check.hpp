// Structural verification of a pre-decoded uop stream (sim/ucode.hpp)
// against its source program — the `ucode.*` rule family (DESIGN.md §14).
//
// The pre-decoded interpreter is the default functional path, so a decoder
// bug would silently corrupt every trace, profile, and checksum downstream.
// This pass re-derives what each decoded segment *must* look like from the
// instruction fields alone — mirror kind, flattened registers, resolved
// immediates, rewritten control targets, sentinel placement, basic-block
// segment table — and diagnoses any drift:
//
//  * ucode.stream-size — stream length is program size + 1 (the sentinel);
//  * ucode.sentinel    — the sentinel sits exactly at offset size();
//  * ucode.kind        — a regular instruction's uop mirrors its opcode;
//  * ucode.interp      — kInterp is used exactly for the irregular cases
//    (out-of-range register fields, static control targets outside
//    [0, size], unresolved EXT Conf ids) and never for a regular one;
//  * ucode.operands    — register indices match the instruction fields;
//  * ucode.imm         — immediates resolved per kind: shift amounts
//    pre-masked, ALU immediates pre-extended (extend_imm), LUI values
//    precomputed, load/store displacements verbatim, EXT Conf ids bound;
//  * ucode.target      — control targets equal the instruction target and
//    stay inside [0, size];
//  * ucode.ext         — EXT uops resolve against a present table;
//  * ucode.segments    — the segment table mirrors Cfg::build block for
//    block (id, first, last).
//
// verify_module() runs the family on every well-formed module (building
// the decoded form on the fly), so `t1000-verify` and the harness's
// --verify pre-flight hold the decoder to the same standard as the
// rewrite pipeline.
#pragma once

#include "analysis/diagnostic.hpp"
#include "sim/ucode.hpp"

namespace t1000 {

// Appends `ucode.*` diagnostics for `ucode` (checked against
// *ucode.program / ucode.table) to `report`.
void check_ucode(const UopProgram& ucode, VerifyReport& report);

// Standalone convenience: a fresh report holding only the `ucode.*`
// findings for an already-decoded stream.
VerifyReport verify_ucode(const UopProgram& ucode);

}  // namespace t1000
