// Static verifier for the T1000 IR and the extended-instruction pipeline
// (DESIGN.md §11). The paper's contribution rests on compile-time
// guarantees — a candidate sequence may be collapsed into an extended
// instruction only if it is arithmetic/logic, has at most two register
// inputs and one register output, operates on operands of at most 18
// significant bits, and fits the ~150-LUT PFU budget (§3–§5) — and this
// pass re-derives every one of those properties from first principles
// instead of trusting extract/select/rewrite to have preserved them.
//
// Four check families, each with stable rule ids:
//
//  * module/CFG well-formedness (`wf.*`): branch/jump targets and text
//    symbols in range post-rewrite, register fields in range, EXT `conf`
//    references resolved by the table, defs-before-uses along all paths;
//  * extended-instruction legality (`ext.*`, `rw.*`): per application the
//    micro-program, inputs, and outputs are *recomputed* from the original
//    program text and checked against the selection — inputs/outputs
//    within the configured shape (default 2-in/1-out; unclaimed
//    intermediates dead past the EXT), candidate-class opcodes only,
//    profiled widths within the ceiling, recomputed LUT cost within
//    budget, and the rewritten binary's EXT landing/clobber safety;
//  * translation validation (`equiv.*`, analysis/equiv.hpp): the rewritten
//    binary is proven to be the baseline with exactly the covered windows
//    replaced, and each EXT's semantics are proven against the covered
//    baseline instructions by symbolic execution over a normalized
//    expression DAG, with a liveness proof that every register a window
//    kills but its EXT no longer writes is dead at the rewrite point;
//  * semantic equivalence (`sem.*`): each collapsed chain provably
//    computes the same function as its constituent instruction sequence.
//    A structural proof (recomputed micro-program identical to the
//    interned configuration) establishes equality over the entire input
//    space, subsuming exhaustive enumeration of the ≤ 18-bit operand
//    domain; structurally different pairs are settled by exhaustive
//    enumeration of the profiled-width domain when it fits the budget,
//    and otherwise by deterministic sampling — which is flagged as a
//    `sem.unproven` *warning*, never silently treated as proof;
//  * bitwidth soundness (`width.*`): the profiler-observed widths the
//    extractor trusted are cross-checked against a conservative static
//    value-range bound; inputs whose narrowness only the profile vouches
//    for are reported in the width audit.
#pragma once

#include <cstdint>

#include "analysis/diagnostic.hpp"
#include "extinst/rewrite.hpp"
#include "extinst/select.hpp"

namespace t1000 {

struct VerifyOptions {
  int max_width = 18;       // operand/result significant-bit ceiling (§4)
  int min_length = 2;       // shortest legal fused sequence
  int max_length = kMaxUops;
  int lut_budget = 150;     // PFU capacity (§6, Figure 7)
  // Candidate shape the selection was extracted under (paper defaults:
  // 2-in/1-out). Applications may bind at most this many external register
  // inputs / register outputs; the ISA ceiling (kMaxExtInputs /
  // kMaxExtOutputs) bounds both.
  int max_inputs = 2;
  int max_outputs = 1;
  // Largest operand-domain size (evaluation pairs) the equivalence check
  // will enumerate exhaustively; larger domains rely on the structural
  // proof or degrade to flagged sampling. 1<<22 keeps the worst single
  // application around 4M paired evaluations.
  std::uint64_t exhaustive_budget = 1ull << 22;
  // Deterministic pseudo-random probes used when neither proof applies.
  int samples = 1024;
  // Promote width-audit entries (profile-only narrowness claims) to
  // `width.profile-only` warnings.
  bool pedantic = false;
};

// Derives VerifyOptions from the selection policy a run was compiled
// under, so the verifier holds the pipeline to the thresholds it actually
// used rather than the paper defaults.
VerifyOptions verify_options_for(const SelectPolicy& policy);

// Module-level well-formedness only (`wf.*` rules): any program, with or
// without EXT instructions. `table` may be null for table-free programs.
VerifyReport verify_module(const Program& program, const ExtInstTable* table,
                           const VerifyOptions& options = {});

// Full pipeline verification: module checks on the rewritten program plus
// legality, semantic-equivalence, and width checks for every application
// in `selection` against the *original* analyzed program. `rewrite` must
// be the result of applying `selection.apps` to `ap`'s program.
VerifyReport verify_selection(const AnalyzedProgram& ap,
                              const Selection& selection,
                              const RewriteResult& rewrite,
                              const VerifyOptions& options = {});

}  // namespace t1000
