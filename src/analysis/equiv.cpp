#include "analysis/equiv.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <tuple>

#include "analysis/dataflow.hpp"
#include "cfg/cfg.hpp"
#include "isa/alu.hpp"
#include "isa/reg.hpp"

namespace t1000 {

// ---------------------------------------------------------------------------
// SymbolicPool

namespace {

// Immediate-form and variable-shift opcodes evaluate exactly like their
// three-register counterparts once the operand is materialized (eval_alu
// handles each pair with one case), so the DAG stores the canonical form.
// The *caller* extends immediates with the original opcode — imm_extension
// differs across the pair (andi zero-extends, and has no immediate).
Opcode canonical_op(Opcode op) {
  switch (op) {
    case Opcode::kAddiu: return Opcode::kAddu;
    case Opcode::kAndi: return Opcode::kAnd;
    case Opcode::kOri: return Opcode::kOr;
    case Opcode::kXori: return Opcode::kXor;
    case Opcode::kSlti: return Opcode::kSlt;
    case Opcode::kSltiu: return Opcode::kSltu;
    case Opcode::kSll: return Opcode::kSllv;
    case Opcode::kSrl: return Opcode::kSrlv;
    case Opcode::kSra: return Opcode::kSrav;
    default: return op;
  }
}

bool is_commutative(Opcode op) {
  switch (op) {
    case Opcode::kAddu:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kNor:
    case Opcode::kMul:
      return true;
    default:
      return false;
  }
}

}  // namespace

SymbolicPool::NodeId SymbolicPool::intern(const Node& n) {
  // Linear probe over a tiny pool (a window is at most kMaxUops ops, so a
  // proof touches a few dozen nodes); value identity is structural identity
  // because operands are already interned ids.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] == n) return static_cast<NodeId>(i);
  }
  nodes_.push_back(n);
  return static_cast<NodeId>(nodes_.size() - 1);
}

SymbolicPool::NodeId SymbolicPool::input(int slot) {
  Node n;
  n.kind = Kind::kInput;
  n.value = static_cast<std::uint32_t>(slot);
  return intern(n);
}

SymbolicPool::NodeId SymbolicPool::poison(int reg) {
  Node n;
  n.kind = Kind::kPoison;
  n.value = static_cast<std::uint32_t>(reg);
  return intern(n);
}

SymbolicPool::NodeId SymbolicPool::constant(std::uint32_t value) {
  Node n;
  n.kind = Kind::kConst;
  n.value = value;
  return intern(n);
}

SymbolicPool::NodeId SymbolicPool::apply(Opcode op, NodeId a, NodeId b) {
  op = canonical_op(op);
  const Node& na = nodes_[static_cast<std::size_t>(a)];
  const Node& nb = nodes_[static_cast<std::size_t>(b)];
  const bool ca = na.kind == Kind::kConst;
  const bool cb = nb.kind == Kind::kConst;

  // Constant folding (covers LUI entirely: both of its operands are
  // constants, so a LUI always reduces to a constant leaf).
  if (ca && cb) return constant(eval_alu(op, na.value, nb.value));

  // Algebraic identities with a zero constant: these arise whenever an
  // application binds $zero to an input (the binding is const 0 on both the
  // baseline and the PFU side) and keep such proofs structural.
  if (cb && nb.value == 0) {
    switch (op) {
      case Opcode::kAddu:
      case Opcode::kSubu:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kSllv:  // eval_alu shifts by (b & 31): zero shift = id
      case Opcode::kSrlv:
      case Opcode::kSrav:
        return a;
      case Opcode::kAnd:
        return b;  // the zero constant
      default:
        break;
    }
  }
  if (ca && na.value == 0) {
    switch (op) {
      case Opcode::kAddu:
      case Opcode::kOr:
      case Opcode::kXor:
        return b;
      case Opcode::kAnd:
      case Opcode::kSllv:  // 0 shifted by anything is 0
      case Opcode::kSrlv:
      case Opcode::kSrav:
        return a;  // the zero constant
      default:
        break;
    }
  }

  // Canonical operand order for commutative operations: by node id, which
  // is deterministic and stable within one pool.
  if (is_commutative(op) && a > b) std::swap(a, b);

  Node n;
  n.kind = Kind::kOp;
  n.op = op;
  n.a = a;
  n.b = b;
  return intern(n);
}

std::string SymbolicPool::render(NodeId id) const {
  if (id < 0 || id >= static_cast<NodeId>(nodes_.size())) return "<invalid>";
  const Node& n = nodes_[static_cast<std::size_t>(id)];
  switch (n.kind) {
    case Kind::kInput:
      return "in" + std::to_string(n.value);
    case Kind::kPoison:
      return "poison(" + std::string(reg_name(static_cast<Reg>(n.value))) +
             ")";
    case Kind::kConst:
      return std::to_string(n.value);
    case Kind::kOp:
      return std::string(mnemonic(n.op)) + "(" + render(n.a) + ", " +
             render(n.b) + ")";
  }
  return "<invalid>";
}

// ---------------------------------------------------------------------------
// check_translation

namespace {

std::string pos_loc(std::int32_t pos) { return "pos " + std::to_string(pos); }

std::string app_loc(ConfId conf, std::size_t app) {
  return "conf " + std::to_string(conf) + " app " + std::to_string(app);
}

void emit(VerifyReport& report, std::string rule_id, std::string location,
          std::string message) {
  report.diagnostics.push_back(Diagnostic{Severity::kError, std::move(rule_id),
                                          std::move(location),
                                          std::move(message)});
}

// --- equiv.map -------------------------------------------------------------
//
// The old->new index map must be a dense deletion map: one entry per old
// position plus the one-past-the-end sentinel, starting at 0, stepping by 0
// (deleted) or 1 (kept), and ending exactly at the rewritten text size.
// Every later proof reads positions through it, so a malformed map gates
// the map-dependent rules (replaced / target / dead-kill).
bool check_map(const Program& baseline, const RewriteResult& rewrite,
               VerifyReport& report) {
  const std::vector<std::int32_t>& map = rewrite.index_map;
  const std::size_t want = static_cast<std::size_t>(baseline.size()) + 1;
  if (map.size() != want) {
    emit(report, "equiv.map", "index_map",
         "index map has " + std::to_string(map.size()) + " entries, want " +
             std::to_string(want) + " (program size + sentinel)");
    return false;
  }
  bool ok = true;
  if (map.front() != 0) {
    emit(report, "equiv.map", "index_map",
         "index map starts at " + std::to_string(map.front()) + ", want 0");
    ok = false;
  }
  for (std::size_t p = 0; p + 1 < map.size(); ++p) {
    const std::int32_t delta = map[p + 1] - map[p];
    if (delta != 0 && delta != 1) {
      emit(report, "equiv.map", pos_loc(static_cast<std::int32_t>(p)),
           "index map steps by " + std::to_string(delta) +
               " between old positions " + std::to_string(p) + " and " +
               std::to_string(p + 1) + "; a deletion map steps by 0 or 1");
      ok = false;
    }
  }
  if (map.back() != rewrite.program.size()) {
    emit(report, "equiv.map", "index_map",
         "index map ends at " + std::to_string(map.back()) +
             " but the rewritten program has " +
             std::to_string(rewrite.program.size()) + " instructions");
    ok = false;
  }
  return ok;
}

// Covered-position roles within the rewrite.
enum class Role : std::uint8_t { kUncovered, kDeleted, kLanding };

struct Coverage {
  // Per old position: role and owning application (kUncovered: -1).
  std::vector<Role> role;
  std::vector<std::int32_t> owner;

  explicit Coverage(const Program& baseline,
                    const std::vector<Application>& apps) {
    role.assign(static_cast<std::size_t>(baseline.size()), Role::kUncovered);
    owner.assign(static_cast<std::size_t>(baseline.size()), -1);
    for (std::size_t i = 0; i < apps.size(); ++i) {
      for (const std::int32_t p : apps[i].positions) {
        if (p < 0 || p >= baseline.size()) continue;  // rw.positions reports
        role[static_cast<std::size_t>(p)] = Role::kDeleted;
        owner[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(i);
      }
      if (!apps[i].positions.empty()) {
        const std::int32_t landing = apps[i].positions.back();
        if (landing >= 0 && landing < baseline.size()) {
          role[static_cast<std::size_t>(landing)] = Role::kLanding;
        }
      }
    }
  }
};

// True when `op` carries an absolute instruction index in `imm` that the
// rewriter remaps (register-indirect jumps carry none).
bool has_label_target(Opcode op) {
  return is_branch(op) || op_kind(op) == OpKind::kJump;
}

// --- equiv.replaced / equiv.target -----------------------------------------
//
// Walks every old position through the index map and proves the rewritten
// text is the baseline with exactly the covered windows replaced: covered
// non-landing positions are deleted, each landing survives as the owning
// application's EXT, and every uncovered instruction survives byte-identical
// (equiv.replaced) with control targets remapped through the map
// (equiv.target). Data segment and symbol tables round-trip likewise.
void check_replaced(const Program& baseline, const RewriteResult& rewrite,
                    const std::vector<Application>& apps, const Coverage& cov,
                    VerifyReport& report) {
  const std::vector<std::int32_t>& map = rewrite.index_map;
  for (std::int32_t p = 0; p < baseline.size(); ++p) {
    const std::size_t ps = static_cast<std::size_t>(p);
    const bool kept = map[ps] < map[ps + 1];
    const Instruction& old = baseline.text[ps];
    switch (cov.role[ps]) {
      case Role::kDeleted:
        if (kept) {
          emit(report, "equiv.replaced", pos_loc(p),
               "covered position survives at new index " +
                   std::to_string(map[ps]) + "; members of " +
                   app_loc(apps[static_cast<std::size_t>(cov.owner[ps])].conf,
                           static_cast<std::size_t>(cov.owner[ps])) +
                   " must be deleted");
        }
        continue;
      case Role::kLanding: {
        const Application& app =
            apps[static_cast<std::size_t>(cov.owner[ps])];
        const Instruction* ni =
            kept ? &rewrite.program.text[static_cast<std::size_t>(map[ps])]
                 : nullptr;
        if (ni == nullptr || ni->op != Opcode::kExt ||
            ni->conf != app.conf) {
          emit(report, "equiv.replaced", pos_loc(p),
               "landing position of " +
                   app_loc(app.conf, static_cast<std::size_t>(cov.owner[ps])) +
                   (ni == nullptr
                        ? " was deleted instead of replaced by its EXT"
                        : " holds '" + to_string(*ni) +
                              "' instead of the application's EXT"));
        }
        continue;
      }
      case Role::kUncovered:
        break;
    }
    if (!kept) {
      emit(report, "equiv.replaced", pos_loc(p),
           "uncovered instruction '" + to_string(old) +
               "' was deleted by the rewrite");
      continue;
    }
    const Instruction& ni =
        rewrite.program.text[static_cast<std::size_t>(map[ps])];
    const bool remapped_imm = has_label_target(old.op);
    if (ni.op != old.op || ni.rd != old.rd || ni.rs != old.rs ||
        ni.rt != old.rt || ni.conf != old.conf ||
        (!remapped_imm && ni.imm != old.imm)) {
      emit(report, "equiv.replaced", pos_loc(p),
           "uncovered instruction changed: '" + to_string(old) +
               "' became '" + to_string(ni) + "' at new index " +
               std::to_string(map[ps]));
      continue;
    }
    if (remapped_imm) {
      const std::int32_t want =
          old.imm >= 0 && old.imm <= baseline.size()
              ? map[static_cast<std::size_t>(old.imm)]
              : -1;
      if (ni.imm != want) {
        emit(report, "equiv.target", pos_loc(p),
             "control target " + std::to_string(old.imm) + " maps to " +
                 std::to_string(want) + " but the rewritten '" +
                 to_string(ni) + "' targets " + std::to_string(ni.imm));
      }
    }
  }

  if (rewrite.program.data != baseline.data) {
    emit(report, "equiv.replaced", "data",
         "rewrite changed the data segment (" +
             std::to_string(baseline.data.size()) + " -> " +
             std::to_string(rewrite.program.data.size()) + " bytes)");
  }
  if (rewrite.program.data_symbols != baseline.data_symbols) {
    emit(report, "equiv.replaced", "data",
         "rewrite changed the data symbol table");
  }
  if (rewrite.program.text_symbols.size() != baseline.text_symbols.size()) {
    emit(report, "equiv.replaced", "symbols",
         "rewrite changed the number of text symbols (" +
             std::to_string(baseline.text_symbols.size()) + " -> " +
             std::to_string(rewrite.program.text_symbols.size()) + ")");
  } else {
    for (const auto& [name, index] : baseline.text_symbols) {
      const auto it = rewrite.program.text_symbols.find(name);
      const std::int32_t want = index >= 0 && index <= baseline.size()
                                    ? map[static_cast<std::size_t>(index)]
                                    : -1;
      if (it == rewrite.program.text_symbols.end() || it->second != want) {
        emit(report, "equiv.target", "symbol '" + name + "'",
             "text symbol must remap " + std::to_string(index) + " -> " +
                 std::to_string(want) +
                 (it == rewrite.program.text_symbols.end()
                      ? " but is missing"
                      : " but maps to " + std::to_string(it->second)));
        break;  // one diagnostic for the table keeps reports readable
      }
    }
  }
}

// --- equiv.symbolic --------------------------------------------------------
//
// Symbolically executes the covered baseline instructions over a register
// state seeded with input leaves, and the bound configuration's
// micro-program over a slot state seeded identically, then requires every
// claimed output to land on the *same node* of the shared normalized DAG.
// Node identity is function identity over the input leaves, so a successful
// proof holds for all 2^32 valuations of every input at once — independent
// of the profiled widths the enumeration-based `sem.*` phase relies on.
// Returns true when the application is proven.
bool check_symbolic(const AnalyzedProgram& ap, const Application& app,
                    std::size_t app_index, const Selection& selection,
                    VerifyReport& report) {
  const Program& program = *ap.program;
  const std::string loc = app_loc(app.conf, app_index);
  if (app.positions.empty() ||
      app.conf >= static_cast<ConfId>(selection.table.size())) {
    return false;  // rw.positions / rw.landing report the details
  }
  for (const std::int32_t p : app.positions) {
    if (p < 0 || p >= program.size()) return false;
  }
  const ExtInstDef& def = selection.table.at(app.conf);
  const int n_out = 1 + static_cast<int>(app.extra_outputs.size());
  if (def.num_inputs() != app.num_inputs || def.num_outputs() != n_out) {
    emit(report, "equiv.symbolic", loc,
         "configuration shape " + std::to_string(def.num_inputs()) + "-in/" +
             std::to_string(def.num_outputs()) +
             "-out does not match the application's " +
             std::to_string(app.num_inputs) + "-in/" + std::to_string(n_out) +
             "-out binding");
    return false;
  }

  SymbolicPool pool;
  const SymbolicPool::NodeId zero = pool.constant(0);

  // Evaluates one ALU-class operation symbolically; mirrors the operand
  // selection of ExtInstDef::eval_multi and the executor exactly.
  auto symbolic_alu = [&pool, zero](Opcode op, SymbolicPool::NodeId a,
                                    std::int32_t imm,
                                    SymbolicPool::NodeId b_reg)
      -> SymbolicPool::NodeId {
    switch (op_kind(op)) {
      case OpKind::kAlu3:
        if (a == SymbolicPool::kInvalid || b_reg == SymbolicPool::kInvalid) {
          return SymbolicPool::kInvalid;
        }
        return pool.apply(op, a, b_reg);
      case OpKind::kShiftImm:
        if (a == SymbolicPool::kInvalid) return SymbolicPool::kInvalid;
        return pool.apply(op, a,
                          pool.constant(static_cast<std::uint32_t>(imm)));
      case OpKind::kAluImm:
        if (a == SymbolicPool::kInvalid) return SymbolicPool::kInvalid;
        return pool.apply(op, a, pool.constant(extend_imm(op, imm)));
      case OpKind::kLui:
        return pool.apply(
            Opcode::kLui, zero,
            pool.constant(static_cast<std::uint32_t>(imm) & 0xFFFF));
      default:
        return SymbolicPool::kInvalid;
    }
  };

  // Baseline side: registers start as lazily-created poison leaves ($zero
  // is the constant 0); the claimed input registers carry input leaves.
  std::array<SymbolicPool::NodeId, kNumRegs> regs;
  regs.fill(SymbolicPool::kInvalid);
  regs[kRegZero] = zero;
  for (int i = 0; i < app.num_inputs; ++i) {
    const Reg r = app.inputs[static_cast<std::size_t>(i)];
    if (r != kRegZero) regs[r] = pool.input(i);
  }
  auto reg_node = [&](Reg r) {
    if (regs[r] == SymbolicPool::kInvalid) regs[r] = pool.poison(r);
    return regs[r];
  };
  // Extra outputs are captured at their producing member (a later member
  // may legally reuse the register before the landing point).
  std::vector<SymbolicPool::NodeId> extra(app.extra_outputs.size(),
                                          SymbolicPool::kInvalid);
  for (const std::int32_t p : app.positions) {
    const Instruction& ins = program.text[static_cast<std::size_t>(p)];
    const SymbolicPool::NodeId v =
        symbolic_alu(ins.op, reg_node(ins.rs), ins.imm, reg_node(ins.rt));
    if (v == SymbolicPool::kInvalid) {
      emit(report, "equiv.symbolic", loc,
           "member at " + pos_loc(p) + " ('" + to_string(ins) +
               "') has no ALU semantics to model");
      return false;
    }
    if (ins.rd != kRegZero) regs[ins.rd] = v;
    for (std::size_t e = 0; e < app.extra_outputs.size(); ++e) {
      if (app.extra_outputs[e] == ins.rd) extra[e] = v;
    }
  }
  std::vector<SymbolicPool::NodeId> want;
  want.push_back(reg_node(app.output));
  for (std::size_t e = 0; e < extra.size(); ++e) {
    if (extra[e] == SymbolicPool::kInvalid) {
      emit(report, "equiv.symbolic", loc,
           "claimed extra output " +
               std::string(reg_name(app.extra_outputs[e])) +
               " is written by no member");
      return false;
    }
    want.push_back(extra[e]);
  }

  // PFU side: slots 0..num_inputs-1 carry the same leaves the baseline
  // registers were seeded with, then the micro-program runs in SSA order.
  std::vector<SymbolicPool::NodeId> slots(
      static_cast<std::size_t>(def.input_base() + def.length()),
      SymbolicPool::kInvalid);
  for (int i = 0; i < def.num_inputs(); ++i) {
    const Reg r = app.inputs[static_cast<std::size_t>(i)];
    slots[static_cast<std::size_t>(i)] = r == kRegZero ? zero : pool.input(i);
  }
  auto slot_node = [&](std::int8_t s) {
    return s >= 0 && s < static_cast<std::int8_t>(slots.size())
               ? slots[static_cast<std::size_t>(s)]
               : SymbolicPool::kInvalid;
  };
  for (const MicroOp& u : def.uops()) {
    const SymbolicPool::NodeId v =
        symbolic_alu(u.op, slot_node(u.a), u.imm, slot_node(u.b));
    if (v == SymbolicPool::kInvalid) {
      emit(report, "equiv.symbolic", loc,
           "configuration micro-op '" + std::string(mnemonic(u.op)) +
               "' reads an unassigned slot or has no ALU semantics");
      return false;
    }
    slots[static_cast<std::size_t>(u.dst)] = v;
  }

  for (int o = 0; o < n_out; ++o) {
    const SymbolicPool::NodeId got =
        slot_node(def.out_slots()[static_cast<std::size_t>(o)]);
    if (got == want[static_cast<std::size_t>(o)]) continue;
    emit(report, "equiv.symbolic", loc,
         "output " + std::to_string(o) + " differs symbolically: sequence "
         "computes " + pool.render(want[static_cast<std::size_t>(o)]) +
             ", configuration computes " + pool.render(got));
    return false;
  }
  return true;
}

// --- equiv.dead-kill -------------------------------------------------------
//
// The baseline window wrote every member's destination register; the EXT
// only writes its declared outputs. For each register the window kills but
// the EXT no longer writes, a deleted definition is unobservable only if
// (a) no surviving instruction inside the window span reads it while the
// deleted definition would have been the reaching one, and (b) past the
// landing point it is either shadowed by a surviving definition inside the
// span or proven dead by real backward liveness on the *rewritten*
// program — the one obligation the purely-structural rules cannot
// discharge. (A member's own reads fold into the EXT, and a surviving
// definition inside the span reaches later readers identically in both
// programs, so neither re-exposes the kill.)
void check_dead_kills(const Program& baseline, const RewriteResult& rewrite,
                      const std::vector<Application>& apps,
                      const InstLiveness& live, VerifyReport& report) {
  std::vector<bool> is_member(static_cast<std::size_t>(baseline.size()),
                              false);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const Application& app = apps[i];
    if (app.positions.empty()) continue;
    const std::int32_t first = app.positions.front();
    const std::int32_t landing = app.positions.back();
    if (first < 0 || landing < 0 || landing >= baseline.size()) continue;
    const std::int32_t ni =
        rewrite.index_map[static_cast<std::size_t>(landing)];
    if (ni < 0 || ni >= rewrite.program.size()) continue;

    std::fill(is_member.begin(), is_member.end(), false);
    for (const std::int32_t p : app.positions) {
      if (p >= 0 && p < baseline.size()) {
        is_member[static_cast<std::size_t>(p)] = true;
      }
    }
    // What the rewritten instruction actually writes (independent of the
    // application's claim).
    RegSet written;
    const DstRegs d =
        dst_regs(rewrite.program.text[static_cast<std::size_t>(ni)]);
    for (int k = 0; k < d.count; ++k) written.set(d.reg[k]);

    // Registers the window writes that the EXT does not.
    RegSet killed;
    for (const std::int32_t p : app.positions) {
      const auto dst = dst_reg(baseline.text[static_cast<std::size_t>(p)]);
      if (dst && !written.test(*dst)) killed.set(*dst);
    }
    if (killed.none()) continue;

    // Walk the window span in baseline order, tracking which killed
    // registers currently hold a deleted (member) definition. A surviving
    // instruction that reads such a register would observe the stale
    // pre-window value after the rewrite; one that writes it shadows the
    // kill for everything downstream.
    RegSet deleted_def;  // killed regs whose reaching def is a deleted one
    RegSet use, def;
    for (std::int32_t q = first; q <= landing; ++q) {
      const Instruction& ins = baseline.text[static_cast<std::size_t>(q)];
      if (is_member[static_cast<std::size_t>(q)]) {
        const auto dst = dst_reg(ins);
        if (dst && killed.test(*dst)) deleted_def.set(*dst);
        continue;
      }
      inst_use_def(ins, &use, &def);
      const RegSet stale = use & deleted_def;
      if (stale.any()) {
        for (Reg r = 0; r < kNumRegs; ++r) {
          if (!stale.test(r)) continue;
          emit(report, "equiv.dead-kill", app_loc(app.conf, i),
               "surviving '" + to_string(ins) + "' at " + pos_loc(q) +
                   " reads " + std::string(reg_name(r)) +
                   ", whose definition the window deletes");
        }
      }
      deleted_def &= ~def;  // a surviving definition shadows the kill
    }

    const RegSet leaked = deleted_def & live.live_after(ni);
    if (leaked.none()) continue;
    for (Reg r = 0; r < kNumRegs; ++r) {
      if (!leaked.test(r)) continue;
      emit(report, "equiv.dead-kill", app_loc(app.conf, i),
           "the window deletes the reaching definition of " +
               std::string(reg_name(r)) +
               ", the EXT does not write it, and it is live after the "
               "landing point (new index " + std::to_string(ni) + ")");
    }
  }
}

}  // namespace

void check_translation(const AnalyzedProgram& ap, const Selection& selection,
                       const RewriteResult& rewrite,
                       const VerifyOptions& options, VerifyReport& report) {
  (void)options;  // shape limits are enforced by the legality phase
  const Program& baseline = *ap.program;

  const bool map_ok = check_map(baseline, rewrite, report);
  if (map_ok) {
    const Coverage cov(baseline, selection.apps);
    check_replaced(baseline, rewrite, selection.apps, cov, report);
  }

  for (std::size_t i = 0; i < selection.apps.size(); ++i) {
    if (check_symbolic(ap, selection.apps[i], i, selection, report)) {
      ++report.stats.translation_proven;
    }
  }

  // Liveness needs a structurally sound rewritten program (Cfg::build
  // indexes by branch target); wf.* on the rewritten module plus the map
  // proof gate it. Other rule families do not — dead-kill must still fire
  // when, say, a claim mismatch is what flushed the breakage out.
  bool wf_ok = true;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity == Severity::kError && d.rule_id.starts_with("wf.")) {
      wf_ok = false;
      break;
    }
  }
  if (map_ok && wf_ok && !selection.apps.empty()) {
    const Cfg cfg = Cfg::build(rewrite.program);
    const InstLiveness live(rewrite.program, cfg);
    check_dead_kills(baseline, rewrite, selection.apps, live, report);
  }
}

}  // namespace t1000
