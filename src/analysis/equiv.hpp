// Translation validation for EXT rewrites (`equiv.*` rules, DESIGN.md §16).
//
// The legality rules (`ext.*`, `rw.*`) re-derive each application from the
// original program text and hold the selection to it. This pass closes the
// remaining gap: it proves, independently of how the rewrite was computed,
// that the *rewritten binary* is the baseline program with exactly the
// covered windows replaced, and that each replacement computes the same
// function as the instructions it displaced.
//
// Four rule families, one proof obligation each:
//
//  * `equiv.map` — the old→new index map is a well-formed deletion map:
//    size n+1, monotone, steps of 0/1 only, dense onto the rewritten text;
//  * `equiv.replaced` — covered non-landing positions are deleted, landing
//    positions carry an EXT, every uncovered instruction survives
//    byte-identically (control targets aside), and the data segment and
//    symbol tables are untouched modulo the index map;
//  * `equiv.target` — every surviving branch/jump target equals the index
//    map's image of its baseline target;
//  * `equiv.symbolic` — per application, the covered baseline instructions
//    and the bound configuration's micro-program are both evaluated
//    symbolically over one input valuation; each claimed output must reduce
//    to the same node of a normalized expression DAG (hash-consed, with
//    constant folding and commutative-operand canonicalization), which
//    proves equality over the entire input space;
//  * `equiv.dead-kill` — backward liveness on the *rewritten* program
//    proves every register a window killed but its EXT no longer writes is
//    dead at the rewrite point.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/verifier.hpp"

namespace t1000 {

// Hash-consed symbolic expression DAG over the candidate ALU fragment.
// Construction normalizes: constant operands fold through eval_alu,
// commutative operations (addu/and/or/xor/nor) order their operands
// canonically, and identity operations (x+0, x|0, x^0, x>>0, x-0, x&0)
// reduce. Node ids are value identities: two expressions that normalize to
// the same id compute the same function of the input leaves.
class SymbolicPool {
 public:
  using NodeId = std::int32_t;
  static constexpr NodeId kInvalid = -1;

  // Leaf for input slot `slot` (the PFU operand / bound register).
  NodeId input(int slot);
  // Leaf for an unaccounted-for register value: unique per register, never
  // equal to any input or constant (a proof touching poison fails).
  NodeId poison(int reg);
  NodeId constant(std::uint32_t value);
  // op must be an ALU-class opcode (eval_alu-evaluable); `b` carries the
  // shift amount / extended immediate as a constant node where applicable.
  NodeId apply(Opcode op, NodeId a, NodeId b);

  // Renders the expression rooted at `id` ("addu(in0, 4)").
  std::string render(NodeId id) const;
  std::size_t size() const { return nodes_.size(); }

 private:
  enum class Kind : std::uint8_t { kInput, kPoison, kConst, kOp };
  struct Node {
    Kind kind = Kind::kConst;
    Opcode op = Opcode::kNop;  // kOp only
    std::uint32_t value = 0;   // kConst: value; kInput: slot; kPoison: reg
    NodeId a = kInvalid;
    NodeId b = kInvalid;

    friend bool operator==(const Node&, const Node&) = default;
  };

  NodeId intern(const Node& n);

  std::vector<Node> nodes_;
};

// Runs the `equiv.*` translation-validation rules for `selection`/`rewrite`
// against the baseline `ap`, appending diagnostics to `report` and bumping
// report.stats.translation_proven per symbolically proven application.
void check_translation(const AnalyzedProgram& ap, const Selection& selection,
                       const RewriteResult& rewrite,
                       const VerifyOptions& options, VerifyReport& report);

}  // namespace t1000
