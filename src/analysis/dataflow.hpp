// Generic iterative dataflow over the CFG.
//
// The repo grew three hand-rolled fixpoint loops (block liveness in
// cfg/liveness.cpp, definite assignment in analysis/verifier.cpp, and the
// translation validator's dead-kill proof wants a third); this header
// hoists the shared worklist skeleton into one solver template and states
// each analysis as a small Problem object. The solver is header-only on
// purpose: `t1000_cfg` sits below `t1000_analysis` in the link graph, so
// cfg/liveness.cpp can instantiate the template without creating a library
// cycle. Non-template conveniences (the per-instruction liveness cache)
// live in dataflow.cpp inside t1000_analysis.
//
// Problem concept:
//   struct P {
//     using Domain = ...;                    // equality-comparable lattice
//     static constexpr DataflowDirection kDirection = ...;
//     bool active(int block_id) const;       // false: hold init(), skip
//     Domain init() const;                   // optimistic initial value
//     // Meet-side input of `b` from neighbor results (outs of preds for a
//     // forward problem, ins of succs for a backward one), including any
//     // boundary contribution for entry/exit blocks.
//     Domain confluence(const Cfg& cfg, const BasicBlock& b,
//                       const std::vector<Domain>& neighbor) const;
//     // Whole-block transfer in the direction of the analysis.
//     Domain transfer(const BasicBlock& b, Domain value) const;
//   };
#pragma once

#include <cstdint>
#include <vector>

#include "asmkit/program.hpp"
#include "cfg/cfg.hpp"
#include "cfg/liveness.hpp"
#include "isa/instruction.hpp"
#include "isa/reg.hpp"

namespace t1000 {

enum class DataflowDirection { kForward, kBackward };

template <typename Problem>
struct DataflowResult {
  // Indexed by block id. `in` is the value before the block's first
  // instruction, `out` after its last, regardless of direction.
  std::vector<typename Problem::Domain> in;
  std::vector<typename Problem::Domain> out;
};

// Round-robin iteration to a fixpoint, visiting blocks in id order for
// forward problems and reverse id order for backward ones (the assembler
// lays blocks out roughly topologically, so this converges in a handful of
// sweeps on reducible control flow).
template <typename Problem>
DataflowResult<Problem> solve_dataflow(const Cfg& cfg,
                                       const Problem& problem) {
  const int n = cfg.num_blocks();
  DataflowResult<Problem> r;
  r.in.assign(static_cast<std::size_t>(n), problem.init());
  r.out.assign(static_cast<std::size_t>(n), problem.init());

  bool changed = true;
  while (changed) {
    changed = false;
    for (int step = 0; step < n; ++step) {
      const int id =
          Problem::kDirection == DataflowDirection::kForward ? step
                                                             : n - 1 - step;
      if (!problem.active(id)) continue;
      const BasicBlock& b = cfg.block(id);
      const auto bid = static_cast<std::size_t>(id);
      if constexpr (Problem::kDirection == DataflowDirection::kBackward) {
        typename Problem::Domain out = problem.confluence(cfg, b, r.in);
        typename Problem::Domain in = problem.transfer(b, out);
        if (out != r.out[bid] || in != r.in[bid]) {
          r.out[bid] = std::move(out);
          r.in[bid] = std::move(in);
          changed = true;
        }
      } else {
        typename Problem::Domain in = problem.confluence(cfg, b, r.out);
        typename Problem::Domain out = problem.transfer(b, in);
        if (out != r.out[bid] || in != r.in[bid]) {
          r.out[bid] = std::move(out);
          r.in[bid] = std::move(in);
          changed = true;
        }
      }
    }
  }
  return r;
}

// --- Shared per-instruction transfer pieces --------------------------------

inline bool is_call_op(Opcode op) {
  return op == Opcode::kJal || op == Opcode::kJalr;
}

// use/def of a single instruction under the conservative call model
// (callees may read anything). MIMO EXT extra operands are covered because
// src_regs/dst_regs decode the imm-packed bindings.
inline void inst_use_def(const Instruction& ins, RegSet* use, RegSet* def) {
  use->reset();
  def->reset();
  if (is_call_op(ins.op)) use->set();
  const SrcRegs s = src_regs(ins);
  for (int i = 0; i < s.count; ++i) use->set(s.reg[i]);
  const DstRegs d = dst_regs(ins);
  for (int i = 0; i < d.count; ++i) def->set(d.reg[i]);
  use->reset(kRegZero);  // $zero is constant; never meaningfully live
  def->reset(kRegZero);
}

// Registers assumed live when control leaves the program text through a
// block ending in `tail` (see the boundary model in cfg/liveness.hpp).
inline RegSet abi_exit_live_set(Opcode tail) {
  RegSet s;
  s.set(kRegV0);
  s.set(kRegV0 + 1);  // $v1
  if (tail != Opcode::kHalt) {
    for (Reg r = kRegS0; r < kRegS0 + 8; ++r) s.set(r);  // $s0-$s7
    s.set(kRegGp);
    s.set(kRegSp);
    s.set(kRegFp);
    s.set(kRegRa);
  }
  return s;
}

// --- Backward may-liveness (union meet, ABI exit boundary) -----------------

struct LiveRegsProblem {
  using Domain = RegSet;
  static constexpr DataflowDirection kDirection = DataflowDirection::kBackward;

  const Program& program;
  // Per-block upward-exposed use and def sets, precomputed so each sweep is
  // two bit operations per block instead of a rescan of its instructions.
  std::vector<RegSet> buse;
  std::vector<RegSet> bdef;

  LiveRegsProblem(const Program& p, const Cfg& cfg) : program(p) {
    buse.resize(static_cast<std::size_t>(cfg.num_blocks()));
    bdef.resize(static_cast<std::size_t>(cfg.num_blocks()));
    for (const BasicBlock& b : cfg.blocks()) {
      RegSet use;
      RegSet def;
      for (std::int32_t i = b.first; i <= b.last; ++i) {
        RegSet u;
        RegSet d;
        inst_use_def(program.text[static_cast<std::size_t>(i)], &u, &d);
        use |= u & ~def;
        def |= d;
      }
      buse[static_cast<std::size_t>(b.id)] = use;
      bdef[static_cast<std::size_t>(b.id)] = def;
    }
  }

  bool active(int) const { return true; }
  Domain init() const { return {}; }

  Domain confluence(const Cfg&, const BasicBlock& b,
                    const std::vector<Domain>& succ_in) const {
    if (b.succs.empty()) {
      return abi_exit_live_set(
          program.text[static_cast<std::size_t>(b.last)].op);
    }
    Domain out;
    for (const int s : b.succs) out |= succ_in[static_cast<std::size_t>(s)];
    return out;
  }

  Domain transfer(const BasicBlock& b, Domain live) const {
    const auto id = static_cast<std::size_t>(b.id);
    return buse[id] | (live & ~bdef[id]);
  }
};

// --- Forward must-definedness (intersection meet, entry boundary) ----------
//
// Optimistic "everything defined" start; only blocks reachable from the
// entry participate (an unreachable predecessor contributes nothing to the
// meet). Used by the verifier's definite-assignment check.
struct DefinedRegsProblem {
  using Domain = RegSet;
  static constexpr DataflowDirection kDirection = DataflowDirection::kForward;

  const Program& program;
  RegSet entry_defined;
  std::vector<char> reachable;

  DefinedRegsProblem(const Program& p, const Cfg& cfg, RegSet entry)
      : program(p), entry_defined(entry) {
    reachable.assign(static_cast<std::size_t>(cfg.num_blocks()), 0);
    std::vector<int> stack{cfg.entry()};
    reachable[static_cast<std::size_t>(cfg.entry())] = 1;
    while (!stack.empty()) {
      const int b = stack.back();
      stack.pop_back();
      for (const int s : cfg.block(b).succs) {
        if (!reachable[static_cast<std::size_t>(s)]) {
          reachable[static_cast<std::size_t>(s)] = 1;
          stack.push_back(s);
        }
      }
    }
  }

  bool active(int id) const {
    return reachable[static_cast<std::size_t>(id)] != 0;
  }
  Domain init() const { return RegSet().set(); }

  Domain confluence(const Cfg& cfg, const BasicBlock& b,
                    const std::vector<Domain>& pred_out) const {
    Domain in = RegSet().set();
    for (const int p : b.preds) {
      if (reachable[static_cast<std::size_t>(p)]) {
        in &= pred_out[static_cast<std::size_t>(p)];
      }
    }
    // The program-start path reaches the entry block carrying only the
    // entry-defined set, so it joins the meet there.
    if (b.id == cfg.entry()) in &= entry_defined;
    return in;
  }

  Domain transfer(const BasicBlock& b, Domain defined) const {
    for (std::int32_t p = b.first; p <= b.last; ++p) {
      const Instruction& ins = program.text[static_cast<std::size_t>(p)];
      const DstRegs d = dst_regs(ins);
      for (int i = 0; i < d.count; ++i) defined.set(d.reg[i]);
      if (is_call_op(ins.op)) defined = RegSet().set();
    }
    return defined;
  }
};

// --- Per-instruction liveness cache ----------------------------------------

// Materializes live-before/live-after for every instruction of a program in
// one backward pass per block. The translation validator queries liveness
// at every rewrite point; Liveness::live_after alone would rescan the tail
// of the block per query (O(block) each), this is O(program) once.
class InstLiveness {
 public:
  InstLiveness(const Program& program, const Cfg& cfg);

  const RegSet& live_before(std::int32_t index) const {
    return before_[static_cast<std::size_t>(index)];
  }
  const RegSet& live_after(std::int32_t index) const {
    return after_[static_cast<std::size_t>(index)];
  }
  const Liveness& blocks() const { return block_; }

 private:
  Liveness block_;
  std::vector<RegSet> before_;
  std::vector<RegSet> after_;
};

}  // namespace t1000
