#include "analysis/ucode_check.hpp"

#include <string>

#include "cfg/cfg.hpp"
#include "isa/alu.hpp"
#include "isa/instruction.hpp"
#include "isa/opcode.hpp"

namespace t1000 {
namespace {

std::string uop_loc(std::size_t i) { return "uop " + std::to_string(i); }

void emit(VerifyReport& report, std::string rule_id, std::string location,
          std::string message) {
  report.diagnostics.push_back(Diagnostic{Severity::kError, std::move(rule_id),
                                          std::move(location),
                                          std::move(message)});
}

// The decoder's irregularity predicate, re-derived from the instruction
// fields: these are exactly the cases whose error (or range-check)
// semantics belong to the reference interpreter, so they must lower to
// kInterp — and nothing else may.
bool must_interp(const Instruction& ins, std::int32_t size,
                 const ExtInstTable* table) {
  if (ins.rd >= kNumRegs || ins.rs >= kNumRegs || ins.rt >= kNumRegs) {
    return true;
  }
  const OpKind kind = op_kind(ins.op);
  if (kind == OpKind::kBranch1 || kind == OpKind::kBranch2 ||
      kind == OpKind::kJump) {
    if (ins.imm < 0 || ins.imm > size) return true;
  }
  if (kind == OpKind::kExt) {
    if (table == nullptr || ins.conf >= table->size()) return true;
    // MIMO shapes exceed the 12-byte uop's two-source/one-dest payload;
    // the decoder defers them to the reference interpreter.
    const ExtInstDef& def = table->at(ins.conf);
    if (def.num_inputs() > 2 || def.num_outputs() > 1) return true;
  }
  return false;
}

// The immediate the decoded uop must carry for a regular (non-interp)
// lowering of `ins`, resolved per operand class.
std::int32_t expected_imm(const Instruction& ins) {
  switch (op_kind(ins.op)) {
    case OpKind::kShiftImm:
      return ins.imm & 31;
    case OpKind::kAluImm:
      return static_cast<std::int32_t>(extend_imm(ins.op, ins.imm));
    case OpKind::kLui:
      return static_cast<std::int32_t>(
          static_cast<std::uint32_t>(ins.imm & 0xFFFF) << 16);
    case OpKind::kLoad:
    case OpKind::kStore:
      return ins.imm;
    case OpKind::kExt:
      return static_cast<std::int32_t>(ins.conf);
    default:
      return 0;  // control carries `target`; nop/halt/alu3 carry nothing
  }
}

void check_uop(const Uop& u, const Instruction& ins, std::size_t i,
               std::int32_t size, const ExtInstTable* table,
               VerifyReport& report) {
  if (must_interp(ins, size, table)) {
    if (u.kind != UopKind::kInterp) {
      emit(report, "ucode.interp", uop_loc(i),
           "irregular instruction '" + to_string(ins) + "' lowered to '" +
               std::string(uop_kind_name(u.kind)) +
               "' instead of interp — the fast path cannot reproduce its "
               "error semantics");
    }
    return;  // an interp uop's payload fields are unused
  }
  if (u.kind == UopKind::kInterp) {
    emit(report, "ucode.interp", uop_loc(i),
         "regular instruction '" + to_string(ins) +
             "' deferred to the reference interpreter");
    return;
  }

  // Mirror kind: the regular lowering is the Opcode<->UopKind identity
  // cast (anchored by static_asserts in sim/ucode.cpp).
  const auto mirror =
      static_cast<UopKind>(static_cast<std::uint8_t>(ins.op));
  if (u.kind != mirror) {
    emit(report, "ucode.kind", uop_loc(i),
         "instruction '" + to_string(ins) + "' decoded as '" +
             std::string(uop_kind_name(u.kind)) + "', expected '" +
             std::string(uop_kind_name(mirror)) + "'");
    return;  // kind mismatch makes the payload checks meaningless
  }

  if (u.rd != ins.rd || u.rs != ins.rs || u.rt != ins.rt) {
    emit(report, "ucode.operands", uop_loc(i),
         "register fields (rd=" + std::to_string(u.rd) +
             ", rs=" + std::to_string(u.rs) + ", rt=" + std::to_string(u.rt) +
             ") do not match '" + to_string(ins) + "'");
  }

  const OpKind kind = op_kind(ins.op);
  const bool is_control = kind == OpKind::kBranch1 ||
                          kind == OpKind::kBranch2 || kind == OpKind::kJump;
  if (is_control) {
    if (u.target != ins.imm) {
      emit(report, "ucode.target", uop_loc(i),
           "control target " + std::to_string(u.target) +
               " does not match instruction target " +
               std::to_string(ins.imm));
    } else if (u.target < 0 || u.target > size) {
      emit(report, "ucode.target", uop_loc(i),
           "control target " + std::to_string(u.target) + " outside [0, " +
               std::to_string(size) + "]");
    }
  } else {
    const std::int32_t want = expected_imm(ins);
    if (u.imm != want) {
      emit(report, "ucode.imm", uop_loc(i),
           "resolved immediate " + std::to_string(u.imm) + " != expected " +
               std::to_string(want) + " for '" + to_string(ins) + "'");
    }
  }

  if (u.kind == UopKind::kExt) {
    // must_interp() already vouched for the table and Conf range; re-check
    // against the *decoded* Conf id, which is what the handler indexes.
    if (table == nullptr || u.imm < 0 ||
        u.imm >= static_cast<std::int32_t>(table->size())) {
      emit(report, "ucode.ext", uop_loc(i),
           "EXT uop Conf " + std::to_string(u.imm) +
               " unresolvable against the configuration table");
    }
  }
}

void check_segments(const UopProgram& ucode, VerifyReport& report) {
  const Program& program = *ucode.program;
  if (program.size() == 0) {
    if (!ucode.segments.empty()) {
      emit(report, "ucode.segments", "segment 0",
           "empty program carries " + std::to_string(ucode.segments.size()) +
               " segments");
    }
    return;
  }
  const Cfg cfg = Cfg::build(program);
  if (static_cast<int>(ucode.segments.size()) != cfg.num_blocks()) {
    emit(report, "ucode.segments", "segment table",
         std::to_string(ucode.segments.size()) + " segments for " +
             std::to_string(cfg.num_blocks()) + " basic blocks");
    return;
  }
  for (std::size_t s = 0; s < ucode.segments.size(); ++s) {
    const UopSegment& seg = ucode.segments[s];
    const BasicBlock& bb = cfg.blocks()[s];
    if (seg.block != bb.id || seg.first != bb.first || seg.last != bb.last) {
      emit(report, "ucode.segments", "segment " + std::to_string(s),
           "segment b" + std::to_string(seg.block) + " [" +
               std::to_string(seg.first) + ".." + std::to_string(seg.last) +
               "] does not mirror block b" + std::to_string(bb.id) + " [" +
               std::to_string(bb.first) + ".." + std::to_string(bb.last) +
               "]");
    }
  }
}

}  // namespace

void check_ucode(const UopProgram& ucode, VerifyReport& report) {
  const Program& program = *ucode.program;
  const auto size = static_cast<std::int32_t>(program.size());

  if (ucode.uops.size() != program.text.size() + 1) {
    emit(report, "ucode.stream-size", "uop stream",
         std::to_string(ucode.uops.size()) + " uops for " +
             std::to_string(program.text.size()) +
             " instructions (expected size + sentinel)");
    return;  // offsets below assume the dense uop == instruction layout
  }
  for (std::size_t i = 0; i < ucode.uops.size(); ++i) {
    const bool is_sentinel = ucode.uops[i].kind == UopKind::kSentinel;
    const bool want_sentinel = i == program.text.size();
    if (is_sentinel != want_sentinel) {
      emit(report, "ucode.sentinel", uop_loc(i),
           want_sentinel
               ? "stream does not end in the off-the-end halt sentinel"
               : "sentinel in the middle of the stream");
      if (want_sentinel) continue;
      return;  // a displaced sentinel breaks the dense-offset invariant
    }
  }
  for (std::size_t i = 0; i < program.text.size(); ++i) {
    check_uop(ucode.uops[i], program.text[i], i, size, ucode.table, report);
  }
  check_segments(ucode, report);
}

VerifyReport verify_ucode(const UopProgram& ucode) {
  VerifyReport report;
  check_ucode(ucode, report);
  return report;
}

}  // namespace t1000
