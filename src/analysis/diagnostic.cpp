#include "analysis/diagnostic.hpp"

namespace t1000 {

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

int VerifyReport::errors() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

int VerifyReport::warnings() const {
  return static_cast<int>(diagnostics.size()) - errors();
}

std::string VerifyReport::summary() const {
  if (diagnostics.empty()) return "ok";
  std::string out = std::to_string(errors()) + " error(s), " +
                    std::to_string(warnings()) + " warning(s)";
  for (const Diagnostic& d : diagnostics) {
    if (d.severity != Severity::kError) continue;
    out += " [first: " + d.rule_id + " @ " + d.location + ": " + d.message +
           "]";
    break;
  }
  return out;
}

Json to_json(const VerifyReport& report) {
  Json diags = Json::array();
  for (const Diagnostic& d : report.diagnostics) {
    Json j = Json::object();
    j["severity"] = Json(severity_name(d.severity));
    j["rule_id"] = Json(d.rule_id);
    j["location"] = Json(d.location);
    j["message"] = Json(d.message);
    diags.push_back(std::move(j));
  }

  Json stats = Json::object();
  stats["configs"] = Json(report.stats.configs);
  stats["apps"] = Json(report.stats.apps);
  stats["equiv_structural"] = Json(report.stats.equiv_structural);
  stats["equiv_exhaustive"] = Json(report.stats.equiv_exhaustive);
  stats["equiv_sampled"] = Json(report.stats.equiv_sampled);
  stats["equiv_evals"] = Json(report.stats.equiv_evals);
  stats["translation_proven"] = Json(report.stats.translation_proven);
  stats["width_static_proven"] = Json(report.stats.width_static_proven);
  stats["width_profile_only"] = Json(report.stats.width_profile_only);

  Json doc = Json::object();
  doc["ok"] = Json(report.ok());
  doc["errors"] = Json(report.errors());
  doc["warnings"] = Json(report.warnings());
  doc["diagnostics"] = std::move(diags);
  doc["stats"] = std::move(stats);
  doc["width_audit"] = Json::array_of(report.width_audit);
  return doc;
}

Json to_json(const VerifyTiming& timing) {
  Json j = Json::object();
  j["wellformed_ms"] = Json(timing.wellformed_ms);
  j["legality_ms"] = Json(timing.legality_ms);
  j["equiv_ms"] = Json(timing.equiv_ms);
  j["width_ms"] = Json(timing.width_ms);
  j["translation_ms"] = Json(timing.translation_ms);
  j["total_ms"] = Json(timing.total_ms);
  return j;
}

}  // namespace t1000
