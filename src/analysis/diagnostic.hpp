// Diagnostics and reports for the static-analysis layer (the T1000 IR
// verifier). A verification run produces a VerifyReport: an ordered list of
// Diagnostics — each carrying a stable machine-readable rule id — plus the
// counters that describe *how* each property was established (structural
// proof vs exhaustive enumeration vs sampling) and per-phase wall-clock.
//
// The report splits into a deterministic part (diagnostics, stats, width
// audit — byte-identical across runs, compared by CI) and a timing part
// (excluded from determinism comparisons, like the grid's "engine"
// section). to_json serializes only the deterministic part; timing has its
// own converter.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "harness/json.hpp"

namespace t1000 {

enum class Severity : std::uint8_t {
  kWarning,  // suspicious but not a proof of breakage; never fails a run
  kError,    // a paper invariant is violated; verification fails
};

std::string_view severity_name(Severity severity);

// One verifier finding. `rule_id` is stable and machine-readable (the rule
// catalog lives in DESIGN.md §11); `location` names the program point or
// configuration ("pos 42", "conf 3 app 7") the finding anchors to.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule_id;
  std::string location;
  std::string message;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

// How each verified property was established, and how much ground the
// checks covered. All counters are deterministic.
struct VerifyStats {
  int configs = 0;  // distinct extended-instruction configurations checked
  int apps = 0;     // rewrite applications checked
  // Semantic equivalence, per application. `structural` = the recomputed
  // micro-program is identical to the interned configuration, which proves
  // equality over the entire input space (subsumes any enumeration);
  // `exhaustive` = full enumeration of the profiled-width operand domain
  // completed; `sampled` = neither proof applied and only pseudo-random
  // samples were compared (always paired with a sem.unproven warning).
  int equiv_structural = 0;
  int equiv_exhaustive = 0;
  int equiv_sampled = 0;
  std::uint64_t equiv_evals = 0;  // concrete evaluation pairs compared
  // Translation validation: applications whose semantics were proven by
  // symbolic execution over the normalized expression DAG (`equiv.symbolic`
  // succeeded; the proof covers the full 2^32 input space per port).
  int translation_proven = 0;
  // Bitwidth soundness: inputs whose width bound is also provable from a
  // conservative static value-range argument vs. inputs where selection
  // rests on the profile's observation alone (listed in width_audit).
  int width_static_proven = 0;
  int width_profile_only = 0;

  friend bool operator==(const VerifyStats&, const VerifyStats&) = default;
};

// Per-phase wall-clock. Nondeterministic; excluded from report equality
// and from to_json(const VerifyReport&).
struct VerifyTiming {
  double wellformed_ms = 0.0;
  double legality_ms = 0.0;
  double equiv_ms = 0.0;
  double width_ms = 0.0;
  double translation_ms = 0.0;
  double total_ms = 0.0;
};

class VerifyReport {
 public:
  std::vector<Diagnostic> diagnostics;
  VerifyStats stats;
  // Where selection relies on profile-only width claims: one entry per
  // external input without a static bound at or below the width ceiling.
  // Reported as data, not diagnostics (the paper's approach is profile-
  // driven by design); VerifyOptions::pedantic promotes them to warnings.
  std::vector<std::string> width_audit;
  VerifyTiming timing;

  int errors() const;
  int warnings() const;
  // Verification verdict: no error-severity diagnostics.
  bool ok() const { return errors() == 0; }
  // "ok" / "N error(s), M warning(s) [first: rule @ location]".
  std::string summary() const;
};

// Deterministic part only: {"diagnostics", "stats", "width_audit", "ok"}.
Json to_json(const VerifyReport& report);
Json to_json(const VerifyTiming& timing);

// Thrown by layers that treat a failed verification as a run error (the
// harness's RunSpec::verify pre-flight); classified as
// RunErrorKind::kVerify by the grid's error taxonomy.
class VerifyError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace t1000
