#include "analysis/verifier.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <string>
#include <vector>

#include "analysis/dataflow.hpp"
#include "analysis/equiv.hpp"
#include "analysis/ucode_check.hpp"
#include "cfg/cfg.hpp"
#include "cfg/liveness.hpp"
#include "extinst/chain.hpp"
#include "hwcost/lut_model.hpp"
#include "isa/alu.hpp"

namespace t1000 {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string pos_loc(std::int32_t pos) { return "pos " + std::to_string(pos); }

std::string app_loc(ConfId conf, std::size_t app) {
  return "conf " + std::to_string(conf) + " app " + std::to_string(app);
}

void emit(VerifyReport& report, Severity severity, std::string rule_id,
          std::string location, std::string message) {
  report.diagnostics.push_back(Diagnostic{severity, std::move(rule_id),
                                          std::move(location),
                                          std::move(message)});
}

// ---------------------------------------------------------------------------
// Module / CFG well-formedness (`wf.*`).

bool is_call(Opcode op) { return op == Opcode::kJal || op == Opcode::kJalr; }

void check_instruction_fields(const Program& program,
                              const ExtInstTable* table,
                              VerifyReport& report) {
  const std::int32_t size = program.size();
  for (std::int32_t p = 0; p < size; ++p) {
    const Instruction& ins = program.text[static_cast<std::size_t>(p)];
    for (const Reg r : {ins.rd, ins.rs, ins.rt}) {
      if (r >= kNumRegs) {
        emit(report, Severity::kError, "wf.reg-range", pos_loc(p),
             "register field " + std::to_string(r) + " out of range in '" +
                 to_string(ins) + "'");
        break;
      }
    }
    if (is_branch(ins.op) || op_kind(ins.op) == OpKind::kJump) {
      // Target == size is legal: the executor halts cleanly when pc runs off
      // the end, and the rewriter's index_map deliberately maps deleted tail
      // positions there.
      if (ins.imm < 0 || ins.imm > size) {
        emit(report, Severity::kError, "wf.branch-target", pos_loc(p),
             "control target " + std::to_string(ins.imm) +
                 " outside [0, " + std::to_string(size) + "] in '" +
                 to_string(ins) + "'");
      }
    }
    if (ins.op == Opcode::kExt) {
      if (table == nullptr) {
        emit(report, Severity::kError, "wf.conf-ref", pos_loc(p),
             "EXT instruction but no configuration table is present");
      } else if (ins.conf >= static_cast<ConfId>(table->size())) {
        emit(report, Severity::kError, "wf.conf-ref", pos_loc(p),
             "Conf " + std::to_string(ins.conf) +
                 " not in table (size " + std::to_string(table->size()) +
                 ")");
      }
    } else if (ins.conf != kInvalidConf) {
      emit(report, Severity::kError, "wf.conf-ref", pos_loc(p),
           "non-EXT instruction carries Conf " + std::to_string(ins.conf));
    }
  }
  for (const auto& [name, index] : program.text_symbols) {
    if (index < 0 || index > size) {
      emit(report, Severity::kError, "wf.text-symbol", "symbol '" + name + "'",
           "text symbol index " + std::to_string(index) + " outside [0, " +
               std::to_string(size) + "]");
    }
  }
}

// Definite-assignment dataflow: warn when some path from the entry reaches a
// register use with no prior definition. At entry the executor gives defined
// values to $zero, $sp (stack top), and $ra (the halt return address); every
// other register is only incidentally zero-filled, so relying on it is worth
// flagging. Calls conservatively define everything (the callee's writes are
// not tracked interprocedurally). Warning severity: the simulator's zero-fill
// makes the read deterministic, just suspicious.
void check_defs_before_uses(const Program& program, const Cfg& cfg,
                            VerifyReport& report) {
  RegSet entry_defined;
  entry_defined.set(kRegZero);
  entry_defined.set(kRegSp);
  entry_defined.set(kRegRa);

  // Forward must-analysis over blocks reachable from the entry, optimistic
  // initialization (all defined), meet = intersection over predecessors
  // (the program-start path joins the meet at the entry block). Stated as a
  // DefinedRegsProblem over the generic solver; the reporting walk below
  // replays each block's transfer against the solved block-entry values.
  const DefinedRegsProblem problem(program, cfg, entry_defined);
  const DataflowResult<DefinedRegsProblem> solved =
      solve_dataflow(cfg, problem);

  const RegSet all = RegSet().set();
  for (const BasicBlock& bb : cfg.blocks()) {
    if (!problem.active(bb.id)) continue;
    RegSet defined = solved.in[static_cast<std::size_t>(bb.id)];
    for (std::int32_t p = bb.first; p <= bb.last; ++p) {
      const Instruction& ins = program.text[static_cast<std::size_t>(p)];
      const SrcRegs srcs = src_regs(ins);
      for (int s = 0; s < srcs.count; ++s) {
        const Reg r = srcs.reg[s];
        if (r == kRegZero || r >= kNumRegs || defined.test(r)) continue;
        emit(report, Severity::kWarning, "wf.use-before-def", pos_loc(p),
             std::string(reg_name(r)) + " may be read before any definition" +
                 " in '" + to_string(ins) + "'");
        defined.set(r);  // report each register once per block
      }
      const DstRegs dsts = dst_regs(ins);
      for (int d = 0; d < dsts.count; ++d) defined.set(dsts.reg[d]);
      if (is_call(ins.op)) defined = all;
    }
  }
}

// ---------------------------------------------------------------------------
// Per-application legality: recompute the micro-program, inputs, and output
// of an application from the *original* program text, independently of the
// extractor's SeqSite bookkeeping.

struct ExternalInput {
  Reg reg = 0;
  std::int32_t def_pos = -1;  // last in-block writer before first use, or -1
};

struct Recomputed {
  bool usable = false;  // micro-program and I/O recomputed without errors
  ExtInstDef def;
  std::vector<ExternalInput> externals;  // slot order (<= options.max_inputs)
  Reg output = 0;
  // Required extra outputs: intermediates whose value stays architecturally
  // visible past the landing point, in member order (parallel to
  // def.out_slots()[1..] once usable).
  std::vector<Reg> extra_outputs;
  int width = 1;  // widest profiled input (applied to every port)
  std::int32_t landing = -1;
  int block = -1;

  std::array<int, 2> lut_widths() const { return {width, width}; }
};

// Last position in [block_first, before) writing `r`, or -1.
std::int32_t last_writer_before(const Program& program,
                                std::int32_t block_first, std::int32_t before,
                                Reg r) {
  for (std::int32_t q = before - 1; q >= block_first; --q) {
    if (writes_reg(program.text[static_cast<std::size_t>(q)], r)) return q;
  }
  return -1;
}

Recomputed recompute_app(const AnalyzedProgram& ap, const Application& app,
                         std::size_t app_index, const VerifyOptions& options,
                         VerifyReport& report) {
  Recomputed rc;
  const Program& program = *ap.program;
  const std::string loc = app_loc(app.conf, app_index);
  const int n_members = static_cast<int>(app.positions.size());

  if (n_members == 0) {
    emit(report, Severity::kError, "rw.positions", loc,
         "application covers no positions");
    return rc;
  }
  for (int m = 0; m < n_members; ++m) {
    const std::int32_t p = app.positions[static_cast<std::size_t>(m)];
    if (p < 0 || p >= program.size()) {
      emit(report, Severity::kError, "rw.positions", loc,
           "position " + std::to_string(p) + " outside the program");
      return rc;
    }
    if (m > 0 && p <= app.positions[static_cast<std::size_t>(m - 1)]) {
      emit(report, Severity::kError, "rw.positions", loc,
           "positions not strictly ascending at member " + std::to_string(m));
      return rc;
    }
  }
  rc.block = ap.cfg.block_of(app.positions[0]);
  rc.landing = app.positions.back();
  for (const std::int32_t p : app.positions) {
    if (ap.cfg.block_of(p) != rc.block) {
      emit(report, Severity::kError, "rw.positions", loc,
           "positions span basic blocks (" + std::to_string(rc.block) +
               " and " + std::to_string(ap.cfg.block_of(p)) + ")");
      return rc;
    }
  }
  if (n_members < options.min_length || n_members > options.max_length) {
    emit(report, Severity::kError, "ext.length", loc,
         "sequence length " + std::to_string(n_members) + " outside [" +
             std::to_string(options.min_length) + ", " +
             std::to_string(options.max_length) + "]");
  }

  const std::int32_t block_first = ap.cfg.block(rc.block).first;
  const int max_inputs = std::clamp(options.max_inputs, 1, kMaxExtInputs);
  const int max_outputs = std::clamp(options.max_outputs, 1, kMaxExtOutputs);
  std::vector<std::int8_t> slot_of_pos;  // parallel to app.positions
  auto member_index_of = [&](std::int32_t q) {
    const auto it = std::lower_bound(app.positions.begin(),
                                     app.positions.end(), q);
    if (it != app.positions.end() && *it == q) {
      return static_cast<int>(it - app.positions.begin());
    }
    return -1;
  };

  // Slot assignment is two-phase: input slots precede member slots, but the
  // member base (max(2, input count)) is only known after the scan. Member
  // values are recorded as kMemberBias + index and materialized below.
  constexpr std::int8_t kMemberBias = 64;
  bool member_errors = false;
  std::vector<MicroOp> uops;
  for (int m = 0; m < n_members; ++m) {
    const std::int32_t p = app.positions[static_cast<std::size_t>(m)];
    const Instruction& ins = program.text[static_cast<std::size_t>(p)];
    if (!is_ext_candidate(ins.op)) {
      emit(report, Severity::kError, "ext.opcode-class", loc,
           "member at " + pos_loc(p) + " is '" + to_string(ins) +
               "': opcode is not PFU-eligible");
      member_errors = true;
      slot_of_pos.push_back(-1);
      continue;
    }
    const auto dst = dst_reg(ins);
    if (!dst) {
      emit(report, Severity::kError, "ext.output", loc,
           "member at " + pos_loc(p) + " produces no register result");
      member_errors = true;
      slot_of_pos.push_back(-1);
      continue;
    }
    const InstProfile& ip = ap.profile.at(p);
    if (ip.max_src_width > options.max_width ||
        ip.max_result_width > options.max_width) {
      emit(report, Severity::kError, "ext.width", loc,
           "member at " + pos_loc(p) + " profiled at " +
               std::to_string(std::max(ip.max_src_width,
                                       ip.max_result_width)) +
               " bits, over the " + std::to_string(options.max_width) +
               "-bit ceiling");
      member_errors = true;
    }
    rc.width = std::max(rc.width, ip.max_src_width);

    MicroOp u;
    u.op = ins.op;
    u.imm = ins.imm;
    u.dst = static_cast<std::int8_t>(kMemberBias + m);
    const SrcRegs srcs = src_regs(ins);
    std::int8_t slots[2] = {-1, -1};
    for (int s = 0; s < srcs.count && !member_errors; ++s) {
      const Reg r = srcs.reg[s];
      const std::int32_t def = last_writer_before(program, block_first, p, r);
      const int dm = def >= 0 ? member_index_of(def) : -1;
      if (dm >= 0) {
        slots[s] = slot_of_pos[static_cast<std::size_t>(dm)];
        if (slots[s] < 0) member_errors = true;  // producer already invalid
        continue;
      }
      // External value. Intern by register in first-use order (mirrors
      // window_view's slot assignment); the same register reached through
      // two different in-block definitions is not one external value.
      int slot = -1;
      for (std::size_t e = 0; e < rc.externals.size(); ++e) {
        if (rc.externals[e].reg != r) continue;
        if (rc.externals[e].def_pos != def) {
          emit(report, Severity::kError, "ext.inputs", loc,
               std::string(reg_name(r)) +
                   " reaches members from two different definitions (" +
                   std::to_string(rc.externals[e].def_pos) + " and " +
                   std::to_string(def) + ")");
          member_errors = true;
        }
        slot = static_cast<int>(e);
        break;
      }
      if (slot < 0 && !member_errors) {
        if (static_cast<int>(rc.externals.size()) == max_inputs) {
          std::string have;
          for (const ExternalInput& e : rc.externals) {
            have += std::string(reg_name(e.reg)) + ", ";
          }
          emit(report, Severity::kError, "ext.inputs", loc,
               "more than " + std::to_string(max_inputs) +
                   " external register inputs (" + have +
                   std::string(reg_name(r)) + ")");
          member_errors = true;
        } else {
          slot = static_cast<int>(rc.externals.size());
          rc.externals.push_back(ExternalInput{r, def});
        }
      }
      slots[s] = static_cast<std::int8_t>(slot);
    }
    u.a = slots[0];
    u.b = slots[1];
    slot_of_pos.push_back(u.dst);
    uops.push_back(u);
  }
  rc.output = app.output;
  if (member_errors) return rc;

  // Materialize member slots now that the input count is final.
  const int n_in = static_cast<int>(rc.externals.size());
  const auto base = static_cast<std::int8_t>(n_in > 2 ? n_in : 2);
  auto resolve = [base](std::int8_t v) {
    return v >= kMemberBias ? static_cast<std::int8_t>(base + (v - kMemberBias))
                            : v;
  };
  for (MicroOp& u : uops) {
    u.dst = resolve(u.dst);
    u.a = resolve(u.a);
    u.b = resolve(u.b);
  }

  rc.output = *dst_reg(program.text[static_cast<std::size_t>(rc.landing)]);

  // Output constraint: every intermediate value must either die inside the
  // window or surface as an extra EXT output within the shape budget. A
  // non-member reading it mid-window is always fatal (after the rewrite the
  // value only materializes at the landing point).
  std::vector<std::int8_t> out_slots{
      static_cast<std::int8_t>(base + (n_members - 1))};
  bool output_errors = false;
  for (int m = 0; m + 1 < n_members; ++m) {
    const std::int32_t p = app.positions[static_cast<std::size_t>(m)];
    const Reg d = *dst_reg(program.text[static_cast<std::size_t>(p)]);
    bool redefined = false;
    for (std::int32_t q = p + 1; q <= rc.landing && !redefined; ++q) {
      const Instruction& ins = program.text[static_cast<std::size_t>(q)];
      const bool member = member_index_of(q) >= 0;
      if (!member && reads_reg(ins, d)) {
        emit(report, Severity::kError, "ext.output", loc,
             "intermediate " + std::string(reg_name(d)) + " (def at " +
                 pos_loc(p) + ") is read by non-member at " + pos_loc(q));
        output_errors = true;
      }
      if (writes_reg(ins, d)) redefined = true;
    }
    if (redefined ||
        !ap.liveness.live_after(program, ap.cfg, rc.landing).test(d)) {
      continue;  // the value dies inside the window: no output needed
    }
    if (static_cast<int>(out_slots.size()) == max_outputs) {
      emit(report, Severity::kError, "ext.output", loc,
           "intermediate " + std::string(reg_name(d)) + " (def at " +
               pos_loc(p) + ") is live after the landing point and no " +
               "output port is left (shape allows " +
               std::to_string(max_outputs) + ")");
      output_errors = true;
      continue;
    }
    out_slots.push_back(static_cast<std::int8_t>(base + m));
    rc.extra_outputs.push_back(d);
  }

  try {
    rc.def = ExtInstDef(n_in, std::move(uops), std::move(out_slots));
  } catch (const std::exception& e) {
    emit(report, Severity::kError, "ext.opcode-class", loc,
         std::string("recomputed micro-program is not a valid PFU "
                     "configuration: ") +
             e.what());
    return rc;
  }
  rc.usable = !output_errors;

  // The application's own claim must match what the program text says —
  // the rewriter encodes app.inputs/app.output/app.extra_outputs into the
  // EXT instruction.
  if (static_cast<int>(rc.externals.size()) != app.num_inputs) {
    emit(report, Severity::kError, "ext.inputs", loc,
         "application claims " + std::to_string(app.num_inputs) +
             " input(s), recomputation finds " +
             std::to_string(rc.externals.size()));
    rc.usable = false;
  } else {
    for (std::size_t e = 0; e < rc.externals.size(); ++e) {
      if (rc.externals[e].reg != app.inputs[e]) {
        emit(report, Severity::kError, "ext.inputs", loc,
             "input slot " + std::to_string(e) + " is " +
                 std::string(reg_name(rc.externals[e].reg)) +
                 " in the program but " +
                 std::string(reg_name(app.inputs[e])) +
                 " in the application");
        rc.usable = false;
      }
    }
  }
  if (rc.output != app.output) {
    emit(report, Severity::kError, "ext.output", loc,
         "output is " + std::string(reg_name(rc.output)) +
             " in the program but " + std::string(reg_name(app.output)) +
             " in the application");
    rc.usable = false;
  }
  if (rc.extra_outputs != app.extra_outputs) {
    auto render = [](const std::vector<Reg>& regs) {
      std::string s = "{";
      for (std::size_t e = 0; e < regs.size(); ++e) {
        s += (e ? ", " : "") + std::string(reg_name(regs[e]));
      }
      return s + "}";
    };
    emit(report, Severity::kError, "ext.output", loc,
         "extra outputs are " + render(rc.extra_outputs) +
             " in the program but " + render(app.extra_outputs) +
             " in the application");
    rc.usable = false;
  }

  // Rewrite safety: after the rewrite, every input is read at the landing
  // position. A non-member writing an input register between its definition
  // and the landing point would feed the EXT a different value than the
  // original sequence saw.
  for (const ExternalInput& ext : rc.externals) {
    const std::int32_t start =
        ext.def_pos >= 0 ? ext.def_pos + 1 : block_first;
    for (std::int32_t q = start; q < rc.landing; ++q) {
      if (member_index_of(q) >= 0) continue;
      if (writes_reg(program.text[static_cast<std::size_t>(q)], ext.reg)) {
        emit(report, Severity::kError, "rw.clobber", loc,
             "input " + std::string(reg_name(ext.reg)) +
                 " is overwritten by non-member at " + pos_loc(q) +
                 " before the landing point " + pos_loc(rc.landing));
      }
    }
  }
  return rc;
}

// ---------------------------------------------------------------------------
// Semantic equivalence: the interned configuration the PFU will execute vs.
// an independent interpretation of the original member instructions,
// mirroring the executor's operand selection exactly.

// Interprets the original member instructions over a register file seeded
// with the input valuation, and reads back every claimed output (primary
// first, then the extra outputs in member order).
void interpret_members(const Program& program, const Application& app,
                       const Recomputed& rc,
                       const std::array<std::uint32_t, kMaxExtInputs>& in,
                       std::array<std::uint32_t, kMaxExtOutputs>& out) {
  std::array<std::uint32_t, kNumRegs> regs;
  for (int r = 0; r < kNumRegs; ++r) {
    // Poison pattern: a read the recomputation did not account for yields a
    // value no legitimate narrow operand produces.
    regs[static_cast<std::size_t>(r)] =
        0x9E3779B9u * static_cast<std::uint32_t>(r + 1);
  }
  regs[kRegZero] = 0;
  for (std::size_t e = 0; e < rc.externals.size(); ++e) {
    if (rc.externals[e].reg != kRegZero) regs[rc.externals[e].reg] = in[e];
  }
  // Extra outputs are read at the position of their producing member, not
  // after the whole window: a later member may legally reuse the register.
  std::vector<std::uint32_t> extra(rc.extra_outputs.size(), 0);
  for (const std::int32_t p : app.positions) {
    const Instruction& ins = program.text[static_cast<std::size_t>(p)];
    std::uint32_t v = 0;
    switch (op_kind(ins.op)) {
      case OpKind::kAlu3:
        v = eval_alu(ins.op, regs[ins.rs], regs[ins.rt]);
        break;
      case OpKind::kShiftImm:
        v = eval_alu(ins.op, regs[ins.rs],
                     static_cast<std::uint32_t>(ins.imm));
        break;
      case OpKind::kAluImm:
        v = eval_alu(ins.op, regs[ins.rs], extend_imm(ins.op, ins.imm));
        break;
      case OpKind::kLui:
        v = static_cast<std::uint32_t>(ins.imm & 0xFFFF) << 16;
        break;
      default:
        return;  // unreachable: candidacy checked during recomputation
    }
    if (ins.rd != kRegZero) regs[ins.rd] = v;
    for (std::size_t e = 0; e < rc.extra_outputs.size(); ++e) {
      if (rc.extra_outputs[e] == ins.rd) extra[e] = v;
    }
  }
  out[0] = regs[rc.output];
  for (std::size_t e = 0; e < extra.size(); ++e) out[e + 1] = extra[e];
}

std::uint32_t sign_extend(std::uint64_t k, int width) {
  if (width >= 32) return static_cast<std::uint32_t>(k);
  const std::uint32_t v = static_cast<std::uint32_t>(k);
  const std::uint32_t sign = 1u << (width - 1);
  return (v ^ sign) - sign;
}

// Domain size (distinct values) of input slot `e`: 2^width, except the
// hardwired-zero register which only ever supplies 0.
std::uint64_t domain_size(const Recomputed& rc, std::size_t e) {
  if (rc.externals[e].reg == kRegZero) return 1;
  const int w = rc.width;
  return w >= 32 ? (1ull << 32) : (1ull << w);
}

std::uint32_t domain_value(const Recomputed& rc, std::size_t e,
                           std::uint64_t k) {
  if (rc.externals[e].reg == kRegZero) return 0;
  return sign_extend(k, rc.width);
}

struct EquivOutcome {
  enum class Method { kExhaustive, kSampled } method = Method::kExhaustive;
  std::uint64_t evals = 0;
  bool mismatch = false;
  std::array<std::uint32_t, kMaxExtInputs> in{};
  int output = 0;  // mismatching output index (0 = primary)
  std::uint32_t expected = 0, got = 0;
};

EquivOutcome check_equivalence(const AnalyzedProgram& ap,
                               const Application& app, const Recomputed& rc,
                               const ExtInstDef& interned,
                               const VerifyOptions& options) {
  EquivOutcome out;
  const Program& program = *ap.program;
  const std::size_t n_in = rc.externals.size();
  const int n_out = 1 + static_cast<int>(rc.extra_outputs.size());
  // A configuration with the wrong output arity cannot be equivalent; the
  // structural/claim checks report the details.
  if (interned.num_outputs() != n_out ||
      interned.num_inputs() != static_cast<int>(n_in)) {
    out.mismatch = true;
    return out;
  }
  auto probe = [&](const std::array<std::uint32_t, kMaxExtInputs>& in) {
    std::array<std::uint32_t, kMaxExtOutputs> expected{};
    std::array<std::uint32_t, kMaxExtOutputs> got{};
    interpret_members(program, app, rc, in, expected);
    interned.eval_multi(in, got);
    ++out.evals;
    for (int o = 0; o < n_out; ++o) {
      const auto os = static_cast<std::size_t>(o);
      if (expected[os] != got[os]) {
        if (!out.mismatch) {
          out.mismatch = true;
          out.in = in;
          out.output = o;
          out.expected = expected[os];
          out.got = got[os];
        }
        return false;
      }
    }
    return true;
  };

  std::array<std::uint64_t, kMaxExtInputs> dims;
  dims.fill(1);
  std::uint64_t total = 1;
  bool huge = false;
  for (std::size_t e = 0; e < n_in; ++e) {
    dims[e] = domain_size(rc, e);
    if (dims[e] > options.exhaustive_budget ||
        total > options.exhaustive_budget / dims[e]) {
      huge = true;
    }
    if (!huge) total *= dims[e];
  }
  if (!huge) {
    // Odometer over the full product domain.
    out.method = EquivOutcome::Method::kExhaustive;
    std::array<std::uint64_t, kMaxExtInputs> k{};
    while (true) {
      std::array<std::uint32_t, kMaxExtInputs> in{};
      for (std::size_t e = 0; e < n_in; ++e) {
        in[e] = domain_value(rc, e, k[e]);
      }
      if (!probe(in)) return out;
      std::size_t e = 0;
      for (; e < n_in; ++e) {
        if (++k[e] < dims[e]) break;
        k[e] = 0;
      }
      if (e == n_in) break;  // odometer wrapped: domain exhausted
    }
    return out;
  }

  // Deterministic probes: domain corners plus a fixed-seed LCG stream.
  out.method = EquivOutcome::Method::kSampled;
  std::uint64_t state = 0x853C49E6748FEA9Bull ^
                        (static_cast<std::uint64_t>(app.conf) << 32) ^
                        static_cast<std::uint64_t>(app.positions[0]);
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 31;
  };
  // Corner odometer: {0, 1, mid, max} per input dimension.
  std::array<std::size_t, kMaxExtInputs> c{};
  while (true) {
    std::array<std::uint32_t, kMaxExtInputs> in{};
    for (std::size_t e = 0; e < n_in; ++e) {
      const std::uint64_t corners[] = {0, 1, dims[e] / 2, dims[e] - 1};
      in[e] = domain_value(rc, e, corners[c[e]]);
    }
    if (!probe(in)) return out;
    std::size_t e = 0;
    for (; e < n_in; ++e) {
      if (++c[e] < 4) break;
      c[e] = 0;
    }
    if (e == n_in) break;
  }
  for (int s = 0; s < options.samples; ++s) {
    std::array<std::uint32_t, kMaxExtInputs> in{};
    for (std::size_t e = 0; e < n_in; ++e) {
      in[e] = domain_value(rc, e, next() % dims[e]);
    }
    if (!probe(in)) return out;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Bitwidth soundness: conservative static bound on the signed width of the
// value an instruction writes (depth-1 value-range argument; 32 = no bound).

int static_result_width(const Instruction& ins) {
  switch (ins.op) {
    case Opcode::kAndi:  // result in [0, zext(imm)]
      return signed_width(static_cast<std::uint32_t>(ins.imm) & 0xFFFF);
    case Opcode::kSrl:
      return ins.imm > 0 && ins.imm < 32 ? 33 - ins.imm : 32;
    case Opcode::kSlt:
    case Opcode::kSltu:
    case Opcode::kSlti:
    case Opcode::kSltiu:
      return 2;  // {0, 1} as a signed quantity
    case Opcode::kLb:
      return 8;
    case Opcode::kLbu:
      return 9;
    case Opcode::kLh:
      return 16;
    case Opcode::kLhu:
      return 17;
    case Opcode::kLui:
      return signed_width(static_cast<std::uint32_t>(ins.imm & 0xFFFF) << 16);
    default:
      return 32;
  }
}

void audit_widths(const AnalyzedProgram& ap, const Application& app,
                  std::size_t app_index, const Recomputed& rc,
                  const VerifyOptions& options, VerifyReport& report,
                  std::set<std::string>& seen_audit) {
  const Program& program = *ap.program;
  for (std::size_t e = 0; e < rc.externals.size(); ++e) {
    const ExternalInput& ext = rc.externals[e];
    if (ext.reg == kRegZero) {
      ++report.stats.width_static_proven;  // $zero is statically 1 bit wide
      continue;
    }
    const int bound =
        ext.def_pos >= 0
            ? static_result_width(
                  program.text[static_cast<std::size_t>(ext.def_pos)])
            : 32;
    if (bound <= options.max_width) {
      ++report.stats.width_static_proven;
      continue;
    }
    ++report.stats.width_profile_only;
    std::string entry =
        std::string(reg_name(ext.reg)) + " into " +
        app_loc(app.conf, app_index) + ": profiled " +
        std::to_string(rc.width) + "-bit, " +
        (ext.def_pos >= 0
             ? "def at " + pos_loc(ext.def_pos) + " ('" +
                   std::string(mnemonic(program
                                            .text[static_cast<std::size_t>(
                                                ext.def_pos)]
                                            .op)) +
                   "') has no static bound <= " +
                   std::to_string(options.max_width)
             : "defined outside the block, no static bound");
    if (seen_audit.insert(entry).second) {
      report.width_audit.push_back(entry);
    }
    if (options.pedantic) {
      emit(report, Severity::kWarning, "width.profile-only",
           app_loc(app.conf, app_index),
           "selection relies on profile-only width claim for " +
               std::string(reg_name(ext.reg)));
    }
  }
}

}  // namespace

VerifyOptions verify_options_for(const SelectPolicy& policy) {
  VerifyOptions options;
  options.max_width = policy.extract.max_width;
  options.min_length = policy.extract.min_length;
  options.max_length = policy.extract.max_length;
  options.lut_budget = policy.lut_budget;
  options.max_inputs = policy.extract.max_inputs;
  options.max_outputs = policy.extract.max_outputs;
  return options;
}

VerifyReport verify_module(const Program& program, const ExtInstTable* table,
                           const VerifyOptions& options) {
  (void)options;
  VerifyReport report;
  const auto start = Clock::now();
  check_instruction_fields(program, table, report);
  // Field errors gate the deeper analyses: Cfg::build indexes by branch
  // target and the dataflow indexes by register number, so neither is safe
  // on a structurally broken module.
  if (report.errors() == 0) {
    const Cfg cfg = Cfg::build(program);
    check_defs_before_uses(program, cfg, report);
    // The decoded form every functional run executes (`ucode.*`): decode
    // here and hold it to the source text, so a decoder regression fails
    // verification before it can corrupt a trace.
    const UopProgram ucode = UopProgram::build(program, table);
    check_ucode(ucode, report);
  }
  report.timing.wellformed_ms = ms_since(start);
  report.timing.total_ms = report.timing.wellformed_ms;
  return report;
}

VerifyReport verify_selection(const AnalyzedProgram& ap,
                              const Selection& selection,
                              const RewriteResult& rewrite,
                              const VerifyOptions& options) {
  const auto start_total = Clock::now();

  // Phase 1: the rewritten binary must be a well-formed module.
  VerifyReport report =
      verify_module(rewrite.program, &selection.table, options);

  // Config-level bookkeeping sanity.
  report.stats.configs = selection.table.size();
  report.stats.apps = static_cast<int>(selection.apps.size());
  for (int c = 0; c < selection.table.size(); ++c) {
    const std::size_t cs = static_cast<std::size_t>(c);
    if (cs < selection.lengths.size() &&
        selection.lengths[cs] != selection.table.at(
                                     static_cast<ConfId>(c)).length()) {
      emit(report, Severity::kError, "ext.length",
           "conf " + std::to_string(c),
           "recorded length " + std::to_string(selection.lengths[cs]) +
               " != configuration length " +
               std::to_string(selection.table.at(static_cast<ConfId>(c))
                                  .length()));
    }
  }

  // Phase 2: per-application legality against the original program.
  const auto start_legality = Clock::now();
  std::vector<Recomputed> recomputed;
  recomputed.reserve(selection.apps.size());
  std::set<std::int32_t> covered;
  std::vector<int> max_luts(static_cast<std::size_t>(selection.table.size()),
                            0);
  std::vector<char> conf_has_app(
      static_cast<std::size_t>(selection.table.size()), 0);
  for (std::size_t i = 0; i < selection.apps.size(); ++i) {
    const Application& app = selection.apps[i];
    for (const std::int32_t p : app.positions) {
      if (!covered.insert(p).second) {
        emit(report, Severity::kError, "rw.positions", app_loc(app.conf, i),
             pos_loc(p) + " is covered by more than one application");
      }
    }
    recomputed.push_back(recompute_app(ap, app, i, options, report));
    const Recomputed& rc = recomputed.back();

    if (app.conf >= static_cast<ConfId>(selection.table.size())) {
      emit(report, Severity::kError, "rw.landing", app_loc(app.conf, i),
           "Conf " + std::to_string(app.conf) + " not in the table");
      continue;
    }
    conf_has_app[app.conf] = 1;

    // The landing instruction in the rewritten binary must be the EXT this
    // application describes.
    if (rc.landing >= 0 &&
        rc.landing < static_cast<std::int32_t>(rewrite.index_map.size())) {
      const std::int32_t ni =
          rewrite.index_map[static_cast<std::size_t>(rc.landing)];
      const Instruction* ext =
          ni >= 0 && ni < rewrite.program.size()
              ? &rewrite.program.text[static_cast<std::size_t>(ni)]
              : nullptr;
      // Operand bindings beyond rs/rt/rd ride in the imm field; the packed
      // encoding must match the claim exactly (imm == 0 for the classic
      // 2-in/1-out shape).
      std::int32_t want_imm = 0;
      try {
        const std::vector<Reg> extra_in(
            app.inputs.begin() + std::min(app.num_inputs, 2),
            app.inputs.begin() +
                std::clamp(app.num_inputs, 0, kMaxExtInputs));
        want_imm = pack_ext_extras(extra_in, app.extra_outputs);
      } catch (const std::exception&) {
        want_imm = -1;  // unencodable claim: fails the comparison below
      }
      if (ext == nullptr || ext->op != Opcode::kExt ||
          ext->conf != app.conf || ext->rd != app.output ||
          ext->rs != (app.num_inputs > 0 ? app.inputs[0] : kRegZero) ||
          ext->rt != (app.num_inputs > 1 ? app.inputs[1] : kRegZero) ||
          ext->imm != want_imm) {
        emit(report, Severity::kError, "rw.landing", app_loc(app.conf, i),
             "rewritten instruction at new index " + std::to_string(ni) +
                 " does not encode this application's EXT");
      }
    }

    if (rc.usable) {
      const LutEstimate est =
          estimate_luts(selection.table.at(app.conf), rc.lut_widths());
      if (!est.fits(options.lut_budget)) {
        emit(report, Severity::kError, "ext.lut-budget", app_loc(app.conf, i),
             "recomputed estimate " + std::to_string(est.luts) +
                 " LUTs exceeds the " + std::to_string(options.lut_budget) +
                 "-LUT budget");
      }
      max_luts[app.conf] = std::max(max_luts[app.conf], est.luts);
    }
  }
  for (int c = 0; c < selection.table.size(); ++c) {
    const std::size_t cs = static_cast<std::size_t>(c);
    if (!conf_has_app[cs] || cs >= selection.lut_costs.size()) continue;
    if (selection.lut_costs[cs] > options.lut_budget) {
      emit(report, Severity::kError, "ext.lut-budget",
           "conf " + std::to_string(c),
           "recorded cost " + std::to_string(selection.lut_costs[cs]) +
               " LUTs exceeds the " + std::to_string(options.lut_budget) +
               "-LUT budget");
    }
    if (selection.lut_costs[cs] != max_luts[cs]) {
      emit(report, Severity::kError, "ext.lut-cost",
           "conf " + std::to_string(c),
           "recorded cost " + std::to_string(selection.lut_costs[cs]) +
               " LUTs != recomputed maximum " + std::to_string(max_luts[cs]));
    }
  }
  report.timing.legality_ms = ms_since(start_legality);

  // Phase 3: semantic equivalence per application.
  const auto start_equiv = Clock::now();
  for (std::size_t i = 0; i < selection.apps.size(); ++i) {
    const Application& app = selection.apps[i];
    const Recomputed& rc = recomputed[i];
    if (!rc.usable ||
        app.conf >= static_cast<ConfId>(selection.table.size())) {
      continue;
    }
    const ExtInstDef& interned = selection.table.at(app.conf);
    // Structural proof: the micro-program recomputed from the original text
    // is identical (same signature) to the configuration the PFU executes,
    // so both compute the same function over the whole input space.
    const bool structural = rc.def.signature() == interned.signature();
    const EquivOutcome eq =
        check_equivalence(ap, app, rc, interned, options);
    report.stats.equiv_evals += eq.evals;
    if (eq.mismatch) {
      std::string ins;
      for (std::size_t e = 0; e < rc.externals.size(); ++e) {
        ins += (e ? ", " : "") + std::to_string(eq.in[e]);
      }
      emit(report, Severity::kError, "sem.equiv", app_loc(app.conf, i),
           "EXT computes a different function: inputs (" + ins +
               ") give " + std::to_string(eq.got) + " at output " +
               std::to_string(eq.output) + ", sequence gives " +
               std::to_string(eq.expected));
      continue;
    }
    if (structural) {
      ++report.stats.equiv_structural;
    } else if (eq.method == EquivOutcome::Method::kExhaustive) {
      ++report.stats.equiv_exhaustive;
    } else {
      ++report.stats.equiv_sampled;
      emit(report, Severity::kWarning, "sem.unproven", app_loc(app.conf, i),
           "no structural proof and the operand domain is too large to "
           "enumerate; only " +
               std::to_string(eq.evals) + " sampled evaluations agree");
    }
  }
  report.timing.equiv_ms = ms_since(start_equiv);

  // Phase 4: bitwidth-soundness audit.
  const auto start_width = Clock::now();
  std::set<std::string> seen_audit;
  for (std::size_t i = 0; i < selection.apps.size(); ++i) {
    if (!recomputed[i].usable) continue;
    audit_widths(ap, selection.apps[i], i, recomputed[i], options, report,
                 seen_audit);
  }
  report.timing.width_ms = ms_since(start_width);

  // Phase 5: translation validation (`equiv.*`, analysis/equiv.hpp) — the
  // rewritten binary against the baseline, independent of the per-app
  // legality recomputation above.
  const auto start_translation = Clock::now();
  check_translation(ap, selection, rewrite, options, report);
  report.timing.translation_ms = ms_since(start_translation);

  report.timing.total_ms = ms_since(start_total);
  return report;
}

}  // namespace t1000
