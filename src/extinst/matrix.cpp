#include "extinst/matrix.hpp"

#include <algorithm>
#include <map>

#include "hwcost/lut_model.hpp"

namespace t1000 {

RegionMatrix build_region_matrix(const Program& program,
                                 const Profile& profile,
                                 const std::vector<SeqSite>& sites,
                                 std::vector<int> site_indices, int loop,
                                 int min_length, int lut_budget,
                                 int max_inputs, int max_outputs) {
  RegionMatrix rm;
  rm.loop = loop;
  rm.site_indices = std::move(site_indices);
  rm.windows.resize(rm.site_indices.size());

  std::map<std::string, int> index_of;  // signature -> candidate index
  auto candidate_index = [&](const ExtInstDef& def) {
    const auto it = index_of.find(def.signature());
    if (it != index_of.end()) return it->second;
    const int idx = rm.k();
    index_of.emplace(def.signature(), idx);
    rm.candidates.push_back({def, 0});
    return idx;
  };

  // Enumerate all valid windows of every site; intern distinct sequences.
  for (std::size_t si = 0; si < rm.site_indices.size(); ++si) {
    const SeqSite& site = sites[static_cast<std::size_t>(rm.site_indices[si])];
    const int len = site.length();
    for (int a = 0; a < len; ++a) {
      for (int b = a + min_length - 1; b < len; ++b) {
        const auto view = window_view(program, site, a, b, max_inputs,
                                      max_outputs);
        if (!view ||
            !window_valid(program, site, a, b, max_inputs, max_outputs)) {
          continue;
        }
        if (!estimate_luts(view->def, window_input_widths(profile, site, a, b))
                 .fits(lut_budget)) {
          continue;
        }
        rm.windows[si].push_back({a, b, candidate_index(view->def)});
      }
    }
  }

  // Matrix counts: window of candidate i inside a site whose full sequence
  // is candidate j.
  rm.counts.assign(static_cast<std::size_t>(rm.k()),
                   std::vector<int>(static_cast<std::size_t>(rm.k()), 0));
  for (std::size_t si = 0; si < rm.site_indices.size(); ++si) {
    const SeqSite& site = sites[static_cast<std::size_t>(rm.site_indices[si])];
    // The full window defines the site's maximal identity.
    int full_candidate = -1;
    for (const SiteWindow& w : rm.windows[si]) {
      if (w.a == 0 && w.b == site.length() - 1) {
        full_candidate = w.candidate;
        break;
      }
    }
    if (full_candidate < 0) continue;  // full window invalid (rare)
    for (const SiteWindow& w : rm.windows[si]) {
      rm.counts[static_cast<std::size_t>(w.candidate)]
               [static_cast<std::size_t>(full_candidate)] += 1;
    }
  }

  // Solo gains: tile every site with only candidate c allowed.
  for (int c = 0; c < rm.k(); ++c) {
    std::vector<bool> allowed(static_cast<std::size_t>(rm.k()), false);
    allowed[static_cast<std::size_t>(c)] = true;
    std::uint64_t total = 0;
    for (std::size_t si = 0; si < rm.site_indices.size(); ++si) {
      std::uint64_t g = 0;
      best_tiling(sites[static_cast<std::size_t>(rm.site_indices[si])],
                  rm.windows[si], rm.candidates, allowed, &g);
      total += g;
    }
    rm.candidates[static_cast<std::size_t>(c)].solo_gain = total;
  }
  return rm;
}

std::vector<int> best_tiling(const SeqSite& site,
                             const std::vector<SiteWindow>& windows,
                             const std::vector<RegionCandidate>& candidates,
                             const std::vector<bool>& allowed,
                             std::uint64_t* gain) {
  const int len = site.length();
  // dp[i]: best gain covering members [0, i); choice[i]: window index used
  // ending exactly at i-1, or -1.
  std::vector<std::uint64_t> dp(static_cast<std::size_t>(len) + 1, 0);
  std::vector<int> choice(static_cast<std::size_t>(len) + 1, -1);
  for (int i = 1; i <= len; ++i) {
    dp[static_cast<std::size_t>(i)] = dp[static_cast<std::size_t>(i - 1)];
    for (std::size_t wi = 0; wi < windows.size(); ++wi) {
      const SiteWindow& w = windows[wi];
      if (w.b != i - 1 || !allowed[static_cast<std::size_t>(w.candidate)]) {
        continue;
      }
      const std::uint64_t save =
          static_cast<std::uint64_t>(
              candidates[static_cast<std::size_t>(w.candidate)].def.base_cycles() - 1) *
          site.exec_count;
      const std::uint64_t total = dp[static_cast<std::size_t>(w.a)] + save;
      if (total > dp[static_cast<std::size_t>(i)]) {
        dp[static_cast<std::size_t>(i)] = total;
        choice[static_cast<std::size_t>(i)] = static_cast<int>(wi);
      }
    }
  }
  if (gain != nullptr) *gain = dp[static_cast<std::size_t>(len)];

  std::vector<int> chosen;
  for (int i = len; i > 0;) {
    const int wi = choice[static_cast<std::size_t>(i)];
    if (wi < 0) {
      --i;
    } else {
      chosen.push_back(wi);
      i = windows[static_cast<std::size_t>(wi)].a;
    }
  }
  std::reverse(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace t1000
