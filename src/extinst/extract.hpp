// Maximal candidate-sequence extraction (paper Section 4).
//
// Within each basic block, grows maximal dependence chains of candidate
// instructions. An instruction is a candidate when:
//   * its opcode is PFU-eligible (narrow ALU/logic/shift-immediate ops),
//   * the profile saw it execute with operand and result bit widths at or
//     below the policy threshold (default 18 bits, as in the paper),
//   * it produces a register result.
// A chain extends i -> j when j is the *only* reader of i's value, the
// value dies inside the block (single-output constraint), j's remaining
// operands are defined before the chain started (or outside the block),
// and the chain keeps to the policy's external-input cap and the maximum
// fusable length. With max_outputs > 1 the single-output constraint
// relaxes: a chain may also extend through a member whose value escapes
// the block, as long as the escaping value is preserved as an extra EXT
// output (the member is marked `live` in the site).
#pragma once

#include <vector>

#include "asmkit/program.hpp"
#include "cfg/cfg.hpp"
#include "cfg/liveness.hpp"
#include "extinst/chain.hpp"
#include "sim/profiler.hpp"

namespace t1000 {

struct ExtractPolicy {
  int max_width = 18;   // operand/result bit-width ceiling for candidates
  int min_length = 2;   // shortest sequence worth a PFU
  int max_length = kMaxUops;
  bool require_executed = true;  // skip never-executed instructions
  // Candidate shape (paper Section 4 defaults; widening explores the
  // fig. 7-style trade against PFU operand ports / result buses). Clamped
  // to the ISA ceiling kMaxExtInputs/kMaxExtOutputs.
  int max_inputs = 2;   // distinct external register inputs per chain
  int max_outputs = 1;  // register outputs (primary + live interior members)
};

// All maximal candidate sites in `program`, ordered by first position.
std::vector<SeqSite> extract_sites(const Program& program, const Cfg& cfg,
                                   const Liveness& liveness,
                                   const Profile& profile,
                                   const ExtractPolicy& policy = {});

}  // namespace t1000
