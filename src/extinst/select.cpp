#include "extinst/select.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "hwcost/lut_model.hpp"

namespace t1000 {
namespace {

void add_application(Selection* sel, const WindowView& view,
                     std::array<int, 2> input_widths) {
  const ConfId conf = sel->table.intern(view.def);
  const int luts = estimate_luts(view.def, input_widths).luts;
  if (static_cast<int>(sel->lengths.size()) < sel->table.size()) {
    sel->lengths.push_back(view.def.length());  // a new configuration
    sel->lut_costs.push_back(luts);
  } else {
    // The same configuration may serve wider operands elsewhere; report the
    // widest implementation it must support.
    sel->lut_costs[conf] = std::max(sel->lut_costs[conf], luts);
  }
  Application app;
  app.positions = view.positions;
  app.conf = conf;
  app.output = view.output;
  app.inputs = view.inputs;
  app.num_inputs = view.num_inputs;
  app.extra_outputs = view.extra_outputs;
  sel->apps.push_back(std::move(app));
}

// Covers `site` with consecutive maximal windows that each fit the LUT
// budget; most sites emit their full chain as a single window.
void emit_site(Selection* sel, const Program& program, const Profile& profile,
               const SeqSite& site, int lut_budget,
               const ExtractPolicy& shape) {
  const int len = site.length();
  int a = 0;
  while (a + shape.min_length - 1 < len) {
    int chosen_b = -1;
    for (int b = len - 1; b >= a + shape.min_length - 1; --b) {
      const auto view =
          window_view(program, site, a, b, shape.max_inputs, shape.max_outputs);
      if (!view || !window_valid(program, site, a, b, shape.max_inputs,
                                 shape.max_outputs)) {
        continue;
      }
      if (!estimate_luts(view->def, window_input_widths(profile, site, a, b))
               .fits(lut_budget)) {
        continue;
      }
      chosen_b = b;
      break;
    }
    if (chosen_b < 0) {
      ++a;
      continue;
    }
    add_application(sel,
                    *window_view(program, site, a, chosen_b, shape.max_inputs,
                                 shape.max_outputs),
                    window_input_widths(profile, site, a, chosen_b));
    a = chosen_b + 1;
  }
}

}  // namespace

AnalyzedProgram analyze_program(const Program& program,
                                std::uint64_t max_steps,
                                const ExtractPolicy& policy) {
  AnalyzedProgram ap;
  ap.program = &program;
  ap.extract = policy;
  ap.cfg = Cfg::build(program);
  ap.liveness = compute_liveness(program, ap.cfg);
  ap.ucode = std::make_shared<const UopProgram>(
      UopProgram::build(program, /*ext_table=*/nullptr));
  ap.profile = profile_program(*ap.ucode, max_steps);
  ap.sites = extract_sites(program, ap.cfg, ap.liveness, ap.profile, policy);
  return ap;
}

Selection select_greedy(const AnalyzedProgram& ap, int lut_budget) {
  Selection sel;
  // Greedy fuses every window down to length 2 regardless of the extract
  // policy's min_length (which gates which *sites* exist, not how greedily
  // a too-wide site is split).
  ExtractPolicy shape = ap.extract;
  shape.min_length = 2;
  for (const SeqSite& site : ap.sites) {
    emit_site(&sel, *ap.program, ap.profile, site, lut_budget, shape);
  }
  return sel;
}

bool exceeds_time_threshold(std::uint64_t seq_cycles,
                            std::uint64_t total_cycles, double threshold) {
  if (total_cycles == 0) return false;
  // Strictly greater-than: the paper keeps sequences "responsible for more
  // than 0.5% of the total application time" (§5), so a sequence landing
  // exactly on the threshold is rejected.
  return static_cast<double>(seq_cycles) /
             static_cast<double>(total_cycles) >
         threshold;
}

Selection select_selective(const AnalyzedProgram& ap,
                           const SelectPolicy& policy) {
  Selection sel;
  const Program& program = *ap.program;
  // Windows are re-derived under the shape the sites were extracted with
  // (ap.extract is authoritative for these sites); the SelectPolicy keeps
  // its say over the shortest window worth a configuration.
  ExtractPolicy shape = ap.extract;
  shape.min_length = policy.extract.min_length;

  // Step 1: rank maximal sequences by their share of application time and
  // keep those above the threshold (paper: "responsible for more than 0.5%
  // of the total application time").
  std::map<std::string, std::uint64_t> cycles_by_sig;
  std::vector<WindowView> full_views;
  full_views.reserve(ap.sites.size());
  for (const SeqSite& site : ap.sites) {
    full_views.push_back(
        full_view(program, site, shape.max_inputs, shape.max_outputs));
    cycles_by_sig[full_views.back().def.signature()] +=
        static_cast<std::uint64_t>(full_views.back().def.base_cycles()) *
        site.exec_count;
  }
  std::set<std::string> hot;
  for (const auto& [sig, cycles] : cycles_by_sig) {
    if (exceeds_time_threshold(cycles, ap.profile.total_base_cycles,
                               policy.time_threshold)) {
      hot.insert(sig);
    }
  }

  std::vector<int> hot_sites;
  for (std::size_t i = 0; i < ap.sites.size(); ++i) {
    if (hot.count(full_views[i].def.signature()) != 0) {
      hot_sites.push_back(static_cast<int>(i));
    }
  }

  // Step 2: if the distinct hot sequences already fit in the PFUs, take
  // them all (the flowchart's early exit).
  const bool unlimited = policy.num_pfus == kUnlimitedPfus;
  if (unlimited || static_cast<int>(hot.size()) <= policy.num_pfus) {
    for (const int i : hot_sites) {
      emit_site(&sel, program, ap.profile, ap.sites[static_cast<std::size_t>(i)],
                policy.lut_budget, shape);
    }
    return sel;
  }

  // Step 3: consider loop bodies one at a time; within each region select
  // at most num_pfus distinct sequences using the subsequence matrix.
  std::map<int, std::vector<int>> regions;  // loop id -> hot site indices
  for (const int i : hot_sites) {
    regions[ap.sites[static_cast<std::size_t>(i)].loop].push_back(i);
  }

  for (auto& [loop, site_indices] : regions) {
    // How many distinct maximal sequences live here?
    std::set<std::string> distinct;
    for (const int i : site_indices) {
      distinct.insert(full_views[static_cast<std::size_t>(i)].def.signature());
    }
    if (static_cast<int>(distinct.size()) <= policy.num_pfus) {
      for (const int i : site_indices) {
        emit_site(&sel, program, ap.profile, ap.sites[static_cast<std::size_t>(i)],
                  policy.lut_budget, shape);
      }
      continue;
    }

    // Matrix step: enumerate windows, greedily pick <= num_pfus candidates
    // by marginal tiled gain.
    RegionMatrix rm =
        build_region_matrix(program, ap.profile, ap.sites, site_indices, loop,
                            shape.min_length, policy.lut_budget,
                            shape.max_inputs, shape.max_outputs);
    if (!policy.use_subsequence_matrix) {
      // Ablation: only maximal (full-site) windows may be chosen.
      for (std::size_t si = 0; si < rm.site_indices.size(); ++si) {
        const int len =
            ap.sites[static_cast<std::size_t>(rm.site_indices[si])].length();
        std::vector<SiteWindow> full;
        for (const SiteWindow& w : rm.windows[si]) {
          if (w.a == 0 && w.b == len - 1) full.push_back(w);
        }
        rm.windows[si] = std::move(full);
      }
    }
    std::vector<bool> selected(static_cast<std::size_t>(rm.k()), false);
    auto total_gain = [&](const std::vector<bool>& allowed) {
      std::uint64_t sum = 0;
      for (std::size_t si = 0; si < rm.site_indices.size(); ++si) {
        std::uint64_t g = 0;
        best_tiling(ap.sites[static_cast<std::size_t>(rm.site_indices[si])],
                    rm.windows[si], rm.candidates, allowed, &g);
        sum += g;
      }
      return sum;
    };
    std::uint64_t current = 0;
    for (int round = 0; round < policy.num_pfus; ++round) {
      int best = -1;
      std::uint64_t best_gain = current;
      for (int c = 0; c < rm.k(); ++c) {
        if (selected[static_cast<std::size_t>(c)]) continue;
        std::vector<bool> trial = selected;
        trial[static_cast<std::size_t>(c)] = true;
        const std::uint64_t g = total_gain(trial);
        if (g > best_gain) {
          best_gain = g;
          best = c;
        }
      }
      if (best < 0) break;  // no candidate adds gain
      selected[static_cast<std::size_t>(best)] = true;
      current = best_gain;
    }

    // Apply the chosen candidates: optimal tiling of each site.
    for (std::size_t si = 0; si < rm.site_indices.size(); ++si) {
      const SeqSite& site =
          ap.sites[static_cast<std::size_t>(rm.site_indices[si])];
      const std::vector<int> chosen = best_tiling(
          site, rm.windows[si], rm.candidates, selected, nullptr);
      for (const int wi : chosen) {
        const SiteWindow& w = rm.windows[si][static_cast<std::size_t>(wi)];
        const auto view = window_view(program, site, w.a, w.b,
                                      shape.max_inputs, shape.max_outputs);
        add_application(&sel, *view,
                        window_input_widths(ap.profile, site, w.a, w.b));
      }
    }
  }
  return sel;
}

}  // namespace t1000
