// The per-loop subsequence matrix of Section 5.1 (Figures 3-4).
//
// For the candidate sequences of one loop (or non-loop region), builds the
// k x k matrix whose [I,J] entry counts appearances of distinct sequence I
// inside occurrences of maximal sequence J across the loop. The diagonal
// [I,I] counts I's maximal appearances. The selective algorithm uses the
// matrix to decide when one short common subsequence serves several longer
// maximal sequences without spending extra PFU configurations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "extinst/chain.hpp"

namespace t1000 {

// One distinct candidate sequence within a region (identified by its
// canonical micro-program signature).
struct RegionCandidate {
  ExtInstDef def;
  // Total cycles saved per full program run if this candidate alone were
  // applied everywhere it fits in the region (greedy tiling over sites).
  std::uint64_t solo_gain = 0;
};

// A valid window of a site, annotated with the distinct-candidate index it
// corresponds to.
struct SiteWindow {
  int a = 0;
  int b = 0;
  int candidate = -1;  // index into RegionMatrix::candidates
};

struct RegionMatrix {
  int loop = -1;
  std::vector<int> site_indices;            // into the caller's site vector
  std::vector<RegionCandidate> candidates;  // distinct sequences, stable order
  // counts[i][j]: appearances of candidate i inside maximal occurrences of
  // candidate j (diagonal = maximal appearances of i). Static counts, as in
  // the paper's Figure 4.
  std::vector<std::vector<int>> counts;
  // Per site (parallel to site_indices): all valid windows.
  std::vector<std::vector<SiteWindow>> windows;

  int k() const { return static_cast<int>(candidates.size()); }
};

// Builds the matrix for the sites `site_indices` (all in one region) of
// `sites`. `min_length` bounds the shortest window considered; windows whose
// LUT estimate exceeds `lut_budget` are not valid candidates (they would not
// fit a PFU). `max_inputs`/`max_outputs` give the candidate shape the sites
// were extracted under.
RegionMatrix build_region_matrix(const Program& program,
                                 const Profile& profile,
                                 const std::vector<SeqSite>& sites,
                                 std::vector<int> site_indices, int loop,
                                 int min_length, int lut_budget,
                                 int max_inputs = 2, int max_outputs = 1);

// Optimal disjoint tiling of one site by the allowed candidate set:
// maximizes saved cycles = sum over chosen windows of
// (window base cycles - 1) * site execution count. Returns chosen windows
// (by index into `windows`); `gain` receives the total.
std::vector<int> best_tiling(const SeqSite& site,
                             const std::vector<SiteWindow>& windows,
                             const std::vector<RegionCandidate>& candidates,
                             const std::vector<bool>& allowed,
                             std::uint64_t* gain);

}  // namespace t1000
