// Candidate-sequence sites and window extraction.
//
// A *site* is one concrete occurrence of a maximal candidate chain: a list
// of instruction positions inside one basic block forming a dependence
// chain of narrow ALU operations with a bounded number of external register
// inputs and register outputs. The paper's Section 4 constraints are the
// default shape (2-in/1-out); ExtractPolicy::max_inputs/max_outputs widen
// it up to the ISA ceiling (kMaxExtInputs/kMaxExtOutputs). A member whose
// value stays architecturally visible past the chain (it escapes the block)
// is marked `live` and becomes an extra EXT output.
//
// A *window* [a..b] is a contiguous run of a site's members. Windows are
// what the selective algorithm trades off: implementing a short common
// subsequence can beat implementing several distinct maximal sequences
// (paper Section 5.1, Figures 3-4). `window_view` re-derives the window's
// micro-program, inputs, and output, and `window_valid` performs the
// rewrite-safety checks.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "asmkit/program.hpp"
#include "isa/extdef.hpp"
#include "sim/profiler.hpp"

namespace t1000 {

// Provenance of one register source of a chain member.
struct SrcRef {
  enum class Kind : std::uint8_t {
    kNone,      // operand slot unused (immediates, LUI)
    kExternal,  // value defined before the chain entered
    kMember,    // value produced by an earlier chain member
  };
  Kind kind = Kind::kNone;
  Reg reg = 0;      // architectural register carrying the value
  int member = -1;  // producing member index (kMember only)
};

struct SeqSite {
  int block = -1;
  int loop = -1;  // innermost loop id, -1 when not in a loop
  std::vector<std::int32_t> positions;  // ascending instruction indices
  std::vector<std::array<SrcRef, 2>> srcs;  // per member, parallel to positions
  // Parallel to positions: true when the member's value escapes the chain
  // (read after the block or kept live past it) and so must surface as an
  // extra EXT output when the member is interior to a window. Always false
  // under the default 1-out shape.
  std::vector<bool> live;
  std::uint64_t exec_count = 0;  // dynamic executions of this occurrence

  int length() const { return static_cast<int>(positions.size()); }
};

// A window's materialized form: what the EXT instruction will compute.
struct WindowView {
  ExtInstDef def;
  std::array<Reg, kMaxExtInputs> inputs{};  // register inputs, slot order
  int num_inputs = 0;
  Reg output = 0;  // primary output (last member's destination)
  // Destinations of live interior members, in member order; parallel to
  // def.out_slots()[1..].
  std::vector<Reg> extra_outputs;
  std::vector<std::int32_t> positions;  // the member positions covered
};

// Builds the window [a..b] (member indices, inclusive) of `site`.
// Returns nullopt when the window needs more than `max_inputs` register
// inputs or more than `max_outputs` register outputs (live interior
// members each claim one beyond the primary).
std::optional<WindowView> window_view(const Program& program,
                                      const SeqSite& site, int a, int b,
                                      int max_inputs = 2, int max_outputs = 1);

// Rewrite-safety check: every input register of the window must still hold
// the same value at the window's last position (where the EXT lands), i.e.
// no instruction outside the window, between the window's defining point
// and its last member, may write any input register. Live interior members
// additionally require that no outside instruction reads or writes their
// destination between the member's position and the landing point (their
// write is deferred to the EXT).
bool window_valid(const Program& program, const SeqSite& site, int a, int b,
                  int max_inputs = 2, int max_outputs = 1);

// Convenience: full-chain view (a=0, b=length-1). Never nullopt for a
// well-formed site extracted under the same shape.
WindowView full_view(const Program& program, const SeqSite& site,
                     int max_inputs = 2, int max_outputs = 1);

// Profiled bit widths of the window's register inputs (used by the LUT cost
// model). Approximated as the widest source operand any window member saw,
// applied to both input ports.
std::array<int, 2> window_input_widths(const Profile& profile,
                                       const SeqSite& site, int a, int b);

}  // namespace t1000
