// Candidate-sequence sites and window extraction.
//
// A *site* is one concrete occurrence of a maximal candidate chain: a list
// of instruction positions inside one basic block forming a dependence
// chain of narrow ALU operations with at most two external register inputs
// and one register output (paper Section 4's constraints).
//
// A *window* [a..b] is a contiguous run of a site's members. Windows are
// what the selective algorithm trades off: implementing a short common
// subsequence can beat implementing several distinct maximal sequences
// (paper Section 5.1, Figures 3-4). `window_view` re-derives the window's
// micro-program, inputs, and output, and `window_valid` performs the
// rewrite-safety checks.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "asmkit/program.hpp"
#include "isa/extdef.hpp"
#include "sim/profiler.hpp"

namespace t1000 {

// Provenance of one register source of a chain member.
struct SrcRef {
  enum class Kind : std::uint8_t {
    kNone,      // operand slot unused (immediates, LUI)
    kExternal,  // value defined before the chain entered
    kMember,    // value produced by an earlier chain member
  };
  Kind kind = Kind::kNone;
  Reg reg = 0;      // architectural register carrying the value
  int member = -1;  // producing member index (kMember only)
};

struct SeqSite {
  int block = -1;
  int loop = -1;  // innermost loop id, -1 when not in a loop
  std::vector<std::int32_t> positions;  // ascending instruction indices
  std::vector<std::array<SrcRef, 2>> srcs;  // per member, parallel to positions
  std::uint64_t exec_count = 0;  // dynamic executions of this occurrence

  int length() const { return static_cast<int>(positions.size()); }
};

// A window's materialized form: what the EXT instruction will compute.
struct WindowView {
  ExtInstDef def;
  std::array<Reg, 2> inputs{};  // register inputs, slot order
  int num_inputs = 0;
  Reg output = 0;
  std::vector<std::int32_t> positions;  // the member positions covered
};

// Builds the window [a..b] (member indices, inclusive) of `site`.
// Returns nullopt when the window needs more than two register inputs.
std::optional<WindowView> window_view(const Program& program,
                                      const SeqSite& site, int a, int b);

// Rewrite-safety check: every input register of the window must still hold
// the same value at the window's last position (where the EXT lands), i.e.
// no instruction outside the window, between the window's defining point
// and its last member, may write any input register.
bool window_valid(const Program& program, const SeqSite& site, int a, int b);

// Convenience: full-chain view (a=0, b=length-1). Never nullopt for a
// well-formed site.
WindowView full_view(const Program& program, const SeqSite& site);

// Profiled bit widths of the window's register inputs (used by the LUT cost
// model). Approximated as the widest source operand any window member saw,
// applied to both input ports.
std::array<int, 2> window_input_widths(const Profile& profile,
                                       const SeqSite& site, int a, int b);

}  // namespace t1000
