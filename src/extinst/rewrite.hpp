// Program rewriting: replaces selected candidate windows with EXT
// instructions (paper Section 2.1: "an extended instruction is created at
// compile time by converting an appropriate instruction sequence in the
// compiled code into a single PFU opcode").
//
// Each application lands the EXT at the window's *last* position and deletes
// the other member positions; `window_valid` guarantees the inputs still
// hold their values there. All branch/jump targets and text symbols are
// remapped through the deletion map. Programs whose data segment embeds
// absolute text addresses (jump tables) are not rewritable; none of the
// bundled workloads do that.
#pragma once

#include <vector>

#include "asmkit/program.hpp"
#include "isa/extdef.hpp"

namespace t1000 {

// One EXT application: the covered instruction positions (ascending, within
// one block) and the interned configuration that replaces them.
struct Application {
  std::vector<std::int32_t> positions;
  ConfId conf = kInvalidConf;
  Reg output = 0;  // primary output, carried in rd
  std::array<Reg, kMaxExtInputs> inputs{};
  int num_inputs = 0;
  // Extra output registers beyond `output` (live interior members of the
  // fused window); packed into the EXT's imm field by the rewriter.
  std::vector<Reg> extra_outputs;
};

struct RewriteResult {
  Program program;
  // old instruction index -> new index (deleted members map to the index
  // their EXT landed at or the next surviving instruction).
  std::vector<std::int32_t> index_map;
};

// Applies `apps` (must cover disjoint position sets) to `program`.
RewriteResult rewrite_program(const Program& program,
                              const std::vector<Application>& apps);

}  // namespace t1000
