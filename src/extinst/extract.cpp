#include "extinst/extract.hpp"

#include <algorithm>
#include <array>
#include <optional>

namespace t1000 {
namespace {

// Per-block dataflow facts for chain growing.
struct BlockFacts {
  // For instruction position p (block-relative index r), src_def[r][s] is
  // the in-block position defining source s, or -1 when the value enters
  // the block live.
  std::vector<std::array<std::int32_t, 2>> src_def;
  // readers[r] = block positions reading the value defined at r.
  std::vector<std::vector<std::int32_t>> readers;
  // escapes[r] = true when the value defined at position r may be observed
  // after the block (not redefined before the end and live-out).
  std::vector<bool> escapes;
};

BlockFacts analyze_block(const Program& program, const BasicBlock& block,
                         const RegSet& live_out) {
  const int len = block.length();
  BlockFacts facts;
  facts.src_def.assign(static_cast<std::size_t>(len), {-1, -1});
  facts.readers.assign(static_cast<std::size_t>(len), {});
  facts.escapes.assign(static_cast<std::size_t>(len), false);

  std::array<std::int32_t, kNumRegs> last_def;
  last_def.fill(-1);
  for (std::int32_t p = block.first; p <= block.last; ++p) {
    const std::size_t r = static_cast<std::size_t>(p - block.first);
    const Instruction& ins = program.text[static_cast<std::size_t>(p)];
    const SrcRegs srcs = src_regs(ins);
    for (int s = 0; s < srcs.count; ++s) {
      const std::int32_t def = last_def[srcs.reg[s]];
      facts.src_def[r][static_cast<std::size_t>(s)] = def;
      if (def >= 0) {
        facts.readers[static_cast<std::size_t>(def - block.first)].push_back(p);
      }
    }
    // Calls may read any register: every outstanding def gains the call as
    // a reader so no chain fuses away a value the callee consumes.
    if (ins.op == Opcode::kJal || ins.op == Opcode::kJalr) {
      for (int reg = 0; reg < kNumRegs; ++reg) {
        const std::int32_t def = last_def[static_cast<std::size_t>(reg)];
        if (def >= 0) {
          facts.readers[static_cast<std::size_t>(def - block.first)].push_back(p);
        }
      }
    }
    if (const auto d = dst_reg(ins)) last_def[*d] = p;
  }
  // A def escapes when it is still its register's last def at block end and
  // the register is live-out.
  for (std::int32_t p = block.first; p <= block.last; ++p) {
    const Instruction& ins = program.text[static_cast<std::size_t>(p)];
    if (const auto d = dst_reg(ins)) {
      if (last_def[*d] == p && live_out.test(*d)) {
        facts.escapes[static_cast<std::size_t>(p - block.first)] = true;
      }
    }
  }
  return facts;
}

class ChainGrower {
 public:
  ChainGrower(const Program& program, const BasicBlock& block,
              const BlockFacts& facts, const Profile& profile,
              const ExtractPolicy& policy)
      : program_(program),
        block_(block),
        facts_(facts),
        profile_(profile),
        policy_(policy),
        used_(static_cast<std::size_t>(block.length()), false) {}

  std::vector<SeqSite> grow_all(int loop_id) {
    std::vector<SeqSite> sites;
    for (std::int32_t p = block_.first; p <= block_.last; ++p) {
      if (used_[rel(p)] || !is_candidate(p)) continue;
      SeqSite site = grow_from(p);
      site.block = block_.id;
      site.loop = loop_id;
      site.exec_count = profile_.at(p).count;
      if (site.length() >= policy_.min_length &&
          window_valid(program_, site, 0, site.length() - 1, max_inputs(),
                       max_outputs())) {
        for (const std::int32_t q : site.positions) used_[rel(q)] = true;
        sites.push_back(std::move(site));
      }
    }
    return sites;
  }

 private:
  std::size_t rel(std::int32_t p) const {
    return static_cast<std::size_t>(p - block_.first);
  }

  // Policy shape clamped to the ISA ceiling.
  int max_inputs() const {
    return std::clamp(policy_.max_inputs, 1, kMaxExtInputs);
  }
  int max_outputs() const {
    return std::clamp(policy_.max_outputs, 1, kMaxExtOutputs);
  }

  bool is_candidate(std::int32_t p) const {
    const Instruction& ins = program_.text[static_cast<std::size_t>(p)];
    if (!is_ext_candidate(ins.op)) return false;
    if (!dst_reg(ins)) return false;
    const InstProfile& ip = profile_.at(p);
    if (policy_.require_executed && ip.count == 0) return false;
    if (ip.count > 0 && (ip.max_src_width > policy_.max_width ||
                         ip.max_result_width > policy_.max_width)) {
      return false;
    }
    return true;
  }

  // External inputs are (register, defining position) pairs; two different
  // defs of the same register cannot both feed one PFU operand port.
  struct ExternalInput {
    Reg reg;
    std::int32_t def_pos;  // -1 = enters the block live
    friend bool operator==(const ExternalInput&, const ExternalInput&) = default;
  };

  SeqSite grow_from(std::int32_t start) {
    SeqSite site;
    std::vector<ExternalInput> externals;

    auto add_member = [&](std::int32_t p) -> bool {
      const Instruction& ins = program_.text[static_cast<std::size_t>(p)];
      const SrcRegs srcs = src_regs(ins);
      std::array<SrcRef, 2> refs{};
      std::vector<ExternalInput> new_externals = externals;
      for (int s = 0; s < srcs.count; ++s) {
        const std::int32_t def = facts_.src_def[rel(p)][static_cast<std::size_t>(s)];
        // Is the def a chain member?
        int member = -1;
        for (int m = 0; m < site.length(); ++m) {
          if (site.positions[static_cast<std::size_t>(m)] == def) {
            member = m;
            break;
          }
        }
        if (member >= 0) {
          // Only links to the immediately preceding member keep the fused
          // dataflow a simple chain (double-links, e.g. x+x, are fine).
          if (member != site.length() - 1) return false;
          refs[static_cast<std::size_t>(s)] = {SrcRef::Kind::kMember,
                                               srcs.reg[s], member};
          continue;
        }
        // External: its def must predate the chain so the fused EXT reads
        // the same value.
        if (def >= 0 && !site.positions.empty() && def >= site.positions[0]) {
          return false;
        }
        const ExternalInput ext{srcs.reg[s], def};
        if (std::find(new_externals.begin(), new_externals.end(), ext) ==
            new_externals.end()) {
          // Same register with a different def is a conflict, not a new port.
          for (const ExternalInput& e : new_externals) {
            if (e.reg == ext.reg) return false;
          }
          new_externals.push_back(ext);
        }
        refs[static_cast<std::size_t>(s)] = {SrcRef::Kind::kExternal,
                                             srcs.reg[s], -1};
      }
      if (static_cast<int>(new_externals.size()) > max_inputs()) return false;
      externals = std::move(new_externals);
      site.positions.push_back(p);
      site.srcs.push_back(refs);
      site.live.push_back(false);
      return true;
    };

    if (!add_member(start)) return site;

    // Extra-output budget: live interior members each claim one output port
    // beyond the primary.
    int live_budget = max_outputs() - 1;
    while (site.length() < policy_.max_length) {
      const std::int32_t tail = site.positions.back();
      // The tail's value must have exactly one distinct reader, inside the
      // block. An escaping value normally ends the chain; with output ports
      // to spare the chain grows through it and the EXT preserves the value
      // as an extra output.
      const bool tail_escapes = facts_.escapes[rel(tail)];
      if (tail_escapes && live_budget == 0) break;
      const std::vector<std::int32_t>& readers = facts_.readers[rel(tail)];
      if (readers.empty()) break;
      const std::int32_t next = readers.front();
      bool single_reader = true;
      for (const std::int32_t q : readers) {
        if (q != next) {
          single_reader = false;
          break;
        }
      }
      if (!single_reader) break;
      if (used_[rel(next)] || !is_candidate(next)) break;

      if (!add_member(next)) break;
      if (tail_escapes) {
        site.live[static_cast<std::size_t>(site.length() - 2)] = true;
        --live_budget;
      }
    }
    return site;
  }

  const Program& program_;
  const BasicBlock& block_;
  const BlockFacts& facts_;
  const Profile& profile_;
  const ExtractPolicy& policy_;
  std::vector<bool> used_;
};

}  // namespace

std::vector<SeqSite> extract_sites(const Program& program, const Cfg& cfg,
                                   const Liveness& liveness,
                                   const Profile& profile,
                                   const ExtractPolicy& policy) {
  std::vector<SeqSite> sites;
  for (const BasicBlock& block : cfg.blocks()) {
    const BlockFacts facts = analyze_block(
        program, block, liveness.live_out[static_cast<std::size_t>(block.id)]);
    ChainGrower grower(program, block, facts, profile, policy);
    std::vector<SeqSite> block_sites =
        grower.grow_all(cfg.innermost_loop_of(block.id));
    sites.insert(sites.end(), std::make_move_iterator(block_sites.begin()),
                 std::make_move_iterator(block_sites.end()));
  }
  return sites;
}

}  // namespace t1000
