#include "extinst/chain.hpp"

#include <cassert>

namespace t1000 {
namespace {

// Source slot count an ALU instruction consumes (by kind).
int reg_src_count(const Instruction& ins) { return src_regs(ins).count; }

}  // namespace

std::optional<WindowView> window_view(const Program& program,
                                      const SeqSite& site, int a, int b,
                                      int max_inputs, int max_outputs) {
  assert(0 <= a && a <= b && b < site.length());
  assert(max_inputs >= 1 && max_inputs <= kMaxExtInputs);
  assert(max_outputs >= 1 && max_outputs <= kMaxExtOutputs);
  WindowView view;
  view.positions.assign(site.positions.begin() + a,
                        site.positions.begin() + b + 1);

  // Slot assignment is two-phase: the input base depends on the final input
  // count (slots 0..n-1 hold inputs, members start at max(2, n)), which is
  // only known after the scan. During the scan member-produced operands are
  // recorded as kMemberBias + local index and materialized afterwards.
  constexpr std::int8_t kMemberBias = 64;
  auto input_slot = [&view, max_inputs](Reg r) -> std::optional<std::int8_t> {
    for (int i = 0; i < view.num_inputs; ++i) {
      if (view.inputs[static_cast<std::size_t>(i)] == r) {
        return static_cast<std::int8_t>(i);
      }
    }
    if (view.num_inputs == max_inputs) return std::nullopt;  // out of ports
    view.inputs[static_cast<std::size_t>(view.num_inputs)] = r;
    return static_cast<std::int8_t>(view.num_inputs++);
  };

  std::vector<MicroOp> uops;
  for (int m = a; m <= b; ++m) {
    const Instruction& ins =
        program.text[static_cast<std::size_t>(site.positions[static_cast<std::size_t>(m)])];
    MicroOp u;
    u.op = ins.op;
    u.imm = ins.imm;
    u.dst = static_cast<std::int8_t>(kMemberBias + (m - a));
    const int nsrc = reg_src_count(ins);
    std::int8_t slots[2] = {-1, -1};
    for (int s = 0; s < nsrc; ++s) {
      const SrcRef& ref = site.srcs[static_cast<std::size_t>(m)][static_cast<std::size_t>(s)];
      if (ref.kind == SrcRef::Kind::kMember && ref.member >= a) {
        slots[s] = static_cast<std::int8_t>(kMemberBias + (ref.member - a));
      } else {
        // External value: either a true chain external or the value flowing
        // in from the member just before the window (the "link").
        const Reg carrier =
            ref.kind == SrcRef::Kind::kMember
                ? *dst_reg(program.text[static_cast<std::size_t>(
                      site.positions[static_cast<std::size_t>(ref.member)])])
                : ref.reg;
        const auto slot = input_slot(carrier);
        if (!slot) return std::nullopt;
        slots[s] = *slot;
      }
    }
    u.a = slots[0];
    u.b = slots[1];
    uops.push_back(u);
  }

  // Materialize member slots now that the input count is final.
  const auto base =
      static_cast<std::int8_t>(view.num_inputs > 2 ? view.num_inputs : 2);
  auto resolve = [base](std::int8_t v) {
    return v >= kMemberBias ? static_cast<std::int8_t>(base + (v - kMemberBias))
                            : v;
  };
  for (MicroOp& u : uops) {
    u.dst = resolve(u.dst);
    u.a = resolve(u.a);
    u.b = resolve(u.b);
  }

  // Output slots: the last member's value first (the primary output in rd),
  // then every live interior member (deferred architectural writes).
  std::vector<std::int8_t> out_slots{
      static_cast<std::int8_t>(base + (b - a))};
  for (int m = a; m < b; ++m) {
    if (site.live.empty() || !site.live[static_cast<std::size_t>(m)]) continue;
    if (static_cast<int>(out_slots.size()) == max_outputs) return std::nullopt;
    out_slots.push_back(static_cast<std::int8_t>(base + (m - a)));
    view.extra_outputs.push_back(*dst_reg(program.text[static_cast<std::size_t>(
        site.positions[static_cast<std::size_t>(m)])]));
  }

  view.def = ExtInstDef(view.num_inputs, std::move(uops), std::move(out_slots));
  view.output = *dst_reg(program.text[static_cast<std::size_t>(
      site.positions[static_cast<std::size_t>(b)])]);
  return view;
}

bool window_valid(const Program& program, const SeqSite& site, int a, int b,
                  int max_inputs, int max_outputs) {
  const auto view = window_view(program, site, a, b, max_inputs, max_outputs);
  if (!view) return false;

  // Danger zone: positions strictly after the link-producing member (or the
  // window head, when a == 0) up to and including the EXT landing position.
  const std::int32_t lo = a == 0
                              ? site.positions[0]
                              : site.positions[static_cast<std::size_t>(a - 1)];
  const std::int32_t hi = site.positions[static_cast<std::size_t>(b)];
  for (std::int32_t q = lo + 1; q <= hi; ++q) {
    bool is_window_member = false;
    for (int m = a; m <= b; ++m) {
      if (site.positions[static_cast<std::size_t>(m)] == q) {
        is_window_member = true;
        break;
      }
    }
    if (is_window_member) continue;
    const Instruction& ins = program.text[static_cast<std::size_t>(q)];
    for (int i = 0; i < view->num_inputs; ++i) {
      if (writes_reg(ins, view->inputs[static_cast<std::size_t>(i)])) {
        return false;
      }
    }
  }
  // A live interior member's write is deferred from its own position to the
  // landing point; nothing outside the window may observe or clobber its
  // destination in between.
  for (int m = a; m < b; ++m) {
    if (site.live.empty() || !site.live[static_cast<std::size_t>(m)]) continue;
    const Reg r = *dst_reg(program.text[static_cast<std::size_t>(
        site.positions[static_cast<std::size_t>(m)])]);
    for (std::int32_t q = site.positions[static_cast<std::size_t>(m)] + 1;
         q <= hi; ++q) {
      bool is_window_member = false;
      for (int mm = a; mm <= b; ++mm) {
        if (site.positions[static_cast<std::size_t>(mm)] == q) {
          is_window_member = true;
          break;
        }
      }
      if (is_window_member) continue;
      const Instruction& ins = program.text[static_cast<std::size_t>(q)];
      if (reads_reg(ins, r) || writes_reg(ins, r)) return false;
    }
  }
  return true;
}

WindowView full_view(const Program& program, const SeqSite& site,
                     int max_inputs, int max_outputs) {
  auto view =
      window_view(program, site, 0, site.length() - 1, max_inputs, max_outputs);
  assert(view.has_value());
  return *view;
}

std::array<int, 2> window_input_widths(const Profile& profile,
                                       const SeqSite& site, int a, int b) {
  int w = 1;
  for (int m = a; m <= b; ++m) {
    const InstProfile& ip =
        profile.at(site.positions[static_cast<std::size_t>(m)]);
    w = std::max(w, ip.max_src_width);
  }
  return {w, w};
}

}  // namespace t1000
