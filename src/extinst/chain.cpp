#include "extinst/chain.hpp"

#include <cassert>

namespace t1000 {
namespace {

// Source slot count an ALU instruction consumes (by kind).
int reg_src_count(const Instruction& ins) { return src_regs(ins).count; }

}  // namespace

std::optional<WindowView> window_view(const Program& program,
                                      const SeqSite& site, int a, int b) {
  assert(0 <= a && a <= b && b < site.length());
  WindowView view;
  view.positions.assign(site.positions.begin() + a,
                        site.positions.begin() + b + 1);

  // Slot assignment: inputs first (in first-use order), then one slot per
  // member. `member_slot[m]` is the slot of member m's value (window
  // members only).
  std::vector<std::int8_t> member_slot(static_cast<std::size_t>(site.length()), -1);
  auto input_slot = [&view](Reg r) -> std::optional<std::int8_t> {
    for (int i = 0; i < view.num_inputs; ++i) {
      if (view.inputs[static_cast<std::size_t>(i)] == r) {
        return static_cast<std::int8_t>(i);
      }
    }
    if (view.num_inputs == 2) return std::nullopt;  // out of input ports
    view.inputs[static_cast<std::size_t>(view.num_inputs)] = r;
    return static_cast<std::int8_t>(view.num_inputs++);
  };

  std::vector<MicroOp> uops;
  std::int8_t next_slot = 2;
  for (int m = a; m <= b; ++m) {
    const Instruction& ins =
        program.text[static_cast<std::size_t>(site.positions[static_cast<std::size_t>(m)])];
    MicroOp u;
    u.op = ins.op;
    u.imm = ins.imm;
    u.dst = next_slot;
    const int nsrc = reg_src_count(ins);
    std::int8_t slots[2] = {-1, -1};
    for (int s = 0; s < nsrc; ++s) {
      const SrcRef& ref = site.srcs[static_cast<std::size_t>(m)][static_cast<std::size_t>(s)];
      if (ref.kind == SrcRef::Kind::kMember && ref.member >= a) {
        assert(member_slot[static_cast<std::size_t>(ref.member)] >= 0);
        slots[s] = member_slot[static_cast<std::size_t>(ref.member)];
      } else {
        // External value: either a true chain external or the value flowing
        // in from the member just before the window (the "link").
        const Reg carrier =
            ref.kind == SrcRef::Kind::kMember
                ? *dst_reg(program.text[static_cast<std::size_t>(
                      site.positions[static_cast<std::size_t>(ref.member)])])
                : ref.reg;
        const auto slot = input_slot(carrier);
        if (!slot) return std::nullopt;
        slots[s] = *slot;
      }
    }
    u.a = slots[0];
    u.b = slots[1];
    member_slot[static_cast<std::size_t>(m)] = next_slot;
    ++next_slot;
    uops.push_back(u);
  }

  view.def = ExtInstDef(view.num_inputs, std::move(uops));
  view.output = *dst_reg(program.text[static_cast<std::size_t>(
      site.positions[static_cast<std::size_t>(b)])]);
  return view;
}

bool window_valid(const Program& program, const SeqSite& site, int a, int b) {
  const auto view = window_view(program, site, a, b);
  if (!view) return false;

  // Danger zone: positions strictly after the link-producing member (or the
  // window head, when a == 0) up to and including the EXT landing position.
  const std::int32_t lo = a == 0
                              ? site.positions[0]
                              : site.positions[static_cast<std::size_t>(a - 1)];
  const std::int32_t hi = site.positions[static_cast<std::size_t>(b)];
  for (std::int32_t q = lo + 1; q <= hi; ++q) {
    bool is_window_member = false;
    for (int m = a; m <= b; ++m) {
      if (site.positions[static_cast<std::size_t>(m)] == q) {
        is_window_member = true;
        break;
      }
    }
    if (is_window_member) continue;
    const Instruction& ins = program.text[static_cast<std::size_t>(q)];
    for (int i = 0; i < view->num_inputs; ++i) {
      if (writes_reg(ins, view->inputs[static_cast<std::size_t>(i)])) {
        return false;
      }
    }
  }
  return true;
}

WindowView full_view(const Program& program, const SeqSite& site) {
  auto view = window_view(program, site, 0, site.length() - 1);
  assert(view.has_value());
  return *view;
}

std::array<int, 2> window_input_widths(const Profile& profile,
                                       const SeqSite& site, int a, int b) {
  int w = 1;
  for (int m = a; m <= b; ++m) {
    const InstProfile& ip =
        profile.at(site.positions[static_cast<std::size_t>(m)]);
    w = std::max(w, ip.max_src_width);
  }
  return {w, w};
}

}  // namespace t1000
