// Extended-instruction selection algorithms.
//
//  * select_greedy (paper Section 4): every maximal candidate sequence
//    becomes an extended instruction. Best case with unlimited PFUs and
//    free reconfiguration; thrashes badly with few real PFUs.
//  * select_selective (paper Section 5): keeps only sequences responsible
//    for more than `time_threshold` of total application time, then caps the
//    number of distinct configurations per loop at the PFU count, using the
//    subsequence matrix to prefer a short common subsequence over several
//    distinct maximal sequences when that wins.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "asmkit/program.hpp"
#include "cfg/cfg.hpp"
#include "cfg/liveness.hpp"
#include "extinst/extract.hpp"
#include "extinst/matrix.hpp"
#include "extinst/rewrite.hpp"
#include "isa/extdef.hpp"
#include "sim/profiler.hpp"
#include "sim/ucode.hpp"

namespace t1000 {

inline constexpr int kUnlimitedPfus = -1;

struct SelectPolicy {
  // PFUs available; kUnlimitedPfus disables the per-loop cap.
  int num_pfus = kUnlimitedPfus;
  // Keep sequences responsible for *more than* this fraction of
  // application time (the paper's 0.5%, §5). Strictly greater: a sequence
  // at exactly the threshold is rejected. Only select_selective uses it.
  double time_threshold = 0.005;
  // PFU capacity: windows whose LUT estimate exceeds this are never chosen.
  int lut_budget = 150;
  // Ablation switch: when false, the per-loop step considers only maximal
  // sequences (no common-subsequence windows from the k x k matrix).
  bool use_subsequence_matrix = true;
  ExtractPolicy extract;
};

struct Selection {
  ExtInstTable table;              // distinct configurations (Conf ids)
  std::vector<Application> apps;   // concrete rewrite sites
  // Distinct sequence lengths (micro-ops) per configuration, parallel to
  // table.defs(); exposed for the paper's Section 4.1 statistics.
  std::vector<int> lengths;
  // Estimated LUT cost per configuration (widest profiled inputs seen over
  // its applications), parallel to table.defs(); feeds Figure 7.
  std::vector<int> lut_costs;

  int num_configs() const { return table.size(); }
};

// All inputs precomputed once per program.
struct AnalyzedProgram {
  const Program* program = nullptr;
  Cfg cfg;
  Liveness liveness;
  Profile profile;
  // The policy the sites were extracted under; selectors re-derive windows
  // with the same candidate shape (max_inputs/max_outputs).
  ExtractPolicy extract;
  std::vector<SeqSite> sites;  // maximal candidate sites
  // Pre-decoded uop stream for `program` (no EXT table — the baseline
  // program). Built once here, then shared by every consumer that
  // functionally executes the unrewritten program (profiling above, the
  // harness's baseline trace). Borrowing AnalyzedProgram's lifetime rules:
  // valid only while `program` outlives it.
  std::shared_ptr<const UopProgram> ucode;
};

// Profiles (functionally executes) `program` and extracts maximal sites.
AnalyzedProgram analyze_program(const Program& program,
                                std::uint64_t max_steps,
                                const ExtractPolicy& policy = {});

Selection select_greedy(const AnalyzedProgram& ap, int lut_budget = 150);

// The selective pass's hot-sequence predicate (paper §5): true when the
// sequence's cycles are responsible for more than `threshold` of the total
// application time. Strictly greater-than — a sequence sitting exactly at
// the threshold does not qualify (pinned by select_test.cpp).
bool exceeds_time_threshold(std::uint64_t seq_cycles,
                            std::uint64_t total_cycles, double threshold);

Selection select_selective(const AnalyzedProgram& ap,
                           const SelectPolicy& policy);

}  // namespace t1000
