#include "extinst/rewrite.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace t1000 {

RewriteResult rewrite_program(const Program& program,
                              const std::vector<Application>& apps) {
  const int n = program.size();
  // action[p]: 0 = keep, -1 = delete, >0 = replace with EXT of apps[action-1].
  std::vector<std::int32_t> action(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const Application& app = apps[i];
    if (app.positions.empty()) {
      throw std::invalid_argument("rewrite: empty application");
    }
    // Debug-build contract with the verifier (analysis/verifier.cpp rules
    // rw.positions / ext.inputs): applications arrive sorted and sane.
    assert(std::is_sorted(app.positions.begin(), app.positions.end()));
    assert(app.conf != kInvalidConf);
    assert(app.num_inputs >= 0 && app.num_inputs <= kMaxExtInputs);
    assert(static_cast<int>(app.extra_outputs.size()) < kMaxExtOutputs);
    for (const std::int32_t p : app.positions) {
      if (p < 0 || p >= n || action[static_cast<std::size_t>(p)] != 0) {
        throw std::invalid_argument("rewrite: overlapping or bad position");
      }
      action[static_cast<std::size_t>(p)] = -1;
    }
    action[static_cast<std::size_t>(app.positions.back())] =
        static_cast<std::int32_t>(i) + 1;
  }

  RewriteResult out;
  out.index_map.assign(static_cast<std::size_t>(n) + 1, -1);
  Program& q = out.program;
  q.data = program.data;
  q.data_symbols = program.data_symbols;

  // First pass: place instructions, record new index of every kept position.
  std::vector<std::int32_t> kept_new(static_cast<std::size_t>(n), -1);
  for (std::int32_t p = 0; p < n; ++p) {
    const std::int32_t act = action[static_cast<std::size_t>(p)];
    if (act == -1) continue;
    kept_new[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(q.text.size());
    if (act == 0) {
      q.text.push_back(program.text[static_cast<std::size_t>(p)]);
    } else {
      const Application& app = apps[static_cast<std::size_t>(act - 1)];
      // Inputs beyond rs/rt and outputs beyond rd ride in the imm field;
      // empty extras keep the classic encoding (imm == 0) bit-for-bit.
      const std::vector<Reg> extra_in(
          app.inputs.begin() + std::min(app.num_inputs, 2),
          app.inputs.begin() + app.num_inputs);
      q.text.push_back(make_ext(app.output,
                                app.num_inputs > 0 ? app.inputs[0] : kRegZero,
                                app.num_inputs > 1 ? app.inputs[1] : kRegZero,
                                app.conf, extra_in, app.extra_outputs));
    }
  }
  // Deleted positions forward to the next kept instruction (a branch into a
  // partially fused block resumes at the first surviving instruction).
  std::int32_t next_kept = static_cast<std::int32_t>(q.text.size());
  for (std::int32_t p = n; p >= 0; --p) {
    if (p < n && kept_new[static_cast<std::size_t>(p)] >= 0) {
      next_kept = kept_new[static_cast<std::size_t>(p)];
    }
    out.index_map[static_cast<std::size_t>(p)] = next_kept;
  }

  // Second pass: remap control-flow targets and symbols.
  for (Instruction& ins : q.text) {
    if (is_branch(ins.op) || op_kind(ins.op) == OpKind::kJump) {
      ins.imm = out.index_map[static_cast<std::size_t>(ins.imm)];
      // Remapped targets stay inside [0, size]; size is the clean-halt pc
      // (verifier rule wf.branch-target).
      assert(ins.imm >= 0 &&
             ins.imm <= static_cast<std::int32_t>(q.text.size()));
    }
  }
  for (const auto& [name, index] : program.text_symbols) {
    q.text_symbols[name] = out.index_map[static_cast<std::size_t>(index)];
  }
  assert(std::is_sorted(out.index_map.begin(), out.index_map.end()));
  return out;
}

}  // namespace t1000
