// The bank of programmable functional units.
//
// Section 2.2: each extended instruction carries a Conf field that is
// compared against the ID tag saved in each PFU at decode. A match behaves
// like a cache hit and the instruction dispatches normally; otherwise the
// configuration bits are loaded into the least-recently-used PFU before the
// instruction can issue, costing the reconfiguration latency.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hpp"
#include "uarch/config.hpp"

namespace t1000 {

struct PfuStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t reconfigurations = 0;
};

// Per-unit observation hooks for the bank's decode-stage traffic. The
// default listener is null and costs one predictable branch per EXT decode;
// listeners must not influence timing — PfuStats (and thus SimStats) are
// identical with and without one attached.
class PfuListener {
 public:
  virtual ~PfuListener() = default;
  // Tag match on `unit`; the instruction may issue at `ready` (== `now`
  // unless the unit's configuration load is still in flight).
  virtual void on_pfu_hit(int unit, ConfId conf, std::uint64_t now,
                          std::uint64_t ready) = 0;
  // Reconfiguration of `unit` to `conf` spanning [start, ready); `evicted`
  // is the configuration overwritten (kInvalidConf for a cold unit).
  virtual void on_pfu_reconfig(int unit, ConfId conf, ConfId evicted,
                               std::uint64_t start, std::uint64_t ready) = 0;
};

class PfuBank {
 public:
  explicit PfuBank(const PfuConfig& config);

  // Decode-stage tag check at cycle `now`. Returns the cycle from which the
  // extended instruction may issue: `now` on a hit, or the completion time
  // of the reconfiguration started for it.
  std::uint64_t request(ConfId conf, std::uint64_t now);

  void set_listener(PfuListener* listener) { listener_ = listener; }

  const PfuStats& stats() const { return stats_; }
  bool unlimited() const { return config_.count == PfuConfig::kUnlimited; }
  int size() const;

 private:
  struct Unit {
    ConfId conf = kInvalidConf;
    std::uint64_t ready_at = 0;  // reconfiguration completion
    std::uint64_t last_use = 0;  // LRU clock
  };

  PfuConfig config_;
  PfuListener* listener_ = nullptr;
  std::vector<Unit> units_;
  std::unordered_map<ConfId, std::size_t> where_;  // conf -> unit index
  std::uint64_t tick_ = 0;
  PfuStats stats_;
};

}  // namespace t1000
