// Set-associative LRU cache and TLB models, plus the two-level hierarchy
// used by the fetch and memory stages.
#pragma once

#include <cstdint>
#include <vector>

#include "uarch/config.hpp"

namespace t1000 {

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;  // dirty lines evicted

  double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) / static_cast<double>(accesses);
  }
};

// One level of set-associative cache with true-LRU replacement.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  // Looks up `addr`; fills the line on a miss (write-allocate) and marks it
  // dirty on writes. Returns hit/miss; evicting a dirty line counts a
  // writeback (drained through a write buffer, so it adds no latency).
  bool access(std::uint32_t addr, bool is_write = false);

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Way {
    std::uint32_t tag = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
    bool dirty = false;
  };

  CacheConfig config_;
  std::vector<Way> ways_;  // sets * assoc, row-major by set
  std::uint32_t sets_ = 1;
  // Power-of-two geometry (the common case) resolves line/set/tag with
  // shifts and masks instead of three integer divisions per access;
  // line_shift_ < 0 falls back to the division path.
  int line_shift_ = -1;
  int set_shift_ = 0;
  std::uint32_t set_mask_ = 0;
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

// Fully-associative LRU TLB.
class Tlb {
 public:
  explicit Tlb(const TlbConfig& config);

  // Returns the translation penalty in cycles (0 on a hit).
  int access(std::uint32_t addr);

  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::uint32_t page = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  TlbConfig config_;
  std::vector<Entry> entries_;
  int page_shift_ = -1;        // power-of-two page size fast path
  std::uint32_t last_hit_ = 0;  // entry that satisfied the last access
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

// One L1 (+TLB) in front of a *shared* unified L2 (the paper simulates
// split L1s with a unified second level). The L2 and memory latency are
// owned by the caller so the I- and D-sides share them.
class MemHierarchy {
 public:
  MemHierarchy(const CacheConfig& l1, Cache* shared_l2, int mem_latency,
               const TlbConfig& tlb);

  // Full latency of an access to `addr`, including TLB, L1, L2 and memory
  // contributions as applicable.
  int access(std::uint32_t addr, bool is_write = false);

  const Cache& l1() const { return l1_; }
  const Tlb& tlb() const { return tlb_; }

 private:
  Cache l1_;
  Cache* l2_;  // shared, not owned
  Tlb tlb_;
  int mem_latency_;
};

}  // namespace t1000
