#include "uarch/cache.hpp"

#include <cassert>

namespace t1000 {

Cache::Cache(const CacheConfig& config) : config_(config) {
  assert(config_.num_sets() > 0 && "cache geometry must divide evenly");
  ways_.resize(static_cast<std::size_t>(config_.num_sets()) * config_.assoc);
}

bool Cache::access(std::uint32_t addr, bool is_write) {
  ++stats_.accesses;
  ++tick_;
  const std::uint32_t line = addr / config_.line_bytes;
  const std::uint32_t set = line % config_.num_sets();
  const std::uint32_t tag = line / config_.num_sets();
  Way* base = &ways_[static_cast<std::size_t>(set) * config_.assoc];
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.last_use = tick_;
      way.dirty = way.dirty || is_write;
      return true;
    }
  }
  ++stats_.misses;
  Way* victim = base;
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].last_use < victim->last_use) victim = &base[w];
  }
  if (victim->valid && victim->dirty) ++stats_.writebacks;
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = tick_;
  victim->dirty = is_write;
  return false;
}

Tlb::Tlb(const TlbConfig& config) : config_(config) {
  entries_.resize(config_.entries);
}

int Tlb::access(std::uint32_t addr) {
  ++stats_.accesses;
  ++tick_;
  const std::uint32_t page = addr / config_.page_bytes;
  Entry* victim = &entries_[0];
  for (Entry& e : entries_) {
    if (e.valid && e.page == page) {
      e.last_use = tick_;
      return 0;
    }
    if (!e.valid || (victim->valid && e.last_use < victim->last_use)) {
      victim = &e;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->page = page;
  victim->last_use = tick_;
  return config_.miss_latency;
}

MemHierarchy::MemHierarchy(const CacheConfig& l1, Cache* shared_l2,
                           int mem_latency, const TlbConfig& tlb)
    : l1_(l1), l2_(shared_l2), tlb_(tlb), mem_latency_(mem_latency) {
  assert(l2_ != nullptr);
}

int MemHierarchy::access(std::uint32_t addr, bool is_write) {
  int latency = tlb_.access(addr);
  latency += l1_.config().hit_latency;
  if (l1_.access(addr, is_write)) return latency;
  // Write-back/write-allocate: the L2 fill is a read even for store misses;
  // dirtiness propagates to L2 only when L1 evicts (write buffer, free).
  latency += l2_->config().hit_latency;
  if (l2_->access(addr)) return latency;
  return latency + mem_latency_;
}

}  // namespace t1000
