#include "uarch/cache.hpp"

#include <cassert>

namespace t1000 {

namespace {

// log2 of v when v is a power of two, -1 otherwise.
int pow2_shift(std::uint32_t v) {
  if (v == 0 || (v & (v - 1)) != 0) return -1;
  int s = 0;
  while ((v >> s) != 1) ++s;
  return s;
}

}  // namespace

Cache::Cache(const CacheConfig& config) : config_(config) {
  assert(config_.num_sets() > 0 && "cache geometry must divide evenly");
  sets_ = config_.num_sets();
  ways_.resize(static_cast<std::size_t>(sets_) * config_.assoc);
  line_shift_ = pow2_shift(config_.line_bytes);
  set_shift_ = pow2_shift(sets_);
  if (set_shift_ < 0) line_shift_ = -1;  // both must be pow2 for the fast path
  set_mask_ = sets_ - 1;
}

bool Cache::access(std::uint32_t addr, bool is_write) {
  ++stats_.accesses;
  ++tick_;
  std::uint32_t set;
  std::uint32_t tag;
  if (line_shift_ >= 0) {
    const std::uint32_t line = addr >> line_shift_;
    set = line & set_mask_;
    tag = line >> set_shift_;
  } else {
    const std::uint32_t line = addr / config_.line_bytes;
    set = line % sets_;
    tag = line / sets_;
  }
  Way* base = &ways_[static_cast<std::size_t>(set) * config_.assoc];
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.last_use = tick_;
      way.dirty = way.dirty || is_write;
      return true;
    }
  }
  ++stats_.misses;
  Way* victim = base;
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].last_use < victim->last_use) victim = &base[w];
  }
  if (victim->valid && victim->dirty) ++stats_.writebacks;
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = tick_;
  victim->dirty = is_write;
  return false;
}

Tlb::Tlb(const TlbConfig& config) : config_(config) {
  entries_.resize(config_.entries);
  page_shift_ = pow2_shift(config_.page_bytes);
}

int Tlb::access(std::uint32_t addr) {
  ++stats_.accesses;
  ++tick_;
  const std::uint32_t page = page_shift_ >= 0 ? addr >> page_shift_
                                              : addr / config_.page_bytes;
  // Repeated accesses overwhelmingly hit the same page; a hit only touches
  // the matching entry's last_use, so serving it from the remembered entry
  // is state-identical to the full scan below finding it.
  Entry& last = entries_[last_hit_];
  if (last.valid && last.page == page) {
    last.last_use = tick_;
    return 0;
  }
  Entry* victim = &entries_[0];
  for (Entry& e : entries_) {
    if (e.valid && e.page == page) {
      e.last_use = tick_;
      last_hit_ = static_cast<std::uint32_t>(&e - entries_.data());
      return 0;
    }
    if (!e.valid || (victim->valid && e.last_use < victim->last_use)) {
      victim = &e;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->page = page;
  victim->last_use = tick_;
  last_hit_ = static_cast<std::uint32_t>(victim - entries_.data());
  return config_.miss_latency;
}

MemHierarchy::MemHierarchy(const CacheConfig& l1, Cache* shared_l2,
                           int mem_latency, const TlbConfig& tlb)
    : l1_(l1), l2_(shared_l2), tlb_(tlb), mem_latency_(mem_latency) {
  assert(l2_ != nullptr);
}

int MemHierarchy::access(std::uint32_t addr, bool is_write) {
  int latency = tlb_.access(addr);
  latency += l1_.config().hit_latency;
  if (l1_.access(addr, is_write)) return latency;
  // Write-back/write-allocate: the L2 fill is a read even for store misses;
  // dirtiness propagates to L2 only when L1 evicts (write buffer, free).
  latency += l2_->config().hit_latency;
  if (l2_->access(addr)) return latency;
  return latency + mem_latency_;
}

}  // namespace t1000
