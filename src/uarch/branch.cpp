#include "uarch/branch.hpp"

namespace t1000 {

BranchPredictor::BranchPredictor(const BranchPredictorConfig& config)
    : config_(config),
      counters_(config.bimodal_entries, 1),  // weakly not-taken
      last_target_(config.target_entries, -1) {}

bool BranchPredictor::predict_and_update(const Instruction& ins,
                                         std::int32_t pc_index, bool taken,
                                         std::int32_t target_index) {
  if (config_.kind == BranchPredictorKind::kPerfect) return true;

  if (is_branch(ins.op)) {
    ++stats_.conditional;
    bool predicted_taken = false;
    if (config_.kind == BranchPredictorKind::kBimodal ||
        config_.kind == BranchPredictorKind::kGshare) {
      std::uint32_t index = static_cast<std::uint32_t>(pc_index);
      if (config_.kind == BranchPredictorKind::kGshare) index ^= history_;
      std::uint8_t& ctr = counters_[index & (config_.bimodal_entries - 1)];
      predicted_taken = ctr >= 2;
      if (taken && ctr < 3) ++ctr;
      if (!taken && ctr > 0) --ctr;
      history_ = (history_ << 1) | (taken ? 1u : 0u);
    }
    const bool correct = predicted_taken == taken;
    if (!correct) ++stats_.cond_mispredicts;
    return correct;
  }

  if (op_kind(ins.op) == OpKind::kJumpReg) {
    // Register-indirect jumps: predicted by the last observed target
    // (a one-entry-per-pc BTB). Perfect prediction never reaches here.
    ++stats_.indirect;
    std::int32_t& slot = last_target_[static_cast<std::uint32_t>(pc_index) &
                                      (config_.target_entries - 1)];
    const bool correct = slot == target_index;
    slot = target_index;
    if (!correct) ++stats_.indirect_mispredicts;
    return correct;
  }

  // Direct jumps (j/jal) have static targets: always predicted.
  return true;
}

}  // namespace t1000
