// Machine configuration for the T1000 timing model. Defaults follow the
// paper's Section 3 (a 4-issue out-of-order superscalar with RUU scheduling,
// realistic L1/L2 caches and TLBs, perfect branch prediction) with
// SimpleScalar-era cache parameters.
#pragma once

#include <cstdint>

#include "uarch/branch.hpp"

namespace t1000 {

struct CacheConfig {
  std::uint32_t size_bytes = 0;
  std::uint32_t line_bytes = 32;
  std::uint32_t assoc = 1;
  int hit_latency = 1;

  std::uint32_t num_sets() const {
    return size_bytes / (line_bytes * assoc);
  }
};

struct TlbConfig {
  std::uint32_t entries = 64;
  std::uint32_t page_bytes = 4096;
  int miss_latency = 30;
};

struct PfuConfig {
  // Number of programmable functional units; kUnlimited gives every
  // configuration its own unit.
  static constexpr int kUnlimited = -1;
  int count = 0;  // 0 = plain superscalar, no PFUs
  int reconfig_latency = 10;
  // The paper assumes every extended instruction evaluates in one cycle and
  // chooses sequences for which that holds; it notes the model "could
  // easily be altered to allow for varying execution times". Enabling this
  // derives each configuration's latency from its mapped logic depth
  // (one cycle per `levels_per_cycle` LUT levels).
  bool multi_cycle_ext = false;
  int levels_per_cycle = 3;
};

struct MachineConfig {
  int fetch_width = 4;
  int decode_width = 4;
  int issue_width = 4;
  int commit_width = 4;
  int ruu_size = 64;
  int fetch_queue_size = 16;

  int int_alus = 4;
  int int_mults = 1;
  int mem_ports = 2;
  // Outstanding long-latency memory accesses allowed in flight (MSHRs);
  // 0 = unlimited (the paper-era SimpleScalar default behaviour).
  int max_outstanding_misses = 0;

  CacheConfig il1{.size_bytes = 16 * 1024, .line_bytes = 32, .assoc = 1,
                  .hit_latency = 1};
  CacheConfig dl1{.size_bytes = 16 * 1024, .line_bytes = 32, .assoc = 4,
                  .hit_latency = 1};
  CacheConfig l2{.size_bytes = 256 * 1024, .line_bytes = 64, .assoc = 4,
                 .hit_latency = 6};
  int memory_latency = 18;

  TlbConfig itlb;
  TlbConfig dtlb;

  PfuConfig pfu;
  BranchPredictorConfig branch;  // perfect by default, as in the paper
};

}  // namespace t1000
