#include "uarch/timing.hpp"

#include <deque>
#include <utility>
#include <vector>

#include "hwcost/lut_model.hpp"
#include "sim/executor.hpp"
#include "sim/trace.hpp"

namespace t1000 {
namespace {

constexpr std::uint64_t kNoDep = ~0ull;

// Step source backed by a live functional executor (the direct path).
// Mirrors TraceCursor (sim/trace.hpp), the replay-backed source; the
// pipeline below is templated over the two so both paths run the exact
// same cycle-level code.
class ExecutorSource {
 public:
  ExecutorSource(const Program& program, const ExtInstTable* ext_table)
      : exec_(program, ext_table) {}

  bool halted() const { return exec_.halted(); }
  std::int32_t next_index() const { return exec_.pc(); }
  StepInfo step() { return exec_.step(); }

 private:
  Executor exec_;
};

struct RuuEntry {
  StepInfo info;
  std::uint64_t seq = 0;
  std::uint64_t deps[2] = {kNoDep, kNoDep};
  int num_deps = 0;
  FuClass fu = FuClass::kNone;
  bool issued = false;
  bool completed = false;
  bool long_miss = false;  // occupies an MSHR while in flight
  std::uint64_t dispatch_cycle = 0;
  std::uint64_t complete_cycle = 0;
  std::uint64_t pfu_ready = 0;  // EXT: earliest issue (reconfiguration)
};

struct FetchSlot {
  StepInfo info;
  std::uint64_t ready_cycle = 0;
  bool mispredicted = false;
};

template <class Source>
class Pipeline {
 public:
  Pipeline(Source source, const Program& program,
           const ExtInstTable* ext_table, const MachineConfig& config)
      : config_(config),
        source_(std::move(source)),
        program_(program),
        l2_(config.l2),
        imem_(config.il1, &l2_, config.memory_latency, config.itlb),
        dmem_(config.dl1, &l2_, config.memory_latency, config.dtlb),
        pfus_(config.pfu),
        bpred_(config.branch),
        ruu_(static_cast<std::size_t>(config.ruu_size)) {
    for (int r = 0; r < kNumRegs; ++r) last_writer_[r] = kNoDep;
    if (config_.pfu.multi_cycle_ext && ext_table != nullptr) {
      // Derive per-configuration latency from mapped logic depth, assuming
      // worst-case (policy-width) operands.
      ext_latency_.reserve(static_cast<std::size_t>(ext_table->size()));
      for (const ExtInstDef& def : ext_table->defs()) {
        const int levels = estimate_luts(def, {18, 18}).levels;
        ext_latency_.push_back(
            std::max(1, (levels + config_.pfu.levels_per_cycle - 1) /
                            config_.pfu.levels_per_cycle));
      }
    }
  }

  SimStats run(std::uint64_t max_cycles) {
    std::uint64_t now = 0;
    while (!drained()) {
      if (now > max_cycles) throw SimError("timing: cycle bound exceeded");
      commit(now);
      issue(now);
      resolve_mispredict(now);
      dispatch(now);
      fetch(now);
      ++now;
    }
    stats_.cycles = now;
    collect();
    return stats_;
  }

 private:
  bool drained() const {
    return source_.halted() && fetch_queue_.empty() && head_ == tail_;
  }

  RuuEntry& entry(std::uint64_t seq) {
    return ruu_[static_cast<std::size_t>(seq % ruu_.size())];
  }

  bool ruu_full() const {
    return tail_ - head_ >= static_cast<std::uint64_t>(config_.ruu_size);
  }

  // --- commit ---
  void commit(std::uint64_t now) {
    for (int n = 0; n < config_.commit_width && head_ != tail_; ++n) {
      RuuEntry& e = entry(head_);
      if (!e.completed || e.complete_cycle > now) break;
      ++stats_.committed;
      ++head_;
    }
  }

  // --- issue ---
  bool deps_ready(const RuuEntry& e, std::uint64_t now) {
    for (int i = 0; i < e.num_deps; ++i) {
      const std::uint64_t dep = e.deps[i];
      if (dep < head_) continue;  // producer already committed
      const RuuEntry& p = entry(dep);
      if (!p.completed || p.complete_cycle > now) return false;
    }
    return true;
  }

  // True when every older store that overlaps `e` has completed; loads may
  // bypass non-overlapping stores (oracle disambiguation).
  bool older_stores_done(const RuuEntry& e, std::uint64_t now) {
    for (std::uint64_t s = head_; s < e.seq; ++s) {
      const RuuEntry& p = entry(s);
      if (!is_store(p.info.ins.op)) continue;
      const std::uint32_t lo = std::max(p.info.mem_addr, e.info.mem_addr);
      const std::uint32_t hi =
          std::min(p.info.mem_addr + p.info.mem_size,
                   e.info.mem_addr + e.info.mem_size);
      if (lo >= hi) continue;  // disjoint
      if (!p.completed || p.complete_cycle > now) return false;
    }
    return true;
  }

  // Long-latency memory operations currently in flight (for the MSHR cap).
  int misses_in_flight(std::uint64_t now) {
    int n = 0;
    for (std::uint64_t s = head_; s != tail_; ++s) {
      const RuuEntry& e = entry(s);
      if (e.issued && e.long_miss && e.complete_cycle > now) ++n;
    }
    return n;
  }

  void issue(std::uint64_t now) {
    int issued = 0;
    int alus = 0;
    int mults = 0;
    int ports = 0;
    int mshrs_free = config_.max_outstanding_misses == 0
                         ? 1 << 30
                         : config_.max_outstanding_misses -
                               misses_in_flight(now);
    for (std::uint64_t s = head_; s != tail_ && issued < config_.issue_width;
         ++s) {
      RuuEntry& e = entry(s);
      if (e.issued || e.dispatch_cycle >= now) continue;
      if (!deps_ready(e, now)) continue;

      int latency = 1;
      switch (e.fu) {
        case FuClass::kIntAlu:
        case FuClass::kBranch:
          if (alus == config_.int_alus) continue;
          ++alus;
          break;
        case FuClass::kIntMul:
          if (mults == config_.int_mults) continue;
          ++mults;
          latency = base_latency(Opcode::kMul);
          break;
        case FuClass::kMemRead: {
          if (ports == config_.mem_ports) continue;
          if (mshrs_free <= 0) continue;  // conservative: no free miss slot
          if (!older_stores_done(e, now)) continue;
          ++ports;
          latency = dmem_.access(e.info.mem_addr, /*is_write=*/false);
          if (latency > config_.dl1.hit_latency) {
            e.long_miss = true;
            --mshrs_free;
          }
          break;
        }
        case FuClass::kMemWrite:
          if (ports == config_.mem_ports) continue;
          if (mshrs_free <= 0) continue;
          ++ports;
          latency = dmem_.access(e.info.mem_addr, /*is_write=*/true);
          if (latency > config_.dl1.hit_latency) {
            e.long_miss = true;
            --mshrs_free;
          }
          break;
        case FuClass::kPfu:
          if (e.pfu_ready > now) continue;
          if (!ext_latency_.empty()) {
            latency = ext_latency_[e.info.ins.conf];
          }
          break;
        case FuClass::kNone:
          break;
      }
      e.issued = true;
      e.completed = true;
      e.complete_cycle = now + static_cast<std::uint64_t>(latency);
      ++issued;
    }
  }

  // --- dispatch (decode/rename) ---
  void dispatch(std::uint64_t now) {
    for (int n = 0; n < config_.decode_width; ++n) {
      if (fetch_queue_.empty() || ruu_full()) return;
      const FetchSlot& slot = fetch_queue_.front();
      if (slot.ready_cycle > now) return;

      RuuEntry& e = entry(tail_);
      e = RuuEntry{};
      e.info = slot.info;
      e.seq = tail_;
      e.fu = fu_class(e.info.ins.op);
      e.dispatch_cycle = now;

      const SrcRegs srcs = src_regs(e.info.ins);
      for (int i = 0; i < srcs.count; ++i) {
        const std::uint64_t w = last_writer_[srcs.reg[i]];
        if (w != kNoDep && w >= head_) e.deps[e.num_deps++] = w;
      }
      if (const auto d = dst_reg(e.info.ins)) {
        last_writer_[*d] = tail_;
      }
      if (e.info.ins.op == Opcode::kExt) {
        e.pfu_ready = pfus_.request(e.info.ins.conf, now);
      }
      if (slot.mispredicted) pending_branch_seq_ = tail_;
      ++tail_;
      fetch_queue_.pop_front();
    }
  }

  // When a mispredicted branch resolves, schedule the front-end redirect.
  void resolve_mispredict(std::uint64_t now) {
    if (!blocked_on_branch_ || pending_branch_seq_ == kNoDep) return;
    // Fetch is frozen, so the RUU tail cannot advance and the entry is
    // never recycled before this check sees it complete.
    const RuuEntry& e = entry(pending_branch_seq_);
    if (!e.completed || e.complete_cycle > now) return;
    fetch_stall_until_ =
        std::max(fetch_stall_until_,
                 e.complete_cycle +
                     static_cast<std::uint64_t>(config_.branch.mispredict_penalty));
    blocked_on_branch_ = false;
    pending_branch_seq_ = kNoDep;
  }

  // --- fetch ---
  void fetch(std::uint64_t now) {
    if (blocked_on_branch_) return;  // awaiting a branch redirect
    if (now < fetch_stall_until_) return;
    for (int n = 0; n < config_.fetch_width; ++n) {
      if (source_.halted()) return;
      if (static_cast<int>(fetch_queue_.size()) >= config_.fetch_queue_size) {
        return;
      }
      const std::uint32_t pc = program_.pc_of(source_.next_index());
      const std::uint32_t line = pc / config_.il1.line_bytes;
      std::uint64_t ready = now + 1;
      if (line != current_fetch_line_) {
        const int lat = imem_.access(pc);
        current_fetch_line_ = line;
        current_line_ready_ = now + static_cast<std::uint64_t>(lat);
        if (lat > config_.il1.hit_latency) {
          // Miss: the front end stalls until the line arrives.
          fetch_stall_until_ = current_line_ready_;
        }
      }
      ready = std::max(ready, current_line_ready_);

      const StepInfo info = source_.step();
      if (info.index >= program_.size()) return;  // off-the-end halt
      bool correct = true;
      if (is_control(info.ins.op) && info.ins.op != Opcode::kHalt) {
        correct = bpred_.predict_and_update(info.ins, info.index,
                                            info.branch_taken,
                                            info.next_index);
      }
      fetch_queue_.push_back({info, ready, !correct});
      if (!correct) {
        // Fetch halts here until the branch resolves in the back end.
        blocked_on_branch_ = true;
        return;
      }
      if (info.branch_taken) return;  // no fetching past a taken branch
      if (fetch_stall_until_ > now) return;
    }
  }

  void collect() {
    stats_.il1 = imem_.l1().stats();
    stats_.dl1 = dmem_.l1().stats();
    stats_.l2 = l2_.stats();
    stats_.itlb = imem_.tlb().stats();
    stats_.dtlb = dmem_.tlb().stats();
    stats_.pfu = pfus_.stats();
    stats_.branch = bpred_.stats();
  }

  MachineConfig config_;
  Source source_;
  const Program& program_;
  Cache l2_;
  MemHierarchy imem_;
  MemHierarchy dmem_;
  PfuBank pfus_;
  BranchPredictor bpred_;

  std::deque<FetchSlot> fetch_queue_;
  std::vector<RuuEntry> ruu_;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
  std::uint64_t last_writer_[kNumRegs] = {};
  std::uint32_t current_fetch_line_ = ~0u;
  std::uint64_t current_line_ready_ = 0;
  std::uint64_t fetch_stall_until_ = 0;
  bool blocked_on_branch_ = false;
  std::uint64_t pending_branch_seq_ = kNoDep;
  std::vector<int> ext_latency_;  // per Conf id; empty = single-cycle

  SimStats stats_;
};

}  // namespace

SimStats simulate(const Program& program, const ExtInstTable* ext_table,
                  const MachineConfig& config, std::uint64_t max_cycles) {
  return Pipeline<ExecutorSource>(ExecutorSource(program, ext_table), program,
                                  ext_table, config)
      .run(max_cycles);
}

SimStats simulate_replay(const Program& program, const ExtInstTable* ext_table,
                         const CommittedTrace& trace,
                         const MachineConfig& config,
                         std::uint64_t max_cycles) {
  return Pipeline<TraceCursor>(TraceCursor(trace, program), program, ext_table,
                               config)
      .run(max_cycles);
}

}  // namespace t1000
