#include "uarch/timing.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness/json.hpp"
#include "hwcost/lut_model.hpp"
#include "isa/opcode.hpp"
#include "sim/executor.hpp"
#include "sim/trace.hpp"

namespace t1000 {

std::string_view stall_cause_name(StallCause cause) {
  switch (cause) {
    case StallCause::kFetchBranch: return "fetch_branch";
    case StallCause::kFetchMem: return "fetch_mem";
    case StallCause::kFrontend: return "frontend";
    case StallCause::kRuuFull: return "ruu_full";
    case StallCause::kMshrFull: return "mshr_full";
    case StallCause::kOperandWait: return "operand_wait";
    case StallCause::kExtReconfig: return "ext_reconfig";
    case StallCause::kExecMem: return "exec_mem";
    case StallCause::kExec: return "exec";
    case StallCause::kDrain: return "drain";
  }
  return "unknown";
}

void StallBreakdown::accumulate(const StallBreakdown& other) {
  cycles += other.cycles;
  commit_cycles += other.commit_cycles;
  for (int i = 0; i < kNumStallCauses; ++i) causes[i] += other.causes[i];
}

namespace {

constexpr std::uint64_t kNoDep = ~0ull;

// How many instructions one batched lane commits before the round-robin
// moves on. Large enough that a lane's simulated cache/RUU state stays hot
// in the host caches across the burst; small enough that lanes sweep the
// shared decoded trace in step. Striding by commits rather than cycles
// keeps the lanes aligned on the same decoded-trace window even when
// their configurations differ wildly in IPC, so the window stays resident
// while every lane reads it.
constexpr std::uint64_t kBatchStride = 16384;

// Smallest power of two >= v (v >= 1): ring-buffer capacities, so indexing
// is a mask instead of an integer division on the hot path.
std::size_t pow2_ceil(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Step source backed by a live functional executor (the direct path).
// Mirrors TraceCursor / DecodedCursor (sim/trace.hpp), the replay-backed
// sources; the pipeline below is templated over the three so every path
// runs the exact same cycle-level code, with decode_step() as the single
// decoder.
class ExecutorSource {
 public:
  ExecutorSource(const Program& program, const ExtInstTable* ext_table)
      : exec_(program, ext_table), program_(program) {}

  bool halted() const { return exec_.halted(); }
  std::uint32_t next_pc() const { return program_.pc_of(exec_.pc()); }
  DecodedStep step() { return decode_step(exec_.step(), program_); }

 private:
  Executor exec_;
  const Program& program_;
};

struct RuuEntry {
  DecodedStep step;
  std::uint64_t seq = 0;
  std::uint64_t deps[kMaxExtInputs] = {kNoDep, kNoDep, kNoDep, kNoDep};
  int num_deps = 0;
  bool issued = false;
  bool completed = false;
  bool long_miss = false;  // occupies an MSHR while in flight
  std::uint64_t dispatch_cycle = 0;
  std::uint64_t complete_cycle = 0;
  std::uint64_t pfu_ready = 0;  // EXT: earliest issue (reconfiguration)
  // Earliest cycle a failed issue attempt could possibly succeed (producer
  // completion latency, PFU reconfiguration, pipeline fill). 0 = unknown,
  // re-examine every cycle. Purely a scan-skipping memo: an entry with
  // wake > now would have failed try_issue without consuming any FU, so
  // skipping it leaves the issue order and FU allocation untouched.
  std::uint64_t wake = 0;
};

struct FetchSlot {
  DecodedStep step;
  std::uint64_t ready_cycle = 0;
  bool mispredicted = false;
};

// --- pipeline observers ---
//
// The pipeline is templated over an observer; every observation point is
// guarded by `if constexpr (Obs::kEnabled)`, so with the null observer the
// whole layer is compiled out and the unobserved pipeline is exactly the
// pre-observability machine (BM_TimingSim pins the cost; the differential
// tests pin byte-identical SimStats).

struct NullObserver {
  static constexpr bool kEnabled = false;
  explicit NullObserver(SimObservation*) {}
};

// Trace-group ids (the Chrome format's "pid"): one row group for the RUU
// slots, one for the PFU bank.
constexpr int kPipePid = 1;
constexpr int kPfuPid = 2;

class RecordingObserver final : public PfuListener {
 public:
  static constexpr bool kEnabled = true;

  explicit RecordingObserver(SimObservation* out) : out_(out) {}

  void attach(PfuBank* bank, int ruu_size) {
    bank->set_listener(this);
    slots_ = static_cast<std::size_t>(ruu_size);
    issue_cycle_.assign(slots_, 0);
  }

  // End-of-cycle accounting.
  void on_cycle(int commits) {
    ++out_->stalls.cycles;
    if (commits > 0) ++out_->stalls.commit_cycles;
  }
  void charge(StallCause cause) {
    ++out_->stalls.causes[static_cast<int>(cause)];
  }

  // The two writers of fetch_stall_until_, distinguished so an empty-window
  // fetch stall can be charged to the right cause.
  void on_fetch_redirect() { fetch_stall_is_branch_ = true; }
  void on_fetch_miss() { fetch_stall_is_branch_ = false; }
  bool fetch_stall_is_branch() const { return fetch_stall_is_branch_; }

  void on_issue(std::uint64_t seq, std::uint64_t now) {
    issue_cycle_[seq % slots_] = now;
  }

  // Lifecycle slices are emitted at commit: the slot row is exclusively
  // occupied from dispatch to commit, and commit precedes dispatch within
  // a cycle, so per-row events are appended in monotone, balanced order.
  void on_commit(const RuuEntry& e, std::uint64_t now) {
    if (!out_->want_trace) return;
    const std::size_t slot = e.seq % slots_;
    const int tid = static_cast<int>(slot);
    if (slot >= used_slots_) used_slots_ = slot + 1;
    Json args = Json::object();
    args["seq"] = Json(static_cast<long long>(e.seq));
    args["pc"] = Json(e.step.info.index);
    out_->trace.begin(std::string(mnemonic(e.step.info.ins.op)),
                      e.dispatch_cycle, kPipePid, tid, std::move(args));
    out_->trace.begin("exec", issue_cycle_[slot], kPipePid, tid);
    out_->trace.end(e.complete_cycle, kPipePid, tid);
    out_->trace.end(now, kPipePid, tid);
  }

  // PfuListener: decode-stage bank traffic.
  void on_pfu_hit(int unit, ConfId, std::uint64_t, std::uint64_t) override {
    ++unit_counters(unit).hits;
  }
  void on_pfu_reconfig(int unit, ConfId conf, ConfId evicted,
                       std::uint64_t start, std::uint64_t ready) override {
    out_->pfu_spans.push_back({unit, conf, evicted, start, ready});
    PfuUnitCounters& c = unit_counters(unit);
    ++c.reconfigurations;
    if (evicted != kInvalidConf) ++c.evictions;
    c.busy_cycles += ready - start;
    if (out_->want_trace) {
      Json args = Json::object();
      args["conf"] = Json(static_cast<int>(conf));
      if (evicted != kInvalidConf) {
        args["evicted"] = Json(static_cast<int>(evicted));
      }
      out_->trace.begin("reconfigure", start, kPfuPid, unit, std::move(args));
      out_->trace.end(ready, kPfuPid, unit);
    }
  }

  void finish() {
    if (!out_->want_trace) return;
    out_->trace.name_process(kPipePid, "pipeline");
    for (std::size_t i = 0; i < used_slots_; ++i) {
      out_->trace.name_thread(kPipePid, static_cast<int>(i),
                              "ruu[" + std::to_string(i) + "]");
    }
    if (!out_->pfu_units.empty()) {
      out_->trace.name_process(kPfuPid, "pfu bank");
      for (std::size_t i = 0; i < out_->pfu_units.size(); ++i) {
        out_->trace.name_thread(kPfuPid, static_cast<int>(i),
                                "pfu[" + std::to_string(i) + "]");
      }
    }
  }

 private:
  PfuUnitCounters& unit_counters(int unit) {
    if (static_cast<std::size_t>(unit) >= out_->pfu_units.size()) {
      out_->pfu_units.resize(static_cast<std::size_t>(unit) + 1);
    }
    return out_->pfu_units[static_cast<std::size_t>(unit)];
  }

  SimObservation* out_;
  std::size_t slots_ = 0;
  std::size_t used_slots_ = 0;
  std::vector<std::uint64_t> issue_cycle_;  // per slot, of the occupant
  bool fetch_stall_is_branch_ = false;
};

template <class Source, class Obs>
class Pipeline {
 public:
  Pipeline(Source source, const Program& program,
           const ExtInstTable* ext_table, const MachineConfig& config,
           std::uint64_t max_cycles, SimObservation* observation)
      : config_(config),
        source_(std::move(source)),
        program_(program),
        max_cycles_(max_cycles),
        l2_(config.l2),
        imem_(config.il1, &l2_, config.memory_latency, config.itlb),
        dmem_(config.dl1, &l2_, config.memory_latency, config.dtlb),
        pfus_(config.pfu),
        bpred_(config.branch),
        // The RUU and fetch queue are rings indexed by monotonically
        // increasing counters; rounding the storage up to a power of two
        // turns every slot lookup into a mask. Logical capacity is still
        // config.ruu_size / config.fetch_queue_size (ruu_full, fetch),
        // and live entries never collide because the window is bounded by
        // the logical capacity.
        ruu_(pow2_ceil(static_cast<std::size_t>(config.ruu_size))),
        ruu_mask_(ruu_.size() - 1),
        fetch_ring_(pow2_ceil(static_cast<std::size_t>(
            std::max(1, config.fetch_queue_size)))),
        fetch_mask_(fetch_ring_.size() - 1),
        store_ring_(ruu_.size()),
        store_mask_(store_ring_.size() - 1),
        obs_(observation) {
    for (int r = 0; r < kNumRegs; ++r) last_writer_[r] = kNoDep;
    pending_.reserve(static_cast<std::size_t>(config.ruu_size));
    if constexpr (Obs::kEnabled) obs_.attach(&pfus_, config_.ruu_size);
    if (config_.pfu.multi_cycle_ext && ext_table != nullptr) {
      // Derive per-configuration latency from mapped logic depth, assuming
      // worst-case (policy-width) operands.
      ext_latency_.reserve(static_cast<std::size_t>(ext_table->size()));
      for (const ExtInstDef& def : ext_table->defs()) {
        const int levels = estimate_luts(def, {18, 18}).levels;
        ext_latency_.push_back(
            std::max(1, (levels + config_.pfu.levels_per_cycle - 1) /
                            config_.pfu.levels_per_cycle));
      }
    }
  }

  bool drained() const {
    return source_.halted() && fq_head_ == fq_tail_ && head_ == tail_;
  }

  // One machine cycle. The batched driver interleaves step_cycle() calls
  // across lanes; run() below is the single-lane loop. Throws SimError
  // when the cycle bound is exceeded.
  void step_cycle() {
    if (now_ > max_cycles_) throw SimError("timing: cycle bound exceeded");
    const int commits = commit();
    issue();
    resolve_mispredict();
    dispatch();
    fetch();
    if constexpr (Obs::kEnabled) {
      // Attribution runs at end of cycle: every non-committing cycle is
      // charged to exactly one cause (the invariant commit_cycles +
      // sum(causes) == cycles is pinned by tests).
      obs_.on_cycle(commits);
      if (commits == 0) obs_.charge(classify_stall());
    }
    ++now_;
  }

  // Instructions committed so far (the batch driver's stride measure).
  std::uint64_t committed() const { return stats_.committed; }

  // Finalizes and returns the statistics; call exactly once, after
  // drained() turns true.
  SimStats finish() {
    stats_.cycles = now_;
    collect();
    if constexpr (Obs::kEnabled) obs_.finish();
    return stats_;
  }

  SimStats run() {
    while (!drained()) step_cycle();
    return finish();
  }

 private:
  RuuEntry& entry(std::uint64_t seq) {
    return ruu_[static_cast<std::size_t>(seq) & ruu_mask_];
  }

  bool ruu_full() const {
    return tail_ - head_ >= static_cast<std::uint64_t>(config_.ruu_size);
  }

  // --- commit ---
  int commit() {
    int n = 0;
    while (n < config_.commit_width && head_ != tail_) {
      RuuEntry& e = entry(head_);
      if (!e.completed || e.complete_cycle > now_) break;
      if constexpr (Obs::kEnabled) obs_.on_commit(e, now_);
      ++stats_.committed;
      ++head_;
      ++n;
    }
    // Drop committed stores from the ordering ring; everything scanning it
    // afterwards only cares about stores still in the window (>= head_).
    while (st_head_ != st_tail_ &&
           store_ring_[static_cast<std::size_t>(st_head_) & store_mask_] <
               head_) {
      ++st_head_;
    }
    return n;
  }

  // --- issue ---
  // When the answer is "not ready" and `earliest` is given, *earliest is a
  // lower bound on the first cycle the dependencies could be satisfied.
  // For an in-flight producer that is its fixed completion cycle. For a
  // producer that has not even issued: the issue scan is oldest-first, so
  // by the time the consumer is examined the producer has already failed
  // (or been skipped) this cycle — it issues at now+1 at the earliest and
  // completes at now+2 at the earliest; the producer's own wake bound
  // tightens that transitively (it cannot issue before p.wake, so it
  // cannot complete before p.wake + 1). `earliest` is only meaningful
  // from that scan context; other callers must pass nullptr.
  bool deps_ready(const RuuEntry& e, std::uint64_t now,
                  std::uint64_t* earliest = nullptr) const {
    bool ready = true;
    std::uint64_t bound = 0;
    for (int i = 0; i < e.num_deps; ++i) {
      const std::uint64_t dep = e.deps[i];
      if (dep < head_) continue;  // producer already committed
      const RuuEntry& p = ruu_[static_cast<std::size_t>(dep) & ruu_mask_];
      if (!p.completed) {
        if (earliest == nullptr) return false;
        ready = false;
        bound = std::max({bound, now + 2, p.wake + 1});
      } else if (p.complete_cycle > now) {
        if (earliest == nullptr) return false;
        ready = false;
        bound = std::max(bound, p.complete_cycle);
      }
    }
    if (!ready && earliest != nullptr) *earliest = bound;
    return ready;
  }

  // True when every older store that overlaps `e` has completed; loads may
  // bypass non-overlapping stores (oracle disambiguation). Only the
  // in-window stores are consulted — the store ring holds the ascending
  // dispatched, uncommitted store seqs, so the scan is proportional to the
  // stores actually in flight instead of the whole window. `earliest`
  // follows the deps_ready contract: a lower bound on the first cycle the
  // blocking store could be out of the way, valid only from the issue scan.
  bool older_stores_done(const RuuEntry& e, std::uint64_t now,
                         std::uint64_t* earliest = nullptr) {
    for (std::uint64_t i = st_head_; i != st_tail_; ++i) {
      const std::uint64_t s =
          store_ring_[static_cast<std::size_t>(i) & store_mask_];
      if (s >= e.seq) break;
      const RuuEntry& p = entry(s);
      const std::uint32_t lo =
          std::max(p.step.info.mem_addr, e.step.info.mem_addr);
      const std::uint32_t hi =
          std::min(p.step.info.mem_addr + p.step.info.mem_size,
                   e.step.info.mem_addr + e.step.info.mem_size);
      if (lo >= hi) continue;  // disjoint
      if (!p.completed || p.complete_cycle > now) {
        if (earliest != nullptr) {
          *earliest = p.completed ? p.complete_cycle
                                  : std::max(now + 2, p.wake + 1);
        }
        return false;
      }
    }
    return true;
  }

  // Long-latency memory operations currently in flight (for the MSHR cap).
  int misses_in_flight(std::uint64_t now) {
    int n = 0;
    for (std::uint64_t s = head_; s != tail_; ++s) {
      const RuuEntry& e = entry(s);
      if (e.issued && e.long_miss && e.complete_cycle > now) ++n;
    }
    return n;
  }

  // Attempts to issue `e` this cycle; the historical oldest-first scan
  // body, verbatim. Returns true when issued (FU counters consumed).
  bool try_issue(RuuEntry& e, int& alus, int& mults, int& ports,
                 int& mshrs_free) {
    if (e.dispatch_cycle >= now_) {
      e.wake = e.dispatch_cycle + 1;
      return false;
    }
    if (!deps_ready(e, now_, &e.wake)) return false;

    int latency = 1;
    switch (e.step.fu) {
      case FuClass::kIntAlu:
      case FuClass::kBranch:
        if (alus == config_.int_alus) return false;
        ++alus;
        break;
      case FuClass::kIntMul:
        if (mults == config_.int_mults) return false;
        ++mults;
        latency = base_latency(Opcode::kMul);
        break;
      case FuClass::kMemRead: {
        if (ports == config_.mem_ports) return false;
        if (mshrs_free <= 0) return false;  // conservative: no free slot
        if (!older_stores_done(e, now_, &e.wake)) return false;
        ++ports;
        latency = dmem_.access(e.step.info.mem_addr, /*is_write=*/false);
        if (latency > config_.dl1.hit_latency) {
          e.long_miss = true;
          --mshrs_free;
        }
        break;
      }
      case FuClass::kMemWrite:
        if (ports == config_.mem_ports) return false;
        if (mshrs_free <= 0) return false;
        ++ports;
        latency = dmem_.access(e.step.info.mem_addr, /*is_write=*/true);
        if (latency > config_.dl1.hit_latency) {
          e.long_miss = true;
          --mshrs_free;
        }
        break;
      case FuClass::kPfu:
        if (e.pfu_ready > now_) {
          e.wake = e.pfu_ready;
          return false;
        }
        if (!ext_latency_.empty()) {
          latency = ext_latency_[e.step.info.ins.conf];
        }
        break;
      case FuClass::kNone:
        break;
    }
    e.issued = true;
    e.completed = true;
    e.complete_cycle = now_ + static_cast<std::uint64_t>(latency);
    if constexpr (Obs::kEnabled) obs_.on_issue(e.seq, now_);
    return true;
  }

  void issue() {
    if (pending_.empty()) return;
    int issued = 0;
    int alus = 0;
    int mults = 0;
    int ports = 0;
    int mshrs_free = config_.max_outstanding_misses == 0
                         ? 1 << 30
                         : config_.max_outstanding_misses -
                               misses_in_flight(now_);
    // One oldest-first pass over the not-yet-issued entries. pending_ is
    // kept ascending by stable compaction, so the visit order — and
    // therefore FU allocation — is identical to the historical full-window
    // scan that skipped issued entries. Entries dormant until a known
    // future cycle (wake) are skipped without re-deriving the failure;
    // they would have issued nothing and consumed no FU either way.
    std::size_t keep = 0;
    std::size_t i = 0;
    for (; i < pending_.size() && issued < config_.issue_width; ++i) {
      const std::uint64_t s = pending_[i];
      RuuEntry& e = entry(s);
      if (e.wake <= now_ && try_issue(e, alus, mults, ports, mshrs_free)) {
        ++issued;
      } else {
        pending_[keep++] = s;
      }
    }
    for (; i < pending_.size(); ++i) pending_[keep++] = pending_[i];
    pending_.resize(keep);
  }

  // --- dispatch (decode/rename) ---
  void dispatch() {
    for (int n = 0; n < config_.decode_width; ++n) {
      if (fq_head_ == fq_tail_ || ruu_full()) return;
      const FetchSlot& slot =
          fetch_ring_[static_cast<std::size_t>(fq_head_) & fetch_mask_];
      if (slot.ready_cycle > now_) return;

      RuuEntry& e = entry(tail_);
      e = RuuEntry{};
      e.step = slot.step;
      e.seq = tail_;
      e.dispatch_cycle = now_;

      for (int i = 0; i < e.step.srcs.count; ++i) {
        const std::uint64_t w = last_writer_[e.step.srcs.reg[i]];
        if (w != kNoDep && w >= head_) e.deps[e.num_deps++] = w;
      }
      if (e.step.dst >= 0) {
        last_writer_[e.step.dst] = tail_;
      }
      if (e.step.dst2 >= 0) {
        last_writer_[e.step.dst2] = tail_;
      }
      if (e.step.is_ext) {
        e.pfu_ready = pfus_.request(e.step.info.ins.conf, now_);
      }
      if (e.step.is_store) {
        store_ring_[static_cast<std::size_t>(st_tail_++) & store_mask_] =
            tail_;
      }
      if (slot.mispredicted) pending_branch_seq_ = tail_;
      pending_.push_back(tail_);
      ++tail_;
      ++fq_head_;
    }
  }

  // When a mispredicted branch resolves, schedule the front-end redirect.
  void resolve_mispredict() {
    if (!blocked_on_branch_ || pending_branch_seq_ == kNoDep) return;
    // Fetch is frozen, so the RUU tail cannot advance and the entry is
    // never recycled before this check sees it complete.
    const RuuEntry& e = entry(pending_branch_seq_);
    if (!e.completed || e.complete_cycle > now_) return;
    fetch_stall_until_ =
        std::max(fetch_stall_until_,
                 e.complete_cycle +
                     static_cast<std::uint64_t>(config_.branch.mispredict_penalty));
    blocked_on_branch_ = false;
    pending_branch_seq_ = kNoDep;
    if constexpr (Obs::kEnabled) obs_.on_fetch_redirect();
  }

  // --- fetch ---
  void fetch() {
    if (blocked_on_branch_) return;  // awaiting a branch redirect
    if (now_ < fetch_stall_until_) return;
    for (int n = 0; n < config_.fetch_width; ++n) {
      if (source_.halted()) return;
      if (static_cast<int>(fq_tail_ - fq_head_) >= config_.fetch_queue_size) {
        return;
      }
      const std::uint32_t pc = source_.next_pc();
      const std::uint32_t line = pc / config_.il1.line_bytes;
      std::uint64_t ready = now_ + 1;
      if (line != current_fetch_line_) {
        const int lat = imem_.access(pc);
        current_fetch_line_ = line;
        current_line_ready_ = now_ + static_cast<std::uint64_t>(lat);
        if (lat > config_.il1.hit_latency) {
          // Miss: the front end stalls until the line arrives.
          fetch_stall_until_ = current_line_ready_;
          if constexpr (Obs::kEnabled) obs_.on_fetch_miss();
        }
      }
      ready = std::max(ready, current_line_ready_);

      const DecodedStep step = source_.step();
      if (step.info.index >= program_.size()) return;  // off-the-end halt
      bool correct = true;
      if (step.is_ctrl) {
        correct = bpred_.predict_and_update(step.info.ins, step.info.index,
                                            step.info.branch_taken,
                                            step.info.next_index);
      }
      FetchSlot& slot =
          fetch_ring_[static_cast<std::size_t>(fq_tail_++) & fetch_mask_];
      slot.step = step;
      slot.ready_cycle = ready;
      slot.mispredicted = !correct;
      if (!correct) {
        // Fetch halts here until the branch resolves in the back end.
        blocked_on_branch_ = true;
        return;
      }
      if (step.info.branch_taken) return;  // no fetching past a taken branch
      if (fetch_stall_until_ > now_) return;
    }
  }

  // --- stall-cause classification (observed runs only) ---
  //
  // Called at end of a cycle that committed nothing; charges the cycle to
  // exactly one cause. Commit is in-order, so when the window is non-empty
  // the head entry is what blocks the machine; head-specific causes are
  // tested before the window-shape ones so e.g. a reconfiguration wait is
  // never masked as "window full". With an empty window the front end is
  // responsible.
  StallCause classify_stall() {
    const std::uint64_t now = now_;
    if (head_ != tail_) {
      RuuEntry& e = entry(head_);
      if (!e.issued) {
        // Entries dispatched at `now` can issue at `now + 1` earliest: a
        // pure pipeline fill bubble.
        if (e.dispatch_cycle >= now) return StallCause::kFrontend;
        if (!deps_ready(e, now)) return StallCause::kOperandWait;
        if (e.step.fu == FuClass::kPfu && e.pfu_ready > now) {
          return StallCause::kExtReconfig;
        }
        if (e.step.fu == FuClass::kMemRead && !older_stores_done(e, now)) {
          return StallCause::kOperandWait;
        }
        if ((e.step.fu == FuClass::kMemRead ||
             e.step.fu == FuClass::kMemWrite) &&
            config_.max_outstanding_misses != 0 &&
            misses_in_flight(now) >= config_.max_outstanding_misses) {
          return StallCause::kMshrFull;
        }
        // The head is oldest and therefore first in line for every FU, so
        // a ready-but-unissued head can only be a same-cycle artifact.
        return StallCause::kFrontend;
      }
      // Issued but not committed: complete_cycle > now (a head completed
      // by `now` would have committed this cycle).
      if (ruu_full()) return StallCause::kRuuFull;
      if (e.long_miss) return StallCause::kExecMem;
      return StallCause::kExec;
    }
    // Window empty: the front end owns the cycle.
    if (source_.halted()) return StallCause::kDrain;
    if (fq_head_ != fq_tail_) {
      // Slots waiting on their I-cache line; a slot ready next cycle is
      // just the fetch->dispatch pipeline latency.
      return fetch_ring_[static_cast<std::size_t>(fq_head_) & fetch_mask_]
                     .ready_cycle <= now + 1
                 ? StallCause::kFrontend
                 : StallCause::kFetchMem;
    }
    if (blocked_on_branch_) return StallCause::kFetchBranch;
    if (now < fetch_stall_until_) {
      return obs_.fetch_stall_is_branch() ? StallCause::kFetchBranch
                                          : StallCause::kFetchMem;
    }
    return StallCause::kFrontend;
  }

  void collect() {
    stats_.il1 = imem_.l1().stats();
    stats_.dl1 = dmem_.l1().stats();
    stats_.l2 = l2_.stats();
    stats_.itlb = imem_.tlb().stats();
    stats_.dtlb = dmem_.tlb().stats();
    stats_.pfu = pfus_.stats();
    stats_.branch = bpred_.stats();
  }

  MachineConfig config_;
  Source source_;
  const Program& program_;
  std::uint64_t max_cycles_;
  Cache l2_;
  MemHierarchy imem_;
  MemHierarchy dmem_;
  PfuBank pfus_;
  BranchPredictor bpred_;

  std::vector<RuuEntry> ruu_;
  std::size_t ruu_mask_;
  // Fetch queue as a power-of-two ring indexed by monotone counters;
  // logical occupancy (fq_tail_ - fq_head_) is capped at
  // config.fetch_queue_size by fetch(), so slots never collide.
  std::vector<FetchSlot> fetch_ring_;
  std::size_t fetch_mask_;
  std::uint64_t fq_head_ = 0;
  std::uint64_t fq_tail_ = 0;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
  // Dispatched-but-unissued seqs, ascending (the issue scan's worklist).
  std::vector<std::uint64_t> pending_;
  // Dispatched, uncommitted store seqs, ascending (memory ordering scans),
  // as a power-of-two ring: at most one store per window slot is live.
  std::vector<std::uint64_t> store_ring_;
  std::size_t store_mask_;
  std::uint64_t st_head_ = 0;
  std::uint64_t st_tail_ = 0;
  std::uint64_t last_writer_[kNumRegs] = {};
  std::uint32_t current_fetch_line_ = ~0u;
  std::uint64_t current_line_ready_ = 0;
  std::uint64_t fetch_stall_until_ = 0;
  bool blocked_on_branch_ = false;
  std::uint64_t pending_branch_seq_ = kNoDep;
  std::vector<int> ext_latency_;  // per Conf id; empty = single-cycle
  std::uint64_t now_ = 0;

  Obs obs_;
  SimStats stats_;
};

// Runs the lanes listed in `lane_ids` (indices into request.lanes), all
// sharing one observer instantiation, writing each lane's outcome into
// `results`. Lanes advance round-robin in kBatchStride-cycle bursts; they
// are fully independent machines, so any interleaving produces the same
// per-lane results as running them to completion one after another.
template <class Obs>
void run_lanes(const BatchSimRequest& request, const DecodedTrace& decoded,
               const std::vector<std::size_t>& lane_ids,
               std::vector<BatchLaneResult>* results) {
  using LanePipeline = Pipeline<DecodedCursor, Obs>;
  std::vector<std::unique_ptr<LanePipeline>> lanes;
  lanes.reserve(lane_ids.size());
  for (const std::size_t id : lane_ids) {
    const BatchSimRequest::Lane& lane = request.lanes[id];
    lanes.push_back(std::make_unique<LanePipeline>(
        DecodedCursor(decoded), *request.program, request.ext_table,
        lane.machine, lane.max_cycles, lane.observation));
  }
  std::size_t live = lanes.size();
  while (live > 0) {
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      LanePipeline* lane = lanes[i].get();
      if (lane == nullptr) continue;
      BatchLaneResult& out = (*results)[lane_ids[i]];
      try {
        const std::uint64_t target = lane->committed() + kBatchStride;
        while (lane->committed() < target && !lane->drained()) {
          lane->step_cycle();
        }
        if (lane->drained()) {
          out.stats = lane->finish();
          lanes[i].reset();
          --live;
        }
      } catch (...) {
        // Per-lane fault isolation: this lane dies (cycle bound, ...);
        // the others keep sweeping.
        out.error = std::current_exception();
        lanes[i].reset();
        --live;
      }
    }
  }
}

}  // namespace

SimStats simulate(const SimRequest& request) {
  if (request.program == nullptr) {
    throw SimError("simulate: request.program is required");
  }
  const Program& program = *request.program;
  if (request.trace != nullptr) {
    if (request.observation != nullptr) {
      return Pipeline<TraceCursor, RecordingObserver>(
                 TraceCursor(*request.trace, program), program,
                 request.ext_table, request.machine, request.max_cycles,
                 request.observation)
          .run();
    }
    return Pipeline<TraceCursor, NullObserver>(
               TraceCursor(*request.trace, program), program,
               request.ext_table, request.machine, request.max_cycles,
               nullptr)
        .run();
  }
  if (request.observation != nullptr) {
    return Pipeline<ExecutorSource, RecordingObserver>(
               ExecutorSource(program, request.ext_table), program,
               request.ext_table, request.machine, request.max_cycles,
               request.observation)
        .run();
  }
  return Pipeline<ExecutorSource, NullObserver>(
             ExecutorSource(program, request.ext_table), program,
             request.ext_table, request.machine, request.max_cycles, nullptr)
      .run();
}

std::vector<BatchLaneResult> simulate_replay_batch(
    const BatchSimRequest& request) {
  if (request.program == nullptr || request.trace == nullptr) {
    throw SimError("simulate_replay_batch: program and trace are required");
  }
  std::vector<BatchLaneResult> results(request.lanes.size());
  if (request.lanes.empty()) return results;
  // The amortization: one decode of the committed trace serves every lane.
  const DecodedTrace decoded(*request.trace, *request.program);
  // Observed and unobserved lanes take differently-instantiated pipelines
  // (the null observer compiles the observation layer out), so partition
  // by observer and run each group; results land by lane id either way.
  std::vector<std::size_t> plain;
  std::vector<std::size_t> observed;
  for (std::size_t i = 0; i < request.lanes.size(); ++i) {
    (request.lanes[i].observation != nullptr ? observed : plain).push_back(i);
  }
  if (!plain.empty()) {
    run_lanes<NullObserver>(request, decoded, plain, &results);
  }
  if (!observed.empty()) {
    run_lanes<RecordingObserver>(request, decoded, observed, &results);
  }
  return results;
}

}  // namespace t1000
