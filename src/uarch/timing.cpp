#include "uarch/timing.hpp"

#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "harness/json.hpp"
#include "hwcost/lut_model.hpp"
#include "isa/opcode.hpp"
#include "sim/executor.hpp"
#include "sim/trace.hpp"

namespace t1000 {

std::string_view stall_cause_name(StallCause cause) {
  switch (cause) {
    case StallCause::kFetchBranch: return "fetch_branch";
    case StallCause::kFetchMem: return "fetch_mem";
    case StallCause::kFrontend: return "frontend";
    case StallCause::kRuuFull: return "ruu_full";
    case StallCause::kMshrFull: return "mshr_full";
    case StallCause::kOperandWait: return "operand_wait";
    case StallCause::kExtReconfig: return "ext_reconfig";
    case StallCause::kExecMem: return "exec_mem";
    case StallCause::kExec: return "exec";
    case StallCause::kDrain: return "drain";
  }
  return "unknown";
}

void StallBreakdown::accumulate(const StallBreakdown& other) {
  cycles += other.cycles;
  commit_cycles += other.commit_cycles;
  for (int i = 0; i < kNumStallCauses; ++i) causes[i] += other.causes[i];
}

namespace {

constexpr std::uint64_t kNoDep = ~0ull;

// Step source backed by a live functional executor (the direct path).
// Mirrors TraceCursor (sim/trace.hpp), the replay-backed source; the
// pipeline below is templated over the two so both paths run the exact
// same cycle-level code.
class ExecutorSource {
 public:
  ExecutorSource(const Program& program, const ExtInstTable* ext_table)
      : exec_(program, ext_table) {}

  bool halted() const { return exec_.halted(); }
  std::int32_t next_index() const { return exec_.pc(); }
  StepInfo step() { return exec_.step(); }

 private:
  Executor exec_;
};

struct RuuEntry {
  StepInfo info;
  std::uint64_t seq = 0;
  std::uint64_t deps[2] = {kNoDep, kNoDep};
  int num_deps = 0;
  FuClass fu = FuClass::kNone;
  bool issued = false;
  bool completed = false;
  bool long_miss = false;  // occupies an MSHR while in flight
  std::uint64_t dispatch_cycle = 0;
  std::uint64_t complete_cycle = 0;
  std::uint64_t pfu_ready = 0;  // EXT: earliest issue (reconfiguration)
};

struct FetchSlot {
  StepInfo info;
  std::uint64_t ready_cycle = 0;
  bool mispredicted = false;
};

// --- pipeline observers ---
//
// The pipeline is templated over an observer; every observation point is
// guarded by `if constexpr (Obs::kEnabled)`, so with the null observer the
// whole layer is compiled out and the unobserved pipeline is exactly the
// pre-observability machine (BM_TimingSim pins the cost; the differential
// tests pin byte-identical SimStats).

struct NullObserver {
  static constexpr bool kEnabled = false;
  explicit NullObserver(SimObservation*) {}
};

// Trace-group ids (the Chrome format's "pid"): one row group for the RUU
// slots, one for the PFU bank.
constexpr int kPipePid = 1;
constexpr int kPfuPid = 2;

class RecordingObserver final : public PfuListener {
 public:
  static constexpr bool kEnabled = true;

  explicit RecordingObserver(SimObservation* out) : out_(out) {}

  void attach(PfuBank* bank, int ruu_size) {
    bank->set_listener(this);
    slots_ = static_cast<std::size_t>(ruu_size);
    issue_cycle_.assign(slots_, 0);
  }

  // End-of-cycle accounting.
  void on_cycle(int commits) {
    ++out_->stalls.cycles;
    if (commits > 0) ++out_->stalls.commit_cycles;
  }
  void charge(StallCause cause) {
    ++out_->stalls.causes[static_cast<int>(cause)];
  }

  // The two writers of fetch_stall_until_, distinguished so an empty-window
  // fetch stall can be charged to the right cause.
  void on_fetch_redirect() { fetch_stall_is_branch_ = true; }
  void on_fetch_miss() { fetch_stall_is_branch_ = false; }
  bool fetch_stall_is_branch() const { return fetch_stall_is_branch_; }

  void on_issue(std::uint64_t seq, std::uint64_t now) {
    issue_cycle_[seq % slots_] = now;
  }

  // Lifecycle slices are emitted at commit: the slot row is exclusively
  // occupied from dispatch to commit, and commit precedes dispatch within
  // a cycle, so per-row events are appended in monotone, balanced order.
  void on_commit(const RuuEntry& e, std::uint64_t now) {
    if (!out_->want_trace) return;
    const std::size_t slot = e.seq % slots_;
    const int tid = static_cast<int>(slot);
    if (slot >= used_slots_) used_slots_ = slot + 1;
    Json args = Json::object();
    args["seq"] = Json(static_cast<long long>(e.seq));
    args["pc"] = Json(e.info.index);
    out_->trace.begin(std::string(mnemonic(e.info.ins.op)), e.dispatch_cycle,
                      kPipePid, tid, std::move(args));
    out_->trace.begin("exec", issue_cycle_[slot], kPipePid, tid);
    out_->trace.end(e.complete_cycle, kPipePid, tid);
    out_->trace.end(now, kPipePid, tid);
  }

  // PfuListener: decode-stage bank traffic.
  void on_pfu_hit(int unit, ConfId, std::uint64_t, std::uint64_t) override {
    ++unit_counters(unit).hits;
  }
  void on_pfu_reconfig(int unit, ConfId conf, ConfId evicted,
                       std::uint64_t start, std::uint64_t ready) override {
    out_->pfu_spans.push_back({unit, conf, evicted, start, ready});
    PfuUnitCounters& c = unit_counters(unit);
    ++c.reconfigurations;
    if (evicted != kInvalidConf) ++c.evictions;
    c.busy_cycles += ready - start;
    if (out_->want_trace) {
      Json args = Json::object();
      args["conf"] = Json(static_cast<int>(conf));
      if (evicted != kInvalidConf) {
        args["evicted"] = Json(static_cast<int>(evicted));
      }
      out_->trace.begin("reconfigure", start, kPfuPid, unit, std::move(args));
      out_->trace.end(ready, kPfuPid, unit);
    }
  }

  void finish() {
    if (!out_->want_trace) return;
    out_->trace.name_process(kPipePid, "pipeline");
    for (std::size_t i = 0; i < used_slots_; ++i) {
      out_->trace.name_thread(kPipePid, static_cast<int>(i),
                              "ruu[" + std::to_string(i) + "]");
    }
    if (!out_->pfu_units.empty()) {
      out_->trace.name_process(kPfuPid, "pfu bank");
      for (std::size_t i = 0; i < out_->pfu_units.size(); ++i) {
        out_->trace.name_thread(kPfuPid, static_cast<int>(i),
                                "pfu[" + std::to_string(i) + "]");
      }
    }
  }

 private:
  PfuUnitCounters& unit_counters(int unit) {
    if (static_cast<std::size_t>(unit) >= out_->pfu_units.size()) {
      out_->pfu_units.resize(static_cast<std::size_t>(unit) + 1);
    }
    return out_->pfu_units[static_cast<std::size_t>(unit)];
  }

  SimObservation* out_;
  std::size_t slots_ = 0;
  std::size_t used_slots_ = 0;
  std::vector<std::uint64_t> issue_cycle_;  // per slot, of the occupant
  bool fetch_stall_is_branch_ = false;
};

template <class Source, class Obs>
class Pipeline {
 public:
  Pipeline(Source source, const Program& program,
           const ExtInstTable* ext_table, const MachineConfig& config,
           SimObservation* observation)
      : config_(config),
        source_(std::move(source)),
        program_(program),
        l2_(config.l2),
        imem_(config.il1, &l2_, config.memory_latency, config.itlb),
        dmem_(config.dl1, &l2_, config.memory_latency, config.dtlb),
        pfus_(config.pfu),
        bpred_(config.branch),
        ruu_(static_cast<std::size_t>(config.ruu_size)),
        obs_(observation) {
    for (int r = 0; r < kNumRegs; ++r) last_writer_[r] = kNoDep;
    if constexpr (Obs::kEnabled) obs_.attach(&pfus_, config_.ruu_size);
    if (config_.pfu.multi_cycle_ext && ext_table != nullptr) {
      // Derive per-configuration latency from mapped logic depth, assuming
      // worst-case (policy-width) operands.
      ext_latency_.reserve(static_cast<std::size_t>(ext_table->size()));
      for (const ExtInstDef& def : ext_table->defs()) {
        const int levels = estimate_luts(def, {18, 18}).levels;
        ext_latency_.push_back(
            std::max(1, (levels + config_.pfu.levels_per_cycle - 1) /
                            config_.pfu.levels_per_cycle));
      }
    }
  }

  SimStats run(std::uint64_t max_cycles) {
    std::uint64_t now = 0;
    while (!drained()) {
      if (now > max_cycles) throw SimError("timing: cycle bound exceeded");
      const int commits = commit(now);
      issue(now);
      resolve_mispredict(now);
      dispatch(now);
      fetch(now);
      if constexpr (Obs::kEnabled) {
        // Attribution runs at end of cycle: every non-committing cycle is
        // charged to exactly one cause (the invariant commit_cycles +
        // sum(causes) == cycles is pinned by tests).
        obs_.on_cycle(commits);
        if (commits == 0) obs_.charge(classify_stall(now));
      }
      ++now;
    }
    stats_.cycles = now;
    collect();
    if constexpr (Obs::kEnabled) obs_.finish();
    return stats_;
  }

 private:
  bool drained() const {
    return source_.halted() && fetch_queue_.empty() && head_ == tail_;
  }

  RuuEntry& entry(std::uint64_t seq) {
    return ruu_[static_cast<std::size_t>(seq % ruu_.size())];
  }

  bool ruu_full() const {
    return tail_ - head_ >= static_cast<std::uint64_t>(config_.ruu_size);
  }

  // --- commit ---
  int commit(std::uint64_t now) {
    int n = 0;
    while (n < config_.commit_width && head_ != tail_) {
      RuuEntry& e = entry(head_);
      if (!e.completed || e.complete_cycle > now) break;
      if constexpr (Obs::kEnabled) obs_.on_commit(e, now);
      ++stats_.committed;
      ++head_;
      ++n;
    }
    return n;
  }

  // --- issue ---
  bool deps_ready(const RuuEntry& e, std::uint64_t now) {
    for (int i = 0; i < e.num_deps; ++i) {
      const std::uint64_t dep = e.deps[i];
      if (dep < head_) continue;  // producer already committed
      const RuuEntry& p = entry(dep);
      if (!p.completed || p.complete_cycle > now) return false;
    }
    return true;
  }

  // True when every older store that overlaps `e` has completed; loads may
  // bypass non-overlapping stores (oracle disambiguation).
  bool older_stores_done(const RuuEntry& e, std::uint64_t now) {
    for (std::uint64_t s = head_; s < e.seq; ++s) {
      const RuuEntry& p = entry(s);
      if (!is_store(p.info.ins.op)) continue;
      const std::uint32_t lo = std::max(p.info.mem_addr, e.info.mem_addr);
      const std::uint32_t hi =
          std::min(p.info.mem_addr + p.info.mem_size,
                   e.info.mem_addr + e.info.mem_size);
      if (lo >= hi) continue;  // disjoint
      if (!p.completed || p.complete_cycle > now) return false;
    }
    return true;
  }

  // Long-latency memory operations currently in flight (for the MSHR cap).
  int misses_in_flight(std::uint64_t now) {
    int n = 0;
    for (std::uint64_t s = head_; s != tail_; ++s) {
      const RuuEntry& e = entry(s);
      if (e.issued && e.long_miss && e.complete_cycle > now) ++n;
    }
    return n;
  }

  void issue(std::uint64_t now) {
    int issued = 0;
    int alus = 0;
    int mults = 0;
    int ports = 0;
    int mshrs_free = config_.max_outstanding_misses == 0
                         ? 1 << 30
                         : config_.max_outstanding_misses -
                               misses_in_flight(now);
    for (std::uint64_t s = head_; s != tail_ && issued < config_.issue_width;
         ++s) {
      RuuEntry& e = entry(s);
      if (e.issued || e.dispatch_cycle >= now) continue;
      if (!deps_ready(e, now)) continue;

      int latency = 1;
      switch (e.fu) {
        case FuClass::kIntAlu:
        case FuClass::kBranch:
          if (alus == config_.int_alus) continue;
          ++alus;
          break;
        case FuClass::kIntMul:
          if (mults == config_.int_mults) continue;
          ++mults;
          latency = base_latency(Opcode::kMul);
          break;
        case FuClass::kMemRead: {
          if (ports == config_.mem_ports) continue;
          if (mshrs_free <= 0) continue;  // conservative: no free miss slot
          if (!older_stores_done(e, now)) continue;
          ++ports;
          latency = dmem_.access(e.info.mem_addr, /*is_write=*/false);
          if (latency > config_.dl1.hit_latency) {
            e.long_miss = true;
            --mshrs_free;
          }
          break;
        }
        case FuClass::kMemWrite:
          if (ports == config_.mem_ports) continue;
          if (mshrs_free <= 0) continue;
          ++ports;
          latency = dmem_.access(e.info.mem_addr, /*is_write=*/true);
          if (latency > config_.dl1.hit_latency) {
            e.long_miss = true;
            --mshrs_free;
          }
          break;
        case FuClass::kPfu:
          if (e.pfu_ready > now) continue;
          if (!ext_latency_.empty()) {
            latency = ext_latency_[e.info.ins.conf];
          }
          break;
        case FuClass::kNone:
          break;
      }
      e.issued = true;
      e.completed = true;
      e.complete_cycle = now + static_cast<std::uint64_t>(latency);
      if constexpr (Obs::kEnabled) obs_.on_issue(e.seq, now);
      ++issued;
    }
  }

  // --- dispatch (decode/rename) ---
  void dispatch(std::uint64_t now) {
    for (int n = 0; n < config_.decode_width; ++n) {
      if (fetch_queue_.empty() || ruu_full()) return;
      const FetchSlot& slot = fetch_queue_.front();
      if (slot.ready_cycle > now) return;

      RuuEntry& e = entry(tail_);
      e = RuuEntry{};
      e.info = slot.info;
      e.seq = tail_;
      e.fu = fu_class(e.info.ins.op);
      e.dispatch_cycle = now;

      const SrcRegs srcs = src_regs(e.info.ins);
      for (int i = 0; i < srcs.count; ++i) {
        const std::uint64_t w = last_writer_[srcs.reg[i]];
        if (w != kNoDep && w >= head_) e.deps[e.num_deps++] = w;
      }
      if (const auto d = dst_reg(e.info.ins)) {
        last_writer_[*d] = tail_;
      }
      if (e.info.ins.op == Opcode::kExt) {
        e.pfu_ready = pfus_.request(e.info.ins.conf, now);
      }
      if (slot.mispredicted) pending_branch_seq_ = tail_;
      ++tail_;
      fetch_queue_.pop_front();
    }
  }

  // When a mispredicted branch resolves, schedule the front-end redirect.
  void resolve_mispredict(std::uint64_t now) {
    if (!blocked_on_branch_ || pending_branch_seq_ == kNoDep) return;
    // Fetch is frozen, so the RUU tail cannot advance and the entry is
    // never recycled before this check sees it complete.
    const RuuEntry& e = entry(pending_branch_seq_);
    if (!e.completed || e.complete_cycle > now) return;
    fetch_stall_until_ =
        std::max(fetch_stall_until_,
                 e.complete_cycle +
                     static_cast<std::uint64_t>(config_.branch.mispredict_penalty));
    blocked_on_branch_ = false;
    pending_branch_seq_ = kNoDep;
    if constexpr (Obs::kEnabled) obs_.on_fetch_redirect();
  }

  // --- fetch ---
  void fetch(std::uint64_t now) {
    if (blocked_on_branch_) return;  // awaiting a branch redirect
    if (now < fetch_stall_until_) return;
    for (int n = 0; n < config_.fetch_width; ++n) {
      if (source_.halted()) return;
      if (static_cast<int>(fetch_queue_.size()) >= config_.fetch_queue_size) {
        return;
      }
      const std::uint32_t pc = program_.pc_of(source_.next_index());
      const std::uint32_t line = pc / config_.il1.line_bytes;
      std::uint64_t ready = now + 1;
      if (line != current_fetch_line_) {
        const int lat = imem_.access(pc);
        current_fetch_line_ = line;
        current_line_ready_ = now + static_cast<std::uint64_t>(lat);
        if (lat > config_.il1.hit_latency) {
          // Miss: the front end stalls until the line arrives.
          fetch_stall_until_ = current_line_ready_;
          if constexpr (Obs::kEnabled) obs_.on_fetch_miss();
        }
      }
      ready = std::max(ready, current_line_ready_);

      const StepInfo info = source_.step();
      if (info.index >= program_.size()) return;  // off-the-end halt
      bool correct = true;
      if (is_control(info.ins.op) && info.ins.op != Opcode::kHalt) {
        correct = bpred_.predict_and_update(info.ins, info.index,
                                            info.branch_taken,
                                            info.next_index);
      }
      fetch_queue_.push_back({info, ready, !correct});
      if (!correct) {
        // Fetch halts here until the branch resolves in the back end.
        blocked_on_branch_ = true;
        return;
      }
      if (info.branch_taken) return;  // no fetching past a taken branch
      if (fetch_stall_until_ > now) return;
    }
  }

  // --- stall-cause classification (observed runs only) ---
  //
  // Called at end of a cycle that committed nothing; charges the cycle to
  // exactly one cause. Commit is in-order, so when the window is non-empty
  // the head entry is what blocks the machine; head-specific causes are
  // tested before the window-shape ones so e.g. a reconfiguration wait is
  // never masked as "window full". With an empty window the front end is
  // responsible.
  StallCause classify_stall(std::uint64_t now) {
    if (head_ != tail_) {
      RuuEntry& e = entry(head_);
      if (!e.issued) {
        // Entries dispatched at `now` can issue at `now + 1` earliest: a
        // pure pipeline fill bubble.
        if (e.dispatch_cycle >= now) return StallCause::kFrontend;
        if (!deps_ready(e, now)) return StallCause::kOperandWait;
        if (e.fu == FuClass::kPfu && e.pfu_ready > now) {
          return StallCause::kExtReconfig;
        }
        if (e.fu == FuClass::kMemRead && !older_stores_done(e, now)) {
          return StallCause::kOperandWait;
        }
        if ((e.fu == FuClass::kMemRead || e.fu == FuClass::kMemWrite) &&
            config_.max_outstanding_misses != 0 &&
            misses_in_flight(now) >= config_.max_outstanding_misses) {
          return StallCause::kMshrFull;
        }
        // The head is oldest and therefore first in line for every FU, so
        // a ready-but-unissued head can only be a same-cycle artifact.
        return StallCause::kFrontend;
      }
      // Issued but not committed: complete_cycle > now (a head completed
      // by `now` would have committed this cycle).
      if (ruu_full()) return StallCause::kRuuFull;
      if (e.long_miss) return StallCause::kExecMem;
      return StallCause::kExec;
    }
    // Window empty: the front end owns the cycle.
    if (source_.halted()) return StallCause::kDrain;
    if (!fetch_queue_.empty()) {
      // Slots waiting on their I-cache line; a slot ready next cycle is
      // just the fetch->dispatch pipeline latency.
      return fetch_queue_.front().ready_cycle <= now + 1
                 ? StallCause::kFrontend
                 : StallCause::kFetchMem;
    }
    if (blocked_on_branch_) return StallCause::kFetchBranch;
    if (now < fetch_stall_until_) {
      return obs_.fetch_stall_is_branch() ? StallCause::kFetchBranch
                                          : StallCause::kFetchMem;
    }
    return StallCause::kFrontend;
  }

  void collect() {
    stats_.il1 = imem_.l1().stats();
    stats_.dl1 = dmem_.l1().stats();
    stats_.l2 = l2_.stats();
    stats_.itlb = imem_.tlb().stats();
    stats_.dtlb = dmem_.tlb().stats();
    stats_.pfu = pfus_.stats();
    stats_.branch = bpred_.stats();
  }

  MachineConfig config_;
  Source source_;
  const Program& program_;
  Cache l2_;
  MemHierarchy imem_;
  MemHierarchy dmem_;
  PfuBank pfus_;
  BranchPredictor bpred_;

  std::deque<FetchSlot> fetch_queue_;
  std::vector<RuuEntry> ruu_;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
  std::uint64_t last_writer_[kNumRegs] = {};
  std::uint32_t current_fetch_line_ = ~0u;
  std::uint64_t current_line_ready_ = 0;
  std::uint64_t fetch_stall_until_ = 0;
  bool blocked_on_branch_ = false;
  std::uint64_t pending_branch_seq_ = kNoDep;
  std::vector<int> ext_latency_;  // per Conf id; empty = single-cycle

  Obs obs_;
  SimStats stats_;
};

}  // namespace

SimStats simulate(const Program& program, const ExtInstTable* ext_table,
                  const MachineConfig& config, std::uint64_t max_cycles,
                  SimObservation* observation) {
  if (observation != nullptr) {
    return Pipeline<ExecutorSource, RecordingObserver>(
               ExecutorSource(program, ext_table), program, ext_table, config,
               observation)
        .run(max_cycles);
  }
  return Pipeline<ExecutorSource, NullObserver>(
             ExecutorSource(program, ext_table), program, ext_table, config,
             nullptr)
      .run(max_cycles);
}

SimStats simulate_replay(const Program& program, const ExtInstTable* ext_table,
                         const CommittedTrace& trace,
                         const MachineConfig& config,
                         std::uint64_t max_cycles,
                         SimObservation* observation) {
  if (observation != nullptr) {
    return Pipeline<TraceCursor, RecordingObserver>(
               TraceCursor(trace, program), program, ext_table, config,
               observation)
        .run(max_cycles);
  }
  return Pipeline<TraceCursor, NullObserver>(TraceCursor(trace, program),
                                             program, ext_table, config,
                                             nullptr)
      .run(max_cycles);
}

}  // namespace t1000
