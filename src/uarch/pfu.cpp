#include "uarch/pfu.hpp"

#include <algorithm>
#include <cassert>

namespace t1000 {

PfuBank::PfuBank(const PfuConfig& config) : config_(config) {
  if (!unlimited()) {
    assert(config_.count >= 0);
    units_.resize(static_cast<std::size_t>(config_.count));
  }
}

int PfuBank::size() const { return static_cast<int>(units_.size()); }

std::uint64_t PfuBank::request(ConfId conf, std::uint64_t now) {
  ++stats_.lookups;
  ++tick_;

  const auto it = where_.find(conf);
  if (it != where_.end()) {
    Unit& unit = units_[it->second];
    unit.last_use = tick_;
    ++stats_.hits;  // tag match; may still wait on an in-flight load
    const std::uint64_t ready = unit.ready_at <= now ? now : unit.ready_at;
    if (listener_ != nullptr) {
      listener_->on_pfu_hit(static_cast<int>(it->second), conf, now, ready);
    }
    return ready;
  }

  if (unlimited()) {
    // Every configuration gets its own unit; the first use still pays one
    // reconfiguration (irrelevant when the latency is zero).
    ++stats_.reconfigurations;
    Unit unit;
    unit.conf = conf;
    unit.ready_at = now + static_cast<std::uint64_t>(config_.reconfig_latency);
    unit.last_use = tick_;
    where_.emplace(conf, units_.size());
    units_.push_back(unit);
    if (listener_ != nullptr) {
      listener_->on_pfu_reconfig(static_cast<int>(units_.size()) - 1, conf,
                                 kInvalidConf, now, unit.ready_at);
    }
    return unit.ready_at;
  }

  if (units_.empty()) {
    // No PFUs: the caller should never dispatch EXT on such a machine.
    assert(false && "EXT dispatched on a machine without PFUs");
    return now;
  }

  // Miss: reload the least-recently-used unit.
  std::size_t victim = 0;
  for (std::size_t i = 1; i < units_.size(); ++i) {
    if (units_[i].last_use < units_[victim].last_use) victim = i;
  }
  Unit& unit = units_[victim];
  const ConfId evicted = unit.conf;
  if (unit.conf != kInvalidConf) where_.erase(unit.conf);
  ++stats_.reconfigurations;
  unit.conf = conf;
  // Back-to-back reconfigurations of the same unit serialize.
  const std::uint64_t start = std::max(now, unit.ready_at);
  unit.ready_at = start + static_cast<std::uint64_t>(config_.reconfig_latency);
  unit.last_use = tick_;
  where_.emplace(conf, victim);
  if (listener_ != nullptr) {
    listener_->on_pfu_reconfig(static_cast<int>(victim), conf, evicted, start,
                               unit.ready_at);
  }
  return unit.ready_at;
}

}  // namespace t1000
