// Branch prediction models.
//
// The paper simulates perfect branch prediction (Section 3.1). To check
// that its conclusions do not hinge on that assumption, the timing model
// also supports a classic bimodal predictor (2-bit saturating counters) and
// a static not-taken baseline, with a last-target table for register jumps.
// Mispredictions are modelled as front-end stalls: fetch halts at the
// mispredicted branch and resumes a fixed redirect penalty after the branch
// resolves (no wrong-path execution, the standard approximation for
// execution-driven simulators).
#pragma once

#include <cstdint>
#include <vector>

#include "isa/instruction.hpp"

namespace t1000 {

enum class BranchPredictorKind {
  kPerfect,         // the paper's configuration
  kBimodal,         // 2-bit counters indexed by branch pc
  kGshare,          // 2-bit counters indexed by pc XOR global history
  kStaticNotTaken,  // always predicts fall-through
};

struct BranchPredictorConfig {
  BranchPredictorKind kind = BranchPredictorKind::kPerfect;
  std::uint32_t bimodal_entries = 2048;  // power of two
  std::uint32_t target_entries = 256;    // last-target table for jr/jalr
  int mispredict_penalty = 3;            // extra front-end redirect cycles
};

struct BranchStats {
  std::uint64_t conditional = 0;
  std::uint64_t cond_mispredicts = 0;
  std::uint64_t indirect = 0;
  std::uint64_t indirect_mispredicts = 0;

  double cond_accuracy() const {
    return conditional == 0
               ? 1.0
               : 1.0 - static_cast<double>(cond_mispredicts) /
                           static_cast<double>(conditional);
  }
};

class BranchPredictor {
 public:
  explicit BranchPredictor(const BranchPredictorConfig& config);

  // Consults and trains the predictor for the control instruction at index
  // `pc_index` whose actual outcome is `taken` with successor
  // `target_index`. Returns true when the prediction was correct.
  bool predict_and_update(const Instruction& ins, std::int32_t pc_index,
                          bool taken, std::int32_t target_index);

  const BranchStats& stats() const { return stats_; }
  const BranchPredictorConfig& config() const { return config_; }

 private:
  BranchPredictorConfig config_;
  std::vector<std::uint8_t> counters_;      // 2-bit saturating
  std::vector<std::int32_t> last_target_;   // -1 = empty
  std::uint32_t history_ = 0;               // gshare global history
  BranchStats stats_;
};

}  // namespace t1000
