// Execution-driven timing simulator for the T1000 architecture.
//
// Models the paper's evaluation vehicle: a 4-wide out-of-order superscalar
// with Register-Update-Unit (RUU) scheduling [Sohi], split L1 caches over a
// unified L2, I/D TLBs, perfect branch prediction, and a bank of PFUs for
// extended instructions. The committed path comes from the functional
// executor: with perfect prediction the fetched and committed paths
// coincide, so no wrong-path modelling is needed (Section 3.1).
//
// Pipeline per cycle: commit <= W oldest completed entries; issue <= W
// ready entries oldest-first subject to FU availability (and, for EXT, the
// decode-time PFU reconfiguration check); dispatch <= W fetched
// instructions into the RUU with register renaming; fetch <= W
// instructions along the true path through the I-cache/I-TLB, stopping at
// taken branches and on I-cache miss stalls.
//
// Memory model: loads compute latency through DL1/L2/memory at issue;
// a load may not issue before every older overlapping store has completed
// (store-to-load forwarding then costs an L1 hit); disambiguation uses the
// oracle addresses from the functional trace, i.e. a perfect dependence
// predictor. Stores occupy a memory port and complete in the L1 hit time.
#pragma once

#include <cstdint>

#include "asmkit/program.hpp"
#include "isa/extdef.hpp"
#include "sim/trace.hpp"
#include "uarch/branch.hpp"
#include "uarch/cache.hpp"
#include "uarch/config.hpp"
#include "uarch/pfu.hpp"

namespace t1000 {

struct SimStats {
  std::uint64_t cycles = 0;
  std::uint64_t committed = 0;

  CacheStats il1;
  CacheStats dl1;
  CacheStats l2;
  CacheStats itlb;
  CacheStats dtlb;
  PfuStats pfu;
  BranchStats branch;

  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(committed) / static_cast<double>(cycles);
  }
};

// Runs `program` to completion on the configured machine and returns the
// statistics. `ext_table` supplies EXT semantics (may be null when the
// program contains none). Throws SimError if the program exceeds
// `max_cycles` or misbehaves.
SimStats simulate(const Program& program, const ExtInstTable* ext_table,
                  const MachineConfig& config,
                  std::uint64_t max_cycles = 1ull << 32);

// Replay-backed timing: drives the identical pipeline from a committed
// trace previously recorded from (`program`, `ext_table`) instead of
// stepping an embedded executor. Cycle-exact with simulate() on the same
// inputs — the differential harness in
// tests/integration/replay_differential_test.cpp holds the two paths to
// byte-identical statistics — but the functional work is paid once at
// record time, so one trace can be shared across a whole grid of machine
// configurations (`ext_table` is still consulted for multi-cycle EXT
// latencies).
SimStats simulate_replay(const Program& program, const ExtInstTable* ext_table,
                         const CommittedTrace& trace,
                         const MachineConfig& config,
                         std::uint64_t max_cycles = 1ull << 32);

}  // namespace t1000
