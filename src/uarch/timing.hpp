// Execution-driven timing simulator for the T1000 architecture.
//
// Models the paper's evaluation vehicle: a 4-wide out-of-order superscalar
// with Register-Update-Unit (RUU) scheduling [Sohi], split L1 caches over a
// unified L2, I/D TLBs, perfect branch prediction, and a bank of PFUs for
// extended instructions. The committed path comes from the functional
// executor: with perfect prediction the fetched and committed paths
// coincide, so no wrong-path modelling is needed (Section 3.1).
//
// Pipeline per cycle: commit <= W oldest completed entries; issue <= W
// ready entries oldest-first subject to FU availability (and, for EXT, the
// decode-time PFU reconfiguration check); dispatch <= W fetched
// instructions into the RUU with register renaming; fetch <= W
// instructions along the true path through the I-cache/I-TLB, stopping at
// taken branches and on I-cache miss stalls.
//
// Memory model: loads compute latency through DL1/L2/memory at issue;
// a load may not issue before every older overlapping store has completed
// (store-to-load forwarding then costs an L1 hit); disambiguation uses the
// oracle addresses from the functional trace, i.e. a perfect dependence
// predictor. Stores occupy a memory port and complete in the L1 hit time.
#pragma once

#include <cstdint>
#include <exception>
#include <string_view>
#include <vector>

#include "asmkit/program.hpp"
#include "isa/extdef.hpp"
#include "obs/trace_event.hpp"
#include "sim/trace.hpp"
#include "uarch/branch.hpp"
#include "uarch/cache.hpp"
#include "uarch/config.hpp"
#include "uarch/pfu.hpp"

namespace t1000 {

struct SimStats {
  std::uint64_t cycles = 0;
  std::uint64_t committed = 0;

  CacheStats il1;
  CacheStats dl1;
  CacheStats l2;
  CacheStats itlb;
  CacheStats dtlb;
  PfuStats pfu;
  BranchStats branch;

  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(committed) / static_cast<double>(cycles);
  }
};

// --- Stall-cause attribution (observed runs) ---
//
// Every simulated cycle in which no instruction commits is charged to
// exactly one cause, classified at end of cycle from the state of the
// oldest uncommitted instruction (the RUU head — commit is in-order, so
// whatever blocks the head blocks the machine) or, when the window is
// empty, from the front end. The enumerator order is the serialization
// order; names via stall_cause_name().
enum class StallCause : int {
  kFetchBranch = 0,  // front end stopped at a taken branch / redirect
  kFetchMem,         // front end stalled on an I-cache / I-TLB miss
  kFrontend,         // fill bubble: head dispatched this cycle, or the
                     // window is empty while instructions are in fetch
  kRuuFull,          // window full behind a long-running head
  kMshrFull,         // head memory op blocked: no free miss slot
  kOperandWait,      // head waiting on producers / older overlapping stores
  kExtReconfig,      // head EXT waiting on its PFU reconfiguration
  kExecMem,          // head memory op in flight past the L1 hit time
  kExec,             // head executing a multi-cycle operation
  kDrain,            // window empty, program exhausted: trailing fetch
                     // latency draining the front end
};
inline constexpr int kNumStallCauses = 10;

// Stable snake_case name ("fetch_branch", ...), used by the breakdown
// JSON, the stall tables, and the results serialization.
std::string_view stall_cause_name(StallCause cause);

struct StallBreakdown {
  std::uint64_t cycles = 0;         // every simulated cycle
  std::uint64_t commit_cycles = 0;  // cycles that committed >= 1 instruction
  std::uint64_t causes[kNumStallCauses] = {};

  std::uint64_t stall_cycles() const { return cycles - commit_cycles; }
  // Invariant (pinned by tests): cause_cycles() == stall_cycles().
  std::uint64_t cause_cycles() const {
    std::uint64_t total = 0;
    for (const std::uint64_t c : causes) total += c;
    return total;
  }
  std::uint64_t of(StallCause cause) const {
    return causes[static_cast<int>(cause)];
  }
  // Element-wise accumulation (grid-level aggregation).
  void accumulate(const StallBreakdown& other);
};

// One PFU reconfiguration: `unit` loads `conf` over [start, ready),
// overwriting `evicted` (kInvalidConf for a cold unit).
struct PfuReconfigSpan {
  int unit = 0;
  ConfId conf = kInvalidConf;
  ConfId evicted = kInvalidConf;
  std::uint64_t start = 0;
  std::uint64_t ready = 0;
};

// Per-PFU occupancy summary derived from the decode-stage traffic.
struct PfuUnitCounters {
  std::uint64_t hits = 0;
  std::uint64_t reconfigurations = 0;
  std::uint64_t evictions = 0;     // reconfigurations over a live conf
  std::uint64_t busy_cycles = 0;   // cycles spent loading configurations
};

// Observation sink for one timing run. Set `want_trace` before the run to
// additionally record per-instruction lifecycle slices into `trace`
// (stall attribution and the PFU timeline are always filled). Observation
// never changes SimStats — the observed and unobserved paths are held to
// byte-identical statistics by tests.
struct SimObservation {
  bool want_trace = false;              // in: record event slices too
  StallBreakdown stalls;                // out
  std::vector<PfuReconfigSpan> pfu_spans;  // out: reconfiguration timeline
  std::vector<PfuUnitCounters> pfu_units;  // out: per-unit occupancy
  obs::TraceEventLog trace;             // out: filled when want_trace
};

// --- the SimRequest API ---
//
// One request struct describes any timing run; there is exactly one entry
// point per batch shape instead of positional overload families. The
// designated-initializer idiom reads as named arguments:
//
//   simulate({.program = &p, .machine = cfg});                 // direct
//   simulate({.program = &p, .trace = &t, .machine = cfg});    // replay
//   simulate({.program = &p, .machine = cfg, .observation = &obs});
struct SimRequest {
  // The program to time (required). For replay runs it must be the exact
  // program the trace was recorded from.
  const Program* program = nullptr;
  // EXT semantics; may be null when the program contains none. Consulted
  // for multi-cycle EXT latencies on both paths.
  const ExtInstTable* ext_table = nullptr;
  // Replay source: when set, the pipeline is driven by this committed
  // trace instead of an embedded functional executor. Cycle-exact with
  // the direct path — tests/integration/replay_differential_test.cpp
  // holds the two to byte-identical statistics — but the functional work
  // is paid once at record time, so one trace serves a whole grid of
  // machine configurations. Null selects execution-driven simulation.
  const CommittedTrace* trace = nullptr;
  MachineConfig machine;
  std::uint64_t max_cycles = 1ull << 32;  // SimError past this bound
  // Opts into the observability layer (stall-cause attribution, PFU
  // timeline, optional event trace). When null — the default — the
  // pipeline is instantiated with the no-op observer and the observation
  // code is compiled out entirely: the disabled path costs nothing and
  // observation never changes SimStats (pinned by tests).
  SimObservation* observation = nullptr;
};

// Runs one timing simulation described by `request` and returns the
// statistics. Throws SimError if the request is malformed, the program
// exceeds max_cycles, or the simulation misbehaves.
SimStats simulate(const SimRequest& request);

// Config-parallel batched replay: N machine configurations timed in one
// sweep of one committed trace. The trace is decoded once up front
// (sim/trace.hpp, DecodedTrace) and every lane replays the decoded form,
// so the per-step decode cost is paid once instead of N times. Each lane
// is an independent pipeline (its own caches, TLBs, predictor, PFU bank,
// RUU) — lane results are byte-identical to N sequential simulate()
// replay calls, in any lane order, which the batch differential tests
// pin.
struct BatchSimRequest {
  const Program* program = nullptr;        // required
  const ExtInstTable* ext_table = nullptr; // may be null
  const CommittedTrace* trace = nullptr;   // required; shared by all lanes
  // One lane per machine configuration to time. max_cycles and
  // observation are per-lane: observed and unobserved lanes mix freely.
  struct Lane {
    MachineConfig machine;
    std::uint64_t max_cycles = 1ull << 32;
    SimObservation* observation = nullptr;
  };
  std::vector<Lane> lanes;
};

// One lane's outcome. Lanes fail independently: a lane that exceeds its
// cycle bound (or otherwise throws) carries the exception here while the
// other lanes complete normally — the grid's per-run fault isolation
// passes straight through the batch.
struct BatchLaneResult {
  SimStats stats;            // valid when !error
  std::exception_ptr error;  // null on success
};

// Runs every lane of `request` and returns their results in lane order.
// Throws SimError only for a malformed request (missing program/trace);
// per-lane failures are reported in the corresponding BatchLaneResult.
std::vector<BatchLaneResult> simulate_replay_batch(
    const BatchSimRequest& request);

}  // namespace t1000
