// Analytical LUT-cost model for extended instructions (paper Section 6).
//
// The paper synthesizes each selected sequence to Xilinx XC4000 CLBs with
// the Foundation toolchain and reports the LUT counts (Figure 7; largest
// instruction 105 LUTs, PFU budget ~150). We substitute a word-level
// technology mapper for 4-input LUTs:
//
//   * ripple adds/subtracts/comparisons cost ~1 LUT per result bit (the
//     XC4000 dedicated carry logic keeps the carry chain out of the LUTs
//     proper, but each sum bit burns one function generator);
//   * chains of dependent two-input bitwise ops pack: a 4-input LUT absorbs
//     up to three dependent 2-input gates per bit slice, so a fused group
//     of <=3 logic levels costs one LUT per bit;
//   * constant shifts are wiring (0 LUTs); LUI is constant generation
//     (0 LUTs);
//   * bit widths are propagated from the (profiled) input widths, so narrow
//     operands yield the small implementations profiling promises.
//
// The model also reports logic depth in LUT levels, used to sanity-check
// the single-cycle PFU execution assumption.
#pragma once

#include <array>

#include "isa/extdef.hpp"

namespace t1000 {

// PFU capacity used throughout the paper's evaluation.
inline constexpr int kPfuLutBudget = 150;

struct LutEstimate {
  int luts = 0;
  int levels = 0;  // LUT levels on the critical path

  bool fits(int budget = kPfuLutBudget) const { return luts <= budget; }
};

// Estimates the implementation cost of `def` given the signed bit widths of
// its two register inputs (1..32; pass 32 when unknown).
LutEstimate estimate_luts(const ExtInstDef& def,
                          std::array<int, 2> input_widths);

// Width of each micro-op's result under the same propagation rules
// (exposed for tests and reporting). Index parallel to def.uops().
std::array<int, kMaxUops> propagate_widths(const ExtInstDef& def,
                                           std::array<int, 2> input_widths);

}  // namespace t1000
