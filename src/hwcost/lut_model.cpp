#include "hwcost/lut_model.hpp"

#include <algorithm>
#include <cassert>

#include "isa/alu.hpp"

namespace t1000 {
namespace {

int clamp_width(int w) { return std::clamp(w, 1, 32); }

// Structural classes for costing.
enum class CostClass {
  kArith,   // add/sub: carry chain, 1 LUT per result bit
  kLogic,   // bitwise 2-input: packable
  kCompare, // slt family: subtract-like comparator
  kWire,    // constant shifts, LUI: free
};

CostClass cost_class(Opcode op) {
  switch (op) {
    case Opcode::kAddu:
    case Opcode::kAddiu:
    case Opcode::kSubu:
      return CostClass::kArith;
    case Opcode::kAnd:
    case Opcode::kAndi:
    case Opcode::kOr:
    case Opcode::kOri:
    case Opcode::kXor:
    case Opcode::kXori:
    case Opcode::kNor:
      return CostClass::kLogic;
    case Opcode::kSlt:
    case Opcode::kSlti:
    case Opcode::kSltu:
    case Opcode::kSltiu:
      return CostClass::kCompare;
    case Opcode::kSll:
    case Opcode::kSrl:
    case Opcode::kSra:
    case Opcode::kLui:
      return CostClass::kWire;
    default:
      // Variable shifts / multiplies are not PFU candidates, but cost them
      // honestly if a caller asks: barrel shifter ~ 3*w, multiply ~ w*w/2.
      if (op == Opcode::kSllv || op == Opcode::kSrlv || op == Opcode::kSrav) {
        return CostClass::kArith;  // handled specially below
      }
      return CostClass::kArith;
  }
}

int result_width(const MicroOp& u, int wa, int wb) {
  switch (u.op) {
    case Opcode::kAddu:
    case Opcode::kSubu:
      return clamp_width(std::max(wa, wb) + 1);
    case Opcode::kAddiu:
      return clamp_width(std::max(wa, signed_width(extend_imm(u.op, u.imm))) + 1);
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kNor:
      return clamp_width(std::max(wa, wb));
    case Opcode::kAndi:
      // Zero-extended mask: result no wider than the mask (plus sign bit
      // headroom) nor the operand.
      return clamp_width(std::min(wa, signed_width(extend_imm(u.op, u.imm)) + 1));
    case Opcode::kOri:
    case Opcode::kXori:
      return clamp_width(std::max(wa, signed_width(extend_imm(u.op, u.imm))));
    case Opcode::kSll:
      return clamp_width(wa + u.imm);
    case Opcode::kSrl:
    case Opcode::kSra:
      return clamp_width(wa - u.imm);
    case Opcode::kSlt:
    case Opcode::kSltu:
    case Opcode::kSlti:
    case Opcode::kSltiu:
      return 2;  // 0 or 1
    case Opcode::kLui:
      return clamp_width(signed_width(static_cast<std::uint32_t>(u.imm & 0xFFFF)) + 16);
    default:
      return 32;
  }
}

}  // namespace

std::array<int, kMaxUops> propagate_widths(const ExtInstDef& def,
                                           std::array<int, 2> input_widths) {
  std::array<int, kMaxUops> widths{};
  auto slot_width = [&](std::int8_t slot) {
    if (slot < 0) return 1;
    if (slot < 2) return clamp_width(input_widths[static_cast<std::size_t>(slot)]);
    return widths[static_cast<std::size_t>(slot - 2)];
  };
  for (std::size_t i = 0; i < def.uops().size(); ++i) {
    const MicroOp& u = def.uops()[i];
    widths[i] = result_width(u, slot_width(u.a), slot_width(u.b));
  }
  return widths;
}

LutEstimate estimate_luts(const ExtInstDef& def,
                          std::array<int, 2> input_widths) {
  const std::array<int, kMaxUops> widths = propagate_widths(def, input_widths);
  auto slot_width = [&](std::int8_t slot) {
    if (slot < 0) return 1;
    if (slot < 2) return clamp_width(input_widths[static_cast<std::size_t>(slot)]);
    return widths[static_cast<std::size_t>(slot - 2)];
  };
  LutEstimate est;

  // Pack runs of dependent logic ops: up to three consecutive logic
  // micro-ops in chain order fuse into one LUT level (per bit slice).
  int pending_logic = 0;  // ops in the currently open logic group
  int group_width = 0;
  auto flush_logic = [&] {
    if (pending_logic > 0) {
      est.luts += group_width;
      est.levels += 1;
      pending_logic = 0;
      group_width = 0;
    }
  };

  for (std::size_t i = 0; i < def.uops().size(); ++i) {
    const MicroOp& u = def.uops()[i];
    const int w = widths[i];
    switch (cost_class(u.op)) {
      case CostClass::kLogic:
        if (pending_logic == 3) flush_logic();
        ++pending_logic;
        group_width = std::max(group_width, w);
        break;
      case CostClass::kArith:
        flush_logic();
        if (u.op == Opcode::kSllv || u.op == Opcode::kSrlv ||
            u.op == Opcode::kSrav) {
          est.luts += 3 * w;  // barrel shifter stages
          est.levels += 3;
        } else if (u.op == Opcode::kMul) {
          est.luts += w * w / 2;
          est.levels += 4;
        } else {
          est.luts += w;
          est.levels += 1;
        }
        break;
      case CostClass::kCompare: {
        flush_logic();
        // Comparator over the operand width, not the 1-bit result.
        const int wb = u.b >= 0 ? slot_width(u.b)
                                : signed_width(extend_imm(u.op, u.imm));
        est.luts += std::max(slot_width(u.a), wb);
        est.levels += 1;
        break;
      }
      case CostClass::kWire:
        // Routing only; a shift neither adds LUTs nor a logic level, but it
        // does break a logic-packing group (bits move between slices).
        flush_logic();
        break;
    }
  }
  flush_logic();
  return est;
}

}  // namespace t1000
