#include "obs/trace_event.hpp"

#include <algorithm>
#include <utility>

namespace t1000::obs {

void TraceEventLog::add(TraceEvent ev) { events_.push_back(std::move(ev)); }

void TraceEventLog::begin(std::string name, std::uint64_t ts, int pid,
                          int tid, Json args) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.ph = 'B';
  ev.ts = ts;
  ev.pid = pid;
  ev.tid = tid;
  ev.args = std::move(args);
  add(std::move(ev));
}

void TraceEventLog::end(std::uint64_t ts, int pid, int tid) {
  TraceEvent ev;
  ev.ph = 'E';
  ev.ts = ts;
  ev.pid = pid;
  ev.tid = tid;
  add(std::move(ev));
}

void TraceEventLog::instant(std::string name, std::uint64_t ts, int pid,
                            int tid, Json args) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.ph = 'i';
  ev.ts = ts;
  ev.pid = pid;
  ev.tid = tid;
  ev.args = std::move(args);
  add(std::move(ev));
}

void TraceEventLog::flow_begin(std::string name, std::uint64_t id,
                               std::uint64_t ts, int pid, int tid) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.ph = 's';
  ev.ts = ts;
  ev.pid = pid;
  ev.tid = tid;
  ev.id = id;
  add(std::move(ev));
}

void TraceEventLog::flow_end(std::string name, std::uint64_t id,
                             std::uint64_t ts, int pid, int tid) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.ph = 'f';
  ev.ts = ts;
  ev.pid = pid;
  ev.tid = tid;
  ev.id = id;
  add(std::move(ev));
}

void TraceEventLog::name_process(int pid, std::string name) {
  TraceEvent ev;
  ev.name = "process_name";
  ev.ph = 'M';
  ev.pid = pid;
  ev.args = Json::object();
  ev.args["name"] = Json(std::move(name));
  metadata_.push_back(std::move(ev));
}

void TraceEventLog::name_thread(int pid, int tid, std::string name) {
  TraceEvent ev;
  ev.name = "thread_name";
  ev.ph = 'M';
  ev.pid = pid;
  ev.tid = tid;
  ev.args = Json::object();
  ev.args["name"] = Json(std::move(name));
  metadata_.push_back(std::move(ev));
}

Json TraceEventLog::to_json() const {
  std::vector<const TraceEvent*> order;
  order.reserve(events_.size());
  for (const TraceEvent& ev : events_) order.push_back(&ev);
  std::stable_sort(order.begin(), order.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->ts < b->ts;
                   });

  const auto render = [](const TraceEvent& ev) {
    Json j = Json::object();
    j["name"] = Json(ev.name);
    j["ph"] = Json(std::string(1, ev.ph));
    j["ts"] = Json(ev.ts);
    j["pid"] = Json(ev.pid);
    j["tid"] = Json(ev.tid);
    if (ev.ph == 'i') j["s"] = Json("g");  // global-scope instant
    if (ev.ph == 's' || ev.ph == 'f') {
      j["id"] = Json(to_hex(ev.id));
      // Bind the finish to the enclosing slice so the arrow lands on the
      // consuming span rather than on whatever slice starts next.
      if (ev.ph == 'f') j["bp"] = Json("e");
    }
    if (!ev.args.is_null()) j["args"] = ev.args;
    return j;
  };

  Json arr = Json::array();
  for (const TraceEvent& ev : metadata_) arr.push_back(render(ev));
  for (const TraceEvent* ev : order) arr.push_back(render(*ev));
  Json doc = Json::object();
  doc["traceEvents"] = std::move(arr);
  return doc;
}

}  // namespace t1000::obs
