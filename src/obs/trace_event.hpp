// Chrome trace-event JSON emission (the "JSON Array Format" consumed by
// Perfetto and chrome://tracing).
//
// The pipeline observer records per-instruction lifecycle slices and PFU
// reconfiguration spans as they retire; this log collects the events and
// serializes them as {"traceEvents":[...]} with `ts` expressed in
// simulated cycles (one cycle renders as one microsecond in the viewer —
// only relative placement matters). Events are kept in emission order and
// stably sorted by `ts` at dump time, which preserves B/E nesting for
// same-timestamp pairs: an instruction's events are always appended
// begin-before-end, and slot/unit rows are exclusively occupied, so the
// per-tid sequence is balanced and monotone by construction (pinned by the
// schema test in tests/obs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/json.hpp"

namespace t1000::obs {

struct TraceEvent {
  std::string name;
  char ph = 'i';          // 'B','E','i','M','s','f' (Chrome format spec)
  std::uint64_t ts = 0;   // simulated cycle
  int pid = 0;            // track group (process)
  int tid = 0;            // track (thread)
  std::uint64_t id = 0;   // flow id for 's'/'f' events (0 = not a flow)
  Json args;              // null = omitted
};

class TraceEventLog {
 public:
  void begin(std::string name, std::uint64_t ts, int pid, int tid,
             Json args = Json());
  void end(std::uint64_t ts, int pid, int tid);
  void instant(std::string name, std::uint64_t ts, int pid, int tid,
               Json args = Json());
  // Flow events: a named arrow from the enclosing slice at the 's' point
  // to the enclosing slice at the 'f' point, correlated by `id` (the
  // serve layer uses the request's trace id, so one request's hops across
  // queue/runner/worker tracks render as one connected flow in Perfetto).
  void flow_begin(std::string name, std::uint64_t id, std::uint64_t ts,
                  int pid, int tid);
  void flow_end(std::string name, std::uint64_t id, std::uint64_t ts,
                int pid, int tid);
  // Metadata: names the track/track-group in the viewer.
  void name_process(int pid, std::string name);
  void name_thread(int pid, int tid, std::string name);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const std::vector<TraceEvent>& events() const { return events_; }

  // {"traceEvents":[...]}: metadata first, then slice/instant events
  // stably sorted by ts. Deterministic for a deterministic simulation.
  Json to_json() const;

 private:
  void add(TraceEvent ev);

  std::vector<TraceEvent> events_;
  std::vector<TraceEvent> metadata_;
};

}  // namespace t1000::obs
