// Prometheus text exposition (text/plain; version=0.0.4) of a
// MetricsRegistry.
//
// The registry's JSON dump stays the canonical machine-readable form (the
// serve API's existing consumers parse it); this renderer is a second,
// read-only view over the same instruments for Prometheus scrapers:
//
//  * counters   -> `<name>_total <value>` under `# TYPE ... counter`
//  * histograms -> cumulative `<name>_bucket{le="..."}` series (the
//                  registry stores per-bucket tallies; exposition
//                  accumulates them), a closing `le="+Inf"` bucket equal to
//                  `<name>_count`, plus `<name>_sum`
//  * spans      -> `<name>_count` / `<name>_sum` (seconds) under
//                  `# TYPE ... summary`
//
// Label convention: a registry instrument named
//   `family|key=value|key2=value2`
// renders as the `family` metric with that label set — e.g. the serve
// layer's per-route histograms register as
// `serve.route_ms|route=GET /v1/jobs`. Everything before the first '|' is
// the family; each remaining '|'-separated segment is one `key=value`
// pair (split on the first '='). Family and key are sanitized into the
// Prometheus grammar ([a-zA-Z_:] / [a-zA-Z_]; every other byte becomes
// '_'); values are escaped per the text format (backslash, double quote,
// newline).
//
// Values render with the exact same digits as the JSON path: instrument
// tallies are unsigned 64-bit and print as full decimal even above
// INT64_MAX (where the JSON dump switches to decimal strings) — pinned by
// the parity test in tests/obs/prometheus_test.cpp.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace t1000::obs {

// Point-in-time gauge appended to the exposition (the serve layer's cache
// disk-usage/budget readings, which live outside the registry).
struct PrometheusGauge {
  std::string name;  // same `family|key=value` convention as the registry
  double value = 0.0;
};

// Renders the whole registry (instruments sorted by name, as in to_json)
// followed by `gauges`, as one exposition document.
std::string render_prometheus(const MetricsRegistry& registry,
                              const std::vector<PrometheusGauge>& gauges = {});

// Exposed for tests: the name/label mangling pieces.
std::string prometheus_sanitize_name(std::string_view name);
std::string prometheus_escape_label_value(std::string_view value);
// Splits `family|k=v|...` into the sanitized family plus a rendered label
// block (`{k="v",...}` or empty).
void prometheus_split_name(std::string_view name, std::string* family,
                           std::string* labels);

}  // namespace t1000::obs
