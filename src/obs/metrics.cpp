#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace t1000::obs {
namespace {

// Json integers are signed 64-bit; a saturated (pegged) tally is above
// INT64_MAX, so render such values as decimal strings instead of throwing.
Json json_u64(std::uint64_t v) {
  if (v > static_cast<std::uint64_t>(INT64_MAX)) return Json(std::to_string(v));
  return Json(v);
}

[[noreturn]] void registration_conflict(std::string_view name,
                                        const char* detail) {
  std::fprintf(stderr,
               "obs::MetricsRegistry: conflicting registration of metric "
               "'%.*s' (%s)\n",
               static_cast<int>(name.size()), name.data(), detail);
  std::abort();
}

}  // namespace

void saturating_add(std::atomic<std::uint64_t>& cell, std::uint64_t n) {
  if (n == 0) return;
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  for (;;) {
    if (cur == ~0ull) return;  // already pegged
    const std::uint64_t next = cur > ~0ull - n ? ~0ull : cur + n;
    if (cell.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i) {
    if (bounds_[i] >= bounds_[i + 1]) {
      registration_conflict("<histogram>", "bucket bounds must be ascending");
    }
  }
  for (std::size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(std::uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // overflow = last
  saturating_add(buckets_[bucket], 1);
  saturating_add(count_, 1);
  saturating_add(sum_, value);
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    it = instruments_.emplace(std::string(name), Instrument{}).first;
    it->second.counter = std::make_unique<Counter>();
  } else if (!it->second.counter) {
    registration_conflict(name, "already registered as a different kind");
  }
  return it->second.counter.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::vector<std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    it = instruments_.emplace(std::string(name), Instrument{}).first;
    it->second.histogram = std::make_unique<Histogram>(std::move(bounds));
  } else if (!it->second.histogram) {
    registration_conflict(name, "already registered as a different kind");
  } else if (it->second.histogram->bounds() != bounds) {
    registration_conflict(name, "already registered with different buckets");
  }
  return it->second.histogram.get();
}

Span* MetricsRegistry::span(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    it = instruments_.emplace(std::string(name), Instrument{}).first;
    it->second.span = std::make_unique<Span>();
  } else if (!it->second.span) {
    registration_conflict(name, "already registered as a different kind");
  }
  return it->second.span.get();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return instruments_.size();
}

Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json doc = Json::object();
  for (const auto& [name, inst] : instruments_) {  // std::map: sorted
    Json j = Json::object();
    if (inst.counter) {
      j["type"] = Json("counter");
      j["value"] = json_u64(inst.counter->value());
    } else if (inst.histogram) {
      const Histogram& h = *inst.histogram;
      j["type"] = Json("histogram");
      Json bounds = Json::array();
      for (const std::uint64_t b : h.bounds()) bounds.push_back(json_u64(b));
      Json buckets = Json::array();
      for (std::size_t i = 0; i < h.num_buckets(); ++i) {
        buckets.push_back(json_u64(h.bucket_count(i)));
      }
      j["bounds"] = std::move(bounds);
      j["buckets"] = std::move(buckets);
      j["count"] = json_u64(h.count());
      j["sum"] = json_u64(h.sum());
    } else {
      j["type"] = Json("span");
      j["count"] = json_u64(inst.span->count());
      j["total_ns"] = json_u64(inst.span->total_ns());
    }
    doc[name] = std::move(j);
  }
  return doc;
}

}  // namespace t1000::obs
