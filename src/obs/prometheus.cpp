#include "obs/prometheus.hpp"

#include <cstdlib>

namespace t1000::obs {
namespace {

bool name_char_ok(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

// The JSON dump renders tallies above INT64_MAX as decimal strings; the
// exposition reuses those exact digits so the two paths can never
// disagree on a value.
std::string value_text(const Json& value) {
  return value.is_string() ? value.as_string() : value.dump();
}

std::uint64_t u64_of(const Json& value) {
  if (value.is_string()) {
    return std::strtoull(value.as_string().c_str(), nullptr, 10);
  }
  return value.as_uint();
}

std::string double_text(double value) { return Json(value).dump(); }

// Inserts one more label into a rendered label block ("{a=\"b\"}" or "").
std::string with_label(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  std::string out = labels;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

struct Sample {
  std::string family;  // sanitized
  std::string labels;  // rendered block or empty
};

void append_type_line(std::string& out, std::string* last_family,
                      const std::string& family, std::string_view type) {
  if (*last_family == family) return;
  out += "# TYPE ";
  out += family;
  out += ' ';
  out += type;
  out += '\n';
  *last_family = family;
}

}  // namespace

std::string prometheus_sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    out += name_char_ok(c, i == 0) ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string prometheus_escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void prometheus_split_name(std::string_view name, std::string* family,
                           std::string* labels) {
  const std::size_t bar = name.find('|');
  *family = prometheus_sanitize_name(name.substr(0, bar));
  labels->clear();
  if (bar == std::string_view::npos) return;
  std::string_view rest = name.substr(bar + 1);
  std::string inner;
  while (!rest.empty()) {
    const std::size_t next = rest.find('|');
    const std::string_view pair =
        next == std::string_view::npos ? rest : rest.substr(0, next);
    rest = next == std::string_view::npos ? std::string_view()
                                          : rest.substr(next + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    // A segment without '=' is a label with an empty value; the key is
    // still sanitized into the grammar (keys reuse the name rule minus
    // ':', which the sanitizer permits but Prometheus tolerates).
    const std::string_view key =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view()
                                     : pair.substr(eq + 1);
    if (!inner.empty()) inner += ',';
    inner += prometheus_sanitize_name(key);
    inner += "=\"";
    inner += prometheus_escape_label_value(value);
    inner += '"';
  }
  if (!inner.empty()) *labels = "{" + inner + "}";
}

std::string render_prometheus(const MetricsRegistry& registry,
                              const std::vector<PrometheusGauge>& gauges) {
  const Json doc = registry.to_json();
  std::string out;
  std::string last_family;
  for (const auto& [name, inst] : doc.members()) {
    Sample s;
    prometheus_split_name(name, &s.family, &s.labels);
    const std::string& type = inst.at("type").as_string();
    if (type == "counter") {
      const std::string family = s.family + "_total";
      append_type_line(out, &last_family, family, "counter");
      out += family;
      out += s.labels;
      out += ' ';
      out += value_text(inst.at("value"));
      out += '\n';
    } else if (type == "histogram") {
      append_type_line(out, &last_family, s.family, "histogram");
      const Json& bounds = inst.at("bounds");
      const Json& buckets = inst.at("buckets");
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        const std::uint64_t tally = u64_of(buckets.at(i));
        cumulative = cumulative > ~0ull - tally ? ~0ull : cumulative + tally;
        out += s.family;
        out += "_bucket";
        out += with_label(s.labels,
                          "le=\"" + value_text(bounds.at(i)) + "\"");
        out += ' ';
        out += std::to_string(cumulative);
        out += '\n';
      }
      // The +Inf bucket is the total observation count by definition.
      out += s.family;
      out += "_bucket";
      out += with_label(s.labels, "le=\"+Inf\"");
      out += ' ';
      out += value_text(inst.at("count"));
      out += '\n';
      out += s.family;
      out += "_sum";
      out += s.labels;
      out += ' ';
      out += value_text(inst.at("sum"));
      out += '\n';
      out += s.family;
      out += "_count";
      out += s.labels;
      out += ' ';
      out += value_text(inst.at("count"));
      out += '\n';
    } else {  // span -> summary (count + sum in seconds, no quantiles)
      append_type_line(out, &last_family, s.family, "summary");
      out += s.family;
      out += "_sum";
      out += s.labels;
      out += ' ';
      out += double_text(static_cast<double>(u64_of(inst.at("total_ns"))) /
                         1e9);
      out += '\n';
      out += s.family;
      out += "_count";
      out += s.labels;
      out += ' ';
      out += value_text(inst.at("count"));
      out += '\n';
    }
  }
  for (const PrometheusGauge& gauge : gauges) {
    Sample s;
    prometheus_split_name(gauge.name, &s.family, &s.labels);
    append_type_line(out, &last_family, s.family, "gauge");
    out += s.family;
    out += s.labels;
    out += ' ';
    out += double_text(gauge.value);
    out += '\n';
  }
  return out;
}

}  // namespace t1000::obs
