#include "obs/journal.hpp"

#include <cstdio>
#include <utility>

namespace t1000::obs {
namespace {

thread_local TraceContext g_current_context;

// Hex id rendering: ids are opaque tokens, and hex keeps them compact and
// greppable between the journal, the Perfetto flow ids, and the API.
Json hex_id(std::uint64_t id) { return Json(to_hex(id)); }

}  // namespace

const TraceContext& current_trace_context() { return g_current_context; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& context)
    : saved_(g_current_context) {
  g_current_context = context;
}

ScopedTraceContext::~ScopedTraceContext() { g_current_context = saved_; }

std::string journal_event_line(const JournalEvent& event) {
  Json j = Json::object();
  j["seq"] = Json(event.seq);
  j["ts_ms"] = Json(event.ts_ms);
  j["trace"] = hex_id(event.trace_id);
  j["span"] = hex_id(event.span_id);
  j["parent"] = hex_id(event.parent_id);
  j["kind"] = Json(std::string(1, event.kind));
  j["name"] = Json(event.name);
  if (!event.attrs.is_null()) j["attrs"] = event.attrs;
  return j.dump();
}

Journal::Journal() : Journal(Options()) {}

Journal::Journal(Options options)
    : options_(std::move(options)), start_(std::chrono::steady_clock::now()) {
  if (!options_.path.empty()) {
    file_ = std::fopen(options_.path.c_str(), "ab");
    if (file_ == nullptr) {
      ++disk_errors_;
    } else {
      const long pos = std::ftell(file_);
      file_bytes_ = pos > 0 ? static_cast<std::uint64_t>(pos) : 0;
    }
  }
}

Journal::~Journal() {
  if (file_ != nullptr) std::fclose(file_);
}

std::uint64_t Journal::new_id() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void Journal::write_line_locked(const std::string& line) {
  if (file_ == nullptr) return;
  if (options_.max_bytes > 0 &&
      file_bytes_ + line.size() > options_.max_bytes && file_bytes_ > 0) {
    // Bounded-size rotation: the active file moves to <path>.1 (replacing
    // the previous rotation) and a fresh file starts, so the journal never
    // holds more than ~2x max_bytes on disk.
    std::fclose(file_);
    file_ = nullptr;
    const std::string rotated = options_.path + ".1";
    if (std::rename(options_.path.c_str(), rotated.c_str()) != 0) {
      ++disk_errors_;
    } else {
      ++rotations_;
    }
    file_ = std::fopen(options_.path.c_str(), "wb");
    file_bytes_ = 0;
    if (file_ == nullptr) {
      ++disk_errors_;
      return;
    }
  }
  // One complete line per write, flushed immediately: a crash can tear at
  // most the final line, and concurrent appends (serialized by mu_) can
  // never interleave.
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF || std::fflush(file_) != 0) {
    ++disk_errors_;
    return;
  }
  file_bytes_ += line.size() + 1;
}

void Journal::append(JournalEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  event.seq = next_seq_++;
  event.ts_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
  write_line_locked(journal_event_line(event));
  ring_.push_back(std::move(event));
  if (options_.ring_capacity > 0 && ring_.size() > options_.ring_capacity) {
    ring_.pop_front();
    ++ring_dropped_;
  }
  ++appended_;
  cv_.notify_all();
}

std::uint64_t Journal::begin_span(const TraceContext& context,
                                  std::string name, Json attrs) {
  if (!context.active()) return 0;
  JournalEvent ev;
  ev.trace_id = context.trace_id;
  ev.span_id = new_id();
  ev.parent_id = context.span_id;
  ev.kind = 'B';
  ev.name = std::move(name);
  ev.attrs = std::move(attrs);
  const std::uint64_t id = ev.span_id;
  append(std::move(ev));
  return id;
}

void Journal::end_span(const TraceContext& context, std::uint64_t span_id,
                       std::string name, Json attrs) {
  if (!context.active() || span_id == 0) return;
  JournalEvent ev;
  ev.trace_id = context.trace_id;
  ev.span_id = span_id;
  ev.parent_id = context.span_id;
  ev.kind = 'E';
  ev.name = std::move(name);
  ev.attrs = std::move(attrs);
  append(std::move(ev));
}

void Journal::instant(const TraceContext& context, std::string name,
                      Json attrs) {
  if (!context.active()) return;
  JournalEvent ev;
  ev.trace_id = context.trace_id;
  ev.span_id = 0;
  ev.parent_id = context.span_id;
  ev.kind = 'i';
  ev.name = std::move(name);
  ev.attrs = std::move(attrs);
  append(std::move(ev));
}

Journal::SpanScope::SpanScope(Journal* journal, const TraceContext& context,
                              std::string name, Json attrs)
    : journal_(journal), context_(context), name_(std::move(name)) {
  if (journal_ == nullptr || !context_.active()) {
    journal_ = nullptr;
    return;
  }
  span_id_ = journal_->begin_span(context_, name_, std::move(attrs));
}

Journal::SpanScope::~SpanScope() {
  if (journal_ == nullptr) return;
  journal_->end_span(context_, span_id_, name_, std::move(end_attrs_));
}

std::vector<JournalEvent> Journal::poll(std::uint64_t after_seq,
                                        std::uint64_t trace_id,
                                        std::chrono::milliseconds wait) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto matches = [&] {
    for (const JournalEvent& ev : ring_) {
      if (ev.seq > after_seq &&
          (trace_id == 0 || ev.trace_id == trace_id)) {
        return true;
      }
    }
    return false;
  };
  if (!matches()) cv_.wait_for(lock, wait, matches);
  std::vector<JournalEvent> out;
  for (const JournalEvent& ev : ring_) {
    if (ev.seq > after_seq && (trace_id == 0 || ev.trace_id == trace_id)) {
      out.push_back(ev);
    }
  }
  return out;
}

std::uint64_t Journal::events_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

std::uint64_t Journal::ring_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_dropped_;
}

std::uint64_t Journal::disk_rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

std::uint64_t Journal::disk_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_errors_;
}

std::uint64_t Journal::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

}  // namespace t1000::obs
