// The harness metrics registry: named counters, fixed-bucket histograms,
// and scoped wall-clock spans.
//
// Instruments hang off a MetricsRegistry by name. Registration is
// get-or-create: asking twice for the same (name, kind, shape) returns the
// same instrument — which is what lets a long-lived registry observe many
// grid runs — while asking for an existing name with a *different* kind or
// bucket shape aborts the process (two subsystems silently sharing one
// metric is a bug worth dying for; pinned by a death test).
//
// Thread-safety: registration takes the registry mutex; the hot update
// paths (Counter::add, Histogram::observe, Span timing) are lock-free
// atomics, so the grid's worker pool can hammer shared instruments without
// serializing. Counters and histogram tallies *saturate* at UINT64_MAX
// instead of wrapping — a pegged counter is obviously wrong, a wrapped one
// silently lies.
//
// to_json() renders instruments sorted by name with fixed member order, so
// two registries that observed the same deterministic quantities dump
// byte-identical JSON (wall-clock spans are inherently nondeterministic in
// value, deterministic in shape).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "harness/json.hpp"

namespace t1000::obs {

// Saturating add on an atomic counter cell; shared by every instrument.
void saturating_add(std::atomic<std::uint64_t>& cell, std::uint64_t n);

class Counter {
 public:
  void add(std::uint64_t n = 1) { saturating_add(value_, n); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
// an implicit overflow bucket catches everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t value);

  std::size_t num_buckets() const { return bounds_.size() + 1; }
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

// Wall-clock span accumulator. Scope measures one interval RAII-style and
// folds it in (nanoseconds) on destruction.
class Span {
 public:
  class Scope {
   public:
    explicit Scope(Span* span)
        : span_(span), start_(std::chrono::steady_clock::now()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      span_->record_ns(ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
    }

   private:
    Span* span_;
    std::chrono::steady_clock::time_point start_;
  };

  Scope scope() { return Scope(this); }
  void record_ns(std::uint64_t ns) {
    saturating_add(count_, 1);
    saturating_add(total_ns_, ns);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create by name. Re-requesting an existing name with a
  // different instrument kind — or, for histograms, different bucket
  // bounds — prints the conflict to stderr and aborts.
  Counter* counter(std::string_view name);
  Histogram* histogram(std::string_view name,
                       std::vector<std::uint64_t> bounds);
  Span* span(std::string_view name);

  std::size_t size() const;

  // Deterministic dump: one member per instrument, sorted by name.
  //   counter:   {"type":"counter","value":N}
  //   histogram: {"type":"histogram","bounds":[...],"buckets":[...],
  //               "count":N,"sum":N}
  //   span:      {"type":"span","count":N,"total_ns":N}
  Json to_json() const;

 private:
  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<Span> span;
  };

  mutable std::mutex mu_;
  std::map<std::string, Instrument, std::less<>> instruments_;
};

}  // namespace t1000::obs
