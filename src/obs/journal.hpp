// Cross-layer request tracing: TraceContext propagation plus an
// append-only JSONL event journal.
//
// A TraceContext names one logical request — a serve job, a bench grid, a
// --local run — with a trace id, and one position inside it with a span
// id. The context is threaded *explicitly* across thread boundaries (the
// serve runner hands it to the grid via GridOptions, the grid workers
// stamp it on each run) and *implicitly* within a thread via a thread-local
// current-context stack (ScopedTraceContext), so deep layers — the
// experiment's decode/record/replay/verify phases, the cache operations —
// can attach child spans without every signature in between growing a
// tracing parameter.
//
// The Journal is the event sink: every begin/end/instant event is appended
// to a bounded in-memory ring (which the serve layer streams to clients as
// NDJSON, see /v1/jobs/<id>/events) and, when a path is configured, to an
// append-only JSONL file. Disk writes are crash-safe at line granularity:
// each event is rendered to one complete line and written with a single
// fwrite + fflush, so a crash can tear at most the final line and can
// never interleave events from concurrent writers (appends serialize under
// the journal mutex). The file is *bounded*: once the active file would
// exceed max_bytes it is rotated to `<path>.1` (replacing any previous
// rotation) and restarted, so a long-lived daemon holds at most ~2x
// max_bytes of journal on disk.
//
// Event schema (one JSON object per line, stable member order):
//   {"seq": N,            monotone per journal, never reused
//    "ts_ms": T,          milliseconds since journal construction
//    "trace": "hex",      trace id (16 hex digits)
//    "span": "hex",       this event's span id ("0" for instants)
//    "parent": "hex",     enclosing span id ("0" at the root)
//    "kind": "B"|"E"|"i", span begin / span end / instant
//    "name": "...",       event name, e.g. "run", "phase.replay"
//    "attrs": {...}}      optional structured payload (omitted when null)
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "harness/json.hpp"

namespace t1000::obs {

// One request's identity (trace_id) and the enclosing span (span_id) new
// child spans should parent under. Value-semantic and cheap to copy; a
// zero trace_id means "not tracing" and every emission gated on it is a
// no-op.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;  // parent for children; 0 = root

  bool active() const { return trace_id != 0; }
};

// The calling thread's current context. Layers that cannot receive a
// context by parameter (the experiment's phase timers, deep in the run
// path) read this; layers that own a scheduling boundary (grid workers,
// the serve runner) install it with ScopedTraceContext.
const TraceContext& current_trace_context();

// RAII install/restore of the thread-local current context.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

struct JournalEvent {
  std::uint64_t seq = 0;  // assigned by append()
  double ts_ms = 0.0;     // assigned by append(): ms since construction
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  char kind = 'i';  // 'B' span begin, 'E' span end, 'i' instant
  std::string name;
  Json attrs;  // null = omitted from the serialized line
};

// Renders one event as its canonical single-line JSON (no newline).
// Deterministic member order; shared by the disk writer, the streaming
// route, and the schema tests.
std::string journal_event_line(const JournalEvent& event);

class Journal {
 public:
  struct Options {
    std::string path;  // empty = in-memory only (ring still works)
    // Rotate the active file to `<path>.1` when the next line would push
    // it past this size.
    std::uint64_t max_bytes = 64ull << 20;
    // In-memory ring of recent events kept for subscribers; older events
    // are dropped from the ring (the disk file still has them).
    std::size_t ring_capacity = 8192;
  };

  Journal();  // in-memory only, default bounds
  explicit Journal(Options options);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Process-unique id mint (shared across trace and span ids).
  std::uint64_t new_id();

  // Stamps seq + ts_ms, appends to the ring, writes the line to disk (when
  // configured), and wakes subscribers. Thread-safe.
  void append(JournalEvent event);

  // Span emission helpers. begin_span returns the new span's id; the
  // matching end_span names the same id. instant() attaches a point event
  // to `context`'s span.
  std::uint64_t begin_span(const TraceContext& context, std::string name,
                           Json attrs = Json());
  void end_span(const TraceContext& context, std::uint64_t span_id,
                std::string name, Json attrs = Json());
  void instant(const TraceContext& context, std::string name,
               Json attrs = Json());

  // RAII begin/end pair; end attrs can be filled before destruction.
  class SpanScope {
   public:
    SpanScope(Journal* journal, const TraceContext& context, std::string name,
              Json attrs = Json());
    ~SpanScope();
    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;

    // The context children of this span should parent under.
    TraceContext context() const { return {context_.trace_id, span_id_}; }
    void set_end_attrs(Json attrs) { end_attrs_ = std::move(attrs); }

   private:
    Journal* journal_;  // null = inactive scope (no journal / no trace)
    TraceContext context_;
    std::uint64_t span_id_ = 0;
    std::string name_;
    Json end_attrs_;
  };

  // Copies ring events with seq > after_seq, filtered by trace id (0 =
  // all). Blocks up to `wait` for at least one matching event; returns
  // immediately when some already exist. An empty result means the wait
  // timed out.
  std::vector<JournalEvent> poll(std::uint64_t after_seq,
                                 std::uint64_t trace_id,
                                 std::chrono::milliseconds wait);

  // Observability of the journal itself.
  std::uint64_t events_appended() const;
  std::uint64_t ring_dropped() const;   // ring-capacity evictions
  std::uint64_t disk_rotations() const;
  std::uint64_t disk_errors() const;
  std::uint64_t last_seq() const;
  const std::string& path() const { return options_.path; }

 private:
  void write_line_locked(const std::string& line);

  Options options_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<JournalEvent> ring_;
  std::uint64_t next_seq_ = 1;
  std::atomic<std::uint64_t> next_id_{1};
  std::FILE* file_ = nullptr;
  std::uint64_t file_bytes_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t ring_dropped_ = 0;
  std::uint64_t rotations_ = 0;
  std::uint64_t disk_errors_ = 0;
};

}  // namespace t1000::obs
