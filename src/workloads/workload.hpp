// MediaBench-analog workload suite.
//
// The paper evaluates on eight MediaBench programs (epic/unepic, GSM
// encode/decode, G.721 encode/decode, MPEG-2 encode/decode) compiled to
// SimpleScalar PISA. Neither the binaries nor their inputs are available
// here, so each program is replaced by a synthetic kernel written in the
// T1000 assembly language that mimics its namesake's published
// computational character: the mix of dependent narrow-width ALU chains,
// memory traffic, and branching that drives both the selection algorithms
// and the timing results. Inputs are generated on the fly by deterministic
// LCGs, and every kernel folds its outputs into a $v0 checksum so rewritten
// programs can be validated against the original bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "asmkit/program.hpp"

namespace t1000 {

struct Workload {
  std::string name;
  std::string description;  // what the kernel mimics and why
  std::string source;       // assembly text
  std::uint64_t max_steps;  // generous functional-simulation bound
};

// All eight benchmarks, in the paper's Figure 2 order:
// unepic, epic, gsm_dec, gsm_enc, g721_dec, g721_enc, mpeg2_dec, mpeg2_enc.
const std::vector<Workload>& all_workloads();

// Extended suite beyond the paper: adpcm_enc, adpcm_dec, pegwit (a
// deliberately PFU-hostile wide-arithmetic negative control), jpeg_enc.
// Exercised by bench/extended_suite, not by the paper-figure benches.
const std::vector<Workload>& extended_workloads();

// Compiled-code suite: MiniC kernels built by the bundled t1000-cc
// compiler (currently the CI-verified cikernel). Their `source` is
// compiler output, produced lazily at first access; exercised by
// bench/compiled_kernels, t1000-verify --workloads, and the serve daemon.
const std::vector<Workload>& compiled_workloads();

// Lookup by name; returns nullptr when unknown.
const Workload* find_workload(std::string_view name);

// Assembles a workload's source.
Program workload_program(const Workload& w);

}  // namespace t1000
