// Extended suite: four more MediaBench-family analogs beyond the paper's
// eight. They broaden the evaluation with two additional codec shapes
// (IMA ADPCM), a JPEG-style transform coder, and - deliberately - a
// PFU-hostile public-key-crypto kernel whose 32-bit arithmetic defeats the
// narrow-width candidate filter, probing the *limits* of the approach.
#include "workloads/workloads_internal.hpp"

namespace t1000 {

Workload make_adpcm_enc() {
  Workload w;
  w.name = "adpcm_enc";
  w.description =
      "IMA ADPCM encoder analog: per-sample delta quantization against an "
      "adaptive step with table-driven index update; short chains inside "
      "heavy branching.";
  w.max_steps = 1u << 25;
  w.source = R"(
        .data
pcm:    .space 4096
codes:  .space 4096
idxtab: .word -1, -1, -1, -1, 2, 4, 6, 8
        .text
main:   li   $s7, 20          # blocks
        li   $s6, 0xADC0
        li   $s5, 0x41C6
        li   $v0, 0
        li   $s0, 0           # predictor
        li   $s1, 16          # step
        li   $s2, 0           # step index
frames:
        la   $t8, pcm
        li   $t9, 1024
gen:    mul  $s6, $s6, $s5
        addiu $s6, $s6, 12345
        srl  $t2, $s6, 8
        andi $t2, $t2, 0x1FFF
        sw   $t2, 0($t8)
        addiu $t8, $t8, 4
        addiu $t9, $t9, -1
        bgtz $t9, gen

        la   $t8, pcm
        la   $s3, codes
        li   $t9, 1024
sample: lw   $t2, 0($t8)
        # delta chain (2 ops): keep raw delta live for the update below
        subu $t2, $t2, $s0
        sra  $t3, $t2, 1
        li   $t4, 0
        bgez $t3, mag
        li   $t4, 8
        subu $t3, $zero, $t3
mag:    # 3-level quantization against the step (branchy)
        li   $t5, 0
        slt  $at, $t3, $s1
        bne  $at, $zero, qdone
        addiu $t5, $t5, 4
        subu $t3, $t3, $s1
        sra  $t6, $s1, 1
        slt  $at, $t3, $t6
        bne  $at, $zero, qdone
        addiu $t5, $t5, 2
qdone:  or   $t5, $t5, $t4
        sw   $t5, 0($s3)
        # code-fold chain (2 ops)
        xori $t1, $t5, 0x9
        andi $t1, $t1, 0xF
        addu $v0, $v0, $t1
        # predictor update chain (2 ops)
        sra  $t6, $t2, 3
        addu $s0, $t6, $zero
        # step-index table update (loads, branchy clamps)
        andi $t7, $t5, 0x7
        sll  $t7, $t7, 2
        la   $t1, idxtab
        addu $t1, $t1, $t7
        lw   $t7, 0($t1)
        addu $s2, $s2, $t7
        bgez $s2, idxlo
        li   $s2, 0
idxlo:  slti $at, $s2, 64
        bne  $at, $zero, idxok
        li   $s2, 63
idxok:  # new step = (index << 3) + 12 : chain left unfused by 2 readers
        sll  $s1, $s2, 3
        addiu $s1, $s1, 12
        addiu $t8, $t8, 4
        addiu $s3, $s3, 4
        addiu $t9, $t9, -1
        bgtz $t9, sample

        addiu $s7, $s7, -1
        bgtz $s7, frames
        halt
)";
  return w;
}

Workload make_adpcm_dec() {
  Workload w;
  w.name = "adpcm_dec";
  w.description =
      "IMA ADPCM decoder analog: reconstructs samples from 4-bit codes with "
      "an adaptive step; slightly more fusable than the encoder.";
  w.max_steps = 1u << 25;
  w.source = R"(
        .data
codes:  .space 4096
out:    .space 4096
        .text
main:   li   $s7, 20
        li   $s6, 0xDCD0
        li   $s5, 0x41C6
        li   $v0, 0
        li   $s0, 0           # predictor
        li   $s1, 16          # step
frames:
        la   $t8, codes
        li   $t9, 1024
gen:    mul  $s6, $s6, $s5
        addiu $s6, $s6, 12345
        srl  $t2, $s6, 10
        andi $t2, $t2, 0xF
        sw   $t2, 0($t8)
        addiu $t8, $t8, 4
        addiu $t9, $t9, -1
        bgtz $t9, gen

        la   $t8, codes
        la   $s3, out
        li   $t9, 1024
sample: lw   $t2, 0($t8)
        andi $t3, $t2, 0x7
        andi $t4, $t2, 0x8
        # magnitude reconstruction chain (3 ops): delta = (m*step)/4-ish
        sll  $t5, $t3, 2
        addu $t5, $t5, $s1
        sra  $t5, $t5, 2
        beq  $t4, $zero, plus
        subu $t5, $zero, $t5
plus:   # predictor accumulate chain (2 ops)
        addu $s0, $s0, $t5
        sw   $s0, 0($s3)
        # output shaping chain (2 ops)
        xori $t6, $t5, 0x15
        andi $t6, $t6, 0xFFF
        addu $v0, $v0, $t6
        # step adaptation (branchy)
        slti $at, $t3, 4
        beq  $at, $zero, grow
        addiu $s1, $s1, -2
        bgtz $s1, stepok
        li   $s1, 2
        j    stepok
grow:   addiu $s1, $s1, 8
        slti $at, $s1, 1024
        bne  $at, $zero, stepok
        li   $s1, 1023
stepok: addiu $t8, $t8, 4
        addiu $s3, $s3, 4
        addiu $t9, $t9, -1
        bgtz $t9, sample

        addiu $s7, $s7, -1
        bgtz $s7, frames
        halt
)";
  return w;
}

Workload make_pegwit() {
  Workload w;
  w.name = "pegwit";
  w.description =
      "Public-key crypto analog (pegwit-like): GF(2^n) multiply/reduce over "
      "full 32-bit words. Nearly every value exceeds the 18-bit candidate "
      "width, so the selective algorithm should find almost nothing - a "
      "deliberate negative control for the approach.";
  w.max_steps = 1u << 25;
  w.source = R"(
        .data
msg:    .space 4096
        .text
main:   li   $s7, 16          # blocks
        li   $s6, 0x9E37
        li   $s5, 0x41C6
        li   $v0, 0
        li   $s4, 0x04C11DB7  # CRC-32-like feedback polynomial
frames:
        la   $t8, msg
        li   $t9, 1024
gen:    mul  $s6, $s6, $s5
        addiu $s6, $s6, 12345
        sw   $s6, 0($t8)      # full-width words
        addiu $t8, $t8, 4
        addiu $t9, $t9, -1
        bgtz $t9, gen

        # ---- GF-style multiply-accumulate over 32-bit state ----
        la   $t8, msg
        li   $t9, 1024
        li   $s0, 0xFFFFFFFF  # running digest (wide)
mix:    lw   $t2, 0($t8)
        xor  $s0, $s0, $t2
        # one reduction round: shift left, conditional poly xor (wide ops)
        bltz $s0, red
        sll  $s0, $s0, 1
        j    mixed
red:    sll  $s0, $s0, 1
        xor  $s0, $s0, $s4
mixed:  srl  $t3, $s0, 16
        xor  $s0, $s0, $t3
        addu $v0, $v0, $s0
        addiu $t8, $t8, 4
        addiu $t9, $t9, -1
        bgtz $t9, mix

        addiu $s7, $s7, -1
        bgtz $s7, frames
        halt
)";
  return w;
}

Workload make_jpeg_enc() {
  Workload w;
  w.name = "jpeg_enc";
  w.description =
      "JPEG encoder analog: blocked forward transform + quantization chains "
      "feeding a branchy zero-run/size coder, between mpeg2_enc and epic in "
      "character.";
  w.max_steps = 1u << 25;
  w.source = R"(
        .data
pix:    .space 8192
coef:   .space 8192
        .text
main:   li   $s7, 8
        li   $s6, 0x1093
        li   $s5, 0x41C6
        li   $v0, 0
frames:
        la   $t8, pix
        li   $t9, 2048
gen:    mul  $s6, $s6, $s5
        addiu $s6, $s6, 12345
        srl  $t2, $s6, 14
        andi $t2, $t2, 0xFF
        sw   $t2, 0($t8)
        addiu $t8, $t8, 4
        addiu $t9, $t9, -1
        bgtz $t9, gen

        # ---- transform + quantize: three chain shapes per pair ----
        la   $t8, pix
        la   $s3, coef
        li   $t9, 1024
fdct:   lw   $t2, 0($t8)
        lw   $t3, 4($t8)
        # sum path chain (3 ops)
        addu $t4, $t2, $t3
        sll  $t4, $t4, 1
        addiu $t4, $t4, 1
        # diff path chain (3 ops)
        subu $t5, $t2, $t3
        sll  $t5, $t5, 1
        addiu $t5, $t5, 1
        # quantize chain (3 ops) on the sum path
        sra  $t6, $t4, 4
        xori $t6, $t6, 0x13
        andi $t6, $t6, 0x3FF
        sw   $t6, 0($s3)
        sw   $t5, 4($s3)
        addu $v0, $v0, $t6
        addiu $t8, $t8, 8
        addiu $s3, $s3, 8
        addiu $t9, $t9, -1
        bgtz $t9, fdct

        # ---- run/size entropy coder (branchy, table-free) ----
        la   $s3, coef
        li   $t9, 2048
        li   $t0, 0           # zero run
scan:   lw   $t2, 0($s3)
        bne  $t2, $zero, emit
        addiu $t0, $t0, 1
        j    scannext
emit:   # size class of the magnitude by successive halving (branchy)
        andi $t2, $t2, 0xFFFF   # magnitude field (keeps the loop finite)
        li   $t3, 0
size:   beq  $t2, $zero, coded
        srl  $t2, $t2, 1
        addiu $t3, $t3, 1
        j    size
coded:  addu $v0, $v0, $t0
        addu $v0, $v0, $t3
        li   $t0, 0
scannext:
        addiu $s3, $s3, 4
        addiu $t9, $t9, -1
        bgtz $t9, scan

        addiu $s7, $s7, -1
        bgtz $s7, frames
        halt
)";
  return w;
}

const std::vector<Workload>& extended_workloads() {
  static const std::vector<Workload> suite = {
      make_adpcm_enc(), make_adpcm_dec(), make_pegwit(), make_jpeg_enc()};
  return suite;
}

}  // namespace t1000
