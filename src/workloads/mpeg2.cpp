// MPEG-2 video codec analogs.
//
// mpeg2dec's hot paths are the 8x8 inverse DCT butterflies and motion
// compensation (block adds with saturation); mpeg2enc adds the forward
// transform, quantization, and a branchy zigzag/rate pass. Both mix
// medium-length dependent rounding/scaling chains with substantial block
// memory traffic, landing them between GSM (chain-dominated) and G.721
// (branch-dominated) - exactly their position in the paper's Figure 2.
#include "workloads/workloads_internal.hpp"

namespace t1000 {

Workload make_mpeg2_dec() {
  Workload w;
  w.name = "mpeg2_dec";
  w.description =
      "MPEG-2 decoder analog: IDCT butterfly passes with rounding chains "
      "plus motion compensation with saturating adds over 8x8 blocks.";
  w.max_steps = 1u << 25;
  w.source = R"(
        .data
blocks: .space 8192           # 32 coded 8x8 blocks (words)
refs:   .space 8192           # reference (prediction) blocks
outb:   .space 8192
        .text
main:   li   $s7, 12          # pictures
        li   $s6, 0x0DEC
        li   $s5, 0x41C6
        li   $v0, 0
frames:
        # ---- entropy-decode coefficients (synthesized) ----
        la   $t8, blocks
        la   $s3, refs
        li   $t9, 2048
gen:    mul  $s6, $s6, $s5
        addiu $s6, $s6, 12345
        srl  $t2, $s6, 12
        andi $t2, $t2, 0x7FF
        sw   $t2, 0($t8)
        srl  $t3, $s6, 4
        andi $t3, $t3, 0xFF
        sw   $t3, 0($s3)
        addiu $t8, $t8, 4
        addiu $s3, $s3, 4
        addiu $t9, $t9, -1
        bgtz $t9, gen

        # ---- IDCT butterflies + motion compensation: one dominant loop,
        # ---- butterflies unrolled x2 (each chain shape appears at two
        # ---- sites per iteration, sharing one PFU configuration)
        la   $t8, blocks
        la   $s3, refs
        la   $s2, outb
        li   $t9, 512         # iterations of the unrolled body
idct:   lw   $t2, 0($t8)
        lw   $t3, 4($t8)
        # chain A (3 ops): s = (a + b + 4) >> 3
        addu $t4, $t2, $t3
        addiu $t4, $t4, 4
        sra  $t4, $t4, 3
        # chain B (3 ops): d = (a - b + 4) >> 3
        subu $t5, $t2, $t3
        addiu $t5, $t5, 4
        sra  $t5, $t5, 3
        sw   $t4, 0($t8)
        sw   $t5, 4($t8)
        # chain C (2 ops): parity fold of the two outputs
        xor  $t6, $t4, $t5
        andi $t6, $t6, 0x3FF
        addu $v0, $v0, $t6
        lw   $t2, 8($t8)
        lw   $t3, 12($t8)
        # second unrolled copy of chains A/B/C (same configurations)
        addu $t4, $t2, $t3
        addiu $t4, $t4, 4
        sra  $t4, $t4, 3
        subu $t5, $t2, $t3
        addiu $t5, $t5, 4
        sra  $t5, $t5, 3
        sw   $t4, 8($t8)
        sw   $t5, 12($t8)
        xor  $t6, $t4, $t5
        andi $t6, $t6, 0x3FF
        addu $v0, $v0, $t6
        # motion compensation for this pair: chain D (4 ops) mixes the
        # reconstructed sample with the reference prediction and saturates
        lw   $t3, 0($s3)
        addu $t4, $t4, $t3
        addiu $t4, $t4, 1
        sra  $t4, $t4, 1
        andi $t4, $t4, 0xFF
        sw   $t4, 0($s2)
        addu $v0, $v0, $t4
        addiu $t8, $t8, 16
        addiu $s3, $s3, 4
        addiu $s2, $s2, 4
        addiu $t9, $t9, -1
        bgtz $t9, idct

        addiu $s7, $s7, -1
        bgtz $s7, frames
        halt
)";
  return w;
}

Workload make_mpeg2_enc() {
  Workload w;
  w.name = "mpeg2_enc";
  w.description =
      "MPEG-2 encoder analog: forward transform and quantization chains "
      "plus a branchy zigzag/rate-control scan.";
  w.max_steps = 1u << 25;
  w.source = R"(
        .data
pixels: .space 8192           # input blocks
coefs:  .space 8192
        .text
main:   li   $s7, 10          # pictures
        li   $s6, 0x0E4C
        li   $s5, 0x41C6
        li   $v0, 0
        li   $t1, 0x40000     # bits estimate, accumulated across pictures
                              # (wide value: the rate chain is not fusable)
frames:
        # ---- capture pixel blocks ----
        la   $t8, pixels
        li   $t9, 2048
gen:    mul  $s6, $s6, $s5
        addiu $s6, $s6, 12345
        srl  $t2, $s6, 14
        andi $t2, $t2, 0xFF
        sw   $t2, 0($t8)
        addiu $t8, $t8, 4
        addiu $t9, $t9, -1
        bgtz $t9, gen

        # ---- forward transform butterflies ----
        la   $t8, pixels
        la   $s3, coefs
        li   $t9, 1024
fdct:   lw   $t2, 0($t8)
        lw   $t3, 4($t8)
        # chain A (2 ops): sum path
        addu $t4, $t2, $t3
        sll  $t4, $t4, 2
        # chain B (2 ops): difference path
        subu $t5, $t2, $t3
        sll  $t5, $t5, 2
        sw   $t4, 0($s3)
        sw   $t5, 4($s3)
        # chain D (2 ops): energy fold
        xor  $t6, $t4, $t5
        andi $t6, $t6, 0x1FFF
        addu $v0, $v0, $t6
        # chain C (4 ops): quantize the sum-path coefficient in place
        addiu $t7, $t4, 8
        sra  $t7, $t7, 4
        xori $t7, $t7, 0x21
        andi $t7, $t7, 0x3FF
        sw   $t7, 0($s3)
        addu $v0, $v0, $t7
        addiu $t8, $t8, 8
        addiu $s3, $s3, 8
        addiu $t9, $t9, -1
        bgtz $t9, fdct

        # ---- zigzag / rate scan: branchy ----
        la   $s3, coefs
        li   $t9, 2048
        li   $t0, 0           # run
zig:    lw   $t2, 0($s3)
        bne  $t2, $zero, code
        addiu $t0, $t0, 1
        j    zignext
code:   addu $t1, $t1, $t0
        addiu $t1, $t1, 5
        li   $t0, 0
zignext:
        addiu $s3, $s3, 4
        addiu $t9, $t9, -1
        bgtz $t9, zig
        addu $v0, $v0, $t1

        addiu $s7, $s7, -1
        bgtz $s7, frames
        halt
)";
  return w;
}

}  // namespace t1000
