// GSM 06.10 full-rate codec analogs.
//
// The real gsm_decode spends most of its time in the short-term synthesis
// lattice filter and the long-term postfilter: tight per-sample loops of
// dependent shift/add/mask arithmetic on 13..16-bit values with almost no
// memory traffic beyond the sample streams. That structure - long fusable
// chains, narrow widths - is why the paper reports its best speedups here
// (44% greedy-unlimited, ~27% selective). The analogs reproduce it with
// three distinct chain shapes in the synthesis loop and two in the
// postfilter, so a 2-PFU machine must choose (and a greedy mapping
// thrashes), while 4 PFUs cover everything.
#include "workloads/workloads_internal.hpp"

namespace t1000 {

Workload make_gsm_dec() {
  Workload w;
  w.name = "gsm_dec";
  w.description =
      "GSM full-rate decoder analog: short-term synthesis lattice + "
      "long-term postfilter over 160-sample frames; dominated by dependent "
      "narrow shift/add chains (three distinct shapes in the hot loop).";
  w.max_steps = 1u << 24;
  w.source = R"(
        .data
frame:  .space 640            # 160 words: received residual
hist:   .space 640            # synthesis output history
        .text
main:   li   $s7, 36          # frames
        li   $s6, 0x1234      # LCG state
        li   $s5, 0x41C6      # LCG multiplier
        li   $v0, 0
        li   $s0, 0           # synthesis filter state
        li   $s4, 0           # postfilter state
frames:
        # ---- unpack received residual (LCG, 13-bit samples) ----
        la   $t8, frame
        li   $t9, 160
gen:    mul  $s6, $s6, $s5
        addiu $s6, $s6, 12345
        srl  $t2, $s6, 7      # wide value: not a PFU candidate
        andi $t2, $t2, 0x1FFF
        sw   $t2, 0($t8)
        addiu $t8, $t8, 4
        addiu $t9, $t9, -1
        bgtz $t9, gen

        # ---- synthesis + postfilter: one dominant per-sample loop with
        # ---- five distinct chain shapes (a 2-PFU machine must choose)
        la   $t8, frame
        la   $s3, hist
        li   $t9, 160
synth:  lw   $t2, 0($t8)
        # chain A (7 ops): lattice reflection step
        sll  $t3, $t2, 2
        addu $t3, $t3, $s0
        sra  $t3, $t3, 1
        addiu $t3, $t3, 33
        xori $t3, $t3, 0x2A
        andi $t3, $t3, 0x3FFF
        addu $t3, $t3, $t2
        sw   $t3, 0($s3)
        # chain B (3 ops): filter-state update
        sra  $t4, $t3, 2
        andi $t4, $t4, 0xFFF
        addu $s0, $t4, $zero
        # chain C (2 ops): de-emphasis tap
        sll  $t6, $t2, 1
        xor  $t6, $t6, $t3
        addu $v0, $v0, $t6
        # reflection-coefficient product (multiply: not PFU-fusable)
        mul  $t7, $t3, $t2
        srl  $t7, $t7, 9
        addu $v0, $v0, $t7
        # chain D (4 ops): long-term postfilter tap
        sll  $t5, $t3, 1
        subu $t5, $t5, $s4
        sra  $t5, $t5, 3
        addiu $t5, $t5, 5
        # chain E (2 ops): postfilter smoothing
        sra  $t7, $t5, 1
        addu $t7, $t7, $t2
        addu $v0, $v0, $t7
        andi $s4, $t5, 0xFFF
        addiu $t8, $t8, 4
        addiu $s3, $s3, 4
        addiu $t9, $t9, -1
        bgtz $t9, synth

        addiu $s7, $s7, -1
        bgtz $s7, frames
        halt
)";
  return w;
}

Workload make_gsm_enc() {
  Workload w;
  w.name = "gsm_enc";
  w.description =
      "GSM full-rate encoder analog: preprocessing + LPC-residual chains "
      "plus a branchy long-term-prediction lag search, diluting the fusable "
      "fraction relative to the decoder.";
  w.max_steps = 1u << 24;
  w.source = R"(
        .data
frame:  .space 640            # 160-sample input frame
resid:  .space 640            # short-term residual
        .text
main:   li   $s7, 26          # frames
        li   $s6, 0xBEEF
        li   $s5, 0x41C6
        li   $v0, 0
        li   $s0, 0           # pre-emphasis state
frames:
        # ---- capture input samples ----
        la   $t8, frame
        li   $t9, 160
gen:    mul  $s6, $s6, $s5
        addiu $s6, $s6, 12345
        srl  $t2, $s6, 9
        andi $t2, $t2, 0x1FFF
        sw   $t2, 0($t8)
        addiu $t8, $t8, 4
        addiu $t9, $t9, -1
        bgtz $t9, gen

        # ---- preprocess + short-term analysis: two chains ----
        la   $t8, frame
        la   $s3, resid
        li   $t9, 160
pre:    lw   $t2, 0($t8)
        # chain A (6 ops): pre-emphasis + scale
        sll  $t3, $t2, 1
        subu $t3, $t3, $s0
        sra  $t3, $t3, 2
        addiu $t3, $t3, 17
        andi $t3, $t3, 0x3FFF
        addu $t3, $t3, $t2
        sw   $t3, 0($s3)
        # chain B (3 ops): update pre-emphasis state
        sra  $t4, $t3, 1
        andi $t4, $t4, 0x1FFF
        addu $s0, $t4, $zero
        # chain C (3 ops): weighting tap
        sll  $t6, $t2, 2
        xor  $t6, $t6, $t3
        andi $t6, $t6, 0x1FFF
        addu $v0, $v0, $t6
        # autocorrelation energy term (multiply: not PFU-fusable)
        mul  $t7, $t3, $t3
        srl  $t7, $t7, 11
        addu $v0, $v0, $t7
        # quantizer family sharing a 3-op core P = sra/addiu/xori (the
        # paper's Figure 3 situation: one PFU configuration can serve all
        # three when PFUs are scarce)
        # chain D1 = P + andi tail
        sra  $t5, $t3, 3
        addiu $t5, $t5, 2
        xori $t5, $t5, 0x55
        andi $t5, $t5, 0xFFF
        sw   $t5, 4($s3)
        # chain D2 = P + addu tail
        sra  $t6, $t3, 3
        addiu $t6, $t6, 2
        xori $t6, $t6, 0x55
        addu $t6, $t6, $t3
        addu $v0, $v0, $t6
        # chain D3 = P alone (maximal)
        sra  $t7, $t3, 3
        addiu $t7, $t7, 2
        xori $t7, $t7, 0x55
        addu $v0, $v0, $t7
        addiu $t8, $t8, 4
        addiu $s3, $s3, 4
        addiu $t9, $t9, -1
        bgtz $t9, pre

        # ---- LTP lag search: branchy, few candidates ----
        li   $s1, 16          # candidate lags
        li   $s2, 0           # best score
ltp:    la   $t8, resid
        li   $t9, 16          # correlation window
        li   $t0, 0           # accumulated score
corr:   lw   $t2, 0($t8)
        lw   $t3, 128($t8)
        subu $t4, $t2, $t3
        bltz $t4, neg
        addu $t0, $t0, $t4
        j    corrnext
neg:    subu $t0, $t0, $t4
corrnext:
        addiu $t8, $t8, 4
        addiu $t9, $t9, -1
        bgtz $t9, corr
        blt  $t0, $s2, notbest
        addu $s2, $t0, $zero
notbest:
        addiu $s1, $s1, -1
        bgtz $s1, ltp
        addu $v0, $v0, $s2

        addiu $s7, $s7, -1
        bgtz $s7, frames
        halt
)";
  return w;
}

}  // namespace t1000
