// Compiled-code workload registry: MiniC kernels run through the bundled
// t1000-cc compiler and registered as first-class workloads.
//
// The paper's actual setting is compiler output (MediaBench built by gcc
// for SimpleScalar), not hand-written assembly. The CI pipeline has long
// verified one such kernel end-to-end via `t1000-cc cikernel.c` +
// `t1000-verify`; registering the same kernel here makes it a bundled
// workload like the MediaBench analogs, so it rides the grid engine, the
// result cache, batched replay, the verify sweep, and bench/compiled_kernels
// without any file-shuffling in CI.
//
// Compilation happens once, lazily, at first registry access — the source
// is the ground truth, the assembly is derived, and the workload hash (and
// therefore the cache key) is the hash of the *compiled* program, exactly
// as for a user-supplied t1000-cc object.
#include "minic/minic.hpp"
#include "workloads/workload.hpp"

namespace t1000 {

namespace {

// Byte-for-byte the kernel CI compiles and verifies (see the "MiniC
// compile + verify end-to-end" job): a frame fill plus a dependent
// narrow-width filter chain, the shape the selector mines best.
constexpr const char* kCiKernelSource = R"(
int frame[128];
int main() {
  int state = 0;
  int acc = 0;
  for (int r = 0; r < 30; r = r + 1) {
    for (int i = 0; i < 128; i = i + 1) {
      frame[i] = (i * 29 + r * 7) & 0xFFF;
    }
    for (int i = 0; i < 128; i = i + 1) {
      int x = frame[i];
      int y = ((x << 2) + state >> 1) + 21;
      y = y + x;
      state = (y >> 2) & 0x7FF;
      acc = acc + (y ^ (x << 1));
    }
  }
  return acc & 0xFFFFFF;
}
)";

Workload make_cc_cikernel() {
  Workload w;
  w.name = "cc_cikernel";
  w.description =
      "MiniC-compiled CI kernel: frame fill + dependent narrow-width "
      "filter chain, compiled by t1000-cc (the paper's compiler-output "
      "setting)";
  w.source = minic::compile_to_assembly(kCiKernelSource);
  w.max_steps = 1u << 26;
  return w;
}

}  // namespace

const std::vector<Workload>& compiled_workloads() {
  static const std::vector<Workload> suite = {make_cc_cikernel()};
  return suite;
}

}  // namespace t1000
