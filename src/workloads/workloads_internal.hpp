// Internal: per-benchmark factory declarations for the workload registry.
#pragma once

#include "workloads/workload.hpp"

namespace t1000 {

Workload make_unepic();
Workload make_epic();
Workload make_gsm_dec();
Workload make_gsm_enc();
Workload make_g721_dec();
Workload make_g721_enc();
Workload make_mpeg2_dec();
Workload make_mpeg2_enc();
Workload make_adpcm_enc();
Workload make_adpcm_dec();
Workload make_pegwit();
Workload make_jpeg_enc();

}  // namespace t1000
