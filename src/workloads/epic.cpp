// EPIC (Efficient Pyramid Image Coder) analogs.
//
// epic builds a Laplacian-style pyramid (pairwise lowpass filtering and
// downsampling), quantizes the band-pass coefficients, and run-length codes
// the result; unepic inverts the process (dequantize, upsample,
// interpolate, clamp). Both mix short fusable shift/add chains with real
// memory traffic and a branchy coding loop, which is why the paper sees
// mid-range speedups for the pair.
#include "workloads/workloads_internal.hpp"

namespace t1000 {

Workload make_epic() {
  Workload w;
  w.name = "epic";
  w.description =
      "Pyramid image encoder analog: 3-level lowpass/highpass decomposition "
      "with quantization chains and a branchy zero-run coder.";
  w.max_steps = 1u << 24;
  w.source = R"(
        .data
image:  .space 8192           # 2048-word signal
pyr:    .space 8192           # pyramid storage
hp:     .space 8192           # high-pass scratch
        .text
main:   li   $s7, 10          # passes (frames)
        li   $s6, 0x0EA7
        li   $s5, 0x41C6
        li   $v0, 0
frames:
        # ---- synthesize the input scanline ----
        la   $t8, image
        li   $t9, 2048
gen:    mul  $s6, $s6, $s5
        addiu $s6, $s6, 12345
        srl  $t2, $s6, 10
        andi $t2, $t2, 0x0FFF
        sw   $t2, 0($t8)
        addiu $t8, $t8, 4
        addiu $t9, $t9, -1
        bgtz $t9, gen

        # ---- 3 pyramid levels: lowpass/highpass + quantize ----
        li   $s0, 3           # level counter
        li   $s1, 1024        # pairs at this level
level:  la   $t8, image
        la   $s3, pyr
        la   $s2, hp
        move $t9, $s1
pairs:  lw   $t2, 0($t8)
        lw   $t3, 4($t8)
        # chain A (2 ops): lowpass = (a+b)>>1
        addu $t4, $t2, $t3
        sra  $t4, $t4, 1
        sw   $t4, 0($t8)      # downsampled in place
        # chain B (2 ops): highpass = (a-b)>>1
        subu $t5, $t2, $t3
        sra  $t5, $t5, 1
        sw   $t5, 0($s2)      # raw band kept for rate estimation
        # chain C (3 ops): quantize the band-pass coefficient
        addiu $t6, $t5, 4
        sra  $t6, $t6, 3
        andi $t6, $t6, 0x3FF
        sw   $t6, 0($s3)
        addu $v0, $v0, $t6
        addiu $t8, $t8, 8
        addiu $s3, $s3, 4
        addiu $s2, $s2, 4
        addiu $t9, $t9, -1
        bgtz $t9, pairs
        sra  $s1, $s1, 1      # half as many pairs next level
        addiu $s0, $s0, -1
        bgtz $s0, level

        # ---- zero-run coder: branchy scan over the quantized band ----
        la   $s3, pyr
        li   $t9, 1024
        li   $t0, 0           # current run length
runs:   lw   $t2, 0($s3)
        bne  $t2, $zero, emit
        addiu $t0, $t0, 1
        j    runnext
emit:   addu $v0, $v0, $t0
        li   $t0, 0
        addu $v0, $v0, $t2
runnext:
        addiu $s3, $s3, 4
        addiu $t9, $t9, -1
        bgtz $t9, runs

        addiu $s7, $s7, -1
        bgtz $s7, frames
        halt
)";
  return w;
}

Workload make_unepic() {
  Workload w;
  w.name = "unepic";
  w.description =
      "Pyramid image decoder analog: dequantize + upsample/interpolate with "
      "a branchy clamp, more memory-bound than the encoder.";
  w.max_steps = 1u << 24;
  w.source = R"(
        .data
coef:   .space 4096           # 1024 quantized coefficients
out:    .space 8192           # reconstructed signal
        .text
main:   li   $s7, 14          # frames
        li   $s6, 0x5EED
        li   $s5, 0x41C6
        li   $v0, 0
frames:
        # ---- synthesize the coded input ----
        la   $t8, coef
        li   $t9, 1024
gen:    mul  $s6, $s6, $s5
        addiu $s6, $s6, 12345
        srl  $t2, $s6, 13
        andi $t2, $t2, 0x03FF
        sw   $t2, 0($t8)
        addiu $t8, $t8, 4
        addiu $t9, $t9, -1
        bgtz $t9, gen

        # ---- dequantize + upsample + interpolate + clamp ----
        la   $t8, coef
        la   $s3, out
        li   $t9, 1023
        li   $s0, 0           # previous reconstructed sample
interp: lw   $t2, 0($t8)
        # chain A (2 ops): dequantize
        sll  $t3, $t2, 3
        addiu $t3, $t3, -4
        # chain B (2 ops): midpoint interpolation with previous sample
        addu $t4, $t3, $s0
        sra  $t4, $t4, 1
        # clamp the interpolated value to [0, 4095] (branchy)
        bltz $t4, clamplo
        li   $t5, 4095
        ble  $t4, $t5, noclamp
        move $t4, $t5
        j    noclamp
clamplo:
        li   $t4, 0
noclamp:
        sw   $t4, 0($s3)
        sw   $t3, 4($s3)
        # chain C (2 ops): smoothing tap for the checksum
        xori $t6, $t4, 0x55
        andi $t6, $t6, 0xFFF
        addu $v0, $v0, $t6
        move $s0, $t3
        addiu $t8, $t8, 4
        addiu $s3, $s3, 8
        addiu $t9, $t9, -1
        bgtz $t9, interp

        addiu $s7, $s7, -1
        bgtz $s7, frames
        halt
)";
  return w;
}

}  // namespace t1000
