#include "workloads/workload.hpp"

#include "asmkit/assembler.hpp"
#include "workloads/workloads_internal.hpp"

namespace t1000 {

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> suite = {
      make_unepic(),   make_epic(),     make_gsm_dec(),   make_gsm_enc(),
      make_g721_dec(), make_g721_enc(), make_mpeg2_dec(), make_mpeg2_enc(),
  };
  return suite;
}

const Workload* find_workload(std::string_view name) {
  for (const Workload& w : all_workloads()) {
    if (w.name == name) return &w;
  }
  for (const Workload& w : extended_workloads()) {
    if (w.name == name) return &w;
  }
  for (const Workload& w : compiled_workloads()) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

Program workload_program(const Workload& w) { return assemble(w.source); }

}  // namespace t1000
