// G.721 ADPCM codec analogs.
//
// g721 is the paper's *worst* case (4.5% decode): its per-sample work is a
// branchy quantizer binary search, scale-factor table lookups, and a
// predictor update - mostly loads, compares, and branches with only short
// fusable arithmetic. The analogs keep that profile: one short chain per
// sample in the decoder, two in the encoder, buried in branchy control.
#include "workloads/workloads_internal.hpp"

namespace t1000 {

Workload make_g721_dec() {
  Workload w;
  w.name = "g721_dec";
  w.description =
      "ADPCM decoder analog: branchy inverse quantizer with table lookups "
      "and a single short reconstruction chain per sample.";
  w.max_steps = 1u << 24;
  w.source = R"(
        .data
codes:  .space 4096           # 1024 received 4-bit codes
dqln:   .word 7, 14, 22, 31, 40, 50, 62, 76
        .word 7, 14, 22, 31, 40, 50, 62, 76
outbuf: .space 4096
        .text
main:   li   $s7, 24          # blocks
        li   $s6, 0xD00D
        li   $s5, 0x41C6
        li   $v0, 0
        li   $s0, 32          # step-size state
        li   $s1, 2           # output rescale shift
frames:
        # ---- receive code stream ----
        la   $t8, codes
        li   $t9, 1024
gen:    mul  $s6, $s6, $s5
        addiu $s6, $s6, 12345
        srl  $t2, $s6, 11
        andi $t2, $t2, 0xF
        sw   $t2, 0($t8)
        addiu $t8, $t8, 4
        addiu $t9, $t9, -1
        bgtz $t9, gen

        # ---- per-sample inverse quantizer (branchy) ----
        la   $t8, codes
        la   $s3, outbuf
        li   $t9, 1024
sample: lw   $t2, 0($t8)
        # sign/magnitude split
        andi $t3, $t2, 0x7
        andi $t4, $t2, 0x8
        # table lookup of the dequantized magnitude
        sll  $t5, $t3, 2
        la   $t6, dqln
        addu $t6, $t6, $t5
        lw   $t5, 0($t6)
        # step-size scaling chain (2 ops)
        sll  $t7, $t5, 2
        addu $t7, $t7, $s0
        # apply sign (branchy)
        beq  $t4, $zero, plus
        subu $t7, $zero, $t7
plus:   sw   $t7, 0($s3)
        # read-back + variable rescale of the reconstructed sample
        # (serial, uses the barrel shifter: not fusable)
        lw   $t1, 0($s3)
        srlv $t1, $t1, $s1
        addu $v0, $v0, $t1
        # dither chain (2 ops)
        xori $t6, $t7, 0x3
        andi $t6, $t6, 0xFF
        sw   $t6, 0($s3)
        # tracking chain (2 ops)
        sll  $t1, $t3, 1
        xor  $t1, $t1, $t5
        addu $v0, $v0, $t1
        addu $v0, $v0, $t7
        # pole/zero predictor products (multiplies: not PFU-fusable)
        mul  $t1, $t7, $t5
        srl  $t1, $t1, 8
        addu $v0, $v0, $t1
        mul  $t1, $t5, $t3
        addu $v0, $v0, $t1
        # adapt the step size (branchy state machine)
        slti $at, $t3, 4
        beq  $at, $zero, bigstep
        addiu $s0, $s0, -2
        bgtz $s0, stepok
        li   $s0, 2
        j    stepok
bigstep:
        addiu $s0, $s0, 6
        slti $at, $s0, 1024
        bne  $at, $zero, stepok
        li   $s0, 1023
stepok:
        addiu $t8, $t8, 4
        addiu $s3, $s3, 4
        addiu $t9, $t9, -1
        bgtz $t9, sample

        addiu $s7, $s7, -1
        bgtz $s7, frames
        halt
)";
  return w;
}

Workload make_g721_enc() {
  Workload w;
  w.name = "g721_enc";
  w.description =
      "ADPCM encoder analog: quantizer binary search plus predictor update; "
      "slightly more fusable arithmetic than the decoder.";
  w.max_steps = 1u << 24;
  w.source = R"(
        .data
pcm:    .space 4096           # 1024 input samples
codeout: .space 4096
        .text
main:   li   $s7, 22          # blocks
        li   $s6, 0xFACE
        li   $s5, 0x41C6
        li   $v0, 0
        li   $s0, 0           # predictor state
        li   $s1, 32          # step size
        li   $s2, 1           # quantizer scale shifts
        li   $s4, 2
frames:
        # ---- capture PCM input ----
        la   $t8, pcm
        li   $t9, 1024
gen:    mul  $s6, $s6, $s5
        addiu $s6, $s6, 12345
        srl  $t2, $s6, 8
        andi $t2, $t2, 0x1FFF
        sw   $t2, 0($t8)
        addiu $t8, $t8, 4
        addiu $t9, $t9, -1
        bgtz $t9, gen

        # ---- per-sample encode ----
        la   $t8, pcm
        la   $s3, codeout
        li   $t9, 1024
sample: lw   $t2, 0($t8)
        # prediction error: the raw difference stays live for the predictor
        # update below, so only the predictor chain is fusable
        subu $t2, $t2, $s0
        sra  $t3, $t2, 1
        # magnitude + sign (branchy)
        li   $t4, 0
        bgez $t3, mag
        li   $t4, 8
        subu $t3, $zero, $t3
mag:
        # quantizer binary search against the step size (branchy)
        li   $t5, 0
        slt  $at, $t3, $s1
        bne  $at, $zero, qdone
        addiu $t5, $t5, 4
        sllv $t6, $s1, $s2
        slt  $at, $t3, $t6
        bne  $at, $zero, qdone
        addiu $t5, $t5, 2
        sllv $t6, $s1, $s4
        slt  $at, $t3, $t6
        bne  $at, $zero, qdone
        addiu $t5, $t5, 1
qdone:  or   $t5, $t5, $t4
        sw   $t5, 0($s3)
        # code-fold chain (2 ops)
        xori $t1, $t5, 0x5
        andi $t1, $t1, 0xF
        addu $v0, $v0, $t1
        # predictor update chain (2 ops)
        sra  $t6, $t2, 2
        addu $s0, $t6, $zero
        # pole predictor product (multiply: not PFU-fusable)
        mul  $t1, $t3, $t3
        srl  $t1, $t1, 10
        addu $v0, $v0, $t1
        # step-size adaptation (branchy)
        andi $t7, $t5, 0x7
        slti $at, $t7, 3
        beq  $at, $zero, inc
        addiu $s1, $s1, -1
        bgtz $s1, stepok
        li   $s1, 1
        j    stepok
inc:    addiu $s1, $s1, 3
        slti $at, $s1, 2048
        bne  $at, $zero, stepok
        li   $s1, 2047
stepok:
        addiu $t8, $t8, 4
        addiu $s3, $s3, 4
        addiu $t9, $t9, -1
        bgtz $t9, sample

        addiu $s7, $s7, -1
        bgtz $s7, frames
        halt
)";
  return w;
}

}  // namespace t1000
