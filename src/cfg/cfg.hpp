// Control-flow graph over an assembled program, with dominators and natural
// loops. The selective algorithm (paper Section 5) works loop by loop, so
// loop structure — headers, bodies, nesting — is the central product here.
//
// Calls (`jal`/`jalr`) are modelled as straight-line instructions whose
// successor is the fall-through block (the call returns); `jr` ends a
// function and has no static successors. Loop analysis is therefore
// intraprocedural, which matches the paper's per-loop selection.
#pragma once

#include <cstdint>
#include <vector>

#include "asmkit/program.hpp"

namespace t1000 {

struct BasicBlock {
  int id = 0;
  std::int32_t first = 0;  // inclusive instruction index range
  std::int32_t last = 0;
  std::vector<int> succs;
  std::vector<int> preds;

  int length() const { return last - first + 1; }
};

struct Loop {
  int header = 0;           // block id
  std::vector<int> blocks;  // member block ids (header included)
  int parent = -1;          // index of the innermost enclosing loop
  int depth = 1;            // 1 = outermost
};

class Cfg {
 public:
  static Cfg build(const Program& program);

  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  const BasicBlock& block(int id) const {
    return blocks_[static_cast<std::size_t>(id)];
  }
  int num_blocks() const { return static_cast<int>(blocks_.size()); }

  // Block containing instruction `index`.
  int block_of(std::int32_t index) const {
    return block_of_[static_cast<std::size_t>(index)];
  }

  // Entry block (the `main` symbol or instruction 0).
  int entry() const { return entry_; }

  // Immediate dominator of block `b`; -1 for unreachable blocks and for
  // roots of the dominator forest.
  int idom(int b) const { return idom_[static_cast<std::size_t>(b)]; }

  // True when block `a` dominates block `b`.
  bool dominates(int a, int b) const;

  // Natural loops, discovered from back edges t->h with h dominating t.
  // Loops sharing a header are merged. Ordered outermost-first within a
  // nest; `parent`/`depth` describe the nesting forest.
  const std::vector<Loop>& loops() const { return loops_; }

  // Index into loops() of the innermost loop containing block `b`, or -1.
  int innermost_loop_of(int b) const {
    return innermost_[static_cast<std::size_t>(b)];
  }

 private:
  void compute_dominators(const Program& program);
  void find_loops();

  std::vector<BasicBlock> blocks_;
  std::vector<int> block_of_;
  std::vector<int> idom_;
  std::vector<int> dom_depth_;
  std::vector<Loop> loops_;
  std::vector<int> innermost_;
  int entry_ = 0;
};

}  // namespace t1000
