#include "cfg/cfg.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>
#include <set>

#include "isa/opcode.hpp"

namespace t1000 {
namespace {

// Successor instruction targets a control op can reach (excluding
// fall-through, which the caller adds). A target of `size` is the clean-halt
// pc (the rewriter maps deleted tail positions there): it exits the program,
// so it is neither a leader nor an edge.
void add_explicit_target(const Instruction& ins, std::int32_t size,
                         std::set<std::int32_t>* out) {
  if (!is_branch(ins.op) && ins.op != Opcode::kJ && ins.op != Opcode::kJal) {
    return;
  }
  if (ins.imm >= 0 && ins.imm < size) out->insert(ins.imm);
}

}  // namespace

Cfg Cfg::build(const Program& program) {
  Cfg cfg;
  const int n = program.size();
  if (n == 0) return cfg;

  // --- leaders ---
  std::set<std::int32_t> leaders;
  leaders.insert(0);
  for (std::int32_t i = 0; i < n; ++i) {
    const Instruction& ins = program.text[static_cast<std::size_t>(i)];
    if (is_control(ins.op)) {
      if (i + 1 < n) leaders.insert(i + 1);
      add_explicit_target(ins, n, &leaders);
    }
  }
  for (const auto& [name, index] : program.text_symbols) {
    if (index < n) leaders.insert(index);  // symbols may be jalr targets
  }

  // --- blocks ---
  cfg.block_of_.assign(static_cast<std::size_t>(n), 0);
  std::vector<std::int32_t> starts(leaders.begin(), leaders.end());
  for (std::size_t b = 0; b < starts.size(); ++b) {
    BasicBlock block;
    block.id = static_cast<int>(b);
    block.first = starts[b];
    block.last = (b + 1 < starts.size() ? starts[b + 1] : n) - 1;
    for (std::int32_t i = block.first; i <= block.last; ++i) {
      cfg.block_of_[static_cast<std::size_t>(i)] = block.id;
    }
    cfg.blocks_.push_back(std::move(block));
  }

  // --- edges ---
  for (BasicBlock& block : cfg.blocks_) {
    const Instruction& tail =
        program.text[static_cast<std::size_t>(block.last)];
    std::set<int> succs;
    const bool has_fallthrough =
        block.last + 1 < n &&
        (!is_control(tail.op) || is_branch(tail.op) ||
         tail.op == Opcode::kJal || tail.op == Opcode::kJalr);
    if (has_fallthrough) succs.insert(cfg.block_of_[static_cast<std::size_t>(block.last + 1)]);
    if ((is_branch(tail.op) || tail.op == Opcode::kJ) && tail.imm >= 0 &&
        tail.imm < n) {
      succs.insert(cfg.block_of_[static_cast<std::size_t>(tail.imm)]);
    }
    // jal: the call-return edge is the fall-through; the callee body is a
    // separate region rooted at its entry. jr: function return, no static
    // successor.
    block.succs.assign(succs.begin(), succs.end());
  }
  for (const BasicBlock& block : cfg.blocks_) {
    for (const int s : block.succs) {
      cfg.blocks_[static_cast<std::size_t>(s)].preds.push_back(block.id);
    }
  }

  const auto it = program.text_symbols.find("main");
  cfg.entry_ =
      cfg.block_of_[static_cast<std::size_t>(it == program.text_symbols.end() ? 0 : it->second)];

  cfg.compute_dominators(program);
  cfg.find_loops();
  return cfg;
}

void Cfg::compute_dominators(const Program& program) {
  const int n = num_blocks();
  const int vroot = n;  // virtual super-root feeding every region entry

  // Region entries: the program entry, every jal target, and any block with
  // no predecessors (covers jalr targets reached via function pointers).
  std::set<int> roots;
  roots.insert(entry_);
  for (const Instruction& ins : program.text) {
    if (ins.op == Opcode::kJal && ins.imm >= 0 &&
        ins.imm < static_cast<std::int32_t>(block_of_.size())) {
      roots.insert(block_of_[static_cast<std::size_t>(ins.imm)]);
    }
  }
  for (const BasicBlock& b : blocks_) {
    if (b.preds.empty()) roots.insert(b.id);
  }

  auto succs_of = [&](int node) -> std::vector<int> {
    if (node == vroot) return {roots.begin(), roots.end()};
    return blocks_[static_cast<std::size_t>(node)].succs;
  };

  // Reverse postorder from the virtual root.
  std::vector<int> rpo_index(static_cast<std::size_t>(n) + 1, -1);
  std::vector<int> order;
  {
    std::vector<int> state(static_cast<std::size_t>(n) + 1, 0);
    std::vector<std::pair<int, std::size_t>> stack{{vroot, 0}};
    state[static_cast<std::size_t>(vroot)] = 1;
    std::vector<int> post;
    while (!stack.empty()) {
      auto& [node, child] = stack.back();
      const std::vector<int> succs = succs_of(node);
      if (child < succs.size()) {
        const int next = succs[child++];
        if (state[static_cast<std::size_t>(next)] == 0) {
          state[static_cast<std::size_t>(next)] = 1;
          stack.emplace_back(next, 0);
        }
      } else {
        post.push_back(node);
        stack.pop_back();
      }
    }
    order.assign(post.rbegin(), post.rend());
    for (std::size_t i = 0; i < order.size(); ++i) {
      rpo_index[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
    }
  }

  // Cooper-Harvey-Kennedy iteration.
  std::vector<int> idom(static_cast<std::size_t>(n) + 1, -1);
  idom[static_cast<std::size_t>(vroot)] = vroot;
  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (rpo_index[static_cast<std::size_t>(a)] >
             rpo_index[static_cast<std::size_t>(b)]) {
        a = idom[static_cast<std::size_t>(a)];
      }
      while (rpo_index[static_cast<std::size_t>(b)] >
             rpo_index[static_cast<std::size_t>(a)]) {
        b = idom[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };
  // Predecessors including the virtual root's edges.
  std::vector<std::vector<int>> preds(static_cast<std::size_t>(n) + 1);
  for (const BasicBlock& b : blocks_) {
    preds[static_cast<std::size_t>(b.id)] = b.preds;
  }
  for (const int r : roots) preds[static_cast<std::size_t>(r)].push_back(vroot);

  bool changed = true;
  while (changed) {
    changed = false;
    for (const int b : order) {
      if (b == vroot) continue;
      int new_idom = -1;
      for (const int p : preds[static_cast<std::size_t>(b)]) {
        if (idom[static_cast<std::size_t>(p)] == -1) continue;  // unreachable
        new_idom = new_idom == -1 ? p : intersect(p, new_idom);
      }
      if (new_idom != -1 && idom[static_cast<std::size_t>(b)] != new_idom) {
        idom[static_cast<std::size_t>(b)] = new_idom;
        changed = true;
      }
    }
  }

  idom_.assign(static_cast<std::size_t>(n), -1);
  dom_depth_.assign(static_cast<std::size_t>(n), -1);
  for (int b = 0; b < n; ++b) {
    const int d = idom[static_cast<std::size_t>(b)];
    idom_[static_cast<std::size_t>(b)] = d == vroot ? -1 : d;
  }
  // Dominator-tree depths (vroot children have depth 0), in RPO so parents
  // come first.
  for (const int b : order) {
    if (b == vroot) continue;
    const int d = idom[static_cast<std::size_t>(b)];
    if (d == -1) continue;
    dom_depth_[static_cast<std::size_t>(b)] =
        d == vroot ? 0 : dom_depth_[static_cast<std::size_t>(d)] + 1;
  }
}

bool Cfg::dominates(int a, int b) const {
  if (dom_depth_[static_cast<std::size_t>(a)] < 0 ||
      dom_depth_[static_cast<std::size_t>(b)] < 0) {
    return false;
  }
  while (dom_depth_[static_cast<std::size_t>(b)] >
         dom_depth_[static_cast<std::size_t>(a)]) {
    b = idom_[static_cast<std::size_t>(b)];
    if (b < 0) return false;
  }
  return a == b;
}

void Cfg::find_loops() {
  const int n = num_blocks();
  innermost_.assign(static_cast<std::size_t>(n), -1);

  // Gather natural-loop bodies keyed by header; merge shared headers.
  std::map<int, std::set<int>> body_of;
  for (const BasicBlock& b : blocks_) {
    for (const int h : b.succs) {
      if (!dominates(h, b.id)) continue;  // not a back edge
      std::set<int>& body = body_of[h];
      body.insert(h);
      std::vector<int> work;
      if (body.insert(b.id).second) work.push_back(b.id);
      while (!work.empty()) {
        const int m = work.back();
        work.pop_back();
        for (const int p : blocks_[static_cast<std::size_t>(m)].preds) {
          if (body.insert(p).second) work.push_back(p);
        }
      }
    }
  }

  loops_.clear();
  for (const auto& [header, body] : body_of) {
    Loop loop;
    loop.header = header;
    loop.blocks.assign(body.begin(), body.end());
    loops_.push_back(std::move(loop));
  }

  // Parent = the smallest distinct loop that contains this loop's header.
  const auto contains = [&](const Loop& l, int block) {
    return std::binary_search(l.blocks.begin(), l.blocks.end(), block);
  };
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    int best = -1;
    for (std::size_t j = 0; j < loops_.size(); ++j) {
      if (i == j || !contains(loops_[j], loops_[i].header)) continue;
      if (best == -1 ||
          loops_[j].blocks.size() < loops_[static_cast<std::size_t>(best)].blocks.size()) {
        best = static_cast<int>(j);
      }
    }
    loops_[i].parent = best;
  }
  // Depths (walk parent chains; forest is acyclic).
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    int depth = 1;
    for (int p = loops_[i].parent; p != -1;
         p = loops_[static_cast<std::size_t>(p)].parent) {
      ++depth;
    }
    loops_[i].depth = depth;
  }
  // Innermost loop per block = the deepest loop containing it.
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    for (const int b : loops_[i].blocks) {
      const int cur = innermost_[static_cast<std::size_t>(b)];
      if (cur == -1 ||
          loops_[static_cast<std::size_t>(cur)].depth < loops_[i].depth) {
        innermost_[static_cast<std::size_t>(b)] = static_cast<int>(i);
      }
    }
  }
}

}  // namespace t1000
