#include "cfg/dot.hpp"

#include <sstream>

namespace t1000 {
namespace {

// Light fill colors by loop depth (depth 0 = not in a loop).
const char* depth_color(int depth) {
  switch (depth) {
    case 0: return "white";
    case 1: return "#fff3e0";
    case 2: return "#ffe0b2";
    case 3: return "#ffcc80";
    default: return "#ffb74d";
  }
}

std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string cfg_to_dot(const Program& program, const Cfg& cfg,
                       const DotOptions& options) {
  std::ostringstream os;
  os << "digraph cfg {\n"
     << "  node [shape=box, fontname=\"monospace\", fontsize=9];\n"
     << "  edge [fontsize=8];\n";

  for (const BasicBlock& b : cfg.blocks()) {
    const int loop = cfg.innermost_loop_of(b.id);
    const int depth =
        loop < 0 ? 0 : cfg.loops()[static_cast<std::size_t>(loop)].depth;
    os << "  b" << b.id << " [style=filled, fillcolor=\""
       << depth_color(depth) << "\", label=\"";
    os << "B" << b.id << " [" << b.first << ".." << b.last << "]";
    if (loop >= 0) os << " loop" << loop;
    if (options.show_instructions) {
      int shown = 0;
      for (std::int32_t i = b.first; i <= b.last; ++i) {
        if (shown++ == options.max_instructions_per_block) {
          os << "\\l...";
          break;
        }
        os << "\\l"
           << escape(to_string(program.text[static_cast<std::size_t>(i)]));
      }
      os << "\\l";
    }
    os << "\"];\n";
  }
  for (const BasicBlock& b : cfg.blocks()) {
    for (const int s : b.succs) {
      os << "  b" << b.id << " -> b" << s;
      // Highlight back edges (loop closing).
      if (cfg.dominates(s, b.id)) os << " [color=red, penwidth=1.5]";
      os << ";\n";
    }
  }
  if (cfg.num_blocks() > 0) {
    os << "  entry [shape=plaintext, label=\"entry\"];\n"
       << "  entry -> b" << cfg.entry() << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace t1000
