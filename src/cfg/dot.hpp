// Graphviz export of control-flow graphs, with loop nesting rendered as
// colored clusters. Feeds `kernel_explorer --dot` and debugging sessions:
//
//   ./build/examples/kernel_explorer gsm_dec --dot | dot -Tsvg > cfg.svg
#pragma once

#include <string>

#include "asmkit/program.hpp"
#include "cfg/cfg.hpp"

namespace t1000 {

struct DotOptions {
  bool show_instructions = true;  // instruction text inside block nodes
  int max_instructions_per_block = 12;  // elide long blocks
};

std::string cfg_to_dot(const Program& program, const Cfg& cfg,
                       const DotOptions& options = {});

}  // namespace t1000
