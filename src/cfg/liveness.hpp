// Global register liveness over the CFG. Used by the extractor to prove
// that a candidate sequence's intermediate values are dead outside the
// sequence (the "one output" constraint of Section 4).
//
// Boundary model:
//  * call instructions (jal/jalr) are treated as reading every register,
//    since the callee's uses are not tracked interprocedurally (maximally
//    conservative);
//  * function returns (jr) keep the ABI-visible set live: $v0/$v1 results,
//    callee-saved $s0-$s7, and $gp/$sp/$fp/$ra;
//  * halt keeps only the $v0/$v1 result convention live.
// Programs assembled for this toolchain must follow those conventions
// (return values travel in $v0/$v1), which all bundled workloads do.
#pragma once

#include <bitset>
#include <cstdint>
#include <vector>

#include "asmkit/program.hpp"
#include "cfg/cfg.hpp"

namespace t1000 {

using RegSet = std::bitset<kNumRegs>;

struct Liveness {
  std::vector<RegSet> live_in;   // per block
  std::vector<RegSet> live_out;  // per block

  // Registers live immediately *after* instruction `index` executes.
  // Computed by walking backward from the block's live-out; O(block size).
  RegSet live_after(const Program& program, const Cfg& cfg,
                    std::int32_t index) const;
};

Liveness compute_liveness(const Program& program, const Cfg& cfg);

}  // namespace t1000
