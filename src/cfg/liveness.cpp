#include "cfg/liveness.hpp"

#include "analysis/dataflow.hpp"

namespace t1000 {

// Stated as a LiveRegsProblem over the generic solver (analysis/dataflow.hpp
// is header-only, so instantiating it here adds no link dependency). The
// result is bit-identical to the historical hand-rolled fixpoint: same
// confluence, same transfer, same sweep order.
Liveness compute_liveness(const Program& program, const Cfg& cfg) {
  const LiveRegsProblem problem(program, cfg);
  DataflowResult<LiveRegsProblem> solved = solve_dataflow(cfg, problem);
  Liveness lv;
  lv.live_in = std::move(solved.in);
  lv.live_out = std::move(solved.out);
  return lv;
}

RegSet Liveness::live_after(const Program& program, const Cfg& cfg,
                            std::int32_t index) const {
  const BasicBlock& b = cfg.block(cfg.block_of(index));
  RegSet live = live_out[static_cast<std::size_t>(b.id)];
  for (std::int32_t i = b.last; i > index; --i) {
    RegSet use;
    RegSet def;
    inst_use_def(program.text[static_cast<std::size_t>(i)], &use, &def);
    live = use | (live & ~def);
  }
  return live;
}

}  // namespace t1000
