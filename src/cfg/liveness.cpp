#include "cfg/liveness.hpp"

namespace t1000 {
namespace {

bool is_call(Opcode op) { return op == Opcode::kJal || op == Opcode::kJalr; }

// Registers assumed live when control leaves the program text.
RegSet exit_live_set(Opcode tail) {
  RegSet s;
  s.set(kRegV0);
  s.set(kRegV0 + 1);  // $v1
  if (tail != Opcode::kHalt) {
    for (Reg r = kRegS0; r < kRegS0 + 8; ++r) s.set(r);  // $s0-$s7
    s.set(kRegGp);
    s.set(kRegSp);
    s.set(kRegFp);
    s.set(kRegRa);
  }
  return s;
}

// use/def of a single instruction under the conservative call model.
void inst_use_def(const Instruction& ins, RegSet* use, RegSet* def) {
  use->reset();
  def->reset();
  if (is_call(ins.op)) use->set();  // callee may read anything
  const SrcRegs s = src_regs(ins);
  for (int i = 0; i < s.count; ++i) use->set(s.reg[i]);
  if (const auto d = dst_reg(ins)) def->set(*d);
  use->reset(kRegZero);  // $zero is constant; never meaningfully live
  def->reset(kRegZero);
}

}  // namespace

Liveness compute_liveness(const Program& program, const Cfg& cfg) {
  const int n = cfg.num_blocks();
  Liveness lv;
  lv.live_in.assign(static_cast<std::size_t>(n), {});
  lv.live_out.assign(static_cast<std::size_t>(n), {});

  // Per-block use (upward-exposed) and def sets.
  std::vector<RegSet> buse(static_cast<std::size_t>(n));
  std::vector<RegSet> bdef(static_cast<std::size_t>(n));
  for (const BasicBlock& b : cfg.blocks()) {
    RegSet use;
    RegSet def;
    for (std::int32_t i = b.first; i <= b.last; ++i) {
      RegSet u;
      RegSet d;
      inst_use_def(program.text[static_cast<std::size_t>(i)], &u, &d);
      use |= u & ~def;
      def |= d;
    }
    buse[static_cast<std::size_t>(b.id)] = use;
    bdef[static_cast<std::size_t>(b.id)] = def;
  }

  // Backward fixpoint. Exit blocks conservatively keep everything live.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int id = n - 1; id >= 0; --id) {
      const BasicBlock& b = cfg.block(id);
      RegSet out;
      if (b.succs.empty()) {
        out = exit_live_set(program.text[static_cast<std::size_t>(b.last)].op);
      } else {
        for (const int s : b.succs) out |= lv.live_in[static_cast<std::size_t>(s)];
      }
      const RegSet in = buse[static_cast<std::size_t>(id)] |
                        (out & ~bdef[static_cast<std::size_t>(id)]);
      if (out != lv.live_out[static_cast<std::size_t>(id)] ||
          in != lv.live_in[static_cast<std::size_t>(id)]) {
        lv.live_out[static_cast<std::size_t>(id)] = out;
        lv.live_in[static_cast<std::size_t>(id)] = in;
        changed = true;
      }
    }
  }
  return lv;
}

RegSet Liveness::live_after(const Program& program, const Cfg& cfg,
                            std::int32_t index) const {
  const BasicBlock& b = cfg.block(cfg.block_of(index));
  RegSet live = live_out[static_cast<std::size_t>(b.id)];
  for (std::int32_t i = b.last; i > index; --i) {
    RegSet use;
    RegSet def;
    inst_use_def(program.text[static_cast<std::size_t>(i)], &use, &def);
    live = use | (live & ~def);
  }
  return live;
}

}  // namespace t1000
