#include "minic/minic.hpp"

#include "asmkit/assembler.hpp"

namespace t1000::minic {

Program compile(const std::string& source) {
  return assemble(compile_to_assembly(source));
}

}  // namespace t1000::minic
