#include "minic/parser.hpp"

namespace t1000::minic {
namespace {

class Parser {
 public:
  explicit Parser(const std::vector<Token>& tokens) : tokens_(tokens) {}

  TranslationUnit run() {
    TranslationUnit unit;
    while (!at(Tok::kEof)) {
      expect(Tok::kInt, "expected 'int' at top level");
      const Token name = expect(Tok::kIdent, "expected a name");
      if (at(Tok::kLParen)) {
        unit.functions.push_back(parse_function(name));
      } else {
        unit.globals.push_back(parse_global(name));
      }
    }
    return unit;
  }

 private:
  const Token& peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool at(Tok kind) const { return peek().kind == kind; }
  Token advance() { return tokens_[pos_++]; }
  bool accept(Tok kind) {
    if (!at(kind)) return false;
    ++pos_;
    return true;
  }
  Token expect(Tok kind, const char* what) {
    if (!at(kind)) throw CompileError(peek().line, what);
    return advance();
  }

  // --- declarations ---

  Global parse_global(const Token& name) {
    Global g;
    g.name = name.text;
    g.line = name.line;
    if (accept(Tok::kLBracket)) {
      const Token count = expect(Tok::kNumber, "expected array size");
      if (count.number <= 0 || count.number > (1 << 20)) {
        throw CompileError(count.line, "bad array size");
      }
      g.count = static_cast<int>(count.number);
      expect(Tok::kRBracket, "expected ']'");
    }
    if (accept(Tok::kAssign)) {
      if (accept(Tok::kLBrace)) {
        do {
          g.init.push_back(parse_const());
        } while (accept(Tok::kComma));
        expect(Tok::kRBrace, "expected '}'");
        if (static_cast<int>(g.init.size()) > g.count) {
          throw CompileError(g.line, "too many initializers");
        }
      } else {
        g.init.push_back(parse_const());
      }
    }
    expect(Tok::kSemi, "expected ';'");
    return g;
  }

  std::int32_t parse_const() {
    const bool neg = accept(Tok::kMinus);
    const Token num = expect(Tok::kNumber, "expected a constant");
    const std::int64_t v = neg ? -num.number : num.number;
    return static_cast<std::int32_t>(v);
  }

  Function parse_function(const Token& name) {
    Function fn;
    fn.name = name.text;
    fn.line = name.line;
    expect(Tok::kLParen, "expected '('");
    if (!at(Tok::kRParen)) {
      do {
        expect(Tok::kInt, "expected 'int' parameter type");
        fn.params.push_back(expect(Tok::kIdent, "expected parameter name").text);
      } while (accept(Tok::kComma));
    }
    if (fn.params.size() > 4) {
      throw CompileError(name.line, "at most 4 parameters supported");
    }
    expect(Tok::kRParen, "expected ')'");
    fn.body = parse_block();
    return fn;
  }

  // --- statements ---

  StmtPtr parse_block() {
    const Token open = expect(Tok::kLBrace, "expected '{'");
    auto block = std::make_unique<Stmt>();
    block->kind = Stmt::Kind::kBlock;
    block->line = open.line;
    while (!at(Tok::kRBrace)) {
      if (at(Tok::kEof)) throw CompileError(open.line, "unterminated block");
      block->stmts.push_back(parse_statement());
    }
    advance();  // '}'
    return block;
  }

  StmtPtr parse_statement() {
    const Token& t = peek();
    switch (t.kind) {
      case Tok::kLBrace:
        return parse_block();
      case Tok::kInt:
        return parse_decl();
      case Tok::kIf: {
        advance();
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::kIf;
        s->line = t.line;
        expect(Tok::kLParen, "expected '(' after if");
        s->expr = parse_expression();
        expect(Tok::kRParen, "expected ')'");
        s->body = parse_statement();
        if (accept(Tok::kElse)) s->else_body = parse_statement();
        return s;
      }
      case Tok::kWhile: {
        advance();
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::kWhile;
        s->line = t.line;
        expect(Tok::kLParen, "expected '(' after while");
        s->expr = parse_expression();
        expect(Tok::kRParen, "expected ')'");
        s->body = parse_statement();
        return s;
      }
      case Tok::kFor: {
        advance();
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::kFor;
        s->line = t.line;
        expect(Tok::kLParen, "expected '(' after for");
        if (!at(Tok::kSemi)) {
          if (at(Tok::kInt)) {
            s->init = parse_decl();  // consumes ';'
          } else {
            auto init = std::make_unique<Stmt>();
            init->kind = Stmt::Kind::kExpr;
            init->line = peek().line;
            init->expr = parse_expression();
            s->init = std::move(init);
            expect(Tok::kSemi, "expected ';' in for");
          }
        } else {
          advance();
        }
        if (!at(Tok::kSemi)) s->expr = parse_expression();
        expect(Tok::kSemi, "expected ';' in for");
        if (!at(Tok::kRParen)) s->step = parse_expression();
        expect(Tok::kRParen, "expected ')'");
        s->body = parse_statement();
        return s;
      }
      case Tok::kReturn: {
        advance();
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::kReturn;
        s->line = t.line;
        if (!at(Tok::kSemi)) s->expr = parse_expression();
        expect(Tok::kSemi, "expected ';'");
        return s;
      }
      case Tok::kBreak: {
        advance();
        expect(Tok::kSemi, "expected ';'");
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::kBreak;
        s->line = t.line;
        return s;
      }
      case Tok::kContinue: {
        advance();
        expect(Tok::kSemi, "expected ';'");
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::kContinue;
        s->line = t.line;
        return s;
      }
      default: {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::kExpr;
        s->line = t.line;
        s->expr = parse_expression();
        expect(Tok::kSemi, "expected ';'");
        return s;
      }
    }
  }

  StmtPtr parse_decl() {
    const Token kw = expect(Tok::kInt, "expected 'int'");
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::kDecl;
    s->line = kw.line;
    s->name = expect(Tok::kIdent, "expected a name").text;
    if (at(Tok::kLBracket)) {
      throw CompileError(kw.line, "local arrays are not supported");
    }
    if (accept(Tok::kAssign)) s->expr = parse_expression();
    expect(Tok::kSemi, "expected ';'");
    return s;
  }

  // --- expressions (precedence climbing) ---

  ExprPtr parse_expression() { return parse_assignment(); }

  ExprPtr parse_assignment() {
    ExprPtr lhs = parse_logical_or();
    if (!at(Tok::kAssign)) return lhs;
    const Token eq = advance();
    if (lhs->kind != Expr::Kind::kVar && lhs->kind != Expr::Kind::kIndex) {
      throw CompileError(eq.line, "assignment target must be a variable or element");
    }
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kAssign;
    e->line = eq.line;
    e->lhs = std::move(lhs);
    e->rhs = parse_assignment();  // right associative
    return e;
  }

  ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->bin_op = op;
    e->line = line;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  ExprPtr parse_logical_or() {
    ExprPtr lhs = parse_logical_and();
    while (at(Tok::kOrOr)) {
      const int line = advance().line;
      lhs = binary(BinOp::kLogicalOr, std::move(lhs), parse_logical_and(), line);
    }
    return lhs;
  }

  ExprPtr parse_logical_and() {
    ExprPtr lhs = parse_bitor();
    while (at(Tok::kAndAnd)) {
      const int line = advance().line;
      lhs = binary(BinOp::kLogicalAnd, std::move(lhs), parse_bitor(), line);
    }
    return lhs;
  }

  ExprPtr parse_bitor() {
    ExprPtr lhs = parse_bitxor();
    while (at(Tok::kPipe)) {
      const int line = advance().line;
      lhs = binary(BinOp::kOr, std::move(lhs), parse_bitxor(), line);
    }
    return lhs;
  }

  ExprPtr parse_bitxor() {
    ExprPtr lhs = parse_bitand();
    while (at(Tok::kCaret)) {
      const int line = advance().line;
      lhs = binary(BinOp::kXor, std::move(lhs), parse_bitand(), line);
    }
    return lhs;
  }

  ExprPtr parse_bitand() {
    ExprPtr lhs = parse_equality();
    while (at(Tok::kAmp)) {
      const int line = advance().line;
      lhs = binary(BinOp::kAnd, std::move(lhs), parse_equality(), line);
    }
    return lhs;
  }

  ExprPtr parse_equality() {
    ExprPtr lhs = parse_relational();
    while (at(Tok::kEq) || at(Tok::kNe)) {
      const Token op = advance();
      lhs = binary(op.kind == Tok::kEq ? BinOp::kEq : BinOp::kNe,
                   std::move(lhs), parse_relational(), op.line);
    }
    return lhs;
  }

  ExprPtr parse_relational() {
    ExprPtr lhs = parse_shift();
    while (at(Tok::kLt) || at(Tok::kLe) || at(Tok::kGt) || at(Tok::kGe)) {
      const Token op = advance();
      BinOp bop = BinOp::kLt;
      if (op.kind == Tok::kLe) bop = BinOp::kLe;
      if (op.kind == Tok::kGt) bop = BinOp::kGt;
      if (op.kind == Tok::kGe) bop = BinOp::kGe;
      lhs = binary(bop, std::move(lhs), parse_shift(), op.line);
    }
    return lhs;
  }

  ExprPtr parse_shift() {
    ExprPtr lhs = parse_additive();
    while (at(Tok::kShl) || at(Tok::kShr)) {
      const Token op = advance();
      lhs = binary(op.kind == Tok::kShl ? BinOp::kShl : BinOp::kShr,
                   std::move(lhs), parse_additive(), op.line);
    }
    return lhs;
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (at(Tok::kPlus) || at(Tok::kMinus)) {
      const Token op = advance();
      lhs = binary(op.kind == Tok::kPlus ? BinOp::kAdd : BinOp::kSub,
                   std::move(lhs), parse_multiplicative(), op.line);
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (at(Tok::kStar) || at(Tok::kSlash) || at(Tok::kPercent)) {
      const Token op = advance();
      BinOp bop = BinOp::kMul;
      if (op.kind == Tok::kSlash) bop = BinOp::kDiv;
      if (op.kind == Tok::kPercent) bop = BinOp::kRem;
      lhs = binary(bop, std::move(lhs), parse_unary(), op.line);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    const Token& t = peek();
    if (at(Tok::kMinus) || at(Tok::kTilde) || at(Tok::kBang)) {
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->line = t.line;
      e->un_op = t.kind == Tok::kMinus ? UnOp::kNeg
                 : t.kind == Tok::kTilde ? UnOp::kNot
                                         : UnOp::kLogicalNot;
      e->lhs = parse_unary();
      return e;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token t = advance();
    switch (t.kind) {
      case Tok::kNumber: {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kNumber;
        e->line = t.line;
        e->number = static_cast<std::int32_t>(t.number);
        return e;
      }
      case Tok::kLParen: {
        ExprPtr e = parse_expression();
        expect(Tok::kRParen, "expected ')'");
        return e;
      }
      case Tok::kIdent: {
        if (accept(Tok::kLParen)) {
          auto e = std::make_unique<Expr>();
          e->kind = Expr::Kind::kCall;
          e->line = t.line;
          e->name = t.text;
          if (!at(Tok::kRParen)) {
            do {
              e->args.push_back(parse_expression());
            } while (accept(Tok::kComma));
          }
          expect(Tok::kRParen, "expected ')'");
          if (e->args.size() > 4) {
            throw CompileError(t.line, "at most 4 arguments supported");
          }
          return e;
        }
        if (accept(Tok::kLBracket)) {
          auto e = std::make_unique<Expr>();
          e->kind = Expr::Kind::kIndex;
          e->line = t.line;
          e->name = t.text;
          e->lhs = parse_expression();
          expect(Tok::kRBracket, "expected ']'");
          return e;
        }
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kVar;
        e->line = t.line;
        e->name = t.text;
        return e;
      }
      default:
        throw CompileError(t.line, "expected an expression");
    }
  }

  const std::vector<Token>& tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

TranslationUnit parse(const std::vector<Token>& tokens) {
  return Parser(tokens).run();
}

}  // namespace t1000::minic
