// MiniC public entry points.
#pragma once

#include <string>

#include "asmkit/program.hpp"
#include "minic/ast.hpp"
#include "minic/codegen.hpp"
#include "minic/parser.hpp"
#include "minic/token.hpp"

namespace t1000::minic {

// Source -> T1000 assembly text.
inline std::string compile_to_assembly(const std::string& source) {
  return generate(parse(lex(source)));
}

// Source -> assembled program, ready for the simulator and the
// extended-instruction pipeline.
Program compile(const std::string& source);

}  // namespace t1000::minic
