// MiniC code generation to T1000 assembly text.
//
// Conventions:
//  * locals and parameters live in callee-saved $s0..$s7 (overflow spills to
//    the frame), so compiled inner loops produce the register-resident
//    dependent ALU chains the extended-instruction selector mines;
//  * expressions evaluate on a virtual stack mapped to $t0..$t7 with frame
//    spilling beyond eight live temporaries; $t8/$t9 are scratch;
//  * arguments pass in $a0..$a3, results in $v0; $ra and used $s registers
//    are saved in the prologue;
//  * `/` and `%` lower to calls into an emitted software divide routine
//    (restoring division; C-style truncation semantics; division by zero
//    returns unspecified values, as on real hardware without traps);
//  * immediate operands fold into addiu/andi/ori/xori/sll/sra/slti forms,
//    and multiplication by powers of two becomes a shift, matching what a
//    1990s optimizing compiler would feed the paper's selector.
#pragma once

#include <string>

#include "minic/ast.hpp"

namespace t1000::minic {

// Generates a complete assembly module (data + text + runtime helpers).
// Throws CompileError on semantic errors (unknown names, arity mismatches,
// assigning to arrays without an index, ...).
std::string generate(const TranslationUnit& unit);

}  // namespace t1000::minic
