// MiniC recursive-descent parser.
#pragma once

#include "minic/ast.hpp"
#include "minic/token.hpp"

namespace t1000::minic {

// Parses a full translation unit; throws CompileError on syntax errors.
TranslationUnit parse(const std::vector<Token>& tokens);

}  // namespace t1000::minic
