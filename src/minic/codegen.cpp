#include "minic/codegen.hpp"

#include "minic/token.hpp"

#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace t1000::minic {
namespace {

constexpr int kMaxRegStack = 8;   // $t0..$t7
constexpr int kMaxRegLocals = 8;  // $s0..$s7

struct GlobalInfo {
  bool is_array = false;
  int count = 1;
};

struct FunctionInfo {
  int arity = 0;
};

struct LocalSlot {
  bool in_reg = false;
  int index = 0;  // $s index or overflow slot number
};

class Codegen {
 public:
  explicit Codegen(const TranslationUnit& unit) : unit_(unit) {}

  std::string run() {
    collect_symbols();
    std::ostringstream out;
    emit_data(out);
    out << "        .text\n";
    for (const Function& fn : unit_.functions) emit_function(out, fn);
    if (need_divide_) emit_divide_runtime(out);
    return out.str();
  }

 private:
  // ---------- symbols ----------

  void collect_symbols() {
    for (const Global& g : unit_.globals) {
      if (globals_.count(g.name) != 0) {
        throw CompileError(g.line, "duplicate global '" + g.name + "'");
      }
      globals_[g.name] = {g.count > 1, g.count};
    }
    bool has_main = false;
    for (const Function& fn : unit_.functions) {
      if (functions_.count(fn.name) != 0) {
        throw CompileError(fn.line, "duplicate function '" + fn.name + "'");
      }
      functions_[fn.name] = {static_cast<int>(fn.params.size())};
      if (fn.name == "main") has_main = true;
    }
    if (!has_main) throw CompileError(1, "no 'main' function defined");
  }

  void emit_data(std::ostringstream& out) {
    if (unit_.globals.empty()) return;
    out << "        .data\n";
    for (const Global& g : unit_.globals) {
      out << g.name << ":";
      if (g.init.empty()) {
        out << " .space " << g.count * 4 << "\n";
      } else {
        out << " .word ";
        for (int i = 0; i < g.count; ++i) {
          if (i != 0) out << ", ";
          out << (i < static_cast<int>(g.init.size()) ? g.init[static_cast<std::size_t>(i)] : 0);
        }
        out << "\n";
      }
    }
  }

  // ---------- per-function state ----------

  std::string treg(int slot) const { return "$t" + std::to_string(slot); }
  std::string sreg(int index) const { return "$s" + std::to_string(index); }

  std::string new_label() { return "_L" + std::to_string(label_counter_++); }

  void emit(const std::string& text) { body_ << "        " << text << "\n"; }
  void emit_label(const std::string& label) { body_ << label << ":\n"; }

  // Frame layout (relative to $sp after the prologue):
  //   [0 .. 8*4)                  expression spill slots (one per t-reg)
  //   [32 .. 32+overflow*4)       overflow locals
  //   saved $s registers, then $ra at the top.
  int spill_offset(int slot) const { return slot * 4; }
  int overflow_offset(int index) const { return 32 + index * 4; }

  // ---------- virtual expression stack ----------

  // Brings stack slot `s` into a register, using `scratch` for spilled
  // slots; returns the register name.
  std::string slot_reg(int s, const char* scratch) {
    if (s < kMaxRegStack) return treg(s);
    emit("lw " + std::string(scratch) + ", " +
         std::to_string(spill_offset(s % kMaxRegStack)) + "($sp)");
    return scratch;
  }

  // Finishes producing a value for slot `s` currently in `reg`.
  void finish_slot(int s, const std::string& reg) {
    if (s < kMaxRegStack) {
      if (reg != treg(s)) emit("move " + treg(s) + ", " + reg);
    } else {
      emit("sw " + reg + ", " + std::to_string(spill_offset(s % kMaxRegStack)) +
           "($sp)");
    }
  }

  // Register to compute slot `s` into directly.
  std::string target_reg(int s) const {
    return s < kMaxRegStack ? "$t" + std::to_string(s) : "$t8";
  }

  // ---------- expressions ----------

  bool fits_s16(std::int64_t v) const { return v >= -0x8000 && v <= 0x7FFF; }
  bool fits_u16(std::int64_t v) const { return v >= 0 && v <= 0xFFFF; }

  static std::optional<int> log2_exact(std::int32_t v) {
    if (v <= 0 || (v & (v - 1)) != 0) return std::nullopt;
    int n = 0;
    while ((v >> n) != 1) ++n;
    return n;
  }

  // Generates `e` into stack slot `depth`; returns with one more live slot.
  void gen_expr(const Expr& e, int depth) {
    if (depth >= kMaxRegStack * 2) {
      throw CompileError(e.line, "expression too deep");
    }
    switch (e.kind) {
      case Expr::Kind::kNumber: {
        const std::string rd = target_reg(depth);
        emit("li " + rd + ", " + std::to_string(e.number));
        finish_slot(depth, rd);
        return;
      }
      case Expr::Kind::kVar:
        gen_var_read(e, depth);
        return;
      case Expr::Kind::kIndex:
        gen_index_read(e, depth);
        return;
      case Expr::Kind::kUnary:
        gen_unary(e, depth);
        return;
      case Expr::Kind::kBinary:
        gen_binary(e, depth);
        return;
      case Expr::Kind::kAssign:
        gen_assign(e, depth);
        return;
      case Expr::Kind::kCall:
        gen_call(e, depth);
        return;
    }
  }

  void gen_var_read(const Expr& e, int depth) {
    const std::string rd = target_reg(depth);
    if (const LocalSlot* local = find_local(e.name)) {
      if (local->in_reg) {
        emit("move " + rd + ", " + sreg(local->index));
      } else {
        emit("lw " + rd + ", " + std::to_string(overflow_offset(local->index)) +
             "($sp)");
      }
      finish_slot(depth, rd);
      return;
    }
    const auto g = globals_.find(e.name);
    if (g == globals_.end()) {
      throw CompileError(e.line, "unknown variable '" + e.name + "'");
    }
    if (g->second.is_array) {
      throw CompileError(e.line, "'" + e.name + "' is an array; index it");
    }
    emit("la $t9, " + e.name);
    emit("lw " + rd + ", 0($t9)");
    finish_slot(depth, rd);
  }

  // Leaves the element's byte address in $t9.
  void gen_index_address(const Expr& e, int depth) {
    const auto g = globals_.find(e.name);
    if (g == globals_.end() || !g->second.is_array) {
      if (find_local(e.name) || g != globals_.end()) {
        throw CompileError(e.line, "'" + e.name + "' is not an array");
      }
      throw CompileError(e.line, "unknown array '" + e.name + "'");
    }
    gen_expr(*e.lhs, depth);
    const std::string idx = slot_reg(depth, "$t8");
    emit("sll $t9, " + idx + ", 2");
    emit("la $t8, " + e.name);
    emit("addu $t9, $t9, $t8");
  }

  void gen_index_read(const Expr& e, int depth) {
    gen_index_address(e, depth);
    const std::string rd = target_reg(depth);
    emit("lw " + rd + ", 0($t9)");
    finish_slot(depth, rd);
  }

  void gen_unary(const Expr& e, int depth) {
    gen_expr(*e.lhs, depth);
    const std::string src = slot_reg(depth, "$t8");
    const std::string rd = target_reg(depth);
    switch (e.un_op) {
      case UnOp::kNeg: emit("subu " + rd + ", $zero, " + src); break;
      case UnOp::kNot: emit("nor " + rd + ", " + src + ", $zero"); break;
      case UnOp::kLogicalNot: emit("sltiu " + rd + ", " + src + ", 1"); break;
    }
    finish_slot(depth, rd);
  }

  // Immediate-folded binary op, when the rhs is a literal with a matching
  // immediate form. Returns true when handled.
  bool gen_binary_imm(const Expr& e, int depth) {
    if (e.rhs->kind != Expr::Kind::kNumber) return false;
    const std::int32_t v = e.rhs->number;
    const char* op = nullptr;
    std::int64_t imm = v;
    switch (e.bin_op) {
      case BinOp::kAdd: if (fits_s16(v)) op = "addiu"; break;
      case BinOp::kSub: if (fits_s16(-static_cast<std::int64_t>(v))) { op = "addiu"; imm = -static_cast<std::int64_t>(v); } break;
      case BinOp::kAnd: if (fits_u16(v)) op = "andi"; break;
      case BinOp::kOr:  if (fits_u16(v)) op = "ori"; break;
      case BinOp::kXor: if (fits_u16(v)) op = "xori"; break;
      case BinOp::kShl: if (v >= 0 && v <= 31) op = "sll"; break;
      case BinOp::kShr: if (v >= 0 && v <= 31) op = "sra"; break;
      case BinOp::kLt:  if (fits_s16(v)) op = "slti"; break;
      case BinOp::kMul:
        if (const auto sh = log2_exact(v)) {
          gen_expr(*e.lhs, depth);
          const std::string src = slot_reg(depth, "$t8");
          const std::string rd = target_reg(depth);
          emit("sll " + rd + ", " + src + ", " + std::to_string(*sh));
          finish_slot(depth, rd);
          return true;
        }
        break;
      default: break;
    }
    if (op == nullptr) return false;
    gen_expr(*e.lhs, depth);
    const std::string src = slot_reg(depth, "$t8");
    const std::string rd = target_reg(depth);
    emit(std::string(op) + " " + rd + ", " + src + ", " + std::to_string(imm));
    finish_slot(depth, rd);
    return true;
  }

  void gen_binary(const Expr& e, int depth) {
    if (e.bin_op == BinOp::kLogicalAnd || e.bin_op == BinOp::kLogicalOr) {
      gen_logical(e, depth);
      return;
    }
    if (e.bin_op == BinOp::kDiv || e.bin_op == BinOp::kRem) {
      gen_divide(e, depth);
      return;
    }
    if (gen_binary_imm(e, depth)) return;

    gen_expr(*e.lhs, depth);
    gen_expr(*e.rhs, depth + 1);
    const std::string a = slot_reg(depth, "$t8");
    const std::string b = slot_reg(depth + 1, "$t9");
    const std::string rd = target_reg(depth);
    switch (e.bin_op) {
      case BinOp::kAdd: emit("addu " + rd + ", " + a + ", " + b); break;
      case BinOp::kSub: emit("subu " + rd + ", " + a + ", " + b); break;
      case BinOp::kMul: emit("mul " + rd + ", " + a + ", " + b); break;
      case BinOp::kAnd: emit("and " + rd + ", " + a + ", " + b); break;
      case BinOp::kOr:  emit("or " + rd + ", " + a + ", " + b); break;
      case BinOp::kXor: emit("xor " + rd + ", " + a + ", " + b); break;
      case BinOp::kShl: emit("sllv " + rd + ", " + a + ", " + b); break;
      case BinOp::kShr: emit("srav " + rd + ", " + a + ", " + b); break;
      case BinOp::kLt:  emit("slt " + rd + ", " + a + ", " + b); break;
      case BinOp::kGt:  emit("slt " + rd + ", " + b + ", " + a); break;
      case BinOp::kLe:
        emit("slt " + rd + ", " + b + ", " + a);
        emit("xori " + rd + ", " + rd + ", 1");
        break;
      case BinOp::kGe:
        emit("slt " + rd + ", " + a + ", " + b);
        emit("xori " + rd + ", " + rd + ", 1");
        break;
      case BinOp::kEq:
        emit("xor " + rd + ", " + a + ", " + b);
        emit("sltiu " + rd + ", " + rd + ", 1");
        break;
      case BinOp::kNe:
        emit("xor " + rd + ", " + a + ", " + b);
        emit("sltu " + rd + ", $zero, " + rd);
        break;
      default:
        throw CompileError(e.line, "internal: unhandled binary op");
    }
    finish_slot(depth, rd);
  }

  void gen_logical(const Expr& e, int depth) {
    const std::string done = new_label();
    const std::string rd = target_reg(depth);
    gen_expr(*e.lhs, depth);
    {
      const std::string a = slot_reg(depth, "$t8");
      emit("sltu " + rd + ", $zero, " + a);  // normalize to 0/1
      finish_slot(depth, rd);
      const std::string cur = slot_reg(depth, "$t8");
      if (e.bin_op == BinOp::kLogicalAnd) {
        emit("beq " + cur + ", $zero, " + done);
      } else {
        emit("bne " + cur + ", $zero, " + done);
      }
    }
    gen_expr(*e.rhs, depth);  // overwrites the same slot
    {
      const std::string b = slot_reg(depth, "$t8");
      const std::string rd2 = target_reg(depth);
      emit("sltu " + rd2 + ", $zero, " + b);
      finish_slot(depth, rd2);
    }
    emit_label(done);
  }

  void gen_divide(const Expr& e, int depth) {
    need_divide_ = true;
    gen_expr(*e.lhs, depth);
    gen_expr(*e.rhs, depth + 1);
    // Spill every live slot below `depth` (caller-saved temps).
    save_live_slots(depth);
    emit("move $a0, " + slot_reg(depth, "$t8"));
    emit("move $a1, " + slot_reg(depth + 1, "$t9"));
    emit(e.bin_op == BinOp::kDiv ? "jal __div" : "jal __rem");
    restore_live_slots(depth);
    finish_slot(depth, "$v0");
  }

  void gen_call(const Expr& e, int depth) {
    const auto fn = functions_.find(e.name);
    if (fn == functions_.end()) {
      throw CompileError(e.line, "unknown function '" + e.name + "'");
    }
    if (fn->second.arity != static_cast<int>(e.args.size())) {
      throw CompileError(e.line, "'" + e.name + "' expects " +
                                     std::to_string(fn->second.arity) +
                                     " argument(s)");
    }
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      gen_expr(*e.args[i], depth + static_cast<int>(i));
    }
    save_live_slots(depth);
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      const std::string src =
          slot_reg(depth + static_cast<int>(i), "$t8");
      emit("move $a" + std::to_string(i) + ", " + src);
    }
    emit("jal " + e.name);
    restore_live_slots(depth);
    finish_slot(depth, "$v0");
  }

  // Calls clobber $t0..$t7: park live low slots in their frame spill homes.
  void save_live_slots(int depth) {
    for (int s = 0; s < depth && s < kMaxRegStack; ++s) {
      emit("sw " + treg(s) + ", " + std::to_string(spill_offset(s)) + "($sp)");
    }
  }
  void restore_live_slots(int depth) {
    for (int s = 0; s < depth && s < kMaxRegStack; ++s) {
      emit("lw " + treg(s) + ", " + std::to_string(spill_offset(s)) + "($sp)");
    }
  }

  void gen_assign(const Expr& e, int depth) {
    const Expr& target = *e.lhs;
    if (target.kind == Expr::Kind::kVar) {
      gen_expr(*e.rhs, depth);
      const std::string val = slot_reg(depth, "$t8");
      if (const LocalSlot* local = find_local(target.name)) {
        if (local->in_reg) {
          emit("move " + sreg(local->index) + ", " + val);
        } else {
          emit("sw " + val + ", " +
               std::to_string(overflow_offset(local->index)) + "($sp)");
        }
        return;
      }
      const auto g = globals_.find(target.name);
      if (g == globals_.end()) {
        throw CompileError(target.line, "unknown variable '" + target.name + "'");
      }
      if (g->second.is_array) {
        throw CompileError(target.line, "cannot assign a whole array");
      }
      emit("la $t9, " + target.name);
      emit("sw " + val + ", 0($t9)");
      return;
    }
    // target is name[idx]: evaluate rhs, then the address (so the value
    // survives in its slot while $t8/$t9 are used for addressing).
    gen_expr(*e.rhs, depth);
    gen_index_address(target, depth + 1);
    const std::string val = slot_reg(depth, "$t8");
    emit("sw " + val + ", 0($t9)");
  }

  // ---------- statements ----------

  struct LoopLabels {
    std::string continue_label;
    std::string break_label;
  };

  void gen_stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kExpr:
        gen_expr(*s.expr, 0);
        return;
      case Stmt::Kind::kDecl: {
        const LocalSlot slot = declare_local(s);
        if (s.expr != nullptr) {
          gen_expr(*s.expr, 0);
          const std::string val = slot_reg(0, "$t8");
          if (slot.in_reg) {
            emit("move " + sreg(slot.index) + ", " + val);
          } else {
            emit("sw " + val + ", " +
                 std::to_string(overflow_offset(slot.index)) + "($sp)");
          }
        } else if (slot.in_reg) {
          emit("move " + sreg(slot.index) + ", $zero");
        } else {
          emit("sw $zero, " + std::to_string(overflow_offset(slot.index)) +
               "($sp)");
        }
        return;
      }
      case Stmt::Kind::kIf: {
        const std::string else_label = new_label();
        gen_branch_if_false(*s.expr, else_label);
        gen_stmt(*s.body);
        if (s.else_body != nullptr) {
          const std::string end_label = new_label();
          emit("j " + end_label);
          emit_label(else_label);
          gen_stmt(*s.else_body);
          emit_label(end_label);
        } else {
          emit_label(else_label);
        }
        return;
      }
      case Stmt::Kind::kWhile: {
        const std::string head = new_label();
        const std::string exit = new_label();
        emit_label(head);
        gen_branch_if_false(*s.expr, exit);
        loops_.push_back({head, exit});
        gen_stmt(*s.body);
        loops_.pop_back();
        emit("j " + head);
        emit_label(exit);
        return;
      }
      case Stmt::Kind::kFor: {
        push_scope();
        if (s.init != nullptr) gen_stmt(*s.init);
        const std::string head = new_label();
        const std::string step = new_label();
        const std::string exit = new_label();
        emit_label(head);
        if (s.expr != nullptr) gen_branch_if_false(*s.expr, exit);
        loops_.push_back({step, exit});
        gen_stmt(*s.body);
        loops_.pop_back();
        emit_label(step);
        if (s.step != nullptr) gen_expr(*s.step, 0);
        emit("j " + head);
        emit_label(exit);
        pop_scope();
        return;
      }
      case Stmt::Kind::kReturn:
        if (s.expr != nullptr) {
          gen_expr(*s.expr, 0);
          emit("move $v0, " + slot_reg(0, "$t8"));
        } else {
          emit("move $v0, $zero");
        }
        emit("j " + return_label_);
        return;
      case Stmt::Kind::kBreak:
        if (loops_.empty()) throw CompileError(s.line, "break outside a loop");
        emit("j " + loops_.back().break_label);
        return;
      case Stmt::Kind::kContinue:
        if (loops_.empty()) {
          throw CompileError(s.line, "continue outside a loop");
        }
        emit("j " + loops_.back().continue_label);
        return;
      case Stmt::Kind::kBlock:
        push_scope();
        for (const StmtPtr& child : s.stmts) gen_stmt(*child);
        pop_scope();
        return;
    }
  }

  // Branches to `target` when `cond` is false, specializing comparisons.
  void gen_branch_if_false(const Expr& cond, const std::string& target) {
    if (cond.kind == Expr::Kind::kBinary) {
      const char* op = nullptr;
      bool swap = false;
      switch (cond.bin_op) {
        case BinOp::kEq: op = "bne"; break;
        case BinOp::kNe: op = "beq"; break;
        case BinOp::kLt: op = "bge"; break;
        case BinOp::kGe: op = "blt"; break;
        case BinOp::kGt: op = "bge"; swap = true; break;
        case BinOp::kLe: op = "blt"; swap = true; break;
        default: break;
      }
      if (op != nullptr) {
        gen_expr(*cond.lhs, 0);
        gen_expr(*cond.rhs, 1);
        std::string a = slot_reg(0, "$t8");
        std::string b = slot_reg(1, "$t9");
        if (swap) std::swap(a, b);
        emit(std::string(op) + " " + a + ", " + b + ", " + target);
        return;
      }
    }
    gen_expr(cond, 0);
    emit("beq " + slot_reg(0, "$t8") + ", $zero, " + target);
  }

  // ---------- locals & scopes ----------

  const LocalSlot* find_local(const std::string& name) const {
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
      const auto it = scope->find(name);
      if (it != scope->end()) return &it->second;
    }
    return nullptr;
  }

  LocalSlot declare_local(const Stmt& decl) {
    if (scopes_.back().count(decl.name) != 0) {
      throw CompileError(decl.line, "duplicate local '" + decl.name + "'");
    }
    LocalSlot slot;
    if (next_local_ < kMaxRegLocals) {
      slot.in_reg = true;
      slot.index = next_local_;
      used_s_regs_ = std::max(used_s_regs_, next_local_ + 1);
    } else {
      slot.in_reg = false;
      slot.index = next_local_ - kMaxRegLocals;
      overflow_locals_ = std::max(overflow_locals_, slot.index + 1);
    }
    ++next_local_;
    scopes_.back()[decl.name] = slot;
    return slot;
  }

  void push_scope() {
    scopes_.emplace_back();
    scope_marks_.push_back(next_local_);
  }
  void pop_scope() {
    scopes_.pop_back();
    next_local_ = scope_marks_.back();
    scope_marks_.pop_back();
  }

  // ---------- functions ----------

  void emit_function(std::ostringstream& out, const Function& fn) {
    body_.str("");
    body_.clear();
    scopes_.clear();
    scope_marks_.clear();
    loops_.clear();
    next_local_ = 0;
    used_s_regs_ = 0;
    overflow_locals_ = 0;
    return_label_ = new_label();

    push_scope();
    // Parameters become the first locals.
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      Stmt decl;
      decl.name = fn.params[i];
      decl.line = fn.line;
      const LocalSlot slot = declare_local(decl);
      if (slot.in_reg) {
        emit("move " + sreg(slot.index) + ", $a" + std::to_string(i));
      } else {
        emit("sw $a" + std::to_string(i) + ", " +
             std::to_string(overflow_offset(slot.index)) + "($sp)");
      }
    }
    gen_stmt(*fn.body);
    pop_scope();

    // Frame: 8 spill slots + overflow locals + saved $s + $ra, 8-aligned.
    const int saved = used_s_regs_ + 1;  // +1 for $ra
    int frame = 32 + overflow_locals_ * 4 + saved * 4;
    frame = (frame + 7) & ~7;
    const int ra_off = frame - 4;
    auto s_off = [&](int i) { return frame - 8 - i * 4; };

    out << fn.name << ":\n";
    out << "        addiu $sp, $sp, -" << frame << "\n";
    out << "        sw $ra, " << ra_off << "($sp)\n";
    for (int i = 0; i < used_s_regs_; ++i) {
      out << "        sw " << sreg(i) << ", " << s_off(i) << "($sp)\n";
    }
    out << body_.str();
    out << "        move $v0, $zero\n";  // fall-off-the-end returns 0
    out << return_label_ << ":\n";
    for (int i = 0; i < used_s_regs_; ++i) {
      out << "        lw " << sreg(i) << ", " << s_off(i) << "($sp)\n";
    }
    out << "        lw $ra, " << ra_off << "($sp)\n";
    out << "        addiu $sp, $sp, " << frame << "\n";
    out << "        jr $ra\n";
  }

  // ---------- division runtime ----------

  void emit_divide_runtime(std::ostringstream& out) {
    out << R"(
# --- software divide runtime (restoring division) ---
__udivmod:                     # ($a0, $a1) -> $v0 quotient, $v1 remainder
        li   $v0, 0
        li   $v1, 0
        li   $t8, 32
__udm_loop:
        sll  $v1, $v1, 1
        srl  $t9, $a0, 31
        or   $v1, $v1, $t9
        sll  $a0, $a0, 1
        sll  $v0, $v0, 1
        sltu $t9, $v1, $a1
        bne  $t9, $zero, __udm_skip
        subu $v1, $v1, $a1
        ori  $v0, $v0, 1
__udm_skip:
        addiu $t8, $t8, -1
        bgtz $t8, __udm_loop
        jr   $ra
__div:                          # C-style truncating signed divide
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        xor  $t8, $a0, $a1      # quotient sign
        sw   $t8, 0($sp)
        bgez $a0, __div_a
        subu $a0, $zero, $a0
__div_a:
        bgez $a1, __div_b
        subu $a1, $zero, $a1
__div_b:
        jal  __udivmod
        lw   $t8, 0($sp)
        bgez $t8, __div_done
        subu $v0, $zero, $v0
__div_done:
        lw   $ra, 4($sp)
        addiu $sp, $sp, 8
        jr   $ra
__rem:                          # remainder keeps the dividend's sign
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        sw   $a0, 0($sp)
        bgez $a0, __rem_a
        subu $a0, $zero, $a0
__rem_a:
        bgez $a1, __rem_b
        subu $a1, $zero, $a1
__rem_b:
        jal  __udivmod
        lw   $t8, 0($sp)
        move $v0, $v1
        bgez $t8, __rem_done
        subu $v0, $zero, $v0
__rem_done:
        lw   $ra, 4($sp)
        addiu $sp, $sp, 8
        jr   $ra
)";
  }

  const TranslationUnit& unit_;
  std::map<std::string, GlobalInfo> globals_;
  std::map<std::string, FunctionInfo> functions_;

  std::ostringstream body_;
  std::vector<std::map<std::string, LocalSlot>> scopes_;
  std::vector<int> scope_marks_;
  std::vector<LoopLabels> loops_;
  std::string return_label_;
  int label_counter_ = 0;
  int next_local_ = 0;
  int used_s_regs_ = 0;
  int overflow_locals_ = 0;
  bool need_divide_ = false;
};

}  // namespace

std::string generate(const TranslationUnit& unit) {
  return Codegen(unit).run();
}

}  // namespace t1000::minic
