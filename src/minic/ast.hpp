// MiniC abstract syntax tree.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace t1000::minic {

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kRem,
  kAnd, kOr, kXor,
  kShl, kShr,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kLogicalAnd, kLogicalOr,
};

enum class UnOp : std::uint8_t { kNeg, kNot, kLogicalNot };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : std::uint8_t {
    kNumber,  // number
    kVar,     // name
    kIndex,   // name[lhs]
    kUnary,   // un_op lhs
    kBinary,  // lhs bin_op rhs
    kAssign,  // target(kVar/kIndex) = rhs; reuses lhs as the target
    kCall,    // name(args...)
  };

  Kind kind = Kind::kNumber;
  int line = 0;
  std::int32_t number = 0;
  std::string name;
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
  ExprPtr lhs;
  ExprPtr rhs;
  std::vector<ExprPtr> args;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : std::uint8_t {
    kExpr,      // expr;
    kDecl,      // int name = init;   (init optional)
    kIf,        // if (cond) then_body [else else_body]
    kWhile,     // while (cond) body
    kFor,       // for (init; cond; step) body   (each part optional)
    kReturn,    // return [expr];
    kBreak,
    kContinue,
    kBlock,     // { stmts... }
  };

  Kind kind = Kind::kExpr;
  int line = 0;
  std::string name;  // kDecl
  ExprPtr expr;      // kExpr / kDecl init / kIf cond / kWhile cond /
                     // kFor cond / kReturn value
  ExprPtr step;      // kFor step expression
  StmtPtr init;      // kFor init statement (decl or expr)
  StmtPtr body;      // kIf then / loop body
  StmtPtr else_body; // kIf else
  std::vector<StmtPtr> stmts;  // kBlock
};

struct Function {
  std::string name;
  std::vector<std::string> params;  // up to 4
  StmtPtr body;                     // kBlock
  int line = 0;
};

struct Global {
  std::string name;
  int count = 1;  // 1 = scalar, >1 = array elements
  std::vector<std::int32_t> init;  // empty = zero-initialized
  int line = 0;
};

struct TranslationUnit {
  std::vector<Global> globals;
  std::vector<Function> functions;
};

}  // namespace t1000::minic
