// MiniC: a small C subset compiled to T1000 assembly.
//
// The paper's toolflow starts from *compiled* code - extended instructions
// are "created at compile time by converting an appropriate instruction
// sequence in the compiled code into a single PFU opcode" (Section 2.1).
// MiniC closes that loop: kernels written in a C subset compile to the
// bundled ISA with register-resident locals, so the dependent ALU chains
// the selector mines look exactly like compiler output.
//
// Language: `int` scalars and global `int` arrays; functions with up to
// four `int` parameters; `if`/`else`, `while`, `for`, `break`, `continue`,
// `return`; C expression grammar with assignment, `?:`-free logical
// short-circuit, comparisons, shifts, bitwise ops, `*`, and `/`/`%` via
// emitted runtime helpers. No pointers, no types beyond int.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace t1000::minic {

class CompileError : public std::runtime_error {
 public:
  CompileError(int line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

enum class Tok : std::uint8_t {
  kEof,
  kNumber,
  kIdent,
  // keywords
  kInt,
  kIf,
  kElse,
  kWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
  // punctuation / operators
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemi,
  kAssign,        // =
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kShl, kShr,
  kLt, kGt, kLe, kGe, kEq, kNe,
  kAndAnd, kOrOr,
};

struct Token {
  Tok kind = Tok::kEof;
  std::int64_t number = 0;  // kNumber
  std::string text;         // kIdent
  int line = 1;
};

// Tokenizes MiniC source ('//' and '/* */' comments allowed). Throws
// CompileError on malformed input.
std::vector<Token> lex(const std::string& source);

}  // namespace t1000::minic
