#include <cctype>

#include "minic/token.hpp"

namespace t1000::minic {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return ident_start(c) || std::isdigit(static_cast<unsigned char>(c));
}

Tok keyword_or_ident(const std::string& text) {
  if (text == "int") return Tok::kInt;
  if (text == "if") return Tok::kIf;
  if (text == "else") return Tok::kElse;
  if (text == "while") return Tok::kWhile;
  if (text == "for") return Tok::kFor;
  if (text == "return") return Tok::kReturn;
  if (text == "break") return Tok::kBreak;
  if (text == "continue") return Tok::kContinue;
  return Tok::kIdent;
}

}  // namespace

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto push = [&](Tok kind) {
    Token t;
    t.kind = kind;
    t.line = line;
    out.push_back(std::move(t));
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) throw CompileError(line, "unterminated comment");
      i += 2;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t value = 0;
      int base = 10;
      if (c == '0' && i + 1 < n && (source[i + 1] == 'x' || source[i + 1] == 'X')) {
        base = 16;
        i += 2;
        if (i >= n || !std::isxdigit(static_cast<unsigned char>(source[i]))) {
          throw CompileError(line, "malformed hex literal");
        }
      }
      while (i < n &&
             (base == 16 ? std::isxdigit(static_cast<unsigned char>(source[i])) != 0
                         : std::isdigit(static_cast<unsigned char>(source[i])) != 0)) {
        const char d = source[i];
        const int digit = d <= '9' ? d - '0' : (d | 0x20) - 'a' + 10;
        value = value * base + digit;
        if (value > 0xFFFFFFFFll) throw CompileError(line, "literal overflows 32 bits");
        ++i;
      }
      Token t;
      t.kind = Tok::kNumber;
      t.number = value;
      t.line = line;
      out.push_back(std::move(t));
      continue;
    }
    if (ident_start(c)) {
      std::size_t start = i;
      while (i < n && ident_char(source[i])) ++i;
      Token t;
      t.text = source.substr(start, i - start);
      t.kind = keyword_or_ident(t.text);
      t.line = line;
      out.push_back(std::move(t));
      continue;
    }

    auto two = [&](char second) {
      return i + 1 < n && source[i + 1] == second;
    };
    switch (c) {
      case '(': push(Tok::kLParen); ++i; break;
      case ')': push(Tok::kRParen); ++i; break;
      case '{': push(Tok::kLBrace); ++i; break;
      case '}': push(Tok::kRBrace); ++i; break;
      case '[': push(Tok::kLBracket); ++i; break;
      case ']': push(Tok::kRBracket); ++i; break;
      case ',': push(Tok::kComma); ++i; break;
      case ';': push(Tok::kSemi); ++i; break;
      case '+': push(Tok::kPlus); ++i; break;
      case '-': push(Tok::kMinus); ++i; break;
      case '*': push(Tok::kStar); ++i; break;
      case '/': push(Tok::kSlash); ++i; break;
      case '%': push(Tok::kPercent); ++i; break;
      case '~': push(Tok::kTilde); ++i; break;
      case '^': push(Tok::kCaret); ++i; break;
      case '&':
        if (two('&')) { push(Tok::kAndAnd); i += 2; } else { push(Tok::kAmp); ++i; }
        break;
      case '|':
        if (two('|')) { push(Tok::kOrOr); i += 2; } else { push(Tok::kPipe); ++i; }
        break;
      case '<':
        if (two('<')) { push(Tok::kShl); i += 2; }
        else if (two('=')) { push(Tok::kLe); i += 2; }
        else { push(Tok::kLt); ++i; }
        break;
      case '>':
        if (two('>')) { push(Tok::kShr); i += 2; }
        else if (two('=')) { push(Tok::kGe); i += 2; }
        else { push(Tok::kGt); ++i; }
        break;
      case '=':
        if (two('=')) { push(Tok::kEq); i += 2; } else { push(Tok::kAssign); ++i; }
        break;
      case '!':
        if (two('=')) { push(Tok::kNe); i += 2; } else { push(Tok::kBang); ++i; }
        break;
      default:
        throw CompileError(line, std::string("unexpected character '") + c + "'");
    }
  }
  push(Tok::kEof);
  return out;
}

}  // namespace t1000::minic
