// Committed-trace capture and replay.
//
// The timing model assumes perfect dependence information and (by default)
// perfect branch prediction: the fetched path and the committed path
// coincide, so the committed instruction stream is a pure function of the
// (program, EXT table, step bound) triple and is *independent of the
// machine configuration*. That makes it profitable to run the functional
// `Executor` once, capture everything the timing pipeline observes per
// step, and replay the recording into any number of timing simulations —
// a grid sweep over N machine configurations pays functional execution
// once instead of N times.
//
// The recording keeps only the timing-visible projection of `StepInfo`
// (instruction index, successor index, memory address/size, branch
// outcome) in structure-of-arrays form, 14 bytes per committed step. The
// architectural values (operand and result registers) are deliberately
// not captured: the pipeline never reads them, and dropping them keeps
// long traces compact. Instructions are rebuilt from the program text on
// replay, so a trace is only meaningful next to the exact program it was
// recorded from — `content_hash()` fingerprints the stream so callers can
// key caches on it.
#pragma once

#include <cstdint>
#include <vector>

#include "asmkit/program.hpp"
#include "isa/extdef.hpp"
#include "sim/executor.hpp"

namespace t1000 {

// Bump when the recorded projection of StepInfo changes; part of the
// result-cache identity (see harness/cache.hpp) so stale memoized results
// can never be replayed against a new format.
inline constexpr int kTraceFormatVersion = 1;

class CommittedTrace {
 public:
  // Per-step flag bits packed into flags_.
  static constexpr std::uint8_t kFlagBranchTaken = 1u << 0;
  static constexpr std::uint8_t kFlagIsMem = 1u << 1;
  // The off-the-end halt sentinel: a step whose index is one past the text
  // segment (a `jr $ra` out of the entry function). It carries a synthetic
  // halt instruction that is not present in the program text.
  static constexpr std::uint8_t kFlagSentinel = 1u << 2;

  std::size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

  // Instruction index of step `i` (the executor's pc before the step).
  std::int32_t index_at(std::size_t i) const { return index_[i]; }

  // Rebuilds the timing-visible StepInfo for step `i`. `program` must be
  // the program the trace was recorded from; the architectural value
  // fields (src_vals/result) are left zero, see the file comment.
  StepInfo step_at(std::size_t i, const Program& program) const;

  // Final $v0 of the functional run — the workload checksum.
  std::uint32_t checksum() const { return checksum_; }

  // FNV-1a fingerprint of the whole stream (arrays, length, checksum).
  std::uint64_t content_hash() const { return content_hash_; }

  // Heap footprint of the SoA arrays, for observability.
  std::uint64_t memory_bytes() const;

 private:
  friend CommittedTrace record_trace(const Program& program,
                                     const ExtInstTable* ext_table,
                                     std::uint64_t max_steps);

  void append(const StepInfo& info, bool sentinel);
  void finalize(std::uint32_t checksum);

  std::vector<std::int32_t> index_;
  std::vector<std::int32_t> next_index_;
  std::vector<std::uint32_t> mem_addr_;
  std::vector<std::uint8_t> mem_size_;
  std::vector<std::uint8_t> flags_;
  std::uint32_t checksum_ = 0;
  std::uint64_t content_hash_ = 0;
};

// Runs `program` to completion on a fresh Executor and records the
// committed stream. Throws SimError when the program does not halt within
// `max_steps` (mirroring the harness's functional-run bound).
CommittedTrace record_trace(const Program& program,
                            const ExtInstTable* ext_table,
                            std::uint64_t max_steps);

// Presents a recorded trace through the step-source interface the timing
// pipeline consumes (see uarch/timing.cpp): halted / next_index / step.
// Both referents must outlive the cursor.
class TraceCursor {
 public:
  TraceCursor(const CommittedTrace& trace, const Program& program)
      : trace_(&trace), program_(&program) {}

  bool halted() const { return pos_ >= trace_->size(); }
  std::int32_t next_index() const { return trace_->index_at(pos_); }
  StepInfo step() { return trace_->step_at(pos_++, *program_); }

 private:
  const CommittedTrace* trace_;
  const Program* program_;
  std::size_t pos_ = 0;
};

}  // namespace t1000
