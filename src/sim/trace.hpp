// Committed-trace capture and replay.
//
// The timing model assumes perfect dependence information and (by default)
// perfect branch prediction: the fetched path and the committed path
// coincide, so the committed instruction stream is a pure function of the
// (program, EXT table, step bound) triple and is *independent of the
// machine configuration*. That makes it profitable to run the functional
// `Executor` once, capture everything the timing pipeline observes per
// step, and replay the recording into any number of timing simulations —
// a grid sweep over N machine configurations pays functional execution
// once instead of N times.
//
// The recording keeps only the timing-visible projection of `StepInfo`
// (instruction index, successor index, memory address/size, branch
// outcome) in structure-of-arrays form, 14 bytes per committed step. The
// architectural values (operand and result registers) are deliberately
// not captured: the pipeline never reads them, and dropping them keeps
// long traces compact. Instructions are rebuilt from the program text on
// replay, so a trace is only meaningful next to the exact program it was
// recorded from — `content_hash()` fingerprints the stream so callers can
// key caches on it.
#pragma once

#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "asmkit/program.hpp"
#include "isa/extdef.hpp"
#include "isa/instruction.hpp"
#include "isa/opcode.hpp"
#include "sim/executor.hpp"

namespace t1000 {

namespace detail {

// Per-thread recycler for the trace columns' backing blocks. Recording a
// multi-megabyte trace and destroying it returns the columns to the
// system allocator, which (past its trim threshold) hands the pages back
// to the OS — so a workload that records traces in a loop (the harness
// grid, the benchmarks) pays a soft page fault per 4 KiB of trace on
// every single recording. Keeping a handful of large blocks per thread
// turns that into plain pointer reuse. Small blocks pass through
// untouched; the cache is bounded (kMaxCachedBytes per thread) and
// released at thread exit.
void* column_block_acquire(std::size_t bytes);
void column_block_release(void* p, std::size_t bytes);

// std::allocator variant with two trace-recorder properties: storage
// comes from the per-thread block cache above, and value-less
// constructions default-initialize — resizing a column of trivial
// elements reserves space without writing zeros the recorder is about to
// overwrite anyway. Only the trace columns below use it; every element
// the trace exposes has been stored by the recorder before finalize()
// seals the object.
template <typename T>
struct NoInitAllocator {
  using value_type = T;

  NoInitAllocator() = default;
  template <typename U>
  NoInitAllocator(const NoInitAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(std::size_t n) {
    return static_cast<T*>(column_block_acquire(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    column_block_release(p, n * sizeof(T));
  }
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    if constexpr (sizeof...(Args) == 0) {
      ::new (static_cast<void*>(p)) U;
    } else {
      ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }
  }
  friend bool operator==(const NoInitAllocator&, const NoInitAllocator&) {
    return true;
  }
};

template <typename T>
using Column = std::vector<T, NoInitAllocator<T>>;

// Byte-sized column element that is deliberately NOT a character type:
// stores through a `TraceByte*` cannot alias unrelated objects the way
// `std::uint8_t*` (unsigned char) stores can, so the recorder's per-step
// byte-column writes don't force the optimizer to spill and reload its
// cursor state around every committed step.
enum class TraceByte : std::uint8_t {};

}  // namespace detail

// Bump when the recorded projection of StepInfo changes; part of the
// result-cache identity (see harness/cache.hpp) so stale memoized results
// can never be replayed against a new format.
inline constexpr int kTraceFormatVersion = 1;

class CommittedTrace {
 public:
  // Per-step flag bits packed into flags_.
  static constexpr std::uint8_t kFlagBranchTaken = 1u << 0;
  static constexpr std::uint8_t kFlagIsMem = 1u << 1;
  // The off-the-end halt sentinel: a step whose index is one past the text
  // segment (a `jr $ra` out of the entry function). It carries a synthetic
  // halt instruction that is not present in the program text.
  static constexpr std::uint8_t kFlagSentinel = 1u << 2;

  std::size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

  // Instruction index of step `i` (the executor's pc before the step).
  std::int32_t index_at(std::size_t i) const { return index_[i]; }

  // Rebuilds the timing-visible StepInfo for step `i`. `program` must be
  // the program the trace was recorded from; the architectural value
  // fields (src_vals/result) are left zero, see the file comment.
  StepInfo step_at(std::size_t i, const Program& program) const;

  // Final $v0 of the functional run — the workload checksum.
  std::uint32_t checksum() const { return checksum_; }

  // FNV-1a fingerprint of the whole stream (arrays, length, checksum).
  std::uint64_t content_hash() const { return content_hash_; }

  // Heap footprint of the SoA arrays, for observability.
  std::uint64_t memory_bytes() const;

 private:
  friend CommittedTrace record_trace(const Program& program,
                                     const ExtInstTable* ext_table,
                                     std::uint64_t max_steps, ExecMode mode);
  friend CommittedTrace record_trace(const UopProgram& ucode,
                                     std::uint64_t max_steps);
  // The threaded interpreter's record policy appends SoA rows directly,
  // skipping StepInfo materialization (sim/ucode.cpp).
  friend struct UcodeImpl;

  void append(const StepInfo& info, bool sentinel);
  void finalize(std::uint32_t checksum);

  detail::Column<std::int32_t> index_;
  detail::Column<std::int32_t> next_index_;
  detail::Column<std::uint32_t> mem_addr_;
  detail::Column<detail::TraceByte> mem_size_;
  detail::Column<detail::TraceByte> flags_;
  std::uint32_t checksum_ = 0;
  std::uint64_t content_hash_ = 0;
};

// Runs `program` to completion on a fresh Executor and records the
// committed stream. Throws SimError when the program does not halt within
// `max_steps` (mirroring the harness's functional-run bound). The default
// kUcode mode pre-decodes and records through the threaded interpreter's
// no-StepInfo fast path; kReference records through the original
// interpreter (the differential suite pins the two byte-identical).
CommittedTrace record_trace(const Program& program,
                            const ExtInstTable* ext_table,
                            std::uint64_t max_steps,
                            ExecMode mode = ExecMode::kUcode);

// Records from an already-decoded program — what the harness uses once a
// preparation has built (and cached) the UopProgram.
CommittedTrace record_trace(const UopProgram& ucode, std::uint64_t max_steps);

// --- decoded steps ---
//
// Everything the timing pipeline's decode stage derives from a StepInfo,
// computed once by decode_step(). The pipeline's fetch/dispatch stages
// consume this form exclusively, so a step decoded ahead of time (the
// batched replay path below) and a step decoded on the fly (the direct
// and single-replay paths) take exactly the same cycle-level code.
struct DecodedStep {
  StepInfo info;
  std::uint32_t pc = 0;         // byte address of info.index (I-cache key)
  FuClass fu = FuClass::kNone;  // issue port class of the opcode
  SrcRegs srcs;                 // register operands read (renaming)
  std::int8_t dst = -1;         // register written; -1 = none
  std::int8_t dst2 = -1;        // second register written (MIMO EXT only)
  bool is_ctrl = false;         // consults the branch predictor
  bool is_store = false;        // participates in store->load ordering
  bool is_ext = false;          // requests a PFU configuration at decode
};

// The one decode function both forms share. `program` must be the program
// `info` was produced from (pc_of; the instruction itself is already
// embedded in `info`).
DecodedStep decode_step(const StepInfo& info, const Program& program);

// Presents a recorded trace through the step-source interface the timing
// pipeline consumes (see uarch/timing.cpp): halted / next_pc / step.
// Both referents must outlive the cursor.
class TraceCursor {
 public:
  TraceCursor(const CommittedTrace& trace, const Program& program)
      : trace_(&trace), program_(&program) {}

  bool halted() const { return pos_ >= trace_->size(); }
  std::uint32_t next_pc() const {
    return program_->pc_of(trace_->index_at(pos_));
  }
  DecodedStep step() {
    return decode_step(trace_->step_at(pos_++, *program_), *program_);
  }

 private:
  const CommittedTrace* trace_;
  const Program* program_;
  std::size_t pos_ = 0;
};

// A committed trace fully decoded up front: one pass pays StepInfo
// reconstruction and instruction decode for the whole stream, after which
// any number of timing lanes replay it as plain array reads. This is what
// makes config-parallel batched replay (uarch/timing.hpp,
// simulate_replay_batch) profitable — N machine configurations share one
// decode instead of re-deriving it N times.
class DecodedTrace {
 public:
  DecodedTrace(const CommittedTrace& trace, const Program& program);

  std::size_t size() const { return steps_.size(); }
  const DecodedStep& at(std::size_t i) const { return steps_[i]; }

  // Heap footprint of the decoded array, for observability.
  std::uint64_t memory_bytes() const {
    return steps_.capacity() * sizeof(DecodedStep);
  }

 private:
  std::vector<DecodedStep> steps_;
};

// Step source over a DecodedTrace; the batched replay pipeline's cursor.
// One cursor per lane, all borrowing the same decoded array.
class DecodedCursor {
 public:
  explicit DecodedCursor(const DecodedTrace& trace) : trace_(&trace) {}

  bool halted() const { return pos_ >= trace_->size(); }
  std::uint32_t next_pc() const { return trace_->at(pos_).pc; }
  const DecodedStep& step() { return trace_->at(pos_++); }

 private:
  const DecodedTrace* trace_;
  std::size_t pos_ = 0;
};

}  // namespace t1000
