#include "sim/ucode.hpp"

#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

#include "cfg/cfg.hpp"
#include "isa/alu.hpp"
#include "sim/executor.hpp"
#include "sim/trace.hpp"

// Dispatch scheme selection. Computed goto (a GCC/Clang extension) keeps
// one indirect branch per handler, which lets the host branch predictor
// learn per-uop successor patterns; the portable switch is semantically
// identical and pinned byte-identical by CI (T1000_NO_COMPUTED_GOTO).
#if !defined(T1000_NO_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
#define T1000_UCODE_COMPUTED_GOTO 1
#else
#define T1000_UCODE_COMPUTED_GOTO 0
#endif

namespace t1000 {
namespace {

// UopKind mirrors Opcode entry-for-entry over the regular instructions, so
// lowering a well-formed instruction is a cast. Anchor the correspondence;
// a reorder of either enum trips these at compile time.
static_assert(static_cast<int>(UopKind::kAddu) ==
              static_cast<int>(Opcode::kAddu));
static_assert(static_cast<int>(UopKind::kSll) ==
              static_cast<int>(Opcode::kSll));
static_assert(static_cast<int>(UopKind::kLui) ==
              static_cast<int>(Opcode::kLui));
static_assert(static_cast<int>(UopKind::kSb) == static_cast<int>(Opcode::kSb));
static_assert(static_cast<int>(UopKind::kJalr) ==
              static_cast<int>(Opcode::kJalr));
static_assert(static_cast<int>(UopKind::kExt) ==
              static_cast<int>(Opcode::kExt));

bool regs_in_range(const Instruction& ins) {
  return ins.rd < kNumRegs && ins.rs < kNumRegs && ins.rt < kNumRegs;
}

// Lowers one instruction. `size` bounds static control targets: anything
// the fast path would have to range-check dynamically anyway (or that the
// reference interpreter rejects with a specific error) becomes kInterp,
// which replays that single step through the reference implementation.
Uop lower(const Instruction& ins, std::int32_t size,
          const ExtInstTable* table) {
  Uop u;
  u.rd = ins.rd;
  u.rs = ins.rs;
  u.rt = ins.rt;
  if (!regs_in_range(ins)) {
    u.kind = UopKind::kInterp;
    return u;
  }
  u.kind = static_cast<UopKind>(static_cast<std::uint8_t>(ins.op));
  switch (op_kind(ins.op)) {
    case OpKind::kAlu3:
      break;
    case OpKind::kShiftImm:
      // eval_alu masks the amount at run time; bake the mask in.
      u.imm = ins.imm & 31;
      break;
    case OpKind::kAluImm:
      u.imm = static_cast<std::int32_t>(extend_imm(ins.op, ins.imm));
      break;
    case OpKind::kLui:
      u.imm = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(ins.imm & 0xFFFF) << 16);
      break;
    case OpKind::kLoad:
    case OpKind::kStore:
      u.imm = ins.imm;
      break;
    case OpKind::kBranch2:
    case OpKind::kBranch1:
    case OpKind::kJump:
      // A taken transfer to [0, size] is legal ([size] dispatches the
      // sentinel). Anything else throws in the reference interpreter —
      // and an *untaken* branch with a bad target does not, so the
      // distinction must be made per step: defer to it.
      if (ins.imm < 0 || ins.imm > size) {
        u.kind = UopKind::kInterp;
        return u;
      }
      u.target = ins.imm;
      break;
    case OpKind::kJumpReg:
    case OpKind::kNop:
    case OpKind::kHalt:
      break;
    case OpKind::kExt:
      if (table == nullptr || ins.conf >= table->size()) {
        // "EXT with unknown Conf id": reference-path error semantics.
        u.kind = UopKind::kInterp;
        return u;
      }
      {
        const ExtInstDef& def = table->at(ins.conf);
        if (def.num_inputs() > 2 || def.num_outputs() > 1) {
          // MIMO EXTs don't fit the 12-byte uop's two-source/one-dest
          // shape; replay the step through the reference interpreter so
          // both execution modes stay lockstep-identical.
          u.kind = UopKind::kInterp;
          return u;
        }
      }
      u.imm = ins.conf;
      break;
  }
  return u;
}

}  // namespace

std::string_view uop_kind_name(UopKind kind) {
  switch (kind) {
    case UopKind::kSentinel:
      return "sentinel";
    case UopKind::kInterp:
      return "interp";
    case UopKind::kNumUopKinds:
      return "?";
    default:
      // Regular uops share the opcode's mnemonic (the cast is the inverse
      // of lower()'s, anchored by the static_asserts above).
      return mnemonic(static_cast<Opcode>(static_cast<std::uint8_t>(kind)));
  }
}

UopProgram UopProgram::build(const Program& program,
                             const ExtInstTable* table) {
  UopProgram up;
  up.program = &program;
  up.table = table;
  const auto size = static_cast<std::int32_t>(program.size());
  up.uops.reserve(static_cast<std::size_t>(size) + 1);
  for (const Instruction& ins : program.text) {
    up.uops.push_back(lower(ins, size, table));
  }
  Uop sentinel;
  sentinel.kind = UopKind::kSentinel;
  up.uops.push_back(sentinel);
  if (size > 0) {
    const Cfg cfg = Cfg::build(program);
    up.segments.reserve(static_cast<std::size_t>(cfg.num_blocks()));
    for (const BasicBlock& bb : cfg.blocks()) {
      up.segments.push_back(UopSegment{bb.id, bb.first, bb.last});
    }
  }
  return up;
}

std::string disassemble(const UopProgram& ucode) {
  std::string out;
  char line[128];
  auto emit = [&out, &line](int n) { out.append(line, static_cast<std::size_t>(n)); };
  std::size_t seg = 0;
  for (std::size_t i = 0; i < ucode.uops.size(); ++i) {
    while (seg < ucode.segments.size() &&
           ucode.segments[seg].first == static_cast<std::int32_t>(i)) {
      const UopSegment& s = ucode.segments[seg];
      emit(std::snprintf(line, sizeof line, "segment b%d [%d..%d]\n", s.block,
                         s.first, s.last));
      ++seg;
    }
    const Uop& u = ucode.uops[i];
    emit(std::snprintf(line, sizeof line,
                       "  %4zu: %-8s rd=%-2u rs=%-2u rt=%-2u imm=%-11d "
                       "target=%d\n",
                       i, std::string(uop_kind_name(u.kind)).c_str(), u.rd,
                       u.rs, u.rt, u.imm, u.target));
  }
  return out;
}

// ---------------------------------------------------------------------------
// The dispatch loop.
//
// One loop body serves step()/run()/record_trace() through a Policy with
// two hooks:
//
//   bool begin(std::uint64_t steps)  — before each dispatch; false stops
//     the loop (run bound reached, single step done); record's variant
//     throws SimError on a blown step bound instead, matching the
//     reference record loop.
//   void commit(...)                 — after each committed step, with the
//     full observable projection; each policy keeps what it needs (record
//     appends the SoA row, run counts, step materializes a StepInfo) and
//     inlining dead-code-eliminates the rest.
//
// Executor state lives in locals (pc, steps) for the duration; a thrown
// SimError/MemError writes them back before propagating, which leaves the
// executor in exactly the state the reference interpreter would (a
// throwing step never advances pc_ or steps_, but partial register/memory
// effects — e.g. jalr's link write before a wild-jump fault — stay).

// Each policy hands the loop a by-value Cursor holding its hot state; the
// loop syncs the cursor back at exit. The indirection is load-bearing for
// performance: the interpreter's own stores (register file, simulated
// memory pages — both reachable through char-typed pointers) could alias
// any state behind the Policy reference, so commit state kept there is
// reloaded from memory on every committed step. A cursor that is a local
// of execute() whose address never escapes is provably unaliased, and the
// optimizer keeps its fields in registers across steps.

struct UcodeImpl {
  struct RunPolicy {
    std::uint64_t max_steps;
    std::uint64_t n = 0;

    struct Cursor {
      std::uint64_t max_steps;
      std::uint64_t n;
      bool begin(std::uint64_t) const { return n < max_steps; }
      void commit(std::int32_t, std::int32_t, std::uint32_t, std::uint32_t,
                  int, bool, std::uint32_t, bool, std::uint32_t, std::uint8_t,
                  bool, bool) {
        ++n;
      }
      void commit_info(const StepInfo&, bool) { ++n; }
    };
    Cursor cursor() { return {max_steps, n}; }
    void sync(const Cursor& c) { n = c.n; }
  };

  // Appends SoA rows through raw pointers behind a single shared capacity
  // check: the five arrays always have equal length, so one compare per
  // committed step replaces five push_back capacity checks. Rows land
  // directly in the trace's own columns — the NoInitAllocator behind
  // detail::Column makes the over-resize free (no zero-fill of storage the
  // recorder overwrites), and finish() trims to the exact count in place.
  struct RecordPolicy {
    CommittedTrace& trace;
    std::uint64_t max_steps;
    std::size_t count = 0;
    std::size_t cap = 0;
    std::int32_t* index = nullptr;
    std::int32_t* next_index = nullptr;
    std::uint32_t* mem_addr = nullptr;
    detail::TraceByte* mem_size = nullptr;
    detail::TraceByte* flags = nullptr;

    void grow() {
      cap = cap == 0 ? (std::size_t{1} << 16) : cap * 2;
      trace.index_.resize(cap);
      trace.next_index_.resize(cap);
      trace.mem_addr_.resize(cap);
      trace.mem_size_.resize(cap);
      trace.flags_.resize(cap);
      index = trace.index_.data();
      next_index = trace.next_index_.data();
      mem_addr = trace.mem_addr_.data();
      mem_size = trace.mem_size_.data();
      flags = trace.flags_.data();
    }

    struct Cursor {
      RecordPolicy* owner;
      std::uint64_t max_steps;
      std::size_t count;
      std::size_t cap;
      std::int32_t* index;
      std::int32_t* next_index;
      std::uint32_t* mem_addr;
      detail::TraceByte* mem_size;
      detail::TraceByte* flags;

      bool begin(std::uint64_t steps) const {
        if (steps >= max_steps) {
          throw SimError(
              "record_trace: program did not halt within step bound");
        }
        return true;
      }
      void commit(std::int32_t idx, std::int32_t next, std::uint32_t,
                  std::uint32_t, int, bool, std::uint32_t, bool is_mem,
                  std::uint32_t addr, std::uint8_t msize, bool taken,
                  bool sentinel) {
        const std::size_t i = count;
        if (i == cap) [[unlikely]] {
          owner->grow();
          cap = owner->cap;
          index = owner->index;
          next_index = owner->next_index;
          mem_addr = owner->mem_addr;
          mem_size = owner->mem_size;
          flags = owner->flags;
        }
        std::uint8_t f = 0;
        if (taken) f |= CommittedTrace::kFlagBranchTaken;
        if (is_mem) f |= CommittedTrace::kFlagIsMem;
        if (sentinel) f |= CommittedTrace::kFlagSentinel;
        index[i] = idx;
        next_index[i] = next;
        mem_addr[i] = addr;
        mem_size[i] = detail::TraceByte{msize};
        flags[i] = detail::TraceByte{f};
        count = i + 1;
      }
      void commit_info(const StepInfo& info, bool sentinel) {
        commit(info.index, info.next_index, 0, 0, 0, false, 0, info.is_mem,
               info.mem_addr, info.mem_size, info.branch_taken, sentinel);
      }
    };
    Cursor cursor() {
      return {this,      max_steps, count,    cap,  index,
              next_index, mem_addr, mem_size, flags};
    }
    void sync(const Cursor& c) { count = c.count; }

    void finish() const {
      trace.index_.resize(count);
      trace.next_index_.resize(count);
      trace.mem_addr_.resize(count);
      trace.mem_size_.resize(count);
      trace.flags_.resize(count);
      // A short trace recorded through the growth schedule would otherwise
      // pin cap-sized columns for its whole (possibly cached) lifetime;
      // copying at most cap/2 elements bounds the shrink cost by the
      // recording cost already paid.
      if (count < cap / 2) {
        trace.index_.shrink_to_fit();
        trace.next_index_.shrink_to_fit();
        trace.mem_addr_.shrink_to_fit();
        trace.mem_size_.shrink_to_fit();
        trace.flags_.shrink_to_fit();
      }
    }
  };

  struct StepPolicy {
    const Program& program;
    StepInfo info;
    bool done = false;

    // One committed step per execute() call: the cursor writes through to
    // the policy — a single commit has no per-step state worth hoisting.
    struct Cursor {
      StepPolicy* owner;
      bool begin(std::uint64_t) const { return !owner->done; }
      void commit(std::int32_t idx, std::int32_t next, std::uint32_t a,
                  std::uint32_t b, int nsrc, bool has_result,
                  std::uint32_t result, bool is_mem, std::uint32_t addr,
                  std::uint8_t msize, bool taken, bool sentinel) {
        StepInfo& info = owner->info;
        info.index = idx;
        info.next_index = next;
        info.ins = sentinel
                       ? make_halt()
                       : owner->program.text[static_cast<std::size_t>(idx)];
        info.is_mem = is_mem;
        info.mem_addr = addr;
        info.mem_size = msize;
        info.has_result = has_result;
        info.result = result;
        info.src_vals = {a, b};
        info.num_src = nsrc;
        info.branch_taken = taken;
        owner->done = true;
      }
      void commit_info(const StepInfo& i, bool) {
        owner->info = i;
        owner->done = true;
      }
    };
    Cursor cursor() { return {this}; }
    void sync(const Cursor&) {}
  };

  template <typename Policy>
  static void execute(Executor& ex, const UopProgram& up, Policy& policy) {
    const Uop* const uops = up.uops.data();
    const auto size = static_cast<std::int32_t>(up.program->size());
    std::uint32_t* const regs = ex.regs_.data();
    Memory& mem = ex.mem_;
    const ExtInstTable* const table = up.table;

    std::int32_t pc = ex.pc_;
    std::uint64_t steps = ex.steps_;

    // Cached page translations: one load page, one store page. Page
    // storage is never freed or moved while the executor lives, so a
    // cached pointer stays valid; absent pages are never cached (a later
    // store would allocate the page and a stale null would keep reading
    // zeros).
    constexpr std::uint32_t kNoPage = 0xFFFFFFFFu;
    std::uint32_t load_tag = kNoPage;
    const std::uint8_t* load_page = nullptr;
    std::uint32_t store_tag = kNoPage;
    std::uint8_t* store_page = nullptr;
    constexpr std::uint32_t kOffMask = Memory::kPageSize - 1;

    const auto load_base = [&](std::uint32_t addr) -> const std::uint8_t* {
      const std::uint32_t tag = addr >> Memory::kPageBits;
      if (tag == load_tag) return load_page;
      const std::uint8_t* p = mem.page_data(addr);
      if (p != nullptr) {
        load_tag = tag;
        load_page = p;
      }
      return p;
    };
    const auto store_base = [&](std::uint32_t addr) -> std::uint8_t* {
      const std::uint32_t tag = addr >> Memory::kPageBits;
      if (tag != store_tag) {
        store_page = mem.page_data_touch(addr);
        store_tag = tag;
      }
      return store_page;
    };

    // The policy's hot per-step state, held as a local whose address never
    // escapes this frame (see the Cursor comment above the policies). On a
    // throw the cursor is NOT synced back: every caller discards the
    // policy's product when execute() throws, and the reference
    // interpreter likewise reports nothing for a faulting step.
    auto cur = policy.cursor();

    const Uop* u = nullptr;
    try {
#if T1000_UCODE_COMPUTED_GOTO
      static const void* const kLabels[kNumUopKinds] = {
          &&op_Addu,  &&op_Subu,  &&op_And,   &&op_Or,     &&op_Xor,
          &&op_Nor,   &&op_Slt,   &&op_Sltu,  &&op_Sllv,   &&op_Srlv,
          &&op_Srav,  &&op_Mul,   &&op_Sll,   &&op_Srl,    &&op_Sra,
          &&op_Addiu, &&op_Andi,  &&op_Ori,   &&op_Xori,   &&op_Slti,
          &&op_Sltiu, &&op_Lui,   &&op_Lw,    &&op_Lh,     &&op_Lhu,
          &&op_Lb,    &&op_Lbu,   &&op_Sw,    &&op_Sh,     &&op_Sb,
          &&op_Beq,   &&op_Bne,   &&op_Blez,  &&op_Bgtz,   &&op_Bltz,
          &&op_Bgez,  &&op_J,     &&op_Jal,   &&op_Jr,     &&op_Jalr,
          &&op_Nop,   &&op_Halt,  &&op_Ext,   &&op_Sentinel,
          &&op_Interp,
      };
#define T1000_OP(name) op_##name:
#define T1000_NEXT()                                          \
  do {                                                        \
    if (!cur.begin(steps)) goto loop_done;                    \
    u = uops + pc;                                            \
    goto* kLabels[static_cast<std::size_t>(u->kind)];         \
  } while (0)
      T1000_NEXT();
#else
#define T1000_OP(name) case UopKind::k##name:
#define T1000_NEXT() continue
      for (;;) {
        if (!cur.begin(steps)) goto loop_done;
        u = uops + pc;
        switch (u->kind) {
#endif

// rd <- rs op rt. `has_result` is reported even for an $zero destination
// (write_dst in the reference sets it before set_reg drops the write);
// the regs[0] = 0 restore keeps the hardwired zero.
#define T1000_ALU3(name, expr)                                        \
  T1000_OP(name) {                                                    \
    const std::uint32_t a = regs[u->rs];                              \
    const std::uint32_t b = regs[u->rt];                              \
    const std::uint32_t v = (expr);                                   \
    regs[u->rd] = v;                                                  \
    regs[0] = 0;                                                      \
    const std::int32_t idx = pc++;                                    \
    ++steps;                                                          \
    cur.commit(idx, pc, a, b, 2, true, v, false, 0, 0, false,      \
                  false);                                             \
  }                                                                   \
  T1000_NEXT()

          T1000_ALU3(Addu, a + b);
          T1000_ALU3(Subu, a - b);
          T1000_ALU3(And, a & b);
          T1000_ALU3(Or, a | b);
          T1000_ALU3(Xor, a ^ b);
          T1000_ALU3(Nor, ~(a | b));
          T1000_ALU3(Slt, static_cast<std::int32_t>(a) <
                                  static_cast<std::int32_t>(b)
                              ? 1u
                              : 0u);
          T1000_ALU3(Sltu, a < b ? 1u : 0u);
          T1000_ALU3(Sllv, a << (b & 31));
          T1000_ALU3(Srlv, a >> (b & 31));
          T1000_ALU3(Srav, static_cast<std::uint32_t>(
                               static_cast<std::int32_t>(a) >> (b & 31)));
          T1000_ALU3(Mul, a * b);
#undef T1000_ALU3

// rd <- rs op imm, one register source. The decoder pre-extended (or
// pre-masked) imm, so `b` is ready to use — but the reported operand count
// is still 1 and src_vals[1] stays 0, matching src_regs().
#define T1000_ALU_IMM(name, expr)                                     \
  T1000_OP(name) {                                                    \
    const std::uint32_t a = regs[u->rs];                              \
    const std::uint32_t b = static_cast<std::uint32_t>(u->imm);       \
    const std::uint32_t v = (expr);                                   \
    regs[u->rd] = v;                                                  \
    regs[0] = 0;                                                      \
    const std::int32_t idx = pc++;                                    \
    ++steps;                                                          \
    cur.commit(idx, pc, a, 0, 1, true, v, false, 0, 0, false,      \
                  false);                                             \
  }                                                                   \
  T1000_NEXT()

          T1000_ALU_IMM(Sll, a << (b & 31));
          T1000_ALU_IMM(Srl, a >> (b & 31));
          T1000_ALU_IMM(Sra, static_cast<std::uint32_t>(
                                 static_cast<std::int32_t>(a) >> (b & 31)));
          T1000_ALU_IMM(Addiu, a + b);
          T1000_ALU_IMM(Andi, a & b);
          T1000_ALU_IMM(Ori, a | b);
          T1000_ALU_IMM(Xori, a ^ b);
          T1000_ALU_IMM(Slti, static_cast<std::int32_t>(a) <
                                      static_cast<std::int32_t>(b)
                                  ? 1u
                                  : 0u);
          T1000_ALU_IMM(Sltiu, a < b ? 1u : 0u);
#undef T1000_ALU_IMM

          T1000_OP(Lui) {
            const auto v = static_cast<std::uint32_t>(u->imm);
            regs[u->rd] = v;
            regs[0] = 0;
            const std::int32_t idx = pc++;
            ++steps;
            cur.commit(idx, pc, 0, 0, 0, true, v, false, 0, 0, false,
                          false);
          }
          T1000_NEXT();

// Loads: aligned accesses never cross a 4 KiB page; a misaligned address
// is bounced to the Memory method purely for its canonical MemError. An
// absent page reads as zero without allocating (and without caching).
#define T1000_LOAD(name, bytes, misaligned_probe, read_expr)              \
  T1000_OP(name) {                                                        \
    const std::uint32_t a = regs[u->rs];                                  \
    const std::uint32_t addr = a + static_cast<std::uint32_t>(u->imm);    \
    std::uint32_t v = 0;                                                  \
    if constexpr ((bytes) > 1) {                                          \
      if ((addr & ((bytes)-1)) != 0) misaligned_probe; /* throws */       \
    }                                                                     \
    const std::uint8_t* const page = load_base(addr);                     \
    if (page != nullptr) {                                                \
      const std::uint32_t off = addr & kOffMask;                          \
      v = (read_expr);                                                    \
    }                                                                     \
    regs[u->rd] = v;                                                      \
    regs[0] = 0;                                                          \
    const std::int32_t idx = pc++;                                        \
    ++steps;                                                              \
    cur.commit(idx, pc, a, 0, 1, true, v, true, addr, (bytes), false,  \
                  false);                                                 \
  }                                                                       \
  T1000_NEXT()

          T1000_LOAD(Lw, 4, mem.load_u32(addr),
                     static_cast<std::uint32_t>(page[off]) |
                         static_cast<std::uint32_t>(page[off + 1]) << 8 |
                         static_cast<std::uint32_t>(page[off + 2]) << 16 |
                         static_cast<std::uint32_t>(page[off + 3]) << 24);
          T1000_LOAD(Lh, 2, mem.load_u16(addr),
                     static_cast<std::uint32_t>(static_cast<std::int32_t>(
                         static_cast<std::int16_t>(static_cast<std::uint16_t>(
                             page[off] | page[off + 1] << 8)))));
          T1000_LOAD(Lhu, 2, mem.load_u16(addr),
                     static_cast<std::uint32_t>(page[off] |
                                                page[off + 1] << 8));
          T1000_LOAD(Lb, 1, (void)0,
                     static_cast<std::uint32_t>(static_cast<std::int32_t>(
                         static_cast<std::int8_t>(page[off]))));
          T1000_LOAD(Lbu, 1, (void)0, static_cast<std::uint32_t>(page[off]));
#undef T1000_LOAD

// Stores: data travels in rt (the second source), matching src_regs()
// order {rs, rt}.
#define T1000_STORE(name, bytes, misaligned_probe, write_stmt)            \
  T1000_OP(name) {                                                        \
    const std::uint32_t a = regs[u->rs];                                  \
    const std::uint32_t b = regs[u->rt];                                  \
    const std::uint32_t addr = a + static_cast<std::uint32_t>(u->imm);    \
    if constexpr ((bytes) > 1) {                                          \
      if ((addr & ((bytes)-1)) != 0) misaligned_probe; /* throws */       \
    }                                                                     \
    std::uint8_t* const page = store_base(addr);                          \
    const std::uint32_t off = addr & kOffMask;                            \
    write_stmt;                                                           \
    const std::int32_t idx = pc++;                                        \
    ++steps;                                                              \
    cur.commit(idx, pc, a, b, 2, false, 0, true, addr, (bytes), false, \
                  false);                                                 \
  }                                                                       \
  T1000_NEXT()

          T1000_STORE(Sw, 4, mem.store_u32(addr, b), {
            page[off] = static_cast<std::uint8_t>(b);
            page[off + 1] = static_cast<std::uint8_t>(b >> 8);
            page[off + 2] = static_cast<std::uint8_t>(b >> 16);
            page[off + 3] = static_cast<std::uint8_t>(b >> 24);
          });
          T1000_STORE(Sh, 2,
                      mem.store_u16(addr, static_cast<std::uint16_t>(b)), {
                        page[off] = static_cast<std::uint8_t>(b);
                        page[off + 1] = static_cast<std::uint8_t>(b >> 8);
                      });
          T1000_STORE(Sb, 1, (void)0,
                      { page[off] = static_cast<std::uint8_t>(b); });
#undef T1000_STORE

// Two- and one-source conditional branches. The decoder proved `target`
// in range, and the untaken successor pc+1 <= size always holds, so no
// run-time range check remains.
#define T1000_BRANCH2(name, cond)                                        \
  T1000_OP(name) {                                                       \
    const std::uint32_t a = regs[u->rs];                                 \
    const std::uint32_t b = regs[u->rt];                                 \
    const bool taken = (cond);                                           \
    const std::int32_t idx = pc;                                         \
    pc = taken ? u->target : pc + 1;                                     \
    ++steps;                                                             \
    cur.commit(idx, pc, a, b, 2, false, 0, false, 0, 0, taken,        \
                  false);                                                \
  }                                                                      \
  T1000_NEXT()

          T1000_BRANCH2(Beq, a == b);
          T1000_BRANCH2(Bne, a != b);
#undef T1000_BRANCH2

#define T1000_BRANCH1(name, cond)                                        \
  T1000_OP(name) {                                                       \
    const std::uint32_t a = regs[u->rs];                                 \
    const auto sa = static_cast<std::int32_t>(a);                        \
    (void)sa;                                                            \
    const bool taken = (cond);                                           \
    const std::int32_t idx = pc;                                         \
    pc = taken ? u->target : pc + 1;                                     \
    ++steps;                                                             \
    cur.commit(idx, pc, a, 0, 1, false, 0, false, 0, 0, taken,        \
                  false);                                                \
  }                                                                      \
  T1000_NEXT()

          T1000_BRANCH1(Blez, sa <= 0);
          T1000_BRANCH1(Bgtz, sa > 0);
          T1000_BRANCH1(Bltz, sa < 0);
          T1000_BRANCH1(Bgez, sa >= 0);
#undef T1000_BRANCH1

          T1000_OP(J) {
            const std::int32_t idx = pc;
            pc = u->target;
            ++steps;
            cur.commit(idx, pc, 0, 0, 0, false, 0, false, 0, 0, true,
                          false);
          }
          T1000_NEXT();

          T1000_OP(Jal) {
            const std::uint32_t link =
                kTextBase + static_cast<std::uint32_t>(pc + 1) * 4;
            regs[kRegRa] = link;
            const std::int32_t idx = pc;
            pc = u->target;
            ++steps;
            cur.commit(idx, pc, 0, 0, 0, true, link, false, 0, 0, true,
                          false);
          }
          T1000_NEXT();

          T1000_OP(Jr) {
            const std::uint32_t t = regs[u->rs];
            if (t < kTextBase || (t & 3) != 0) {
              throw SimError("wild jump to 0x" + std::to_string(t));
            }
            const auto next = static_cast<std::int32_t>((t - kTextBase) / 4);
            if (next > size) {
              throw SimError("control transfer out of text: " +
                             std::to_string(next));
            }
            const std::int32_t idx = pc;
            pc = next;
            ++steps;
            cur.commit(idx, pc, t, 0, 1, false, 0, false, 0, 0, true,
                          false);
          }
          T1000_NEXT();

          T1000_OP(Jalr) {
            // Operand read, then link write, then target checks — the
            // reference order, observable when rd == rs and when the link
            // write precedes a wild-jump fault.
            const std::uint32_t t = regs[u->rs];
            const std::uint32_t link =
                kTextBase + static_cast<std::uint32_t>(pc + 1) * 4;
            regs[u->rd] = link;
            regs[0] = 0;
            if (t < kTextBase || (t & 3) != 0) {
              throw SimError("wild jump to 0x" + std::to_string(t));
            }
            const auto next = static_cast<std::int32_t>((t - kTextBase) / 4);
            if (next > size) {
              throw SimError("control transfer out of text: " +
                             std::to_string(next));
            }
            const std::int32_t idx = pc;
            pc = next;
            ++steps;
            cur.commit(idx, pc, t, 0, 1, true, link, false, 0, 0, true,
                          false);
          }
          T1000_NEXT();

          T1000_OP(Nop) {
            const std::int32_t idx = pc++;
            ++steps;
            cur.commit(idx, pc, 0, 0, 0, false, 0, false, 0, 0, false,
                          false);
          }
          T1000_NEXT();

          T1000_OP(Halt) {
            ex.halted_ = true;
            ++steps;
            cur.commit(pc, pc, 0, 0, 0, false, 0, false, 0, 0, false,
                          false);
            goto loop_done;
          }

          T1000_OP(Ext) {
            const std::uint32_t a = regs[u->rs];
            const std::uint32_t b = regs[u->rt];
            const std::uint32_t v =
                table->defs()[static_cast<std::size_t>(u->imm)].eval(a, b);
            regs[u->rd] = v;
            regs[0] = 0;
            const std::int32_t idx = pc++;
            ++steps;
            cur.commit(idx, pc, a, b, 2, true, v, false, 0, 0, false,
                          false);
          }
          T1000_NEXT();

          T1000_OP(Sentinel) {
            // Clean off-the-end halt: reported but not counted as an
            // executed step, exactly like the reference interpreter.
            ex.halted_ = true;
            cur.commit(pc, pc, 0, 0, 0, false, 0, false, 0, 0, false,
                          true);
            goto loop_done;
          }

          T1000_OP(Interp) {
            // Irregular instruction: hand this one step to the reference
            // interpreter. On a throw it leaves pc_/steps_ untouched, so
            // the catch-all write-back below is a no-op.
            ex.pc_ = pc;
            ex.steps_ = steps;
            const StepInfo info = ex.step_reference();
            pc = ex.pc_;
            steps = ex.steps_;
            cur.commit_info(info, info.index >= size);
            if (ex.halted_) goto loop_done;
          }
          T1000_NEXT();

#if !T1000_UCODE_COMPUTED_GOTO
          case UopKind::kNumUopKinds:
            break;
        }
      }
#endif
#undef T1000_OP
#undef T1000_NEXT
    loop_done:
      policy.sync(cur);
      ex.pc_ = pc;
      ex.steps_ = steps;
    } catch (...) {
      ex.pc_ = pc;
      ex.steps_ = steps;
      throw;
    }
  }
};

StepInfo Executor::step_ucode() {
  if (halted_) throw SimError("step() after halt");
  UcodeImpl::StepPolicy policy{program_, StepInfo{}, false};
  UcodeImpl::execute(*this, *ucode_, policy);
  return policy.info;
}

std::uint64_t Executor::run_ucode(std::uint64_t max_steps) {
  if (halted_) return 0;
  UcodeImpl::RunPolicy policy{max_steps};
  UcodeImpl::execute(*this, *ucode_, policy);
  return policy.n;
}

void Executor::record_ucode(CommittedTrace& trace, std::uint64_t max_steps) {
  UcodeImpl::RecordPolicy policy{trace, max_steps};
  if (!halted_) UcodeImpl::execute(*this, *ucode_, policy);
  policy.finish();
}

CommittedTrace record_trace(const UopProgram& ucode,
                            std::uint64_t max_steps) {
  Executor exec(ucode);
  CommittedTrace trace;
  exec.record_ucode(trace, max_steps);
  trace.finalize(exec.reg(kRegV0));
  return trace;
}

}  // namespace t1000
