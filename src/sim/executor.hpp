// Functional (architectural) simulator for assembled T1000 programs.
//
// Executes one instruction per step() and reports everything later passes
// need: register values read, result produced, memory address touched, and
// the successor instruction index. The timing simulator consumes this stream
// directly — the paper models perfect branch prediction, so the fetched path
// and the committed path coincide.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>

#include "asmkit/program.hpp"
#include "isa/extdef.hpp"
#include "sim/memory.hpp"

namespace t1000 {

class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Everything observable about one executed instruction.
struct StepInfo {
  std::int32_t index = 0;       // instruction index that executed
  std::int32_t next_index = 0;  // successor (pc after this step)
  Instruction ins;
  bool is_mem = false;
  std::uint32_t mem_addr = 0;
  std::uint8_t mem_size = 0;
  bool has_result = false;
  std::uint32_t result = 0;
  std::array<std::uint32_t, 2> src_vals{};
  int num_src = 0;
  bool branch_taken = false;
};

class Executor {
 public:
  // `ext_table` supplies EXT semantics; may be null for programs without
  // extended instructions. The table must outlive the executor.
  explicit Executor(const Program& program,
                    const ExtInstTable* ext_table = nullptr);

  // Reloads the data segment, clears registers, sets $sp to the stack top
  // and pc to the `main` symbol (or 0). The initial $ra points one past the
  // end of text, so a final `jr $ra` halts cleanly.
  void reset();

  bool halted() const { return halted_; }
  std::int32_t pc() const { return pc_; }
  std::uint64_t steps_executed() const { return steps_; }

  std::uint32_t reg(Reg r) const { return regs_[r]; }
  void set_reg(Reg r, std::uint32_t v) {
    if (r != kRegZero) regs_[r] = v;
  }

  Memory& memory() { return mem_; }
  const Memory& memory() const { return mem_; }
  const Program& program() const { return program_; }

  // Executes one instruction. Throws SimError when already halted, on a
  // wild pc/jump, or on an EXT with no matching table entry.
  StepInfo step();

  // Steps until halt or `max_steps`; returns the number of steps taken.
  std::uint64_t run(std::uint64_t max_steps);

 private:
  std::uint32_t jump_target_index(std::uint32_t byte_addr) const;

  const Program& program_;
  const ExtInstTable* ext_table_;
  Memory mem_;
  std::array<std::uint32_t, kNumRegs> regs_{};
  std::int32_t pc_ = 0;
  bool halted_ = false;
  std::uint64_t steps_ = 0;
};

}  // namespace t1000
