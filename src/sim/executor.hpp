// Functional (architectural) simulator for assembled T1000 programs.
//
// Executes one instruction per step() and reports everything later passes
// need: register values read, result produced, memory address touched, and
// the successor instruction index. The timing simulator consumes this stream
// directly — the paper models perfect branch prediction, so the fetched path
// and the committed path coincide.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "asmkit/program.hpp"
#include "isa/extdef.hpp"
#include "sim/memory.hpp"

namespace t1000 {

struct UopProgram;    // sim/ucode.hpp
class CommittedTrace;  // sim/trace.hpp

class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Which interpreter backs step()/run().
//
//  * kUcode (the default): the pre-decoded threaded-code interpreter
//    (sim/ucode.hpp) — the program is lowered to a dense uop stream once
//    at construction and dispatched via computed goto (or the portable
//    switch behind T1000_NO_COMPUTED_GOTO).
//  * kReference: the original instruction-by-instruction interpreter,
//    kept as the executable specification. The differential and fuzz
//    suites (tests/sim/ucode_*_test.cpp) pin the two byte-identical.
enum class ExecMode {
  kUcode,
  kReference,
};

// Everything observable about one executed instruction.
struct StepInfo {
  std::int32_t index = 0;       // instruction index that executed
  std::int32_t next_index = 0;  // successor (pc after this step)
  Instruction ins;
  bool is_mem = false;
  std::uint32_t mem_addr = 0;
  std::uint8_t mem_size = 0;
  bool has_result = false;
  std::uint32_t result = 0;
  std::array<std::uint32_t, kMaxExtInputs> src_vals{};
  int num_src = 0;
  bool branch_taken = false;
};

class Executor {
 public:
  // `ext_table` supplies EXT semantics; may be null for programs without
  // extended instructions. The table must outlive the executor. Under the
  // default kUcode mode the program is pre-decoded at construction (see
  // ExecMode above).
  explicit Executor(const Program& program,
                    const ExtInstTable* ext_table = nullptr,
                    ExecMode mode = ExecMode::kUcode);

  // Executes an already-decoded program (shared, e.g., by a whole grid of
  // workers); `ucode` — and the program/table it points to — must outlive
  // the executor.
  explicit Executor(const UopProgram& ucode);

  // Reloads the data segment, clears registers, sets $sp to the stack top
  // and pc to the `main` symbol (or 0). The initial $ra points one past the
  // end of text, so a final `jr $ra` halts cleanly.
  void reset();

  bool halted() const { return halted_; }
  std::int32_t pc() const { return pc_; }
  std::uint64_t steps_executed() const { return steps_; }

  std::uint32_t reg(Reg r) const { return regs_[r]; }
  void set_reg(Reg r, std::uint32_t v) {
    if (r != kRegZero) regs_[r] = v;
  }

  Memory& memory() { return mem_; }
  const Memory& memory() const { return mem_; }
  const Program& program() const { return program_; }

  // Executes one instruction. Throws SimError when already halted, on a
  // wild pc/jump, or on an EXT with no matching table entry.
  StepInfo step();

  // Steps until halt or `max_steps`; returns the number of steps taken.
  std::uint64_t run(std::uint64_t max_steps);

 private:
  // The threaded interpreter's loop drives the executor's state directly
  // (sim/ucode.cpp); record_trace(const UopProgram&, ...) records through
  // the private no-StepInfo fast path.
  friend struct UcodeImpl;
  friend CommittedTrace record_trace(const UopProgram& ucode,
                                     std::uint64_t max_steps);

  std::uint32_t jump_target_index(std::uint32_t byte_addr) const;

  // The original interpreter — the executable specification the uop path
  // is differentially tested against (and the fallback one kInterp uop
  // defers to per irregular step).
  StepInfo step_reference();

  // Threaded-code entry points, defined in ucode.cpp.
  StepInfo step_ucode();
  std::uint64_t run_ucode(std::uint64_t max_steps);
  void record_ucode(CommittedTrace& trace, std::uint64_t max_steps);

  const Program& program_;
  const ExtInstTable* ext_table_;
  // Null in kReference mode. Points at owned_ucode_ when this executor
  // decoded the program itself, at the caller's decoded program otherwise.
  const UopProgram* ucode_ = nullptr;
  std::shared_ptr<const UopProgram> owned_ucode_;
  Memory mem_;
  std::array<std::uint32_t, kNumRegs> regs_{};
  std::int32_t pc_ = 0;
  bool halted_ = false;
  std::uint64_t steps_ = 0;
};

}  // namespace t1000
