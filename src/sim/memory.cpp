#include "sim/memory.hpp"

#include <cstring>
#include <string>

namespace t1000 {
namespace {

void check_aligned(std::uint32_t addr, std::uint32_t size) {
  if ((addr & (size - 1)) != 0) {
    throw MemError("misaligned " + std::to_string(size) + "-byte access at 0x" +
                   [addr] {
                     char buf[16];
                     std::snprintf(buf, sizeof buf, "%08X", addr);
                     return std::string(buf);
                   }());
  }
}

}  // namespace

const Memory::Page* Memory::find_page(std::uint32_t addr) const {
  const auto it = pages_.find(addr >> kPageBits);
  return it == pages_.end() ? nullptr : it->second.get();
}

Memory::Page& Memory::touch_page(std::uint32_t addr) {
  std::unique_ptr<Page>& slot = pages_[addr >> kPageBits];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  return *slot;
}

std::uint8_t Memory::load_u8(std::uint32_t addr) const {
  const Page* page = find_page(addr);
  return page == nullptr ? 0 : (*page)[addr & (kPageSize - 1)];
}

std::uint16_t Memory::load_u16(std::uint32_t addr) const {
  check_aligned(addr, 2);
  const Page* page = find_page(addr);
  if (page == nullptr) return 0;
  const std::uint32_t off = addr & (kPageSize - 1);
  return static_cast<std::uint16_t>((*page)[off] | ((*page)[off + 1] << 8));
}

std::uint32_t Memory::load_u32(std::uint32_t addr) const {
  check_aligned(addr, 4);
  const Page* page = find_page(addr);
  if (page == nullptr) return 0;
  const std::uint32_t off = addr & (kPageSize - 1);
  std::uint32_t v = 0;
  std::memcpy(&v, page->data() + off, 4);  // host is little-endian
  return v;
}

void Memory::store_u8(std::uint32_t addr, std::uint8_t value) {
  touch_page(addr)[addr & (kPageSize - 1)] = value;
}

void Memory::store_u16(std::uint32_t addr, std::uint16_t value) {
  check_aligned(addr, 2);
  Page& page = touch_page(addr);
  const std::uint32_t off = addr & (kPageSize - 1);
  page[off] = static_cast<std::uint8_t>(value);
  page[off + 1] = static_cast<std::uint8_t>(value >> 8);
}

void Memory::store_u32(std::uint32_t addr, std::uint32_t value) {
  check_aligned(addr, 4);
  Page& page = touch_page(addr);
  std::memcpy(page.data() + (addr & (kPageSize - 1)), &value, 4);
}

void Memory::write_block(std::uint32_t addr,
                         const std::vector<std::uint8_t>& bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    store_u8(addr + static_cast<std::uint32_t>(i), bytes[i]);
  }
}

}  // namespace t1000
