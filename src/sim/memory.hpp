// Sparse byte-addressable little-endian memory for the functional simulator.
// Backed by 4 KiB pages allocated on first touch, so the full 32-bit address
// space (data segment at 0x10000000, stack below 0x7FFFF000) costs only what
// a program actually touches.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace t1000 {

class MemError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Memory {
 public:
  static constexpr std::uint32_t kPageBits = 12;
  static constexpr std::uint32_t kPageSize = 1u << kPageBits;

  std::uint8_t load_u8(std::uint32_t addr) const;
  std::uint16_t load_u16(std::uint32_t addr) const;  // addr must be 2-aligned
  std::uint32_t load_u32(std::uint32_t addr) const;  // addr must be 4-aligned

  void store_u8(std::uint32_t addr, std::uint8_t value);
  void store_u16(std::uint32_t addr, std::uint16_t value);
  void store_u32(std::uint32_t addr, std::uint32_t value);

  // Bulk copy-in (used to load the data segment image).
  void write_block(std::uint32_t addr, const std::vector<std::uint8_t>& bytes);

  std::size_t pages_allocated() const { return pages_.size(); }

  // Raw page access for the pre-decoded interpreter's cached-translation
  // fast path (sim/ucode.cpp). Pages are heap-stable and never freed while
  // the Memory lives, so the returned pointers stay valid across later
  // loads/stores. page_data returns null for an untouched page (which
  // reads as zero and must NOT be cached: a later store would allocate
  // it); page_data_touch allocates like a store does.
  const std::uint8_t* page_data(std::uint32_t addr) const {
    const Page* page = find_page(addr);
    return page == nullptr ? nullptr : page->data();
  }
  std::uint8_t* page_data_touch(std::uint32_t addr) {
    return touch_page(addr).data();
  }

 private:
  using Page = std::array<std::uint8_t, kPageSize>;

  const Page* find_page(std::uint32_t addr) const;
  Page& touch_page(std::uint32_t addr);

  std::unordered_map<std::uint32_t, std::unique_ptr<Page>> pages_;
};

}  // namespace t1000
