// Execution profiler — the analog of SimpleScalar's `sim_profile` the paper
// uses to mark candidate instructions. For every static instruction it
// collects the dynamic execution count and the widest operand/result bit
// widths observed, which the selection algorithms use to (a) restrict
// candidates to narrow operations (default: <= 18 bits) and (b) weigh
// sequences by their share of total application time.
#pragma once

#include <cstdint>
#include <vector>

#include "asmkit/program.hpp"
#include "isa/extdef.hpp"
#include "obs/trace_event.hpp"
#include "sim/executor.hpp"

namespace t1000 {

struct InstProfile {
  std::uint64_t count = 0;
  int max_src_width = 0;     // widest source register value seen
  int max_result_width = 0;  // widest result value produced
};

struct Profile {
  std::vector<InstProfile> insts;       // indexed by static instruction
  std::uint64_t total_dynamic = 0;      // committed instructions
  std::uint64_t total_base_cycles = 0;  // sum(count * base latency)

  const InstProfile& at(std::int32_t index) const {
    return insts[static_cast<std::size_t>(index)];
  }

  // Estimated base-machine cycles spent in static instruction `index`
  // (the profile-time proxy the selective algorithm's 0.5% threshold is
  // measured against).
  std::uint64_t cycles_of(std::int32_t index, const Program& program) const {
    return at(index).count *
           static_cast<std::uint64_t>(
               base_latency(program.text[static_cast<std::size_t>(index)].op));
  }
};

// Runs `program` to completion (bounded by `max_steps`) and returns the
// profile. Throws SimError if the program does not halt within the bound.
Profile profile_program(const Program& program, std::uint64_t max_steps,
                        const ExtInstTable* ext_table = nullptr);

// Profiles from an already-decoded program (sim/ucode.hpp) — what
// analyze_program uses so the decode it caches for trace recording also
// backs its own profiling run.
Profile profile_program(const UopProgram& ucode, std::uint64_t max_steps);

// Marks the profile's hot regions in a pipeline event trace: maximal
// contiguous runs of static instructions whose individual share of
// total_base_cycles is at least `threshold` (default: the paper's 0.5%
// candidate-marking threshold) become instant events on a dedicated
// "hot regions" track, with `ts` = the region's first static index and
// args {first, last, cycles, share}.
void annotate_hot_regions(const Profile& profile, const Program& program,
                          obs::TraceEventLog* trace,
                          double threshold = 0.005);

}  // namespace t1000
