#include "sim/profiler.hpp"

#include <algorithm>
#include <string>

#include "isa/alu.hpp"
#include "sim/ucode.hpp"

namespace t1000 {
namespace {

Profile profile_with(Executor& exec, const Program& program,
                     std::uint64_t max_steps) {
  Profile prof;
  prof.insts.resize(static_cast<std::size_t>(program.size()));
  while (!exec.halted()) {
    if (exec.steps_executed() >= max_steps) {
      throw SimError("profile_program: step bound exceeded");
    }
    const StepInfo info = exec.step();
    if (info.index >= program.size()) break;  // clean off-the-end halt
    InstProfile& ip = prof.insts[static_cast<std::size_t>(info.index)];
    ++ip.count;
    for (int i = 0; i < info.num_src; ++i) {
      ip.max_src_width = std::max(
          ip.max_src_width, signed_width(info.src_vals[static_cast<std::size_t>(i)]));
    }
    if (info.has_result) {
      ip.max_result_width =
          std::max(ip.max_result_width, signed_width(info.result));
    }
    ++prof.total_dynamic;
    prof.total_base_cycles +=
        static_cast<std::uint64_t>(base_latency(info.ins.op));
  }
  return prof;
}

}  // namespace

Profile profile_program(const Program& program, std::uint64_t max_steps,
                        const ExtInstTable* ext_table) {
  Executor exec(program, ext_table);
  return profile_with(exec, program, max_steps);
}

Profile profile_program(const UopProgram& ucode, std::uint64_t max_steps) {
  Executor exec(ucode);
  return profile_with(exec, *ucode.program, max_steps);
}

void annotate_hot_regions(const Profile& profile, const Program& program,
                          obs::TraceEventLog* trace, double threshold) {
  // Track group 3; the pipeline tracer uses 1 (RUU) and 2 (PFU bank).
  constexpr int kHotRegionPid = 3;
  if (profile.total_base_cycles == 0 || program.size() == 0) return;
  const double total = static_cast<double>(profile.total_base_cycles);
  bool named = false;
  std::int32_t start = -1;
  std::uint64_t region_cycles = 0;
  const auto flush = [&](std::int32_t end) {  // region is [start, end)
    if (start < 0) return;
    if (!named) {
      trace->name_process(kHotRegionPid, "hot regions");
      named = true;
    }
    Json args = Json::object();
    args["first"] = Json(start);
    args["last"] = Json(end - 1);
    args["cycles"] = Json(region_cycles);
    args["share"] = Json(static_cast<double>(region_cycles) / total);
    trace->instant("hot[" + std::to_string(start) + ".." +
                       std::to_string(end - 1) + "]",
                   static_cast<std::uint64_t>(start), kHotRegionPid, 0,
                   std::move(args));
    start = -1;
    region_cycles = 0;
  };
  for (std::int32_t i = 0; i < program.size(); ++i) {
    const std::uint64_t cycles = profile.cycles_of(i, program);
    if (static_cast<double>(cycles) / total >= threshold) {
      if (start < 0) start = i;
      region_cycles += cycles;
    } else {
      flush(i);
    }
  }
  flush(program.size());
}

}  // namespace t1000
