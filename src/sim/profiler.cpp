#include "sim/profiler.hpp"

#include <algorithm>

#include "isa/alu.hpp"

namespace t1000 {

Profile profile_program(const Program& program, std::uint64_t max_steps,
                        const ExtInstTable* ext_table) {
  Executor exec(program, ext_table);
  Profile prof;
  prof.insts.resize(static_cast<std::size_t>(program.size()));
  while (!exec.halted()) {
    if (exec.steps_executed() >= max_steps) {
      throw SimError("profile_program: step bound exceeded");
    }
    const StepInfo info = exec.step();
    if (info.index >= program.size()) break;  // clean off-the-end halt
    InstProfile& ip = prof.insts[static_cast<std::size_t>(info.index)];
    ++ip.count;
    for (int i = 0; i < info.num_src; ++i) {
      ip.max_src_width = std::max(
          ip.max_src_width, signed_width(info.src_vals[static_cast<std::size_t>(i)]));
    }
    if (info.has_result) {
      ip.max_result_width =
          std::max(ip.max_result_width, signed_width(info.result));
    }
    ++prof.total_dynamic;
    prof.total_base_cycles +=
        static_cast<std::uint64_t>(base_latency(info.ins.op));
  }
  return prof;
}

}  // namespace t1000
