#include "sim/trace.hpp"

#include <bit>
#include <cstring>
#include <new>

#include "sim/ucode.hpp"

// Under the sanitizers the block cache would mask use-after-free and
// uninitialized-read bugs by recycling poisoned storage, so it degrades to
// a plain pass-through there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define T1000_COLUMN_CACHE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define T1000_COLUMN_CACHE 0
#endif
#endif
#ifndef T1000_COLUMN_CACHE
#define T1000_COLUMN_CACHE 1
#endif

namespace t1000 {
namespace detail {
namespace {

// Blocks below the caching floor go straight to operator new: they are
// cheap to allocate and would pollute the buckets. Sizes are rounded up
// to a power of two so a regrown column re-finds the block its previous
// incarnation released.
constexpr std::size_t kMinCachedBytes = std::size_t{1} << 16;  // 64 KiB
constexpr std::size_t kMaxCachedBytes = std::size_t{64} << 20;  // per thread
constexpr int kBuckets = 12;       // 64 KiB .. 128 MiB
constexpr int kBlocksPerBucket = 4;

#if T1000_COLUMN_CACHE
struct ColumnCache {
  struct Bucket {
    void* blocks[kBlocksPerBucket];
    int n = 0;
  };
  Bucket buckets[kBuckets];
  std::size_t cached_bytes = 0;

  ~ColumnCache() {
    for (Bucket& b : buckets) {
      for (int i = 0; i < b.n; ++i) ::operator delete(b.blocks[i]);
    }
  }
};

thread_local ColumnCache g_column_cache;

int bucket_of(std::size_t rounded_bytes) {
  int b = 0;
  for (std::size_t s = kMinCachedBytes; s < rounded_bytes; s <<= 1) ++b;
  return b;
}
#endif  // T1000_COLUMN_CACHE

}  // namespace

void* column_block_acquire(std::size_t bytes) {
#if T1000_COLUMN_CACHE
  if (bytes >= kMinCachedBytes) {
    const std::size_t rounded = std::bit_ceil(bytes);
    const int b = bucket_of(rounded);
    if (b < kBuckets) {
      ColumnCache::Bucket& bucket = g_column_cache.buckets[b];
      if (bucket.n > 0) {
        g_column_cache.cached_bytes -= rounded;
        return bucket.blocks[--bucket.n];
      }
      return ::operator new(rounded);
    }
  }
#endif
  return ::operator new(bytes);
}

void column_block_release(void* p, std::size_t bytes) {
#if T1000_COLUMN_CACHE
  if (bytes >= kMinCachedBytes) {
    const std::size_t rounded = std::bit_ceil(bytes);
    const int b = bucket_of(rounded);
    if (b < kBuckets) {
      ColumnCache::Bucket& bucket = g_column_cache.buckets[b];
      if (bucket.n < kBlocksPerBucket &&
          g_column_cache.cached_bytes + rounded <= kMaxCachedBytes) {
        bucket.blocks[bucket.n++] = p;
        g_column_cache.cached_bytes += rounded;
        return;
      }
    }
  }
#endif
  ::operator delete(p);
}

}  // namespace detail

namespace {

// Local FNV-1a 64: the canonical implementation lives in harness/json.hpp,
// but the sim layer sits below the harness in the link graph and the
// primitive is six lines. Bulk data is folded 8 bytes per round (little-
// endian word injected into the FNV-1a xor/multiply recurrence): byte-wise
// FNV is a strict 1-multiply-per-byte dependency chain that costs more
// than recording a multi-megabyte trace itself. The fingerprint is only
// ever compared against fingerprints computed by the same code, so the
// stride is an implementation detail, not an interchange format.
constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

std::uint64_t fnv(const void* data, std::size_t bytes, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (bytes >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);  // host is little-endian, as sim/memory.cpp
    h ^= word;
    h *= kFnvPrime;
    p += 8;
    bytes -= 8;
  }
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

template <typename T, typename A>
std::uint64_t fnv_vec(const std::vector<T, A>& v, std::uint64_t h) {
  return v.empty() ? h : fnv(v.data(), v.size() * sizeof(T), h);
}

}  // namespace

StepInfo CommittedTrace::step_at(std::size_t i, const Program& program) const {
  const auto flags = static_cast<std::uint8_t>(flags_[i]);
  StepInfo info;
  info.index = index_[i];
  info.next_index = next_index_[i];
  info.ins = (flags & kFlagSentinel)
                 ? make_halt()
                 : program.text[static_cast<std::size_t>(index_[i])];
  info.is_mem = (flags & kFlagIsMem) != 0;
  info.mem_addr = mem_addr_[i];
  info.mem_size = static_cast<std::uint8_t>(mem_size_[i]);
  info.branch_taken = (flags & kFlagBranchTaken) != 0;
  return info;
}

std::uint64_t CommittedTrace::memory_bytes() const {
  return index_.capacity() * sizeof(std::int32_t) +
         next_index_.capacity() * sizeof(std::int32_t) +
         mem_addr_.capacity() * sizeof(std::uint32_t) +
         mem_size_.capacity() * sizeof(detail::TraceByte) +
         flags_.capacity() * sizeof(detail::TraceByte);
}

void CommittedTrace::append(const StepInfo& info, bool sentinel) {
  std::uint8_t flags = 0;
  if (info.branch_taken) flags |= kFlagBranchTaken;
  if (info.is_mem) flags |= kFlagIsMem;
  if (sentinel) flags |= kFlagSentinel;
  index_.push_back(info.index);
  next_index_.push_back(info.next_index);
  mem_addr_.push_back(info.mem_addr);
  mem_size_.push_back(detail::TraceByte{info.mem_size});
  flags_.push_back(detail::TraceByte{flags});
}

void CommittedTrace::finalize(std::uint32_t checksum) {
  checksum_ = checksum;
  std::uint64_t h = kFnvOffset;
  const std::uint64_t n = index_.size();
  h = fnv(&n, sizeof n, h);
  h = fnv_vec(index_, h);
  h = fnv_vec(next_index_, h);
  h = fnv_vec(mem_addr_, h);
  h = fnv_vec(mem_size_, h);
  h = fnv_vec(flags_, h);
  h = fnv(&checksum_, sizeof checksum_, h);
  content_hash_ = h;
}

DecodedStep decode_step(const StepInfo& info, const Program& program) {
  DecodedStep d;
  d.info = info;
  d.pc = program.pc_of(info.index);
  d.fu = fu_class(info.ins.op);
  d.srcs = src_regs(info.ins);
  const DstRegs dsts = dst_regs(info.ins);
  d.dst = dsts.count > 0 ? static_cast<std::int8_t>(dsts.reg[0])
                         : std::int8_t{-1};
  d.dst2 = dsts.count > 1 ? static_cast<std::int8_t>(dsts.reg[1])
                          : std::int8_t{-1};
  // The halt opcode never consults the predictor (matching the fetch
  // stage's historical is_control && !kHalt test).
  d.is_ctrl = is_control(info.ins.op) && info.ins.op != Opcode::kHalt;
  d.is_store = is_store(info.ins.op);
  d.is_ext = info.ins.op == Opcode::kExt;
  return d;
}

DecodedTrace::DecodedTrace(const CommittedTrace& trace,
                           const Program& program) {
  steps_.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    steps_.push_back(decode_step(trace.step_at(i, program), program));
  }
}

CommittedTrace record_trace(const Program& program,
                            const ExtInstTable* ext_table,
                            std::uint64_t max_steps, ExecMode mode) {
  if (mode == ExecMode::kUcode) {
    const UopProgram ucode = UopProgram::build(program, ext_table);
    return record_trace(ucode, max_steps);
  }
  Executor exec(program, ext_table, ExecMode::kReference);
  CommittedTrace trace;
  while (!exec.halted()) {
    if (exec.steps_executed() >= max_steps) {
      throw SimError("record_trace: program did not halt within step bound");
    }
    const StepInfo info = exec.step();
    trace.append(info, /*sentinel=*/info.index >= program.size());
  }
  trace.finalize(exec.reg(kRegV0));
  return trace;
}

}  // namespace t1000
