#include "sim/trace.hpp"

namespace t1000 {
namespace {

// Local FNV-1a 64: the canonical implementation lives in harness/json.hpp,
// but the sim layer sits below the harness in the link graph and the
// primitive is six lines.
constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

std::uint64_t fnv(const void* data, std::size_t bytes, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

template <typename T>
std::uint64_t fnv_vec(const std::vector<T>& v, std::uint64_t h) {
  return v.empty() ? h : fnv(v.data(), v.size() * sizeof(T), h);
}

}  // namespace

StepInfo CommittedTrace::step_at(std::size_t i, const Program& program) const {
  const std::uint8_t flags = flags_[i];
  StepInfo info;
  info.index = index_[i];
  info.next_index = next_index_[i];
  info.ins = (flags & kFlagSentinel)
                 ? make_halt()
                 : program.text[static_cast<std::size_t>(index_[i])];
  info.is_mem = (flags & kFlagIsMem) != 0;
  info.mem_addr = mem_addr_[i];
  info.mem_size = mem_size_[i];
  info.branch_taken = (flags & kFlagBranchTaken) != 0;
  return info;
}

std::uint64_t CommittedTrace::memory_bytes() const {
  return index_.capacity() * sizeof(std::int32_t) +
         next_index_.capacity() * sizeof(std::int32_t) +
         mem_addr_.capacity() * sizeof(std::uint32_t) +
         mem_size_.capacity() * sizeof(std::uint8_t) +
         flags_.capacity() * sizeof(std::uint8_t);
}

void CommittedTrace::append(const StepInfo& info, bool sentinel) {
  std::uint8_t flags = 0;
  if (info.branch_taken) flags |= kFlagBranchTaken;
  if (info.is_mem) flags |= kFlagIsMem;
  if (sentinel) flags |= kFlagSentinel;
  index_.push_back(info.index);
  next_index_.push_back(info.next_index);
  mem_addr_.push_back(info.mem_addr);
  mem_size_.push_back(info.mem_size);
  flags_.push_back(flags);
}

void CommittedTrace::finalize(std::uint32_t checksum) {
  checksum_ = checksum;
  std::uint64_t h = kFnvOffset;
  const std::uint64_t n = index_.size();
  h = fnv(&n, sizeof n, h);
  h = fnv_vec(index_, h);
  h = fnv_vec(next_index_, h);
  h = fnv_vec(mem_addr_, h);
  h = fnv_vec(mem_size_, h);
  h = fnv_vec(flags_, h);
  h = fnv(&checksum_, sizeof checksum_, h);
  content_hash_ = h;
}

DecodedStep decode_step(const StepInfo& info, const Program& program) {
  DecodedStep d;
  d.info = info;
  d.pc = program.pc_of(info.index);
  d.fu = fu_class(info.ins.op);
  d.srcs = src_regs(info.ins);
  const std::optional<Reg> dst = dst_reg(info.ins);
  d.dst = dst.has_value() ? static_cast<std::int8_t>(*dst) : std::int8_t{-1};
  // The halt opcode never consults the predictor (matching the fetch
  // stage's historical is_control && !kHalt test).
  d.is_ctrl = is_control(info.ins.op) && info.ins.op != Opcode::kHalt;
  d.is_store = is_store(info.ins.op);
  d.is_ext = info.ins.op == Opcode::kExt;
  return d;
}

DecodedTrace::DecodedTrace(const CommittedTrace& trace,
                           const Program& program) {
  steps_.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    steps_.push_back(decode_step(trace.step_at(i, program), program));
  }
}

CommittedTrace record_trace(const Program& program,
                            const ExtInstTable* ext_table,
                            std::uint64_t max_steps) {
  Executor exec(program, ext_table);
  CommittedTrace trace;
  while (!exec.halted()) {
    if (exec.steps_executed() >= max_steps) {
      throw SimError("record_trace: program did not halt within step bound");
    }
    const StepInfo info = exec.step();
    trace.append(info, /*sentinel=*/info.index >= program.size());
  }
  trace.finalize(exec.reg(kRegV0));
  return trace;
}

}  // namespace t1000
