// Pre-decoded threaded-code form of a program for functional execution.
//
// The reference interpreter (Executor's ExecMode::kReference path) pays a
// two-level dispatch per step — op_kind() table lookup, then an inner
// switch — plus src_regs()/extend_imm() re-derivation and a full StepInfo
// materialization even when nobody reads it. Trace recording and direct
// simulation take that cost on every committed instruction, which makes
// functional execution the dominant cold-path cost of a grid sweep now
// that replay itself is batched.
//
// UopProgram lowers the text segment once, basic block by basic block,
// into a dense uop stream the interpreter can thread through:
//
//  * one Uop per instruction, at the same index — plus a trailing halt
//    sentinel at offset size() so the off-the-end return path (`jr $ra`
//    out of the entry function) is ordinary dispatch, not a special case;
//  * operands resolved at decode time: register indices flattened into
//    the uop, ALU immediates pre-extended (extend_imm), shift amounts and
//    LUI values precomputed, EXT uops bound to their configuration table;
//  * control targets rewritten to segment offsets (== instruction
//    indices; the stream is dense) and range-checked at decode, so taken
//    branches are a single indexed jump at run time;
//  * irregular instructions — out-of-range static targets, unresolved
//    EXT Conf ids, register fields past the file — lower to kInterp,
//    which defers that one step to the reference interpreter so the fast
//    path never has to reproduce error semantics.
//
// The dispatch loop itself (ucode.cpp) uses computed goto on GCC/Clang
// and a portable switch behind T1000_NO_COMPUTED_GOTO; both are pinned
// byte-identical by CI. Segment boundaries mirror Cfg::build exactly; the
// `ucode.*` verifier rule family (analysis/ucode_check.hpp) structurally
// re-checks a decoded stream against its source program, which is what
// makes this form trustworthy enough to be the only functional path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asmkit/program.hpp"
#include "isa/extdef.hpp"

namespace t1000 {

// Bump when the decoded form or its execution semantics change; part of
// the result-cache identity (harness/cache.hpp) next to
// kTraceFormatVersion, so memoized outcomes recorded by an older decoder
// can never be replayed as if the new one produced them.
inline constexpr int kUcodeFormatVersion = 1;

// Dispatch index of a uop. One entry per distinct handler in the threaded
// interpreter; dense, so computed-goto tables index it directly.
enum class UopKind : std::uint8_t {
  // Three-register ALU (rd <- rs op rt).
  kAddu, kSubu, kAnd, kOr, kXor, kNor, kSlt, kSltu, kSllv, kSrlv, kSrav,
  kMul,
  // Shift by immediate (rd <- rs op imm; imm = shamt).
  kSll, kSrl, kSra,
  // ALU immediate (rd <- rs op imm; imm pre-extended per extend_imm).
  kAddiu, kAndi, kOri, kXori, kSlti, kSltiu,
  // rd <- imm (the full 32-bit value, precomputed at decode).
  kLui,
  // Memory (imm = displacement).
  kLw, kLh, kLhu, kLb, kLbu, kSw, kSh, kSb,
  // Control (target = successor uop index when taken).
  kBeq, kBne, kBlez, kBgtz, kBltz, kBgez, kJ, kJal, kJr, kJalr,
  // Specials.
  kNop, kHalt,
  // Extended instruction (imm = Conf id, resolved against the table).
  kExt,
  // Off-the-end clean halt: the uop at offset size().
  kSentinel,
  // Irregular instruction: defer this one step to the reference
  // interpreter (error semantics, out-of-range fields).
  kInterp,

  kNumUopKinds,
};
inline constexpr int kNumUopKinds = static_cast<int>(UopKind::kNumUopKinds);

// Stable lowercase name of `kind` ("addu", "sentinel", ...); used by the
// disassembly listing and diagnostics.
std::string_view uop_kind_name(UopKind kind);

// One pre-decoded instruction. 12 bytes, meaning of `imm`/`target` per
// UopKind (see the enum comments). Non-control uops fall through to the
// next offset implicitly.
struct Uop {
  UopKind kind = UopKind::kNop;
  Reg rd = 0;
  Reg rs = 0;
  Reg rt = 0;
  std::int32_t imm = 0;
  std::int32_t target = 0;

  friend bool operator==(const Uop&, const Uop&) = default;
};

// One basic block's span of the uop stream. The stream is dense (uop
// offset == instruction index), so `first`/`last` are simultaneously
// segment offsets and the source block's instruction range — the identity
// the `ucode.segments` verifier rule pins against Cfg::build.
struct UopSegment {
  int block = 0;           // source BasicBlock id
  std::int32_t first = 0;  // inclusive uop-offset range
  std::int32_t last = 0;

  friend bool operator==(const UopSegment&, const UopSegment&) = default;
};

// The decoded program: built once per (program, table), immutable
// afterwards, shared read-only by any number of executors (the grid
// caches one per AnalyzedProgram / prepared run). Both referents must
// outlive the UopProgram.
struct UopProgram {
  const Program* program = nullptr;
  const ExtInstTable* table = nullptr;  // null for EXT-free programs
  std::vector<Uop> uops;                // program->size() + 1 (sentinel last)
  std::vector<UopSegment> segments;     // per basic block, Cfg block order

  static UopProgram build(const Program& program, const ExtInstTable* table);

  std::uint64_t memory_bytes() const {
    return uops.capacity() * sizeof(Uop) +
           segments.capacity() * sizeof(UopSegment);
  }
};

// Deterministic textual listing of the decoded stream (segment headers +
// one line per uop); the golden decode fixtures pin this format.
std::string disassemble(const UopProgram& ucode);

}  // namespace t1000
