#include "sim/executor.hpp"

#include <string>

#include "isa/alu.hpp"
#include "sim/ucode.hpp"

namespace t1000 {
namespace {

std::int32_t sext8(std::uint8_t v) { return static_cast<std::int8_t>(v); }
std::int32_t sext16(std::uint16_t v) { return static_cast<std::int16_t>(v); }

}  // namespace

Executor::Executor(const Program& program, const ExtInstTable* ext_table,
                   ExecMode mode)
    : program_(program), ext_table_(ext_table) {
  if (mode == ExecMode::kUcode) {
    owned_ucode_ =
        std::make_shared<const UopProgram>(UopProgram::build(program, ext_table));
    ucode_ = owned_ucode_.get();
  }
  reset();
}

Executor::Executor(const UopProgram& ucode)
    : program_(*ucode.program), ext_table_(ucode.table), ucode_(&ucode) {
  reset();
}

void Executor::reset() {
  mem_ = Memory();
  mem_.write_block(kDataBase, program_.data);
  regs_.fill(0);
  regs_[kRegSp] = kStackTop;
  // A return from the entry function lands one past the end of text, which
  // step() treats as a clean halt.
  regs_[kRegRa] = kTextBase + static_cast<std::uint32_t>(program_.size()) * 4;
  const auto it = program_.text_symbols.find("main");
  pc_ = it == program_.text_symbols.end() ? 0 : it->second;
  halted_ = program_.size() == 0 || pc_ >= program_.size();
  steps_ = 0;
}

std::uint32_t Executor::jump_target_index(std::uint32_t byte_addr) const {
  if (byte_addr < kTextBase || (byte_addr & 3) != 0) {
    throw SimError("wild jump to 0x" + std::to_string(byte_addr));
  }
  return (byte_addr - kTextBase) / 4;
}

StepInfo Executor::step() {
  return ucode_ != nullptr ? step_ucode() : step_reference();
}

std::uint64_t Executor::run(std::uint64_t max_steps) {
  if (ucode_ != nullptr) return run_ucode(max_steps);
  std::uint64_t n = 0;
  while (!halted_ && n < max_steps) {
    step_reference();
    ++n;
  }
  return n;
}

StepInfo Executor::step_reference() {
  if (halted_) throw SimError("step() after halt");
  if (pc_ < 0 || pc_ > program_.size()) {
    throw SimError("pc out of range: " + std::to_string(pc_));
  }
  if (pc_ == program_.size()) {  // ran off the end via jr $ra from entry
    halted_ = true;
    StepInfo off{};
    off.index = pc_;
    off.next_index = pc_;
    off.ins = make_halt();
    return off;
  }

  const Instruction& ins = program_.text[static_cast<std::size_t>(pc_)];
  StepInfo info;
  info.index = pc_;
  info.ins = ins;

  const SrcRegs srcs = src_regs(ins);
  info.num_src = srcs.count;
  for (int i = 0; i < srcs.count; ++i) info.src_vals[static_cast<std::size_t>(i)] = regs_[srcs.reg[i]];

  std::int32_t next = pc_ + 1;
  const std::uint32_t a = info.src_vals[0];
  const std::uint32_t b = info.src_vals[1];

  auto write_dst = [&](Reg r, std::uint32_t v) {
    set_reg(r, v);
    info.has_result = true;
    info.result = v;
  };

  switch (op_kind(ins.op)) {
    case OpKind::kAlu3:
      write_dst(ins.rd, eval_alu(ins.op, a, b));
      break;
    case OpKind::kShiftImm:
      write_dst(ins.rd, eval_alu(ins.op, a, static_cast<std::uint32_t>(ins.imm)));
      break;
    case OpKind::kAluImm:
      write_dst(ins.rd, eval_alu(ins.op, a, extend_imm(ins.op, ins.imm)));
      break;
    case OpKind::kLui:
      write_dst(ins.rd, static_cast<std::uint32_t>(ins.imm & 0xFFFF) << 16);
      break;
    case OpKind::kLoad: {
      const std::uint32_t addr = a + static_cast<std::uint32_t>(ins.imm);
      info.is_mem = true;
      info.mem_addr = addr;
      std::uint32_t v = 0;
      switch (ins.op) {
        case Opcode::kLw: info.mem_size = 4; v = mem_.load_u32(addr); break;
        case Opcode::kLh: info.mem_size = 2; v = static_cast<std::uint32_t>(sext16(mem_.load_u16(addr))); break;
        case Opcode::kLhu: info.mem_size = 2; v = mem_.load_u16(addr); break;
        case Opcode::kLb: info.mem_size = 1; v = static_cast<std::uint32_t>(sext8(mem_.load_u8(addr))); break;
        case Opcode::kLbu: info.mem_size = 1; v = mem_.load_u8(addr); break;
        default: throw SimError("bad load opcode");
      }
      write_dst(ins.rd, v);
      break;
    }
    case OpKind::kStore: {
      const std::uint32_t addr = a + static_cast<std::uint32_t>(ins.imm);
      info.is_mem = true;
      info.mem_addr = addr;
      const std::uint32_t v = b;  // store data travels in rt
      switch (ins.op) {
        case Opcode::kSw: info.mem_size = 4; mem_.store_u32(addr, v); break;
        case Opcode::kSh: info.mem_size = 2; mem_.store_u16(addr, static_cast<std::uint16_t>(v)); break;
        case Opcode::kSb: info.mem_size = 1; mem_.store_u8(addr, static_cast<std::uint8_t>(v)); break;
        default: throw SimError("bad store opcode");
      }
      break;
    }
    case OpKind::kBranch2: {
      const bool taken = ins.op == Opcode::kBeq ? a == b : a != b;
      info.branch_taken = taken;
      if (taken) next = ins.imm;
      break;
    }
    case OpKind::kBranch1: {
      const std::int32_t sa = static_cast<std::int32_t>(a);
      bool taken = false;
      switch (ins.op) {
        case Opcode::kBlez: taken = sa <= 0; break;
        case Opcode::kBgtz: taken = sa > 0; break;
        case Opcode::kBltz: taken = sa < 0; break;
        case Opcode::kBgez: taken = sa >= 0; break;
        default: throw SimError("bad branch opcode");
      }
      info.branch_taken = taken;
      if (taken) next = ins.imm;
      break;
    }
    case OpKind::kJump:
      if (ins.op == Opcode::kJal) {
        write_dst(kRegRa, kTextBase + static_cast<std::uint32_t>(pc_ + 1) * 4);
      }
      info.branch_taken = true;
      next = ins.imm;
      break;
    case OpKind::kJumpReg: {
      const std::uint32_t target = a;
      if (ins.op == Opcode::kJalr) {
        write_dst(ins.rd, kTextBase + static_cast<std::uint32_t>(pc_ + 1) * 4);
      }
      info.branch_taken = true;
      next = static_cast<std::int32_t>(jump_target_index(target));
      break;
    }
    case OpKind::kNop:
      break;
    case OpKind::kHalt:
      halted_ = true;
      next = pc_;
      break;
    case OpKind::kExt: {
      if (ext_table_ == nullptr || ins.conf >= ext_table_->size()) {
        throw SimError("EXT with unknown Conf id " + std::to_string(ins.conf));
      }
      const ExtInstDef& def = ext_table_->at(ins.conf);
      if (def.num_inputs() <= 2 && def.num_outputs() == 1) {
        write_dst(ins.rd, def.eval(a, b));
        break;
      }
      // MIMO shape: inputs beyond rs/rt and outputs beyond rd travel in the
      // imm-packed extra operand fields (see instruction.hpp).
      if (srcs.count < def.num_inputs()) {
        throw SimError("EXT conf " + std::to_string(ins.conf) + " needs " +
                       std::to_string(def.num_inputs()) +
                       " inputs but the instruction binds " +
                       std::to_string(srcs.count));
      }
      std::array<std::uint32_t, kMaxExtInputs> in{};
      for (int i = 0; i < def.num_inputs(); ++i) {
        in[static_cast<std::size_t>(i)] =
            info.src_vals[static_cast<std::size_t>(i)];
      }
      std::array<std::uint32_t, kMaxExtOutputs> out{};
      def.eval_multi(in, out);
      std::array<Reg, kMaxExtOutputs - 1> extra_out{};
      const int extra = ext_extra_outputs(ins, extra_out);
      if (extra + 1 < def.num_outputs()) {
        throw SimError("EXT conf " + std::to_string(ins.conf) + " needs " +
                       std::to_string(def.num_outputs()) +
                       " outputs but the instruction binds " +
                       std::to_string(extra + 1));
      }
      // Extra outputs first, so StepInfo's single `result` slot reports the
      // primary output exactly as in the classic shape.
      for (int i = 1; i < def.num_outputs(); ++i) {
        set_reg(extra_out[i - 1], out[static_cast<std::size_t>(i)]);
      }
      write_dst(ins.rd, out[0]);
      break;
    }
  }

  if (next < 0 || next > program_.size()) {
    throw SimError("control transfer out of text: " + std::to_string(next));
  }
  pc_ = next;
  info.next_index = next;
  ++steps_;
  return info;
}

}  // namespace t1000
