// Extended-instruction definitions: the micro-programs a PFU configuration
// implements, and the table that maps `Conf` ids to them.
//
// An extended instruction stands for a short dependent sequence of candidate
// ALU operations (Section 2.1 of the paper). Its semantics are kept here as
// a slot-based micro-program so the functional simulator can evaluate it and
// the hardware-cost model can map it to LUTs. Slots 0..num_inputs-1 hold the
// register inputs (the paper's shape uses exactly slots 0 and 1); each
// micro-op writes a fresh slot starting at max(2, num_inputs), so classic
// 2-in definitions keep their historical slot numbering, signatures, and
// Conf ids. The final micro-op's slot is always the primary register output;
// a MIMO definition (ByoRISC direction) may name additional earlier slots as
// extra outputs.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hpp"
#include "isa/opcode.hpp"

namespace t1000 {

// One operation inside an extended instruction.
//
//  * `op` is a candidate ALU opcode (Alu3 / ShiftImm / AluImm / Lui kinds).
//  * `a` / `b` are input slot indices; -1 means "unused" (LUI) or "the
//    immediate" (`imm`) for ShiftImm / AluImm kinds.
//  * `dst` is the slot the result lands in.
struct MicroOp {
  Opcode op = Opcode::kNop;
  std::int8_t dst = -1;
  std::int8_t a = -1;
  std::int8_t b = -1;
  std::int32_t imm = 0;

  friend bool operator==(const MicroOp&, const MicroOp&) = default;
};

// Maximum micro-ops per extended instruction. The paper's greedy algorithm
// finds sequences of 2..8 instructions; 8 is also the most that still
// plausibly evaluates in a single PFU cycle.
inline constexpr int kMaxUops = 8;

class ExtInstDef {
 public:
  ExtInstDef() = default;
  ExtInstDef(int num_inputs, std::vector<MicroOp> uops);
  // MIMO form: `out_slots` lists the output slots; the last micro-op's dst
  // slot must come first (the primary output carried in rd). Passing just
  // that slot is identical to the two-argument constructor.
  ExtInstDef(int num_inputs, std::vector<MicroOp> uops,
             std::vector<std::int8_t> out_slots);

  int num_inputs() const { return num_inputs_; }
  int num_outputs() const { return static_cast<int>(out_slots_.size()); }
  const std::vector<std::int8_t>& out_slots() const { return out_slots_; }
  const std::vector<MicroOp>& uops() const { return uops_; }
  int length() const { return static_cast<int>(uops_.size()); }

  // First micro-op dst slot: max(2, num_inputs), so classic defs keep
  // slot numbering (and therefore signatures) stable.
  int input_base() const { return num_inputs_ > 2 ? num_inputs_ : 2; }

  // Cycles the sequence would take on the base machine (sum of base
  // latencies of the fused ops); the PFU evaluates it in one cycle, so the
  // per-execution saving is `base_cycles() - 1`.
  int base_cycles() const;

  // Evaluates the micro-program over the two register inputs and returns
  // the primary output. Only valid for num_inputs <= 2.
  std::uint32_t eval(std::uint32_t in0, std::uint32_t in1) const;

  // General MIMO evaluation: `in[0..num_inputs)` are the register inputs,
  // `out[0..num_outputs)` receives the outputs in out_slots() order
  // (out[0] is the primary output).
  void eval_multi(const std::array<std::uint32_t, kMaxExtInputs>& in,
                  std::array<std::uint32_t, kMaxExtOutputs>& out) const;

  // Canonical textual identity; equal signatures <=> identical PFU
  // configuration (the paper: "the latter two sequences perform the same
  // operation, they share an identical PFU configuration").
  const std::string& signature() const { return signature_; }

  friend bool operator==(const ExtInstDef& x, const ExtInstDef& y) {
    return x.signature_ == y.signature_;
  }

 private:
  int num_inputs_ = 0;
  std::vector<MicroOp> uops_;
  std::vector<std::int8_t> out_slots_;
  std::string signature_;
};

// Conf-id table. Interning deduplicates by signature, so every distinct PFU
// configuration gets exactly one id.
class ExtInstTable {
 public:
  // Returns the existing id for an identical definition, or a fresh one.
  ConfId intern(ExtInstDef def);

  const ExtInstDef& at(ConfId id) const { return defs_.at(id); }
  int size() const { return static_cast<int>(defs_.size()); }
  const std::vector<ExtInstDef>& defs() const { return defs_; }

 private:
  std::vector<ExtInstDef> defs_;
  std::unordered_map<std::string, ConfId> by_signature_;
};

}  // namespace t1000
