// Opcode definitions and static properties for the T1000 ISA.
//
// The ISA is a compact MIPS-like 32-bit RISC: it matches the SimpleScalar
// PISA subset the paper's workloads exercise (integer ALU ops, shifts, a
// single-register-result multiply, loads/stores, branches, jumps) plus the
// EXT opcode that invokes a programmable functional unit with a `Conf`
// configuration id, exactly as described in Section 2.2 of the paper.
#pragma once

#include <cstdint>
#include <string_view>

namespace t1000 {

enum class Opcode : std::uint8_t {
  // R-type, three-register ALU.
  kAddu,
  kSubu,
  kAnd,
  kOr,
  kXor,
  kNor,
  kSlt,
  kSltu,
  kSllv,
  kSrlv,
  kSrav,
  kMul,
  // Shift by immediate (rd <- rs op shamt).
  kSll,
  kSrl,
  kSra,
  // I-type ALU (rd <- rs op imm).
  kAddiu,
  kAndi,
  kOri,
  kXori,
  kSlti,
  kSltiu,
  kLui,  // rd <- imm << 16 (no register source)
  // Memory (rd/rt <- mem[rs + imm] and mem[rs + imm] <- rt).
  kLw,
  kLh,
  kLhu,
  kLb,
  kLbu,
  kSw,
  kSh,
  kSb,
  // Control flow. Branch/jump targets are absolute instruction indices in
  // the assembled program (`imm` field); the binary encoding converts them
  // to PC-relative / region forms.
  kBeq,
  kBne,
  kBlez,
  kBgtz,
  kBltz,
  kBgez,
  kJ,
  kJal,
  kJr,
  kJalr,
  // Specials.
  kNop,
  kHalt,
  // Extended instruction executed on a PFU; `conf` selects the
  // configuration (micro-program) it expects to find loaded.
  kExt,

  kNumOpcodes,
};

inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kNumOpcodes);

// Functional-unit class an opcode issues to in the timing model.
enum class FuClass : std::uint8_t {
  kIntAlu,   // single-cycle integer ALU / shifter
  kIntMul,   // pipelined multiplier
  kMemRead,  // load port
  kMemWrite, // store port
  kBranch,   // resolved on an ALU port; grouped for stats
  kPfu,      // programmable functional unit
  kNone,     // nop / halt
};

// Coarse structural category used by the assembler, CFG builder and
// extractor.
enum class OpKind : std::uint8_t {
  kAlu3,      // rd, rs, rt
  kShiftImm,  // rd, rs, shamt
  kAluImm,    // rd, rs, imm
  kLui,       // rd, imm
  kLoad,      // rd, imm(rs)
  kStore,     // rt, imm(rs)
  kBranch2,   // rs, rt, label
  kBranch1,   // rs, label
  kJump,      // label
  kJumpReg,   // rs  (kJalr: rd, rs)
  kNop,
  kHalt,
  kExt,       // rd, rs, rt, conf
};

struct OpcodeInfo {
  std::string_view mnemonic;
  OpKind kind;
  FuClass fu;
  // Execution latency on the base machine in cycles (loads: latency of the
  // address-generation + cache hit; cache misses are added by the memory
  // model).
  std::uint8_t latency;
  // Eligible for inclusion in an extended-instruction candidate sequence
  // (the paper's "fixed instructions marked as candidates": arithmetic and
  // logic operations; profiling later restricts them by operand bitwidth).
  bool ext_candidate;
};

// Static properties of `op`. Table-driven; O(1).
const OpcodeInfo& opcode_info(Opcode op);

inline std::string_view mnemonic(Opcode op) { return opcode_info(op).mnemonic; }
inline OpKind op_kind(Opcode op) { return opcode_info(op).kind; }
inline FuClass fu_class(Opcode op) { return opcode_info(op).fu; }
inline int base_latency(Opcode op) { return opcode_info(op).latency; }
inline bool is_ext_candidate(Opcode op) { return opcode_info(op).ext_candidate; }

inline bool is_load(Opcode op) { return op_kind(op) == OpKind::kLoad; }
inline bool is_store(Opcode op) { return op_kind(op) == OpKind::kStore; }
inline bool is_mem(Opcode op) { return is_load(op) || is_store(op); }
inline bool is_branch(Opcode op) {
  const OpKind k = op_kind(op);
  return k == OpKind::kBranch1 || k == OpKind::kBranch2;
}
inline bool is_jump(Opcode op) {
  const OpKind k = op_kind(op);
  return k == OpKind::kJump || k == OpKind::kJumpReg;
}
// Any instruction that can transfer control somewhere other than pc+1.
inline bool is_control(Opcode op) {
  return is_branch(op) || is_jump(op) || op == Opcode::kHalt;
}

// Parses a mnemonic (e.g. "addu"); returns kNumOpcodes when unknown.
Opcode parse_mnemonic(std::string_view text);

}  // namespace t1000
