#include "isa/instruction.hpp"

#include <sstream>

namespace t1000 {

SrcRegs src_regs(const Instruction& ins) {
  SrcRegs out;
  switch (op_kind(ins.op)) {
    case OpKind::kAlu3:
      out.reg[0] = ins.rs;
      out.reg[1] = ins.rt;
      out.count = 2;
      break;
    case OpKind::kShiftImm:
    case OpKind::kAluImm:
    case OpKind::kLoad:
    case OpKind::kBranch1:
      out.reg[0] = ins.rs;
      out.count = 1;
      break;
    case OpKind::kStore:
    case OpKind::kBranch2:
      out.reg[0] = ins.rs;
      out.reg[1] = ins.rt;
      out.count = 2;
      break;
    case OpKind::kJumpReg:
      out.reg[0] = ins.rs;
      out.count = 1;
      break;
    case OpKind::kExt:
      out.reg[0] = ins.rs;
      out.reg[1] = ins.rt;
      out.count = 2;
      break;
    case OpKind::kLui:
    case OpKind::kJump:
    case OpKind::kNop:
    case OpKind::kHalt:
      break;
  }
  return out;
}

std::optional<Reg> dst_reg(const Instruction& ins) {
  Reg d = 0;
  switch (op_kind(ins.op)) {
    case OpKind::kAlu3:
    case OpKind::kShiftImm:
    case OpKind::kAluImm:
    case OpKind::kLui:
    case OpKind::kLoad:
    case OpKind::kExt:
      d = ins.rd;
      break;
    case OpKind::kJump:
      if (ins.op == Opcode::kJal) d = kRegRa;
      break;
    case OpKind::kJumpReg:
      if (ins.op == Opcode::kJalr) d = ins.rd;
      break;
    default:
      break;
  }
  if (d == kRegZero) return std::nullopt;
  return d;
}

bool reads_reg(const Instruction& ins, Reg r) {
  const SrcRegs s = src_regs(ins);
  for (int i = 0; i < s.count; ++i) {
    if (s.reg[i] == r) return true;
  }
  return false;
}

bool writes_reg(const Instruction& ins, Reg r) {
  const auto d = dst_reg(ins);
  return d.has_value() && *d == r;
}

std::string to_string(const Instruction& ins) {
  std::ostringstream os;
  os << mnemonic(ins.op);
  const auto r = [](Reg x) { return std::string(reg_name(x)); };
  switch (op_kind(ins.op)) {
    case OpKind::kAlu3:
      os << ' ' << r(ins.rd) << ", " << r(ins.rs) << ", " << r(ins.rt);
      break;
    case OpKind::kShiftImm:
    case OpKind::kAluImm:
      os << ' ' << r(ins.rd) << ", " << r(ins.rs) << ", " << ins.imm;
      break;
    case OpKind::kLui:
      os << ' ' << r(ins.rd) << ", " << ins.imm;
      break;
    case OpKind::kLoad:
      os << ' ' << r(ins.rd) << ", " << ins.imm << '(' << r(ins.rs) << ')';
      break;
    case OpKind::kStore:
      os << ' ' << r(ins.rt) << ", " << ins.imm << '(' << r(ins.rs) << ')';
      break;
    case OpKind::kBranch2:
      os << ' ' << r(ins.rs) << ", " << r(ins.rt) << ", @" << ins.imm;
      break;
    case OpKind::kBranch1:
      os << ' ' << r(ins.rs) << ", @" << ins.imm;
      break;
    case OpKind::kJump:
      os << " @" << ins.imm;
      break;
    case OpKind::kJumpReg:
      if (ins.op == Opcode::kJalr) {
        os << ' ' << r(ins.rd) << ", " << r(ins.rs);
      } else {
        os << ' ' << r(ins.rs);
      }
      break;
    case OpKind::kExt:
      os << ' ' << r(ins.rd) << ", " << r(ins.rs) << ", " << r(ins.rt)
         << ", conf=" << ins.conf;
      break;
    case OpKind::kNop:
    case OpKind::kHalt:
      break;
  }
  return os.str();
}

Instruction make_r(Opcode op, Reg rd, Reg rs, Reg rt) {
  return {.op = op, .rd = rd, .rs = rs, .rt = rt};
}

Instruction make_shift(Opcode op, Reg rd, Reg rs, int shamt) {
  return {.op = op, .rd = rd, .rs = rs, .imm = shamt};
}

Instruction make_imm(Opcode op, Reg rd, Reg rs, std::int32_t imm) {
  return {.op = op, .rd = rd, .rs = rs, .imm = imm};
}

Instruction make_lui(Reg rd, std::int32_t imm) {
  return {.op = Opcode::kLui, .rd = rd, .imm = imm};
}

Instruction make_mem(Opcode op, Reg data, Reg base, std::int32_t disp) {
  if (is_store(op)) return {.op = op, .rs = base, .rt = data, .imm = disp};
  return {.op = op, .rd = data, .rs = base, .imm = disp};
}

Instruction make_branch2(Opcode op, Reg rs, Reg rt, std::int32_t target) {
  return {.op = op, .rs = rs, .rt = rt, .imm = target};
}

Instruction make_branch1(Opcode op, Reg rs, std::int32_t target) {
  return {.op = op, .rs = rs, .imm = target};
}

Instruction make_jump(Opcode op, std::int32_t target) {
  return {.op = op, .imm = target};
}

Instruction make_jr(Reg rs) { return {.op = Opcode::kJr, .rs = rs}; }

Instruction make_jalr(Reg rd, Reg rs) {
  return {.op = Opcode::kJalr, .rd = rd, .rs = rs};
}

Instruction make_ext(Reg rd, Reg rs, Reg rt, ConfId conf) {
  return {.op = Opcode::kExt, .rd = rd, .rs = rs, .rt = rt, .conf = conf};
}

Instruction make_nop() { return {.op = Opcode::kNop}; }

Instruction make_halt() { return {.op = Opcode::kHalt}; }

}  // namespace t1000
