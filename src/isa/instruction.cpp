#include "isa/instruction.hpp"

#include <sstream>
#include <stdexcept>

namespace t1000 {
namespace {

// One 6-bit extra-operand field: bit 5 = bound, bits 4:0 = register.
constexpr std::int32_t kExtFieldBound = 0x20;
constexpr std::int32_t kExtFieldMask = 0x3F;

std::int32_t ext_field(const Instruction& ins, int index) {
  return (ins.imm >> (6 * index)) & kExtFieldMask;
}

}  // namespace

std::int32_t pack_ext_extras(const std::vector<Reg>& extra_in,
                             const std::vector<Reg>& extra_out) {
  if (extra_in.size() > kMaxExtInputs - 2 ||
      extra_out.size() > kMaxExtOutputs - 1) {
    throw std::invalid_argument("pack_ext_extras: too many extra operands");
  }
  std::int32_t imm = 0;
  for (std::size_t i = 0; i < extra_in.size(); ++i) {
    imm |= (kExtFieldBound | static_cast<std::int32_t>(extra_in[i]))
           << (6 * static_cast<int>(i));
  }
  for (std::size_t i = 0; i < extra_out.size(); ++i) {
    imm |= (kExtFieldBound | static_cast<std::int32_t>(extra_out[i]))
           << (6 * static_cast<int>(i + 2));
  }
  return imm;
}

int ext_extra_inputs(const Instruction& ins,
                     std::array<Reg, kMaxExtInputs - 2>& out) {
  int count = 0;
  for (int i = 0; i < kMaxExtInputs - 2; ++i) {
    const std::int32_t f = ext_field(ins, i);
    if ((f & kExtFieldBound) == 0) break;
    out[count++] = static_cast<Reg>(f & 0x1F);
  }
  return count;
}

int ext_extra_outputs(const Instruction& ins,
                      std::array<Reg, kMaxExtOutputs - 1>& out) {
  int count = 0;
  for (int i = 0; i < kMaxExtOutputs - 1; ++i) {
    const std::int32_t f = ext_field(ins, i + 2);
    if ((f & kExtFieldBound) == 0) break;
    out[count++] = static_cast<Reg>(f & 0x1F);
  }
  return count;
}

SrcRegs src_regs(const Instruction& ins) {
  SrcRegs out;
  switch (op_kind(ins.op)) {
    case OpKind::kAlu3:
      out.reg[0] = ins.rs;
      out.reg[1] = ins.rt;
      out.count = 2;
      break;
    case OpKind::kShiftImm:
    case OpKind::kAluImm:
    case OpKind::kLoad:
    case OpKind::kBranch1:
      out.reg[0] = ins.rs;
      out.count = 1;
      break;
    case OpKind::kStore:
    case OpKind::kBranch2:
      out.reg[0] = ins.rs;
      out.reg[1] = ins.rt;
      out.count = 2;
      break;
    case OpKind::kJumpReg:
      out.reg[0] = ins.rs;
      out.count = 1;
      break;
    case OpKind::kExt: {
      out.reg[0] = ins.rs;
      out.reg[1] = ins.rt;
      out.count = 2;
      std::array<Reg, kMaxExtInputs - 2> extra{};
      const int n = ext_extra_inputs(ins, extra);
      for (int i = 0; i < n; ++i) out.reg[out.count++] = extra[i];
      break;
    }
    case OpKind::kLui:
    case OpKind::kJump:
    case OpKind::kNop:
    case OpKind::kHalt:
      break;
  }
  return out;
}

std::optional<Reg> dst_reg(const Instruction& ins) {
  Reg d = 0;
  switch (op_kind(ins.op)) {
    case OpKind::kAlu3:
    case OpKind::kShiftImm:
    case OpKind::kAluImm:
    case OpKind::kLui:
    case OpKind::kLoad:
    case OpKind::kExt:
      d = ins.rd;
      break;
    case OpKind::kJump:
      if (ins.op == Opcode::kJal) d = kRegRa;
      break;
    case OpKind::kJumpReg:
      if (ins.op == Opcode::kJalr) d = ins.rd;
      break;
    default:
      break;
  }
  if (d == kRegZero) return std::nullopt;
  return d;
}

DstRegs dst_regs(const Instruction& ins) {
  DstRegs out;
  if (const auto d = dst_reg(ins)) out.reg[out.count++] = *d;
  if (op_kind(ins.op) == OpKind::kExt) {
    std::array<Reg, kMaxExtOutputs - 1> extra{};
    const int n = ext_extra_outputs(ins, extra);
    for (int i = 0; i < n; ++i) {
      if (extra[i] != kRegZero) out.reg[out.count++] = extra[i];
    }
  }
  return out;
}

bool reads_reg(const Instruction& ins, Reg r) {
  const SrcRegs s = src_regs(ins);
  for (int i = 0; i < s.count; ++i) {
    if (s.reg[i] == r) return true;
  }
  return false;
}

bool writes_reg(const Instruction& ins, Reg r) {
  const DstRegs d = dst_regs(ins);
  for (int i = 0; i < d.count; ++i) {
    if (d.reg[i] == r) return true;
  }
  return false;
}

std::string to_string(const Instruction& ins) {
  std::ostringstream os;
  os << mnemonic(ins.op);
  const auto r = [](Reg x) { return std::string(reg_name(x)); };
  switch (op_kind(ins.op)) {
    case OpKind::kAlu3:
      os << ' ' << r(ins.rd) << ", " << r(ins.rs) << ", " << r(ins.rt);
      break;
    case OpKind::kShiftImm:
    case OpKind::kAluImm:
      os << ' ' << r(ins.rd) << ", " << r(ins.rs) << ", " << ins.imm;
      break;
    case OpKind::kLui:
      os << ' ' << r(ins.rd) << ", " << ins.imm;
      break;
    case OpKind::kLoad:
      os << ' ' << r(ins.rd) << ", " << ins.imm << '(' << r(ins.rs) << ')';
      break;
    case OpKind::kStore:
      os << ' ' << r(ins.rt) << ", " << ins.imm << '(' << r(ins.rs) << ')';
      break;
    case OpKind::kBranch2:
      os << ' ' << r(ins.rs) << ", " << r(ins.rt) << ", @" << ins.imm;
      break;
    case OpKind::kBranch1:
      os << ' ' << r(ins.rs) << ", @" << ins.imm;
      break;
    case OpKind::kJump:
      os << " @" << ins.imm;
      break;
    case OpKind::kJumpReg:
      if (ins.op == Opcode::kJalr) {
        os << ' ' << r(ins.rd) << ", " << r(ins.rs);
      } else {
        os << ' ' << r(ins.rs);
      }
      break;
    case OpKind::kExt: {
      os << ' ' << r(ins.rd) << ", " << r(ins.rs) << ", " << r(ins.rt)
         << ", conf=" << ins.conf;
      std::array<Reg, kMaxExtInputs - 2> ein{};
      std::array<Reg, kMaxExtOutputs - 1> eout{};
      const int ni = ext_extra_inputs(ins, ein);
      const int no = ext_extra_outputs(ins, eout);
      for (int i = 0; i < ni; ++i) os << ", in" << (2 + i) << '=' << r(ein[i]);
      for (int i = 0; i < no; ++i) os << ", out" << (1 + i) << '=' << r(eout[i]);
      break;
    }
    case OpKind::kNop:
    case OpKind::kHalt:
      break;
  }
  return os.str();
}

Instruction make_r(Opcode op, Reg rd, Reg rs, Reg rt) {
  return {.op = op, .rd = rd, .rs = rs, .rt = rt};
}

Instruction make_shift(Opcode op, Reg rd, Reg rs, int shamt) {
  return {.op = op, .rd = rd, .rs = rs, .imm = shamt};
}

Instruction make_imm(Opcode op, Reg rd, Reg rs, std::int32_t imm) {
  return {.op = op, .rd = rd, .rs = rs, .imm = imm};
}

Instruction make_lui(Reg rd, std::int32_t imm) {
  return {.op = Opcode::kLui, .rd = rd, .imm = imm};
}

Instruction make_mem(Opcode op, Reg data, Reg base, std::int32_t disp) {
  if (is_store(op)) return {.op = op, .rs = base, .rt = data, .imm = disp};
  return {.op = op, .rd = data, .rs = base, .imm = disp};
}

Instruction make_branch2(Opcode op, Reg rs, Reg rt, std::int32_t target) {
  return {.op = op, .rs = rs, .rt = rt, .imm = target};
}

Instruction make_branch1(Opcode op, Reg rs, std::int32_t target) {
  return {.op = op, .rs = rs, .imm = target};
}

Instruction make_jump(Opcode op, std::int32_t target) {
  return {.op = op, .imm = target};
}

Instruction make_jr(Reg rs) { return {.op = Opcode::kJr, .rs = rs}; }

Instruction make_jalr(Reg rd, Reg rs) {
  return {.op = Opcode::kJalr, .rd = rd, .rs = rs};
}

Instruction make_ext(Reg rd, Reg rs, Reg rt, ConfId conf) {
  return {.op = Opcode::kExt, .rd = rd, .rs = rs, .rt = rt, .conf = conf};
}

Instruction make_ext(Reg rd, Reg rs, Reg rt, ConfId conf,
                     const std::vector<Reg>& extra_in,
                     const std::vector<Reg>& extra_out) {
  return {.op = Opcode::kExt,
          .rd = rd,
          .rs = rs,
          .rt = rt,
          .imm = pack_ext_extras(extra_in, extra_out),
          .conf = conf};
}

Instruction make_nop() { return {.op = Opcode::kNop}; }

Instruction make_halt() { return {.op = Opcode::kHalt}; }

}  // namespace t1000
