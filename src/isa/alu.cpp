#include "isa/alu.hpp"

#include <bit>
#include <cassert>

namespace t1000 {

std::uint32_t eval_alu(Opcode op, std::uint32_t a, std::uint32_t b) {
  const auto s = [](std::uint32_t v) { return static_cast<std::int32_t>(v); };
  switch (op) {
    case Opcode::kAddu:
    case Opcode::kAddiu:
      return a + b;
    case Opcode::kSubu:
      return a - b;
    case Opcode::kAnd:
    case Opcode::kAndi:
      return a & b;
    case Opcode::kOr:
    case Opcode::kOri:
      return a | b;
    case Opcode::kXor:
    case Opcode::kXori:
      return a ^ b;
    case Opcode::kNor:
      return ~(a | b);
    case Opcode::kSlt:
    case Opcode::kSlti:
      return s(a) < s(b) ? 1 : 0;
    case Opcode::kSltu:
    case Opcode::kSltiu:
      return a < b ? 1 : 0;
    case Opcode::kSll:
    case Opcode::kSllv:
      return a << (b & 31);
    case Opcode::kSrl:
    case Opcode::kSrlv:
      return a >> (b & 31);
    case Opcode::kSra:
    case Opcode::kSrav:
      return static_cast<std::uint32_t>(s(a) >> (b & 31));
    case Opcode::kMul:
      return a * b;
    case Opcode::kLui:
      return b << 16;
    default:
      assert(false && "eval_alu: not an ALU opcode");
      return 0;
  }
}

ImmExtension imm_extension(Opcode op) {
  switch (op) {
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
      return ImmExtension::kZero;
    default:
      return ImmExtension::kSign;
  }
}

std::uint32_t extend_imm(Opcode op, std::int32_t imm) {
  if (imm_extension(op) == ImmExtension::kZero) {
    return static_cast<std::uint32_t>(imm) & 0xFFFF;
  }
  return static_cast<std::uint32_t>(imm);  // already sign-correct in int32
}

int signed_width(std::uint32_t v) {
  const std::uint32_t key =
      (v & 0x8000'0000u) != 0 ? ~v : v;  // strip redundant sign bits
  return 33 - std::countl_zero(key);
}

}  // namespace t1000
