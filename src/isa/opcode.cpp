#include "isa/opcode.hpp"

#include <array>
#include <cassert>

namespace t1000 {
namespace {

constexpr std::array<OpcodeInfo, kNumOpcodes> kInfo = {{
    // mnemonic, kind, fu, latency, ext_candidate
    {"addu", OpKind::kAlu3, FuClass::kIntAlu, 1, true},       // kAddu
    {"subu", OpKind::kAlu3, FuClass::kIntAlu, 1, true},       // kSubu
    {"and", OpKind::kAlu3, FuClass::kIntAlu, 1, true},        // kAnd
    {"or", OpKind::kAlu3, FuClass::kIntAlu, 1, true},         // kOr
    {"xor", OpKind::kAlu3, FuClass::kIntAlu, 1, true},        // kXor
    {"nor", OpKind::kAlu3, FuClass::kIntAlu, 1, true},        // kNor
    {"slt", OpKind::kAlu3, FuClass::kIntAlu, 1, true},        // kSlt
    {"sltu", OpKind::kAlu3, FuClass::kIntAlu, 1, true},       // kSltu
    // Variable shifts need a barrel shifter; they are legal instructions but
    // poor PFU candidates (LUT cost), so they are excluded by default.
    {"sllv", OpKind::kAlu3, FuClass::kIntAlu, 1, false},      // kSllv
    {"srlv", OpKind::kAlu3, FuClass::kIntAlu, 1, false},      // kSrlv
    {"srav", OpKind::kAlu3, FuClass::kIntAlu, 1, false},      // kSrav
    {"mul", OpKind::kAlu3, FuClass::kIntMul, 3, false},       // kMul
    {"sll", OpKind::kShiftImm, FuClass::kIntAlu, 1, true},    // kSll
    {"srl", OpKind::kShiftImm, FuClass::kIntAlu, 1, true},    // kSrl
    {"sra", OpKind::kShiftImm, FuClass::kIntAlu, 1, true},    // kSra
    {"addiu", OpKind::kAluImm, FuClass::kIntAlu, 1, true},    // kAddiu
    {"andi", OpKind::kAluImm, FuClass::kIntAlu, 1, true},     // kAndi
    {"ori", OpKind::kAluImm, FuClass::kIntAlu, 1, true},      // kOri
    {"xori", OpKind::kAluImm, FuClass::kIntAlu, 1, true},     // kXori
    {"slti", OpKind::kAluImm, FuClass::kIntAlu, 1, true},     // kSlti
    {"sltiu", OpKind::kAluImm, FuClass::kIntAlu, 1, true},    // kSltiu
    {"lui", OpKind::kLui, FuClass::kIntAlu, 1, true},         // kLui
    {"lw", OpKind::kLoad, FuClass::kMemRead, 1, false},       // kLw
    {"lh", OpKind::kLoad, FuClass::kMemRead, 1, false},       // kLh
    {"lhu", OpKind::kLoad, FuClass::kMemRead, 1, false},      // kLhu
    {"lb", OpKind::kLoad, FuClass::kMemRead, 1, false},       // kLb
    {"lbu", OpKind::kLoad, FuClass::kMemRead, 1, false},      // kLbu
    {"sw", OpKind::kStore, FuClass::kMemWrite, 1, false},     // kSw
    {"sh", OpKind::kStore, FuClass::kMemWrite, 1, false},     // kSh
    {"sb", OpKind::kStore, FuClass::kMemWrite, 1, false},     // kSb
    {"beq", OpKind::kBranch2, FuClass::kBranch, 1, false},    // kBeq
    {"bne", OpKind::kBranch2, FuClass::kBranch, 1, false},    // kBne
    {"blez", OpKind::kBranch1, FuClass::kBranch, 1, false},   // kBlez
    {"bgtz", OpKind::kBranch1, FuClass::kBranch, 1, false},   // kBgtz
    {"bltz", OpKind::kBranch1, FuClass::kBranch, 1, false},   // kBltz
    {"bgez", OpKind::kBranch1, FuClass::kBranch, 1, false},   // kBgez
    {"j", OpKind::kJump, FuClass::kBranch, 1, false},         // kJ
    {"jal", OpKind::kJump, FuClass::kBranch, 1, false},       // kJal
    {"jr", OpKind::kJumpReg, FuClass::kBranch, 1, false},     // kJr
    {"jalr", OpKind::kJumpReg, FuClass::kBranch, 1, false},   // kJalr
    {"nop", OpKind::kNop, FuClass::kNone, 1, false},          // kNop
    {"halt", OpKind::kHalt, FuClass::kNone, 1, false},        // kHalt
    {"ext", OpKind::kExt, FuClass::kPfu, 1, false},           // kExt
}};

}  // namespace

const OpcodeInfo& opcode_info(Opcode op) {
  assert(op < Opcode::kNumOpcodes);
  return kInfo[static_cast<std::size_t>(op)];
}

Opcode parse_mnemonic(std::string_view text) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    if (kInfo[static_cast<std::size_t>(i)].mnemonic == text) {
      return static_cast<Opcode>(i);
    }
  }
  return Opcode::kNumOpcodes;
}

}  // namespace t1000
