#include "isa/reg.hpp"

#include <array>
#include <cassert>
#include <charconv>

namespace t1000 {
namespace {

constexpr std::array<std::string_view, kNumRegs> kNames = {
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
    "$t0",   "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
    "$s0",   "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
    "$t8",   "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
};

int parse_index(std::string_view digits) {
  int value = -1;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) return -1;
  return (value >= 0 && value < kNumRegs) ? value : -1;
}

}  // namespace

std::string_view reg_name(Reg r) {
  assert(r < kNumRegs);
  return kNames[r];
}

int parse_reg(std::string_view text) {
  if (text.empty()) return -1;
  if (text.front() == '$' || text.front() == 'r') {
    const std::string_view rest = text.substr(1);
    if (!rest.empty() && rest.front() >= '0' && rest.front() <= '9') {
      return parse_index(rest);
    }
    if (text.front() == '$') {
      for (int i = 0; i < kNumRegs; ++i) {
        if (kNames[static_cast<std::size_t>(i)] == text) return i;
      }
    }
    return -1;
  }
  return parse_index(text);
}

}  // namespace t1000
