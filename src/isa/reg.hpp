// Architectural register names for the T1000 ISA (32 general-purpose
// registers with the conventional MIPS ABI aliases; r0 is hardwired zero).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace t1000 {

inline constexpr int kNumRegs = 32;

using Reg = std::uint8_t;

inline constexpr Reg kRegZero = 0;
inline constexpr Reg kRegAt = 1;
inline constexpr Reg kRegV0 = 2;
inline constexpr Reg kRegA0 = 4;
inline constexpr Reg kRegT0 = 8;
inline constexpr Reg kRegS0 = 16;
inline constexpr Reg kRegGp = 28;
inline constexpr Reg kRegSp = 29;
inline constexpr Reg kRegFp = 30;
inline constexpr Reg kRegRa = 31;

// ABI alias for register `r` (e.g. 4 -> "$a0").
std::string_view reg_name(Reg r);

// Parses "$t0", "$4", "r4", or "4"; returns -1 when the text does not name a
// register.
int parse_reg(std::string_view text);

}  // namespace t1000
