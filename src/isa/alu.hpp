// Pure ALU semantics, shared by the functional simulator and the
// micro-program evaluator inside PFU configurations.
#pragma once

#include <cstdint>

#include "isa/opcode.hpp"

namespace t1000 {

// Evaluates an ALU-class opcode over already-selected operand values.
// For shift-immediate ops, `b` is the shift amount; for ALU-immediate ops,
// `b` must already be sign- or zero-extended per `imm_extension`; for LUI,
// `b` is the 16-bit immediate. Non-ALU opcodes are a programming error.
std::uint32_t eval_alu(Opcode op, std::uint32_t a, std::uint32_t b);

// How the 16-bit immediate of an ALU-immediate opcode extends to 32 bits.
enum class ImmExtension { kSign, kZero };
ImmExtension imm_extension(Opcode op);

// Extends `imm16` (stored as int32) per the opcode's rule.
std::uint32_t extend_imm(Opcode op, std::int32_t imm);

// Two's-complement significant width of `v` in bits (1..32): the narrowest
// signed representation, e.g. 0 -> 1, 3 -> 3, -3 -> 3, 0x1FFFF -> 18.
// This is the quantity the paper's profiler measures to decide whether an
// operation is narrow enough for PFU implementation.
int signed_width(std::uint32_t v);

}  // namespace t1000
