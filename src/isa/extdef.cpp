#include "isa/extdef.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

#include "isa/alu.hpp"

namespace t1000 {
namespace {

std::string make_signature(int num_inputs, const std::vector<MicroOp>& uops,
                           const std::vector<std::int8_t>& out_slots) {
  std::ostringstream os;
  os << "in" << num_inputs;
  for (const MicroOp& u : uops) {
    os << ';' << mnemonic(u.op) << ' ' << static_cast<int>(u.dst) << ','
       << static_cast<int>(u.a) << ',' << static_cast<int>(u.b) << ','
       << u.imm;
  }
  // Single-output definitions keep the pre-MIMO signature (and thus the
  // historical Conf-id interning) byte-for-byte.
  if (out_slots.size() > 1) {
    os << ";out";
    for (std::size_t i = 0; i < out_slots.size(); ++i) {
      os << (i == 0 ? ' ' : ',') << static_cast<int>(out_slots[i]);
    }
  }
  return os.str();
}

void validate(int num_inputs, const std::vector<MicroOp>& uops,
              const std::vector<std::int8_t>& out_slots) {
  if (num_inputs < 0 || num_inputs > kMaxExtInputs) {
    throw std::invalid_argument("ExtInstDef: 0.." +
                                std::to_string(kMaxExtInputs) +
                                " inputs required");
  }
  if (uops.empty() || static_cast<int>(uops.size()) > kMaxUops) {
    throw std::invalid_argument("ExtInstDef: 1.." + std::to_string(kMaxUops) +
                                " micro-ops required");
  }
  const int base = num_inputs > 2 ? num_inputs : 2;
  int next_slot = base;  // slots below `base` are reserved for inputs
  for (const MicroOp& u : uops) {
    const OpKind k = op_kind(u.op);
    const bool alu_kind = k == OpKind::kAlu3 || k == OpKind::kShiftImm ||
                          k == OpKind::kAluImm || k == OpKind::kLui;
    if (!alu_kind) {
      throw std::invalid_argument("ExtInstDef: non-ALU micro-op");
    }
    auto check_src = [&](std::int8_t s) {
      if (s < 0 || s >= next_slot) {
        throw std::invalid_argument("ExtInstDef: bad source slot");
      }
      if (s >= base || s < num_inputs) return;
      throw std::invalid_argument("ExtInstDef: reads undefined input slot");
    };
    if (k == OpKind::kAlu3) {
      check_src(u.a);
      check_src(u.b);
    } else if (k != OpKind::kLui) {
      check_src(u.a);
    }
    if (u.dst != next_slot) {
      throw std::invalid_argument("ExtInstDef: dst slots must be sequential");
    }
    ++next_slot;
  }
  if (out_slots.empty() ||
      static_cast<int>(out_slots.size()) > kMaxExtOutputs) {
    throw std::invalid_argument("ExtInstDef: 1.." +
                                std::to_string(kMaxExtOutputs) +
                                " outputs required");
  }
  if (out_slots.front() != next_slot - 1) {
    throw std::invalid_argument(
        "ExtInstDef: primary output must be the final micro-op's slot");
  }
  for (std::size_t i = 0; i < out_slots.size(); ++i) {
    if (out_slots[i] < base || out_slots[i] >= next_slot) {
      throw std::invalid_argument("ExtInstDef: output slot out of range");
    }
    for (std::size_t j = i + 1; j < out_slots.size(); ++j) {
      if (out_slots[i] == out_slots[j]) {
        throw std::invalid_argument("ExtInstDef: duplicate output slot");
      }
    }
  }
}

}  // namespace

ExtInstDef::ExtInstDef(int num_inputs, std::vector<MicroOp> uops)
    : ExtInstDef(num_inputs, std::move(uops), std::vector<std::int8_t>{}) {}

ExtInstDef::ExtInstDef(int num_inputs, std::vector<MicroOp> uops,
                       std::vector<std::int8_t> out_slots)
    : num_inputs_(num_inputs),
      uops_(std::move(uops)),
      out_slots_(std::move(out_slots)) {
  if (out_slots_.empty() && !uops_.empty()) {
    out_slots_.push_back(uops_.back().dst);
  }
  validate(num_inputs_, uops_, out_slots_);
  signature_ = make_signature(num_inputs_, uops_, out_slots_);
}

int ExtInstDef::base_cycles() const {
  int cycles = 0;
  for (const MicroOp& u : uops_) cycles += base_latency(u.op);
  return cycles;
}

std::uint32_t ExtInstDef::eval(std::uint32_t in0, std::uint32_t in1) const {
  assert(num_inputs_ <= 2);
  std::uint32_t slots[kMaxExtInputs + kMaxUops] = {in0, in1};
  std::uint32_t result = 0;
  for (const MicroOp& u : uops_) {
    const OpKind k = op_kind(u.op);
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    switch (k) {
      case OpKind::kAlu3:
        a = slots[u.a];
        b = slots[u.b];
        break;
      case OpKind::kShiftImm:
        a = slots[u.a];
        b = static_cast<std::uint32_t>(u.imm);
        break;
      case OpKind::kAluImm:
        a = slots[u.a];
        b = extend_imm(u.op, u.imm);
        break;
      case OpKind::kLui:
        b = static_cast<std::uint32_t>(u.imm) & 0xFFFF;
        break;
      default:
        assert(false);
    }
    result = eval_alu(u.op, a, b);
    slots[u.dst] = result;
  }
  return result;
}

void ExtInstDef::eval_multi(
    const std::array<std::uint32_t, kMaxExtInputs>& in,
    std::array<std::uint32_t, kMaxExtOutputs>& out) const {
  std::uint32_t slots[kMaxExtInputs + kMaxUops] = {};
  for (int i = 0; i < num_inputs_; ++i) slots[i] = in[i];
  for (const MicroOp& u : uops_) {
    const OpKind k = op_kind(u.op);
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    switch (k) {
      case OpKind::kAlu3:
        a = slots[u.a];
        b = slots[u.b];
        break;
      case OpKind::kShiftImm:
        a = slots[u.a];
        b = static_cast<std::uint32_t>(u.imm);
        break;
      case OpKind::kAluImm:
        a = slots[u.a];
        b = extend_imm(u.op, u.imm);
        break;
      case OpKind::kLui:
        b = static_cast<std::uint32_t>(u.imm) & 0xFFFF;
        break;
      default:
        assert(false);
    }
    slots[u.dst] = eval_alu(u.op, a, b);
  }
  for (std::size_t i = 0; i < out_slots_.size(); ++i) {
    out[i] = slots[out_slots_[i]];
  }
}

ConfId ExtInstTable::intern(ExtInstDef def) {
  const auto it = by_signature_.find(def.signature());
  if (it != by_signature_.end()) return it->second;
  const ConfId id = static_cast<ConfId>(defs_.size());
  if (id >= (1u << kConfBits)) {
    throw std::length_error("ExtInstTable: Conf id space exhausted");
  }
  by_signature_.emplace(def.signature(), id);
  defs_.push_back(std::move(def));
  return id;
}

}  // namespace t1000
