#include "isa/extdef.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

#include "isa/alu.hpp"

namespace t1000 {
namespace {

std::string make_signature(int num_inputs, const std::vector<MicroOp>& uops) {
  std::ostringstream os;
  os << "in" << num_inputs;
  for (const MicroOp& u : uops) {
    os << ';' << mnemonic(u.op) << ' ' << static_cast<int>(u.dst) << ','
       << static_cast<int>(u.a) << ',' << static_cast<int>(u.b) << ','
       << u.imm;
  }
  return os.str();
}

void validate(int num_inputs, const std::vector<MicroOp>& uops) {
  if (num_inputs < 0 || num_inputs > 2) {
    throw std::invalid_argument("ExtInstDef: 0..2 inputs required");
  }
  if (uops.empty() || static_cast<int>(uops.size()) > kMaxUops) {
    throw std::invalid_argument("ExtInstDef: 1.." + std::to_string(kMaxUops) +
                                " micro-ops required");
  }
  int next_slot = 2;  // slots 0,1 reserved for inputs
  for (const MicroOp& u : uops) {
    const OpKind k = op_kind(u.op);
    const bool alu_kind = k == OpKind::kAlu3 || k == OpKind::kShiftImm ||
                          k == OpKind::kAluImm || k == OpKind::kLui;
    if (!alu_kind) {
      throw std::invalid_argument("ExtInstDef: non-ALU micro-op");
    }
    auto check_src = [&](std::int8_t s) {
      if (s < 0 || s >= next_slot) {
        throw std::invalid_argument("ExtInstDef: bad source slot");
      }
      if (s >= 2 || s < num_inputs) return;
      throw std::invalid_argument("ExtInstDef: reads undefined input slot");
    };
    if (k == OpKind::kAlu3) {
      check_src(u.a);
      check_src(u.b);
    } else if (k != OpKind::kLui) {
      check_src(u.a);
    }
    if (u.dst != next_slot) {
      throw std::invalid_argument("ExtInstDef: dst slots must be sequential");
    }
    ++next_slot;
  }
}

}  // namespace

ExtInstDef::ExtInstDef(int num_inputs, std::vector<MicroOp> uops)
    : num_inputs_(num_inputs), uops_(std::move(uops)) {
  validate(num_inputs_, uops_);
  signature_ = make_signature(num_inputs_, uops_);
}

int ExtInstDef::base_cycles() const {
  int cycles = 0;
  for (const MicroOp& u : uops_) cycles += base_latency(u.op);
  return cycles;
}

std::uint32_t ExtInstDef::eval(std::uint32_t in0, std::uint32_t in1) const {
  std::uint32_t slots[2 + kMaxUops] = {in0, in1};
  std::uint32_t result = 0;
  for (const MicroOp& u : uops_) {
    const OpKind k = op_kind(u.op);
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    switch (k) {
      case OpKind::kAlu3:
        a = slots[u.a];
        b = slots[u.b];
        break;
      case OpKind::kShiftImm:
        a = slots[u.a];
        b = static_cast<std::uint32_t>(u.imm);
        break;
      case OpKind::kAluImm:
        a = slots[u.a];
        b = extend_imm(u.op, u.imm);
        break;
      case OpKind::kLui:
        b = static_cast<std::uint32_t>(u.imm) & 0xFFFF;
        break;
      default:
        assert(false);
    }
    result = eval_alu(u.op, a, b);
    slots[u.dst] = result;
  }
  return result;
}

ConfId ExtInstTable::intern(ExtInstDef def) {
  const auto it = by_signature_.find(def.signature());
  if (it != by_signature_.end()) return it->second;
  const ConfId id = static_cast<ConfId>(defs_.size());
  if (id >= (1u << kConfBits)) {
    throw std::length_error("ExtInstTable: Conf id space exhausted");
  }
  by_signature_.emplace(def.signature(), id);
  defs_.push_back(std::move(def));
  return id;
}

}  // namespace t1000
