#include "isa/encoding.hpp"

#include <string>

namespace t1000 {
namespace {

// Primary opcode assignments.
enum : std::uint32_t {
  kOpSpecial = 0x00,
  kOpRegimm = 0x01,
  kOpJ = 0x02,
  kOpJal = 0x03,
  kOpBeq = 0x04,
  kOpBne = 0x05,
  kOpBlez = 0x06,
  kOpBgtz = 0x07,
  kOpAddiu = 0x09,
  kOpSlti = 0x0A,
  kOpSltiu = 0x0B,
  kOpAndi = 0x0C,
  kOpOri = 0x0D,
  kOpXori = 0x0E,
  kOpLui = 0x0F,
  kOpLb = 0x20,
  kOpLh = 0x21,
  kOpLw = 0x23,
  kOpLbu = 0x24,
  kOpLhu = 0x25,
  kOpSb = 0x28,
  kOpSh = 0x29,
  kOpSw = 0x2B,
  kOpExt = 0x3E,
};

// SPECIAL funct assignments.
enum : std::uint32_t {
  kFnSll = 0x00,
  kFnSrl = 0x02,
  kFnSra = 0x03,
  kFnSllv = 0x04,
  kFnSrlv = 0x06,
  kFnSrav = 0x07,
  kFnJr = 0x08,
  kFnJalr = 0x09,
  kFnMul = 0x18,
  kFnAddu = 0x21,
  kFnSubu = 0x23,
  kFnAnd = 0x24,
  kFnOr = 0x25,
  kFnXor = 0x26,
  kFnNor = 0x27,
  kFnSlt = 0x2A,
  kFnSltu = 0x2B,
  kFnHalt = 0x3F,
};

std::uint32_t fields(std::uint32_t op, std::uint32_t rs, std::uint32_t rt,
                     std::uint32_t rd, std::uint32_t shamt,
                     std::uint32_t funct) {
  return (op << 26) | (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) |
         funct;
}

[[noreturn]] void fail(const std::string& what) { throw EncodingError(what); }

std::uint32_t check_u16(std::int64_t v, const char* what) {
  if (v < 0 || v > 0xFFFF) fail(std::string(what) + " out of 16-bit range");
  return static_cast<std::uint32_t>(v);
}

std::uint32_t check_s16(std::int64_t v, const char* what) {
  if (v < -0x8000 || v > 0x7FFF) {
    fail(std::string(what) + " out of signed 16-bit range");
  }
  return static_cast<std::uint32_t>(v) & 0xFFFF;
}

std::int32_t sext16(std::uint32_t v) {
  return static_cast<std::int32_t>(static_cast<std::int16_t>(v & 0xFFFF));
}

std::uint32_t branch_off(const Instruction& ins, std::uint32_t index) {
  const std::int64_t off =
      static_cast<std::int64_t>(ins.imm) - (static_cast<std::int64_t>(index) + 1);
  return check_s16(off, "branch displacement");
}

std::uint32_t r_funct(Opcode op) {
  switch (op) {
    case Opcode::kAddu: return kFnAddu;
    case Opcode::kSubu: return kFnSubu;
    case Opcode::kAnd: return kFnAnd;
    case Opcode::kOr: return kFnOr;
    case Opcode::kXor: return kFnXor;
    case Opcode::kNor: return kFnNor;
    case Opcode::kSlt: return kFnSlt;
    case Opcode::kSltu: return kFnSltu;
    case Opcode::kSllv: return kFnSllv;
    case Opcode::kSrlv: return kFnSrlv;
    case Opcode::kSrav: return kFnSrav;
    case Opcode::kMul: return kFnMul;
    default: fail("not an R-type opcode");
  }
}

std::uint32_t mem_op(Opcode op) {
  switch (op) {
    case Opcode::kLw: return kOpLw;
    case Opcode::kLh: return kOpLh;
    case Opcode::kLhu: return kOpLhu;
    case Opcode::kLb: return kOpLb;
    case Opcode::kLbu: return kOpLbu;
    case Opcode::kSw: return kOpSw;
    case Opcode::kSh: return kOpSh;
    case Opcode::kSb: return kOpSb;
    default: fail("not a memory opcode");
  }
}

std::uint32_t imm_op(Opcode op) {
  switch (op) {
    case Opcode::kAddiu: return kOpAddiu;
    case Opcode::kSlti: return kOpSlti;
    case Opcode::kSltiu: return kOpSltiu;
    case Opcode::kAndi: return kOpAndi;
    case Opcode::kOri: return kOpOri;
    case Opcode::kXori: return kOpXori;
    default: fail("not an ALU-immediate opcode");
  }
}

bool imm_is_zero_extended(Opcode op) {
  return op == Opcode::kAndi || op == Opcode::kOri || op == Opcode::kXori;
}

}  // namespace

std::uint32_t encode(const Instruction& ins, std::uint32_t index) {
  switch (op_kind(ins.op)) {
    case OpKind::kAlu3:
      return fields(kOpSpecial, ins.rs, ins.rt, ins.rd, 0, r_funct(ins.op));
    case OpKind::kShiftImm: {
      if (ins.imm < 0 || ins.imm > 31) fail("shift amount out of range");
      std::uint32_t funct = kFnSll;
      if (ins.op == Opcode::kSrl) funct = kFnSrl;
      if (ins.op == Opcode::kSra) funct = kFnSra;
      // The single source lives in the rt field, as in MIPS.
      return fields(kOpSpecial, 0, ins.rs, ins.rd,
                    static_cast<std::uint32_t>(ins.imm), funct);
    }
    case OpKind::kAluImm: {
      const std::uint32_t imm = imm_is_zero_extended(ins.op)
                                    ? check_u16(ins.imm, "immediate")
                                    : check_s16(ins.imm, "immediate");
      return fields(imm_op(ins.op), ins.rs, ins.rd, 0, 0, 0) | imm;
    }
    case OpKind::kLui:
      return fields(kOpLui, 0, ins.rd, 0, 0, 0) |
             check_u16(ins.imm & 0xFFFF, "immediate");
    case OpKind::kLoad:
      return fields(mem_op(ins.op), ins.rs, ins.rd, 0, 0, 0) |
             check_s16(ins.imm, "displacement");
    case OpKind::kStore:
      return fields(mem_op(ins.op), ins.rs, ins.rt, 0, 0, 0) |
             check_s16(ins.imm, "displacement");
    case OpKind::kBranch2: {
      const std::uint32_t op = ins.op == Opcode::kBeq ? kOpBeq : kOpBne;
      return fields(op, ins.rs, ins.rt, 0, 0, 0) | branch_off(ins, index);
    }
    case OpKind::kBranch1: {
      std::uint32_t op = 0;
      std::uint32_t rt = 0;
      switch (ins.op) {
        case Opcode::kBlez: op = kOpBlez; break;
        case Opcode::kBgtz: op = kOpBgtz; break;
        case Opcode::kBltz: op = kOpRegimm; rt = 0; break;
        case Opcode::kBgez: op = kOpRegimm; rt = 1; break;
        default: fail("unexpected branch opcode");
      }
      return fields(op, ins.rs, rt, 0, 0, 0) | branch_off(ins, index);
    }
    case OpKind::kJump: {
      if (ins.imm < 0 || ins.imm >= (1 << 26)) fail("jump target out of range");
      const std::uint32_t op = ins.op == Opcode::kJ ? kOpJ : kOpJal;
      return (op << 26) | static_cast<std::uint32_t>(ins.imm);
    }
    case OpKind::kJumpReg:
      if (ins.op == Opcode::kJr) {
        return fields(kOpSpecial, ins.rs, 0, 0, 0, kFnJr);
      }
      return fields(kOpSpecial, ins.rs, 0, ins.rd, 0, kFnJalr);
    case OpKind::kNop:
      return 0;
    case OpKind::kHalt:
      return fields(kOpSpecial, 0, 0, 0, 0, kFnHalt);
    case OpKind::kExt: {
      if (ins.conf >= (1u << kConfBits)) fail("Conf id out of range");
      return fields(kOpExt, ins.rs, ins.rt, ins.rd, 0, 0) | ins.conf;
    }
  }
  fail("unencodable instruction");
}

Instruction decode(std::uint32_t word, std::uint32_t index) {
  if (word == 0) return make_nop();
  const std::uint32_t op = word >> 26;
  const Reg rs = static_cast<Reg>((word >> 21) & 31);
  const Reg rt = static_cast<Reg>((word >> 16) & 31);
  const Reg rd = static_cast<Reg>((word >> 11) & 31);
  const std::uint32_t shamt = (word >> 6) & 31;
  const std::uint32_t funct = word & 0x3F;
  const std::uint32_t imm16 = word & 0xFFFF;
  const std::int32_t simm = sext16(imm16);
  const std::int32_t btarget =
      static_cast<std::int32_t>(index) + 1 + sext16(imm16);

  switch (op) {
    case kOpSpecial:
      switch (funct) {
        case kFnSll: return make_shift(Opcode::kSll, rd, rt, static_cast<int>(shamt));
        case kFnSrl: return make_shift(Opcode::kSrl, rd, rt, static_cast<int>(shamt));
        case kFnSra: return make_shift(Opcode::kSra, rd, rt, static_cast<int>(shamt));
        case kFnSllv: return make_r(Opcode::kSllv, rd, rs, rt);
        case kFnSrlv: return make_r(Opcode::kSrlv, rd, rs, rt);
        case kFnSrav: return make_r(Opcode::kSrav, rd, rs, rt);
        case kFnJr: return make_jr(rs);
        case kFnJalr: return make_jalr(rd, rs);
        case kFnMul: return make_r(Opcode::kMul, rd, rs, rt);
        case kFnAddu: return make_r(Opcode::kAddu, rd, rs, rt);
        case kFnSubu: return make_r(Opcode::kSubu, rd, rs, rt);
        case kFnAnd: return make_r(Opcode::kAnd, rd, rs, rt);
        case kFnOr: return make_r(Opcode::kOr, rd, rs, rt);
        case kFnXor: return make_r(Opcode::kXor, rd, rs, rt);
        case kFnNor: return make_r(Opcode::kNor, rd, rs, rt);
        case kFnSlt: return make_r(Opcode::kSlt, rd, rs, rt);
        case kFnSltu: return make_r(Opcode::kSltu, rd, rs, rt);
        case kFnHalt: return make_halt();
        default: fail("unknown SPECIAL funct");
      }
    case kOpRegimm:
      if (rt == 0) return make_branch1(Opcode::kBltz, rs, btarget);
      if (rt == 1) return make_branch1(Opcode::kBgez, rs, btarget);
      fail("unknown REGIMM selector");
    case kOpJ: return make_jump(Opcode::kJ, static_cast<std::int32_t>(word & 0x3FFFFFF));
    case kOpJal: return make_jump(Opcode::kJal, static_cast<std::int32_t>(word & 0x3FFFFFF));
    case kOpBeq: return make_branch2(Opcode::kBeq, rs, rt, btarget);
    case kOpBne: return make_branch2(Opcode::kBne, rs, rt, btarget);
    case kOpBlez: return make_branch1(Opcode::kBlez, rs, btarget);
    case kOpBgtz: return make_branch1(Opcode::kBgtz, rs, btarget);
    case kOpAddiu: return make_imm(Opcode::kAddiu, rt, rs, simm);
    case kOpSlti: return make_imm(Opcode::kSlti, rt, rs, simm);
    case kOpSltiu: return make_imm(Opcode::kSltiu, rt, rs, simm);
    case kOpAndi: return make_imm(Opcode::kAndi, rt, rs, static_cast<std::int32_t>(imm16));
    case kOpOri: return make_imm(Opcode::kOri, rt, rs, static_cast<std::int32_t>(imm16));
    case kOpXori: return make_imm(Opcode::kXori, rt, rs, static_cast<std::int32_t>(imm16));
    case kOpLui: return make_lui(rt, static_cast<std::int32_t>(imm16));
    case kOpLw: return make_mem(Opcode::kLw, rt, rs, simm);
    case kOpLh: return make_mem(Opcode::kLh, rt, rs, simm);
    case kOpLhu: return make_mem(Opcode::kLhu, rt, rs, simm);
    case kOpLb: return make_mem(Opcode::kLb, rt, rs, simm);
    case kOpLbu: return make_mem(Opcode::kLbu, rt, rs, simm);
    case kOpSw: return make_mem(Opcode::kSw, rt, rs, simm);
    case kOpSh: return make_mem(Opcode::kSh, rt, rs, simm);
    case kOpSb: return make_mem(Opcode::kSb, rt, rs, simm);
    case kOpExt:
      return make_ext(rd, rs, rt, static_cast<ConfId>(word & ((1u << kConfBits) - 1)));
    default:
      fail("unknown primary opcode");
  }
}

}  // namespace t1000
