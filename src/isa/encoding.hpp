// Binary encoding of the T1000 ISA.
//
// Instructions encode to 32-bit words in a MIPS-style layout:
//   R-type:  op[31:26]=0  rs[25:21] rt[20:16] rd[15:11] shamt[10:6] funct[5:0]
//   I-type:  op[31:26]    rs[25:21] rt[20:16] imm16[15:0]
//   J-type:  op[31:26]    target26[25:0]              (absolute instr index)
//   EXT:     op[31:26]=0x3E rs rt rd conf[10:0]       (Section 2.2's format:
//            a register-register operation with an added Conf field)
//
// Branch displacements are signed 16-bit instruction offsets relative to the
// next instruction, so encode/decode take the instruction's index.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "isa/instruction.hpp"

namespace t1000 {

class EncodingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Encodes `ins` located at instruction index `index`. Throws EncodingError
// when an immediate, displacement, or Conf id does not fit its field.
std::uint32_t encode(const Instruction& ins, std::uint32_t index);

// Decodes `word` located at instruction index `index`. Throws EncodingError
// for unassigned opcodes.
Instruction decode(std::uint32_t word, std::uint32_t index);

}  // namespace t1000
