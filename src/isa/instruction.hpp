// The decoded instruction representation shared by the assembler, the
// functional simulator, the selection algorithms, and the timing model.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/opcode.hpp"
#include "isa/reg.hpp"

namespace t1000 {

// Configuration id carried by EXT instructions (the paper's `Conf` field).
using ConfId = std::uint16_t;
inline constexpr ConfId kInvalidConf = 0xFFFF;
// Width of the Conf field in the binary encoding (Section 2.2 adds the
// field to a register-register format; 11 bits fit in the shamt+funct
// space of an R-type word).
inline constexpr int kConfBits = 11;

// MIMO shape ceiling for extended instructions (ByoRISC-style widening of
// the paper's 2-in/1-out candidate restriction). The first two inputs ride
// in rs/rt and the first output in rd, exactly as in the paper; extra
// operand bindings are packed into the EXT word's otherwise-unused `imm`
// field (see pack_ext_extras), so imm == 0 keeps the original encoding.
inline constexpr int kMaxExtInputs = 4;
inline constexpr int kMaxExtOutputs = 2;

struct Instruction {
  Opcode op = Opcode::kNop;
  Reg rd = 0;  // destination (also link register for jalr)
  Reg rs = 0;  // first source / base address register
  Reg rt = 0;  // second source / store data register
  // Immediate: ALU immediate (sign/zero extension applied by the executor),
  // shift amount, memory displacement, an absolute instruction index for
  // branch/jump targets, or packed extra EXT operands (pack_ext_extras).
  std::int32_t imm = 0;
  ConfId conf = kInvalidConf;  // EXT only

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

// Source registers read by `ins` (excluding the hardwired $zero is the
// caller's business). At most two for every opcode except EXT, which may
// carry up to kMaxExtInputs.
struct SrcRegs {
  std::array<Reg, kMaxExtInputs> reg{};
  int count = 0;
};
SrcRegs src_regs(const Instruction& ins);

// Destination register written by `ins`, if any. Writes to $zero are
// reported as no destination (they are architectural no-ops).
std::optional<Reg> dst_reg(const Instruction& ins);

// All destination registers written by `ins` ($zero writes elided). Only
// EXT can have more than one.
struct DstRegs {
  std::array<Reg, kMaxExtOutputs> reg{};
  int count = 0;
};
DstRegs dst_regs(const Instruction& ins);

// --- Extra EXT operand encoding -------------------------------------------
//
// imm bit layout for EXT (each field is 6 bits: bit 5 = "bound", bits 4:0 =
// register number, so $zero is representable as an extra binding):
//   [5:0]   third register input
//   [11:6]  fourth register input
//   [17:12] second register output
// imm == 0 means "no extra operands" — the classic 2-in/1-out shape.
std::int32_t pack_ext_extras(const std::vector<Reg>& extra_in,
                             const std::vector<Reg>& extra_out);

// Extra input registers bound beyond rs/rt; returns the count (0..2) and
// fills `out[0..count)`. `ins` must be an EXT.
int ext_extra_inputs(const Instruction& ins,
                     std::array<Reg, kMaxExtInputs - 2>& out);
// Extra output registers bound beyond rd; returns the count (0..1).
int ext_extra_outputs(const Instruction& ins,
                      std::array<Reg, kMaxExtOutputs - 1>& out);

// True when `ins` reads `r` / writes `r`.
bool reads_reg(const Instruction& ins, Reg r);
bool writes_reg(const Instruction& ins, Reg r);

// Renders `ins` as assembly text; branch/jump targets are printed as
// absolute instruction indices ("@12") unless the caller substitutes
// symbols.
std::string to_string(const Instruction& ins);

// --- Factories (keep call sites terse in tests and workload builders) ---
Instruction make_r(Opcode op, Reg rd, Reg rs, Reg rt);
Instruction make_shift(Opcode op, Reg rd, Reg rs, int shamt);
Instruction make_imm(Opcode op, Reg rd, Reg rs, std::int32_t imm);
Instruction make_lui(Reg rd, std::int32_t imm);
Instruction make_mem(Opcode op, Reg data, Reg base, std::int32_t disp);
Instruction make_branch2(Opcode op, Reg rs, Reg rt, std::int32_t target);
Instruction make_branch1(Opcode op, Reg rs, std::int32_t target);
Instruction make_jump(Opcode op, std::int32_t target);
Instruction make_jr(Reg rs);
Instruction make_jalr(Reg rd, Reg rs);
Instruction make_ext(Reg rd, Reg rs, Reg rt, ConfId conf);
// MIMO form: extra inputs beyond rs/rt and extra outputs beyond rd are
// packed into `imm` (pack_ext_extras). Empty vectors reproduce the classic
// shape bit-for-bit.
Instruction make_ext(Reg rd, Reg rs, Reg rt, ConfId conf,
                     const std::vector<Reg>& extra_in,
                     const std::vector<Reg>& extra_out);
Instruction make_nop();
Instruction make_halt();

}  // namespace t1000
