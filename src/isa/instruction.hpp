// The decoded instruction representation shared by the assembler, the
// functional simulator, the selection algorithms, and the timing model.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "isa/opcode.hpp"
#include "isa/reg.hpp"

namespace t1000 {

// Configuration id carried by EXT instructions (the paper's `Conf` field).
using ConfId = std::uint16_t;
inline constexpr ConfId kInvalidConf = 0xFFFF;
// Width of the Conf field in the binary encoding (Section 2.2 adds the
// field to a register-register format; 11 bits fit in the shamt+funct
// space of an R-type word).
inline constexpr int kConfBits = 11;

struct Instruction {
  Opcode op = Opcode::kNop;
  Reg rd = 0;  // destination (also link register for jalr)
  Reg rs = 0;  // first source / base address register
  Reg rt = 0;  // second source / store data register
  // Immediate: ALU immediate (sign/zero extension applied by the executor),
  // shift amount, memory displacement, or an absolute instruction index for
  // branch/jump targets.
  std::int32_t imm = 0;
  ConfId conf = kInvalidConf;  // EXT only

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

// Source registers read by `ins` (excluding the hardwired $zero is the
// caller's business). At most two.
struct SrcRegs {
  std::array<Reg, 2> reg{};
  int count = 0;
};
SrcRegs src_regs(const Instruction& ins);

// Destination register written by `ins`, if any. Writes to $zero are
// reported as no destination (they are architectural no-ops).
std::optional<Reg> dst_reg(const Instruction& ins);

// True when `ins` reads `r` / writes `r`.
bool reads_reg(const Instruction& ins, Reg r);
bool writes_reg(const Instruction& ins, Reg r);

// Renders `ins` as assembly text; branch/jump targets are printed as
// absolute instruction indices ("@12") unless the caller substitutes
// symbols.
std::string to_string(const Instruction& ins);

// --- Factories (keep call sites terse in tests and workload builders) ---
Instruction make_r(Opcode op, Reg rd, Reg rs, Reg rt);
Instruction make_shift(Opcode op, Reg rd, Reg rs, int shamt);
Instruction make_imm(Opcode op, Reg rd, Reg rs, std::int32_t imm);
Instruction make_lui(Reg rd, std::int32_t imm);
Instruction make_mem(Opcode op, Reg data, Reg base, std::int32_t disp);
Instruction make_branch2(Opcode op, Reg rs, Reg rt, std::int32_t target);
Instruction make_branch1(Opcode op, Reg rs, std::int32_t target);
Instruction make_jump(Opcode op, std::int32_t target);
Instruction make_jr(Reg rs);
Instruction make_jalr(Reg rd, Reg rs);
Instruction make_ext(Reg rd, Reg rs, Reg rt, ConfId conf);
Instruction make_nop();
Instruction make_halt();

}  // namespace t1000
