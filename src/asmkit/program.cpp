#include "asmkit/program.hpp"

#include "isa/encoding.hpp"

namespace t1000 {

std::vector<std::uint32_t> Program::encode_text() const {
  std::vector<std::uint32_t> words;
  words.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    words.push_back(encode(text[i], static_cast<std::uint32_t>(i)));
  }
  return words;
}

Program decode_text(const std::vector<std::uint32_t>& words) {
  Program p;
  p.text.reserve(words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    p.text.push_back(decode(words[i], static_cast<std::uint32_t>(i)));
  }
  return p;
}

}  // namespace t1000
