// Binary object-file format for assembled programs.
//
// Layout (little-endian):
//   u32 magic "T1K1"    u32 version
//   u32 text words      u32 data bytes
//   u32 text symbols    u32 data symbols    u32 ext-inst defs
//   text words (binary-encoded instructions, see isa/encoding.hpp)
//   data bytes
//   symbols: u32 name length, name bytes, i32/u32 value
//   ext defs: u8 num_inputs, u8 uop count, uops (u8 op, i8 dst/a/b, i32 imm)
//
// The extended-instruction table rides along so a rewritten program and the
// PFU configurations it depends on form one artifact, like an ELF section
// would carry them.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "asmkit/program.hpp"
#include "isa/extdef.hpp"

namespace t1000 {

class ObjError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct LoadedObject {
  Program program;
  ExtInstTable ext_table;  // empty when the object carries none
};

void save_object(std::ostream& os, const Program& program,
                 const ExtInstTable* ext_table = nullptr);
LoadedObject load_object(std::istream& is);

// File-path conveniences; throw ObjError on I/O failure.
void save_object_file(const std::string& path, const Program& program,
                      const ExtInstTable* ext_table = nullptr);
LoadedObject load_object_file(const std::string& path);

}  // namespace t1000
