// Two-pass assembler for the T1000 ISA.
//
// Accepted syntax (MIPS-flavoured):
//
//   # comment  ; comment  // comment
//           .data
//   buf:    .space 64
//   tbl:    .word 1, 0x2C, other_label
//           .half 1, 2
//           .byte 3
//           .align 2
//   msg:    .asciiz "hi"
//           .text
//   main:   li   $t0, 100000        # pseudo: expands as needed
//           la   $a0, buf           # pseudo: lui+ori
//   loop:   lw   $t1, 0($a0)
//           addiu $a0, $a0, 4
//           bne  $a0, $t2, loop
//           ext  $t0, $t1, $t2, 5   # extended instruction, Conf=5
//           halt
//
// Pseudo-instructions: li, la, move, b, not, neg, blt, bge, bgt, ble,
// bltu, bgeu (the comparison pseudos clobber $at, as in MIPS).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "asmkit/program.hpp"

namespace t1000 {

class AsmError : public std::runtime_error {
 public:
  AsmError(int line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

// Assembles `source`; throws AsmError on the first syntax or range error.
Program assemble(std::string_view source);

// Renders a program back to assembly text. Branch/jump targets become
// synthesized labels (`L<index>`); the output re-assembles to an equivalent
// program.
std::string disassemble(const Program& program);

}  // namespace t1000
