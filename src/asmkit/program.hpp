// An assembled program: text (decoded instructions), a data-segment image,
// and symbol tables. Branch/jump targets inside `text` are absolute
// instruction indices, which keeps every later pass (CFG construction,
// rewriting, simulation) free of address arithmetic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hpp"

namespace t1000 {

inline constexpr std::uint32_t kTextBase = 0x0040'0000;
inline constexpr std::uint32_t kDataBase = 0x1000'0000;
inline constexpr std::uint32_t kStackTop = 0x7FFF'F000;

class Program {
 public:
  std::vector<Instruction> text;
  std::vector<std::uint8_t> data;
  // Label -> instruction index.
  std::map<std::string, std::int32_t> text_symbols;
  // Label -> absolute data address (kDataBase + offset).
  std::map<std::string, std::uint32_t> data_symbols;

  int size() const { return static_cast<int>(text.size()); }

  // Byte address of instruction `index` (used by the I-cache model).
  std::uint32_t pc_of(std::int32_t index) const {
    return kTextBase + static_cast<std::uint32_t>(index) * 4;
  }

  // Encodes the text segment to binary words (see isa/encoding.hpp).
  std::vector<std::uint32_t> encode_text() const;
};

// Rebuilds a Program's text from binary words (symbols are not recoverable).
Program decode_text(const std::vector<std::uint32_t>& words);

}  // namespace t1000
