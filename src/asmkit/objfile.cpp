#include "asmkit/objfile.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "isa/encoding.hpp"

namespace t1000 {
namespace {

constexpr std::uint32_t kMagic = 0x314B3154;  // "T1K1"
constexpr std::uint32_t kVersion = 1;

void put_u32(std::ostream& os, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  os.write(buf, 4);
}

void put_i32(std::ostream& os, std::int32_t v) {
  put_u32(os, static_cast<std::uint32_t>(v));
}

void put_u8(std::ostream& os, std::uint8_t v) {
  os.put(static_cast<char>(v));
}

void put_string(std::ostream& os, const std::string& s) {
  put_u32(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::uint32_t get_u32(std::istream& is) {
  char buf[4];
  is.read(buf, 4);
  if (!is) throw ObjError("truncated object file");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf[i])) << (8 * i);
  }
  return v;
}

std::int32_t get_i32(std::istream& is) {
  return static_cast<std::int32_t>(get_u32(is));
}

std::uint8_t get_u8(std::istream& is) {
  const int c = is.get();
  if (c < 0) throw ObjError("truncated object file");
  return static_cast<std::uint8_t>(c);
}

std::string get_string(std::istream& is) {
  const std::uint32_t n = get_u32(is);
  if (n > (1u << 20)) throw ObjError("implausible string length");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) throw ObjError("truncated object file");
  return s;
}

}  // namespace

void save_object(std::ostream& os, const Program& program,
                 const ExtInstTable* ext_table) {
  put_u32(os, kMagic);
  put_u32(os, kVersion);
  const std::vector<std::uint32_t> words = program.encode_text();
  put_u32(os, static_cast<std::uint32_t>(words.size()));
  put_u32(os, static_cast<std::uint32_t>(program.data.size()));
  put_u32(os, static_cast<std::uint32_t>(program.text_symbols.size()));
  put_u32(os, static_cast<std::uint32_t>(program.data_symbols.size()));
  put_u32(os, ext_table == nullptr
                  ? 0
                  : static_cast<std::uint32_t>(ext_table->size()));
  for (const std::uint32_t w : words) put_u32(os, w);
  os.write(reinterpret_cast<const char*>(program.data.data()),
           static_cast<std::streamsize>(program.data.size()));
  for (const auto& [name, index] : program.text_symbols) {
    put_string(os, name);
    put_i32(os, index);
  }
  for (const auto& [name, addr] : program.data_symbols) {
    put_string(os, name);
    put_u32(os, addr);
  }
  if (ext_table != nullptr) {
    for (const ExtInstDef& def : ext_table->defs()) {
      put_u8(os, static_cast<std::uint8_t>(def.num_inputs()));
      put_u8(os, static_cast<std::uint8_t>(def.length()));
      for (const MicroOp& u : def.uops()) {
        put_u8(os, static_cast<std::uint8_t>(u.op));
        put_u8(os, static_cast<std::uint8_t>(u.dst));
        put_u8(os, static_cast<std::uint8_t>(u.a));
        put_u8(os, static_cast<std::uint8_t>(u.b));
        put_i32(os, u.imm);
      }
    }
  }
  if (!os) throw ObjError("object write failed");
}

LoadedObject load_object(std::istream& is) {
  if (get_u32(is) != kMagic) throw ObjError("bad magic: not a T1K1 object");
  if (get_u32(is) != kVersion) throw ObjError("unsupported object version");
  const std::uint32_t n_text = get_u32(is);
  const std::uint32_t n_data = get_u32(is);
  const std::uint32_t n_tsym = get_u32(is);
  const std::uint32_t n_dsym = get_u32(is);
  const std::uint32_t n_defs = get_u32(is);

  LoadedObject obj;
  std::vector<std::uint32_t> words;
  words.reserve(n_text);
  for (std::uint32_t i = 0; i < n_text; ++i) words.push_back(get_u32(is));
  obj.program = decode_text(words);
  obj.program.data.resize(n_data);
  is.read(reinterpret_cast<char*>(obj.program.data.data()),
          static_cast<std::streamsize>(n_data));
  if (!is) throw ObjError("truncated object file");
  for (std::uint32_t i = 0; i < n_tsym; ++i) {
    const std::string name = get_string(is);
    obj.program.text_symbols[name] = get_i32(is);
  }
  for (std::uint32_t i = 0; i < n_dsym; ++i) {
    const std::string name = get_string(is);
    obj.program.data_symbols[name] = get_u32(is);
  }
  for (std::uint32_t i = 0; i < n_defs; ++i) {
    const int num_inputs = get_u8(is);
    const int count = get_u8(is);
    std::vector<MicroOp> uops;
    uops.reserve(static_cast<std::size_t>(count));
    for (int u = 0; u < count; ++u) {
      MicroOp op;
      op.op = static_cast<Opcode>(get_u8(is));
      if (op.op >= Opcode::kNumOpcodes) throw ObjError("bad micro-opcode");
      op.dst = static_cast<std::int8_t>(get_u8(is));
      op.a = static_cast<std::int8_t>(get_u8(is));
      op.b = static_cast<std::int8_t>(get_u8(is));
      op.imm = get_i32(is);
      uops.push_back(op);
    }
    try {
      const ConfId id = obj.ext_table.intern(ExtInstDef(num_inputs, uops));
      if (id != i) throw ObjError("duplicate ext-inst definition in object");
    } catch (const std::invalid_argument& e) {
      throw ObjError(std::string("malformed ext-inst definition: ") + e.what());
    }
  }
  return obj;
}

void save_object_file(const std::string& path, const Program& program,
                      const ExtInstTable* ext_table) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw ObjError("cannot open " + path + " for writing");
  save_object(os, program, ext_table);
}

LoadedObject load_object_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw ObjError("cannot open " + path);
  return load_object(is);
}

}  // namespace t1000
