#include "asmkit/assembler.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "isa/opcode.hpp"
#include "isa/reg.hpp"

namespace t1000 {
namespace {

struct Stmt {
  int line = 0;
  std::vector<std::string> labels;
  std::string head;                   // mnemonic or directive (".word" etc.)
  std::vector<std::string> operands;  // comma-separated operand texts
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '$';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// Strips comments, respecting double-quoted strings (.asciiz operands).
std::string_view strip_comment(std::string_view s) {
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '"') in_string = !in_string;
    if (in_string) continue;
    if (c == '#' || c == ';') return s.substr(0, i);
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') return s.substr(0, i);
  }
  return s;
}

// Splits operand text on top-level commas (commas inside quotes are kept).
std::vector<std::string> split_operands(std::string_view s, int line) {
  std::vector<std::string> out;
  std::string cur;
  bool in_string = false;
  for (const char c : s) {
    if (c == '"') in_string = !in_string;
    if (c == ',' && !in_string) {
      out.emplace_back(trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (in_string) throw AsmError(line, "unterminated string literal");
  const std::string_view last = trim(cur);
  if (!last.empty()) out.emplace_back(last);
  for (const std::string& op : out) {
    if (op.empty()) throw AsmError(line, "empty operand");
  }
  return out;
}

std::vector<Stmt> parse_lines(std::string_view source) {
  std::vector<Stmt> stmts;
  int line_no = 0;
  std::size_t pos = 0;
  std::vector<std::string> pending_labels;
  while (pos <= source.size()) {
    const std::size_t eol = source.find('\n', pos);
    std::string_view line = source.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    ++line_no;
    pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;

    line = trim(strip_comment(line));
    // Peel leading "label:" prefixes.
    while (!line.empty()) {
      std::size_t i = 0;
      while (i < line.size() && is_ident_char(line[i])) ++i;
      if (i == 0 || i >= line.size() || line[i] != ':') break;
      pending_labels.emplace_back(line.substr(0, i));
      line = trim(line.substr(i + 1));
    }
    if (line.empty()) continue;

    Stmt st;
    st.line = line_no;
    st.labels = std::move(pending_labels);
    pending_labels.clear();
    std::size_t sp = 0;
    while (sp < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[sp]))) {
      ++sp;
    }
    st.head = std::string(line.substr(0, sp));
    st.operands = split_operands(trim(line.substr(sp)), line_no);
    stmts.push_back(std::move(st));
  }
  if (!pending_labels.empty()) {
    // Trailing labels attach to a synthetic end-of-text marker.
    Stmt st;
    st.line = line_no;
    st.labels = std::move(pending_labels);
    st.head = ".label-only";
    stmts.push_back(std::move(st));
  }
  return stmts;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  bool neg = false;
  if (!s.empty() && (s.front() == '-' || s.front() == '+')) {
    neg = s.front() == '-';
    s.remove_prefix(1);
  }
  if (s.empty()) return std::nullopt;
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value, base);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  std::int64_t v = static_cast<std::int64_t>(value);
  return neg ? -v : v;
}

// True when `s` syntactically can be a label reference.
bool is_label_ref(std::string_view s) {
  return !s.empty() && (std::isalpha(static_cast<unsigned char>(s.front())) ||
                        s.front() == '_');
}

bool is_directive(const std::string& head) {
  return !head.empty() && head.front() == '.';
}

// How many instructions `li rd, v` expands to for the 32-bit pattern `v`.
// Shared by the sizing pass and emit_li: if the two ever disagree, every
// label downstream of the li shifts and branches silently retarget
// (t1000-verify's wf.use-before-def rule caught exactly that for
// `li $s0, 0xFFFFFFFF`, sized as lui+ori but emitted as one addiu).
int li_length(std::int32_t v) {
  if (v >= -0x8000 && v <= 0x7FFF) return 1;  // addiu $rd, $zero, v
  if ((v & 0xFFFF) == 0) return 1;            // lui $rd, hi(v)
  return 2;                                   // lui + ori
}

// How many instructions pseudo/real statement `st` expands to.
int instr_count(const Stmt& st) {
  const std::string& m = st.head;
  if (m == "la") return 2;
  if (m == "blt" || m == "bge" || m == "bgt" || m == "ble" || m == "bltu" ||
      m == "bgeu") {
    return 2;
  }
  if (m == "li") {
    if (st.operands.size() == 2) {
      if (const auto v = parse_int(st.operands[1])) {
        // imm_operand truncates immediates to their 32-bit pattern; size
        // the same value emit_li will see.
        return li_length(static_cast<std::int32_t>(*v));
      }
    }
    return 2;
  }
  return 1;
}

class Assembler {
 public:
  explicit Assembler(std::string_view source) : stmts_(parse_lines(source)) {}

  Program run() {
    pass1();
    pass2();
    return std::move(prog_);
  }

 private:
  enum class Segment { kText, kData };

  void pass1() {
    Segment seg = Segment::kText;
    int text_index = 0;
    std::uint32_t data_off = 0;
    for (const Stmt& st : stmts_) {
      for (const std::string& label : st.labels) {
        const bool dup = prog_.text_symbols.count(label) != 0 ||
                         prog_.data_symbols.count(label) != 0;
        if (dup) throw AsmError(st.line, "duplicate label '" + label + "'");
        if (seg == Segment::kText) {
          prog_.text_symbols[label] = text_index;
        } else {
          prog_.data_symbols[label] = kDataBase + data_off;
        }
      }
      if (st.head == ".label-only") continue;
      if (st.head == ".text") { seg = Segment::kText; continue; }
      if (st.head == ".data") { seg = Segment::kData; continue; }
      if (is_directive(st.head)) {
        if (seg != Segment::kData) {
          throw AsmError(st.line, "data directive outside .data segment");
        }
        data_off += data_size(st, data_off);
        continue;
      }
      if (seg != Segment::kText) {
        throw AsmError(st.line, "instruction outside .text segment");
      }
      text_index += instr_count(st);
    }
  }

  void pass2() {
    for (const Stmt& st : stmts_) {
      if (st.head == ".label-only" || st.head == ".text" ||
          st.head == ".data") {
        continue;
      }
      if (is_directive(st.head)) {
        emit_data(st);
        continue;
      }
      emit_instr(st);
    }
  }

  // --- data segment ---

  std::uint32_t data_size(const Stmt& st, std::uint32_t off) const {
    const std::string& d = st.head;
    if (d == ".word") return 4 * static_cast<std::uint32_t>(st.operands.size());
    if (d == ".half") return 2 * static_cast<std::uint32_t>(st.operands.size());
    if (d == ".byte") return static_cast<std::uint32_t>(st.operands.size());
    if (d == ".space") {
      const auto n = st.operands.size() == 1 ? parse_int(st.operands[0])
                                             : std::nullopt;
      if (!n || *n < 0) throw AsmError(st.line, ".space needs a size");
      return static_cast<std::uint32_t>(*n);
    }
    if (d == ".align") {
      const auto n = st.operands.size() == 1 ? parse_int(st.operands[0])
                                             : std::nullopt;
      if (!n || *n < 0 || *n > 12) throw AsmError(st.line, "bad .align");
      const std::uint32_t a = 1u << *n;
      return (a - (off % a)) % a;
    }
    if (d == ".asciiz") {
      return static_cast<std::uint32_t>(string_operand(st).size()) + 1;
    }
    throw AsmError(st.line, "unknown directive '" + d + "'");
  }

  std::string string_operand(const Stmt& st) const {
    if (st.operands.size() != 1 || st.operands[0].size() < 2 ||
        st.operands[0].front() != '"' || st.operands[0].back() != '"') {
      throw AsmError(st.line, ".asciiz needs one quoted string");
    }
    std::string out;
    const std::string& s = st.operands[0];
    for (std::size_t i = 1; i + 1 < s.size(); ++i) {
      char c = s[i];
      if (c == '\\' && i + 2 < s.size()) {
        ++i;
        switch (s[i]) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          default: throw AsmError(st.line, "unknown escape");
        }
      }
      out.push_back(c);
    }
    return out;
  }

  std::int64_t data_value(const Stmt& st, const std::string& text) const {
    if (const auto v = parse_int(text)) return *v;
    if (is_label_ref(text)) return resolve_address(st, text);
    throw AsmError(st.line, "bad data value '" + text + "'");
  }

  void emit_data(const Stmt& st) {
    const std::string& d = st.head;
    auto push = [this](std::int64_t v, int bytes) {
      for (int i = 0; i < bytes; ++i) {
        prog_.data.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
      }
    };
    if (d == ".word") {
      for (const std::string& op : st.operands) push(data_value(st, op), 4);
    } else if (d == ".half") {
      for (const std::string& op : st.operands) push(data_value(st, op), 2);
    } else if (d == ".byte") {
      for (const std::string& op : st.operands) push(data_value(st, op), 1);
    } else if (d == ".space" || d == ".align") {
      const std::uint32_t n =
          data_size(st, static_cast<std::uint32_t>(prog_.data.size()));
      prog_.data.insert(prog_.data.end(), n, 0);
    } else if (d == ".asciiz") {
      for (const char c : string_operand(st)) {
        prog_.data.push_back(static_cast<std::uint8_t>(c));
      }
      prog_.data.push_back(0);
    } else {
      throw AsmError(st.line, "unknown directive '" + d + "'");
    }
  }

  // --- text segment ---

  Reg reg_operand(const Stmt& st, std::size_t i) const {
    if (i >= st.operands.size()) throw AsmError(st.line, "missing operand");
    const int r = parse_reg(st.operands[i]);
    if (r < 0) {
      throw AsmError(st.line, "bad register '" + st.operands[i] + "'");
    }
    return static_cast<Reg>(r);
  }

  std::int32_t imm_operand(const Stmt& st, std::size_t i) const {
    if (i >= st.operands.size()) throw AsmError(st.line, "missing operand");
    if (const auto v = parse_int(st.operands[i])) {
      return static_cast<std::int32_t>(*v);
    }
    throw AsmError(st.line, "bad immediate '" + st.operands[i] + "'");
  }

  // Resolves a label (or "@N") to a *text index*.
  std::int32_t target_operand(const Stmt& st, std::size_t i) const {
    if (i >= st.operands.size()) throw AsmError(st.line, "missing target");
    const std::string& t = st.operands[i];
    if (!t.empty() && t.front() == '@') {
      if (const auto v = parse_int(std::string_view(t).substr(1))) {
        return static_cast<std::int32_t>(*v);
      }
      throw AsmError(st.line, "bad target '" + t + "'");
    }
    const auto it = prog_.text_symbols.find(t);
    if (it == prog_.text_symbols.end()) {
      throw AsmError(st.line, "undefined label '" + t + "'");
    }
    return it->second;
  }

  // Resolves a data or text label to a byte address (for .word / la).
  std::int64_t resolve_address(const Stmt& st, const std::string& name) const {
    if (const auto it = prog_.data_symbols.find(name);
        it != prog_.data_symbols.end()) {
      return it->second;
    }
    if (const auto it = prog_.text_symbols.find(name);
        it != prog_.text_symbols.end()) {
      return kTextBase + static_cast<std::uint32_t>(it->second) * 4;
    }
    throw AsmError(st.line, "undefined label '" + name + "'");
  }

  // Parses "disp(base)" or "(base)" or "label" (absolute data address with
  // $zero base is rejected - displacement must fit 16 bits).
  void mem_operand(const Stmt& st, std::size_t i, Reg* base,
                   std::int32_t* disp) const {
    if (i >= st.operands.size()) throw AsmError(st.line, "missing operand");
    const std::string& t = st.operands[i];
    const std::size_t open = t.find('(');
    if (open == std::string::npos || t.back() != ')') {
      throw AsmError(st.line, "bad memory operand '" + t + "'");
    }
    const std::string_view disp_text = trim(std::string_view(t).substr(0, open));
    const std::string_view base_text =
        trim(std::string_view(t).substr(open + 1, t.size() - open - 2));
    *disp = 0;
    if (!disp_text.empty()) {
      if (const auto v = parse_int(disp_text)) {
        *disp = static_cast<std::int32_t>(*v);
      } else {
        throw AsmError(st.line, "bad displacement");
      }
    }
    const int r = parse_reg(base_text);
    if (r < 0) throw AsmError(st.line, "bad base register");
    *base = static_cast<Reg>(r);
  }

  void expect_operands(const Stmt& st, std::size_t n) const {
    if (st.operands.size() != n) {
      throw AsmError(st.line, "expected " + std::to_string(n) +
                                  " operands, got " +
                                  std::to_string(st.operands.size()));
    }
  }

  void push(const Instruction& ins) { prog_.text.push_back(ins); }

  void emit_li(const Stmt& st) {
    expect_operands(st, 2);
    const Reg rd = reg_operand(st, 0);
    const std::int32_t v = imm_operand(st, 1);
    const std::int32_t hi = static_cast<std::int32_t>(
        (static_cast<std::uint32_t>(v) >> 16) & 0xFFFF);
    if (li_length(v) == 1) {
      if (v >= -0x8000 && v <= 0x7FFF) {
        push(make_imm(Opcode::kAddiu, rd, kRegZero, v));
      } else {
        push(make_lui(rd, hi));  // low half is zero
      }
    } else {
      push(make_lui(rd, hi));
      push(make_imm(Opcode::kOri, rd, rd, v & 0xFFFF));
    }
  }

  void emit_la(const Stmt& st) {
    expect_operands(st, 2);
    const Reg rd = reg_operand(st, 0);
    if (!is_label_ref(st.operands[1])) {
      throw AsmError(st.line, "la needs a label");
    }
    const std::int64_t addr = resolve_address(st, st.operands[1]);
    push(make_lui(rd, static_cast<std::int32_t>((addr >> 16) & 0xFFFF)));
    push(make_imm(Opcode::kOri, rd, rd, static_cast<std::int32_t>(addr & 0xFFFF)));
  }

  void emit_cmp_branch(const Stmt& st) {
    expect_operands(st, 3);
    const Reg rs = reg_operand(st, 0);
    const Reg rt = reg_operand(st, 1);
    const std::int32_t target = target_operand(st, 2);
    const std::string& m = st.head;
    const bool unsigned_cmp = m == "bltu" || m == "bgeu";
    const Opcode slt = unsigned_cmp ? Opcode::kSltu : Opcode::kSlt;
    if (m == "blt" || m == "bltu") {
      push(make_r(slt, kRegAt, rs, rt));
      push(make_branch2(Opcode::kBne, kRegAt, kRegZero, target));
    } else if (m == "bge" || m == "bgeu") {
      push(make_r(slt, kRegAt, rs, rt));
      push(make_branch2(Opcode::kBeq, kRegAt, kRegZero, target));
    } else if (m == "bgt") {
      push(make_r(slt, kRegAt, rt, rs));
      push(make_branch2(Opcode::kBne, kRegAt, kRegZero, target));
    } else {  // ble
      push(make_r(slt, kRegAt, rt, rs));
      push(make_branch2(Opcode::kBeq, kRegAt, kRegZero, target));
    }
  }

  void emit_instr(const Stmt& st) {
    const std::string& m = st.head;
    // Pseudo-instructions first.
    if (m == "li") { emit_li(st); return; }
    if (m == "la") { emit_la(st); return; }
    if (m == "move") {
      expect_operands(st, 2);
      push(make_r(Opcode::kAddu, reg_operand(st, 0), reg_operand(st, 1),
                  kRegZero));
      return;
    }
    if (m == "b") {
      expect_operands(st, 1);
      push(make_branch2(Opcode::kBeq, kRegZero, kRegZero,
                        target_operand(st, 0)));
      return;
    }
    if (m == "not") {
      expect_operands(st, 2);
      push(make_r(Opcode::kNor, reg_operand(st, 0), reg_operand(st, 1),
                  kRegZero));
      return;
    }
    if (m == "neg") {
      expect_operands(st, 2);
      push(make_r(Opcode::kSubu, reg_operand(st, 0), kRegZero,
                  reg_operand(st, 1)));
      return;
    }
    if (m == "blt" || m == "bge" || m == "bgt" || m == "ble" || m == "bltu" ||
        m == "bgeu") {
      emit_cmp_branch(st);
      return;
    }

    const Opcode op = parse_mnemonic(m);
    if (op == Opcode::kNumOpcodes) {
      throw AsmError(st.line, "unknown mnemonic '" + m + "'");
    }
    switch (op_kind(op)) {
      case OpKind::kAlu3:
        expect_operands(st, 3);
        push(make_r(op, reg_operand(st, 0), reg_operand(st, 1),
                    reg_operand(st, 2)));
        return;
      case OpKind::kShiftImm: {
        expect_operands(st, 3);
        const std::int32_t sh = imm_operand(st, 2);
        if (sh < 0 || sh > 31) throw AsmError(st.line, "bad shift amount");
        push(make_shift(op, reg_operand(st, 0), reg_operand(st, 1), sh));
        return;
      }
      case OpKind::kAluImm:
        expect_operands(st, 3);
        push(make_imm(op, reg_operand(st, 0), reg_operand(st, 1),
                      imm_operand(st, 2)));
        return;
      case OpKind::kLui:
        expect_operands(st, 2);
        push(make_lui(reg_operand(st, 0), imm_operand(st, 1)));
        return;
      case OpKind::kLoad:
      case OpKind::kStore: {
        expect_operands(st, 2);
        Reg base = 0;
        std::int32_t disp = 0;
        mem_operand(st, 1, &base, &disp);
        push(make_mem(op, reg_operand(st, 0), base, disp));
        return;
      }
      case OpKind::kBranch2:
        expect_operands(st, 3);
        push(make_branch2(op, reg_operand(st, 0), reg_operand(st, 1),
                          target_operand(st, 2)));
        return;
      case OpKind::kBranch1:
        expect_operands(st, 2);
        push(make_branch1(op, reg_operand(st, 0), target_operand(st, 1)));
        return;
      case OpKind::kJump:
        expect_operands(st, 1);
        push(make_jump(op, target_operand(st, 0)));
        return;
      case OpKind::kJumpReg:
        if (op == Opcode::kJr) {
          expect_operands(st, 1);
          push(make_jr(reg_operand(st, 0)));
        } else {
          expect_operands(st, 2);
          push(make_jalr(reg_operand(st, 0), reg_operand(st, 1)));
        }
        return;
      case OpKind::kNop:
        expect_operands(st, 0);
        push(make_nop());
        return;
      case OpKind::kHalt:
        expect_operands(st, 0);
        push(make_halt());
        return;
      case OpKind::kExt: {
        expect_operands(st, 4);
        const std::int32_t conf = imm_operand(st, 3);
        if (conf < 0 || conf >= (1 << kConfBits)) {
          throw AsmError(st.line, "Conf id out of range");
        }
        push(make_ext(reg_operand(st, 0), reg_operand(st, 1),
                      reg_operand(st, 2), static_cast<ConfId>(conf)));
        return;
      }
    }
    throw AsmError(st.line, "unhandled mnemonic '" + m + "'");
  }

  std::vector<Stmt> stmts_;
  Program prog_;
};

}  // namespace

Program assemble(std::string_view source) { return Assembler(source).run(); }

std::string disassemble(const Program& program) {
  // Collect branch/jump targets so they get labels.
  std::set<std::int32_t> targets;
  for (const Instruction& ins : program.text) {
    if (is_branch(ins.op) || op_kind(ins.op) == OpKind::kJump) {
      targets.insert(ins.imm);
    }
  }
  std::ostringstream os;
  os << "        .text\n";
  for (int i = 0; i < program.size(); ++i) {
    if (targets.count(i) != 0) os << "L" << i << ":\n";
    const Instruction& ins = program.text[static_cast<std::size_t>(i)];
    std::string body = to_string(ins);
    // Replace "@N" targets with the synthesized label names.
    const std::size_t at = body.find('@');
    if (at != std::string::npos) {
      body = body.substr(0, at) + "L" + body.substr(at + 1);
    }
    // "conf=N" -> plain operand for re-assembly.
    const std::size_t conf = body.find("conf=");
    if (conf != std::string::npos) {
      body = body.substr(0, conf) + body.substr(conf + 5);
    }
    os << "        " << body << "\n";
  }
  if (targets.count(program.size()) != 0) os << "L" << program.size() << ":\n";
  if (!program.data.empty()) {
    os << "        .data\n";
    for (const std::uint8_t byte : program.data) {
      os << "        .byte " << static_cast<int>(byte) << "\n";
    }
  }
  return os.str();
}

}  // namespace t1000
