#include "harness/serialize.hpp"

#include "harness/identity.hpp"

namespace t1000 {
namespace {

std::vector<int> int_vector_from_json(const Json& j) {
  std::vector<int> out;
  out.reserve(j.size());
  for (const Json& v : j.items()) {
    out.push_back(static_cast<int>(v.as_int()));
  }
  return out;
}

}  // namespace

Json to_json(const CacheStats& stats) {
  Json j = Json::object();
  j["accesses"] = Json(stats.accesses);
  j["misses"] = Json(stats.misses);
  j["writebacks"] = Json(stats.writebacks);
  return j;
}

Json to_json(const PfuStats& stats) {
  Json j = Json::object();
  j["lookups"] = Json(stats.lookups);
  j["hits"] = Json(stats.hits);
  j["reconfigurations"] = Json(stats.reconfigurations);
  return j;
}

Json to_json(const BranchStats& stats) {
  Json j = Json::object();
  j["conditional"] = Json(stats.conditional);
  j["cond_mispredicts"] = Json(stats.cond_mispredicts);
  j["indirect"] = Json(stats.indirect);
  j["indirect_mispredicts"] = Json(stats.indirect_mispredicts);
  return j;
}

Json to_json(const SimStats& stats) {
  Json j = Json::object();
  j["cycles"] = Json(stats.cycles);
  j["committed"] = Json(stats.committed);
  j["il1"] = to_json(stats.il1);
  j["dl1"] = to_json(stats.dl1);
  j["l2"] = to_json(stats.l2);
  j["itlb"] = to_json(stats.itlb);
  j["dtlb"] = to_json(stats.dtlb);
  j["pfu"] = to_json(stats.pfu);
  j["branch"] = to_json(stats.branch);
  return j;
}

Json to_json(const StallBreakdown& stalls) {
  Json j = Json::object();
  j["cycles"] = Json(stalls.cycles);
  j["commit_cycles"] = Json(stalls.commit_cycles);
  Json causes = Json::object();
  for (int c = 0; c < kNumStallCauses; ++c) {
    causes[stall_cause_name(static_cast<StallCause>(c))] =
        Json(stalls.causes[c]);
  }
  j["causes"] = std::move(causes);
  return j;
}

Json to_json(const RunOutcome& outcome) {
  Json j = Json::object();
  j["stats"] = to_json(outcome.stats);
  j["num_configs"] = Json(outcome.num_configs);
  j["num_apps"] = Json(outcome.num_apps);
  j["lengths"] = Json::array_of(outcome.lengths);
  j["lut_costs"] = Json::array_of(outcome.lut_costs);
  j["checksum"] = Json(outcome.checksum);
  j["trace_steps"] = Json(outcome.trace_steps);
  // Hex: the fingerprint is a full 64-bit value and Json integers are
  // signed.
  j["trace_hash"] = Json(to_hex(outcome.trace_hash));
  // Absent for unobserved runs: presence round-trips RunOutcome::observed.
  if (outcome.observed) j["stalls"] = to_json(outcome.stalls);
  return j;
}

Json to_json(const RunResult& result) {
  Json j = Json::object();
  j["spec"] = to_json(result.spec);
  j["outcome"] = to_json(result.outcome);
  j["status"] = Json(run_status_name(result.status));
  if (result.status != RunStatus::kOk) {
    Json error = Json::object();
    error["kind"] = Json(run_error_kind_name(result.error_kind));
    error["message"] = Json(result.error);
    j["error"] = std::move(error);
  }
  return j;
}

std::string_view run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kError: return "error";
    case RunStatus::kTimeout: return "timeout";
    case RunStatus::kSkipped: return "skipped";
  }
  return "unknown";
}

std::string_view run_error_kind_name(RunErrorKind kind) {
  switch (kind) {
    case RunErrorKind::kNone: return "none";
    case RunErrorKind::kSim: return "sim";
    case RunErrorKind::kVerify: return "verify";
    case RunErrorKind::kJson: return "json";
    case RunErrorKind::kCacheIo: return "cache_io";
    case RunErrorKind::kStdException: return "std_exception";
    case RunErrorKind::kUnknown: return "unknown";
  }
  return "unknown";
}

Json to_json(const CacheConfig& config) {
  Json j = Json::object();
  j["size_bytes"] = Json(config.size_bytes);
  j["line_bytes"] = Json(config.line_bytes);
  j["assoc"] = Json(config.assoc);
  j["hit_latency"] = Json(config.hit_latency);
  return j;
}

Json to_json(const TlbConfig& config) {
  Json j = Json::object();
  j["entries"] = Json(config.entries);
  j["page_bytes"] = Json(config.page_bytes);
  j["miss_latency"] = Json(config.miss_latency);
  return j;
}

Json to_json(const PfuConfig& config) {
  Json j = Json::object();
  j["count"] = Json(config.count);
  j["reconfig_latency"] = Json(config.reconfig_latency);
  j["multi_cycle_ext"] = Json(config.multi_cycle_ext);
  j["levels_per_cycle"] = Json(config.levels_per_cycle);
  return j;
}

std::string_view branch_predictor_name(BranchPredictorKind kind) {
  switch (kind) {
    case BranchPredictorKind::kPerfect: return "perfect";
    case BranchPredictorKind::kBimodal: return "bimodal";
    case BranchPredictorKind::kGshare: return "gshare";
    case BranchPredictorKind::kStaticNotTaken: return "static_not_taken";
  }
  return "unknown";
}

Json to_json(const BranchPredictorConfig& config) {
  Json j = Json::object();
  j["kind"] = Json(branch_predictor_name(config.kind));
  j["bimodal_entries"] = Json(config.bimodal_entries);
  j["target_entries"] = Json(config.target_entries);
  j["mispredict_penalty"] = Json(config.mispredict_penalty);
  return j;
}

Json to_json(const MachineConfig& config) {
  Json j = Json::object();
  j["fetch_width"] = Json(config.fetch_width);
  j["decode_width"] = Json(config.decode_width);
  j["issue_width"] = Json(config.issue_width);
  j["commit_width"] = Json(config.commit_width);
  j["ruu_size"] = Json(config.ruu_size);
  j["fetch_queue_size"] = Json(config.fetch_queue_size);
  j["int_alus"] = Json(config.int_alus);
  j["int_mults"] = Json(config.int_mults);
  j["mem_ports"] = Json(config.mem_ports);
  j["max_outstanding_misses"] = Json(config.max_outstanding_misses);
  j["il1"] = to_json(config.il1);
  j["dl1"] = to_json(config.dl1);
  j["l2"] = to_json(config.l2);
  j["memory_latency"] = Json(config.memory_latency);
  j["itlb"] = to_json(config.itlb);
  j["dtlb"] = to_json(config.dtlb);
  j["pfu"] = to_json(config.pfu);
  j["branch"] = to_json(config.branch);
  return j;
}

Json to_json(const ExtractPolicy& policy) {
  Json j = Json::object();
  j["max_width"] = Json(policy.max_width);
  j["min_length"] = Json(policy.min_length);
  j["max_length"] = Json(policy.max_length);
  j["require_executed"] = Json(policy.require_executed);
  return j;
}

Json to_json(const SelectPolicy& policy) {
  Json j = Json::object();
  j["num_pfus"] = Json(policy.num_pfus);
  j["time_threshold"] = Json(policy.time_threshold);
  j["lut_budget"] = Json(policy.lut_budget);
  j["use_subsequence_matrix"] = Json(policy.use_subsequence_matrix);
  j["extract"] = to_json(policy.extract);
  return j;
}

Json to_json(const RunSpec& spec) {
  Json j = Json::object();
  j["workload"] = Json(spec.workload);
  j["label"] = Json(spec.label);
  // Everything below the label comes from the shared identity assembly
  // (harness/identity.hpp), the same field list the cache key embeds.
  RunIdentity::append_result_fields(spec, &j);
  return j;
}

CacheStats cache_stats_from_json(const Json& j) {
  CacheStats s;
  s.accesses = j.at("accesses").as_uint();
  s.misses = j.at("misses").as_uint();
  s.writebacks = j.at("writebacks").as_uint();
  return s;
}

PfuStats pfu_stats_from_json(const Json& j) {
  PfuStats s;
  s.lookups = j.at("lookups").as_uint();
  s.hits = j.at("hits").as_uint();
  s.reconfigurations = j.at("reconfigurations").as_uint();
  return s;
}

BranchStats branch_stats_from_json(const Json& j) {
  BranchStats s;
  s.conditional = j.at("conditional").as_uint();
  s.cond_mispredicts = j.at("cond_mispredicts").as_uint();
  s.indirect = j.at("indirect").as_uint();
  s.indirect_mispredicts = j.at("indirect_mispredicts").as_uint();
  return s;
}

SimStats sim_stats_from_json(const Json& j) {
  SimStats s;
  s.cycles = j.at("cycles").as_uint();
  s.committed = j.at("committed").as_uint();
  s.il1 = cache_stats_from_json(j.at("il1"));
  s.dl1 = cache_stats_from_json(j.at("dl1"));
  s.l2 = cache_stats_from_json(j.at("l2"));
  s.itlb = cache_stats_from_json(j.at("itlb"));
  s.dtlb = cache_stats_from_json(j.at("dtlb"));
  s.pfu = pfu_stats_from_json(j.at("pfu"));
  s.branch = branch_stats_from_json(j.at("branch"));
  return s;
}

StallBreakdown stall_breakdown_from_json(const Json& j) {
  StallBreakdown s;
  s.cycles = j.at("cycles").as_uint();
  s.commit_cycles = j.at("commit_cycles").as_uint();
  const Json& causes = j.at("causes");
  for (int c = 0; c < kNumStallCauses; ++c) {
    if (const Json* v =
            causes.find(stall_cause_name(static_cast<StallCause>(c)))) {
      s.causes[c] = v->as_uint();
    }
  }
  return s;
}

RunOutcome run_outcome_from_json(const Json& j) {
  RunOutcome out;
  out.stats = sim_stats_from_json(j.at("stats"));
  out.num_configs = static_cast<int>(j.at("num_configs").as_int());
  out.num_apps = static_cast<int>(j.at("num_apps").as_int());
  out.lengths = int_vector_from_json(j.at("lengths"));
  out.lut_costs = int_vector_from_json(j.at("lut_costs"));
  out.checksum = static_cast<std::uint32_t>(j.at("checksum").as_uint());
  out.trace_steps = j.at("trace_steps").as_uint();
  out.trace_hash = std::stoull(j.at("trace_hash").as_string(), nullptr, 16);
  if (const Json* stalls = j.find("stalls")) {
    out.observed = true;
    out.stalls = stall_breakdown_from_json(*stalls);
  }
  return out;
}

}  // namespace t1000
