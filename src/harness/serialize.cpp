#include "harness/serialize.hpp"

#include <initializer_list>

#include "harness/identity.hpp"

namespace t1000 {
namespace {

std::vector<int> int_vector_from_json(const Json& j) {
  std::vector<int> out;
  out.reserve(j.size());
  for (const Json& v : j.items()) {
    out.push_back(static_cast<int>(v.as_int()));
  }
  return out;
}

// Spec-side deserialization is lenient about absent members (the field
// keeps its struct default, so a request names only what it changes) but
// strict about unknown ones: a typo'd field would otherwise be silently
// dropped and the daemon would simulate a machine the caller never asked
// for. `context` names the enclosing object in the error.
void reject_unknown_members(const Json& j, const char* context,
                            std::initializer_list<std::string_view> allowed) {
  for (const auto& member : j.members()) {
    bool known = false;
    for (std::string_view name : allowed) {
      if (member.first == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw JsonError("unknown member \"" + member.first + "\" in " +
                      context);
    }
  }
}

void read_int(const Json& j, std::string_view key, int* out) {
  if (const Json* v = j.find(key)) *out = static_cast<int>(v->as_int());
}

void read_uint32(const Json& j, std::string_view key, std::uint32_t* out) {
  if (const Json* v = j.find(key)) {
    *out = static_cast<std::uint32_t>(v->as_uint());
  }
}

void read_uint64(const Json& j, std::string_view key, std::uint64_t* out) {
  if (const Json* v = j.find(key)) *out = v->as_uint();
}

void read_bool(const Json& j, std::string_view key, bool* out) {
  if (const Json* v = j.find(key)) *out = v->as_bool();
}

void read_double(const Json& j, std::string_view key, double* out) {
  if (const Json* v = j.find(key)) *out = v->as_double();
}

void read_string(const Json& j, std::string_view key, std::string* out) {
  if (const Json* v = j.find(key)) *out = v->as_string();
}

}  // namespace

Json to_json(const CacheStats& stats) {
  Json j = Json::object();
  j["accesses"] = Json(stats.accesses);
  j["misses"] = Json(stats.misses);
  j["writebacks"] = Json(stats.writebacks);
  return j;
}

Json to_json(const PfuStats& stats) {
  Json j = Json::object();
  j["lookups"] = Json(stats.lookups);
  j["hits"] = Json(stats.hits);
  j["reconfigurations"] = Json(stats.reconfigurations);
  return j;
}

Json to_json(const BranchStats& stats) {
  Json j = Json::object();
  j["conditional"] = Json(stats.conditional);
  j["cond_mispredicts"] = Json(stats.cond_mispredicts);
  j["indirect"] = Json(stats.indirect);
  j["indirect_mispredicts"] = Json(stats.indirect_mispredicts);
  return j;
}

Json to_json(const SimStats& stats) {
  Json j = Json::object();
  j["cycles"] = Json(stats.cycles);
  j["committed"] = Json(stats.committed);
  j["il1"] = to_json(stats.il1);
  j["dl1"] = to_json(stats.dl1);
  j["l2"] = to_json(stats.l2);
  j["itlb"] = to_json(stats.itlb);
  j["dtlb"] = to_json(stats.dtlb);
  j["pfu"] = to_json(stats.pfu);
  j["branch"] = to_json(stats.branch);
  return j;
}

Json to_json(const StallBreakdown& stalls) {
  Json j = Json::object();
  j["cycles"] = Json(stalls.cycles);
  j["commit_cycles"] = Json(stalls.commit_cycles);
  Json causes = Json::object();
  for (int c = 0; c < kNumStallCauses; ++c) {
    causes[stall_cause_name(static_cast<StallCause>(c))] =
        Json(stalls.causes[c]);
  }
  j["causes"] = std::move(causes);
  return j;
}

Json to_json(const RunOutcome& outcome) {
  Json j = Json::object();
  j["stats"] = to_json(outcome.stats);
  j["num_configs"] = Json(outcome.num_configs);
  j["num_apps"] = Json(outcome.num_apps);
  j["lengths"] = Json::array_of(outcome.lengths);
  j["lut_costs"] = Json::array_of(outcome.lut_costs);
  j["checksum"] = Json(outcome.checksum);
  j["trace_steps"] = Json(outcome.trace_steps);
  // Hex: the fingerprint is a full 64-bit value and Json integers are
  // signed.
  j["trace_hash"] = Json(to_hex(outcome.trace_hash));
  // Absent for unobserved runs: presence round-trips RunOutcome::observed.
  if (outcome.observed) j["stalls"] = to_json(outcome.stalls);
  return j;
}

Json to_json(const RunResult& result) {
  Json j = Json::object();
  j["spec"] = to_json(result.spec);
  j["outcome"] = to_json(result.outcome);
  j["status"] = Json(run_status_name(result.status));
  if (result.status != RunStatus::kOk) {
    Json error = Json::object();
    error["kind"] = Json(run_error_kind_name(result.error_kind));
    error["message"] = Json(result.error);
    j["error"] = std::move(error);
  }
  return j;
}

std::string_view run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kError: return "error";
    case RunStatus::kTimeout: return "timeout";
    case RunStatus::kSkipped: return "skipped";
  }
  return "unknown";
}

std::string_view run_error_kind_name(RunErrorKind kind) {
  switch (kind) {
    case RunErrorKind::kNone: return "none";
    case RunErrorKind::kSim: return "sim";
    case RunErrorKind::kVerify: return "verify";
    case RunErrorKind::kJson: return "json";
    case RunErrorKind::kCacheIo: return "cache_io";
    case RunErrorKind::kStdException: return "std_exception";
    case RunErrorKind::kUnknown: return "unknown";
  }
  return "unknown";
}

Json to_json(const CacheConfig& config) {
  Json j = Json::object();
  j["size_bytes"] = Json(config.size_bytes);
  j["line_bytes"] = Json(config.line_bytes);
  j["assoc"] = Json(config.assoc);
  j["hit_latency"] = Json(config.hit_latency);
  return j;
}

Json to_json(const TlbConfig& config) {
  Json j = Json::object();
  j["entries"] = Json(config.entries);
  j["page_bytes"] = Json(config.page_bytes);
  j["miss_latency"] = Json(config.miss_latency);
  return j;
}

Json to_json(const PfuConfig& config) {
  Json j = Json::object();
  j["count"] = Json(config.count);
  j["reconfig_latency"] = Json(config.reconfig_latency);
  j["multi_cycle_ext"] = Json(config.multi_cycle_ext);
  j["levels_per_cycle"] = Json(config.levels_per_cycle);
  return j;
}

std::string_view branch_predictor_name(BranchPredictorKind kind) {
  switch (kind) {
    case BranchPredictorKind::kPerfect: return "perfect";
    case BranchPredictorKind::kBimodal: return "bimodal";
    case BranchPredictorKind::kGshare: return "gshare";
    case BranchPredictorKind::kStaticNotTaken: return "static_not_taken";
  }
  return "unknown";
}

bool branch_predictor_from_name(std::string_view name,
                                BranchPredictorKind* out) {
  for (BranchPredictorKind kind :
       {BranchPredictorKind::kPerfect, BranchPredictorKind::kBimodal,
        BranchPredictorKind::kGshare, BranchPredictorKind::kStaticNotTaken}) {
    if (name == branch_predictor_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

Json to_json(const BranchPredictorConfig& config) {
  Json j = Json::object();
  j["kind"] = Json(branch_predictor_name(config.kind));
  j["bimodal_entries"] = Json(config.bimodal_entries);
  j["target_entries"] = Json(config.target_entries);
  j["mispredict_penalty"] = Json(config.mispredict_penalty);
  return j;
}

Json to_json(const MachineConfig& config) {
  Json j = Json::object();
  j["fetch_width"] = Json(config.fetch_width);
  j["decode_width"] = Json(config.decode_width);
  j["issue_width"] = Json(config.issue_width);
  j["commit_width"] = Json(config.commit_width);
  j["ruu_size"] = Json(config.ruu_size);
  j["fetch_queue_size"] = Json(config.fetch_queue_size);
  j["int_alus"] = Json(config.int_alus);
  j["int_mults"] = Json(config.int_mults);
  j["mem_ports"] = Json(config.mem_ports);
  j["max_outstanding_misses"] = Json(config.max_outstanding_misses);
  j["il1"] = to_json(config.il1);
  j["dl1"] = to_json(config.dl1);
  j["l2"] = to_json(config.l2);
  j["memory_latency"] = Json(config.memory_latency);
  j["itlb"] = to_json(config.itlb);
  j["dtlb"] = to_json(config.dtlb);
  j["pfu"] = to_json(config.pfu);
  j["branch"] = to_json(config.branch);
  return j;
}

Json to_json(const ExtractPolicy& policy) {
  Json j = Json::object();
  j["max_width"] = Json(policy.max_width);
  j["min_length"] = Json(policy.min_length);
  j["max_length"] = Json(policy.max_length);
  j["max_inputs"] = Json(policy.max_inputs);
  j["max_outputs"] = Json(policy.max_outputs);
  j["require_executed"] = Json(policy.require_executed);
  return j;
}

Json to_json(const SelectPolicy& policy) {
  Json j = Json::object();
  j["num_pfus"] = Json(policy.num_pfus);
  j["time_threshold"] = Json(policy.time_threshold);
  j["lut_budget"] = Json(policy.lut_budget);
  j["use_subsequence_matrix"] = Json(policy.use_subsequence_matrix);
  j["extract"] = to_json(policy.extract);
  return j;
}

Json to_json(const RunSpec& spec) {
  Json j = Json::object();
  j["workload"] = Json(spec.workload);
  j["label"] = Json(spec.label);
  // Everything below the label comes from the shared identity assembly
  // (harness/identity.hpp), the same field list the cache key embeds.
  RunIdentity::append_result_fields(spec, &j);
  return j;
}

CacheConfig cache_config_from_json(const Json& j) {
  reject_unknown_members(j, "cache config",
                         {"size_bytes", "line_bytes", "assoc", "hit_latency"});
  CacheConfig c;
  read_uint32(j, "size_bytes", &c.size_bytes);
  read_uint32(j, "line_bytes", &c.line_bytes);
  read_uint32(j, "assoc", &c.assoc);
  read_int(j, "hit_latency", &c.hit_latency);
  return c;
}

TlbConfig tlb_config_from_json(const Json& j) {
  reject_unknown_members(j, "tlb config",
                         {"entries", "page_bytes", "miss_latency"});
  TlbConfig c;
  read_uint32(j, "entries", &c.entries);
  read_uint32(j, "page_bytes", &c.page_bytes);
  read_int(j, "miss_latency", &c.miss_latency);
  return c;
}

PfuConfig pfu_config_from_json(const Json& j) {
  reject_unknown_members(j, "pfu config",
                         {"count", "reconfig_latency", "multi_cycle_ext",
                          "levels_per_cycle"});
  PfuConfig c;
  read_int(j, "count", &c.count);
  read_int(j, "reconfig_latency", &c.reconfig_latency);
  read_bool(j, "multi_cycle_ext", &c.multi_cycle_ext);
  read_int(j, "levels_per_cycle", &c.levels_per_cycle);
  return c;
}

BranchPredictorConfig branch_predictor_config_from_json(const Json& j) {
  reject_unknown_members(j, "branch predictor config",
                         {"kind", "bimodal_entries", "target_entries",
                          "mispredict_penalty"});
  BranchPredictorConfig c;
  if (const Json* kind = j.find("kind")) {
    if (!branch_predictor_from_name(kind->as_string(), &c.kind)) {
      throw JsonError("unknown branch predictor kind \"" +
                      kind->as_string() + "\"");
    }
  }
  read_uint32(j, "bimodal_entries", &c.bimodal_entries);
  read_uint32(j, "target_entries", &c.target_entries);
  read_int(j, "mispredict_penalty", &c.mispredict_penalty);
  return c;
}

MachineConfig machine_config_from_json(const Json& j) {
  reject_unknown_members(
      j, "machine config",
      {"fetch_width", "decode_width", "issue_width", "commit_width",
       "ruu_size", "fetch_queue_size", "int_alus", "int_mults", "mem_ports",
       "max_outstanding_misses", "il1", "dl1", "l2", "memory_latency",
       "itlb", "dtlb", "pfu", "branch"});
  MachineConfig c;
  read_int(j, "fetch_width", &c.fetch_width);
  read_int(j, "decode_width", &c.decode_width);
  read_int(j, "issue_width", &c.issue_width);
  read_int(j, "commit_width", &c.commit_width);
  read_int(j, "ruu_size", &c.ruu_size);
  read_int(j, "fetch_queue_size", &c.fetch_queue_size);
  read_int(j, "int_alus", &c.int_alus);
  read_int(j, "int_mults", &c.int_mults);
  read_int(j, "mem_ports", &c.mem_ports);
  read_int(j, "max_outstanding_misses", &c.max_outstanding_misses);
  if (const Json* v = j.find("il1")) c.il1 = cache_config_from_json(*v);
  if (const Json* v = j.find("dl1")) c.dl1 = cache_config_from_json(*v);
  if (const Json* v = j.find("l2")) c.l2 = cache_config_from_json(*v);
  read_int(j, "memory_latency", &c.memory_latency);
  if (const Json* v = j.find("itlb")) c.itlb = tlb_config_from_json(*v);
  if (const Json* v = j.find("dtlb")) c.dtlb = tlb_config_from_json(*v);
  if (const Json* v = j.find("pfu")) c.pfu = pfu_config_from_json(*v);
  if (const Json* v = j.find("branch")) {
    c.branch = branch_predictor_config_from_json(*v);
  }
  return c;
}

ExtractPolicy extract_policy_from_json(const Json& j) {
  reject_unknown_members(j, "extract policy",
                         {"max_width", "min_length", "max_length",
                          "max_inputs", "max_outputs", "require_executed"});
  ExtractPolicy p;
  read_int(j, "max_width", &p.max_width);
  read_int(j, "min_length", &p.min_length);
  read_int(j, "max_length", &p.max_length);
  read_int(j, "max_inputs", &p.max_inputs);
  read_int(j, "max_outputs", &p.max_outputs);
  read_bool(j, "require_executed", &p.require_executed);
  return p;
}

SelectPolicy select_policy_from_json(const Json& j) {
  reject_unknown_members(j, "select policy",
                         {"num_pfus", "time_threshold", "lut_budget",
                          "use_subsequence_matrix", "extract"});
  SelectPolicy p;
  read_int(j, "num_pfus", &p.num_pfus);
  read_double(j, "time_threshold", &p.time_threshold);
  read_int(j, "lut_budget", &p.lut_budget);
  read_bool(j, "use_subsequence_matrix", &p.use_subsequence_matrix);
  if (const Json* v = j.find("extract")) {
    p.extract = extract_policy_from_json(*v);
  }
  return p;
}

RunSpec run_spec_from_json(const Json& j) {
  reject_unknown_members(j, "run spec",
                         {"workload", "label", "selector", "machine",
                          "policy", "max_cycles", "verify", "observe"});
  RunSpec spec;
  spec.workload = j.at("workload").as_string();
  read_string(j, "label", &spec.label);
  if (const Json* selector = j.find("selector")) {
    if (!selector_from_name(selector->as_string(), &spec.selector)) {
      throw JsonError("unknown selector \"" + selector->as_string() + "\"");
    }
  }
  if (const Json* v = j.find("machine")) {
    spec.machine = machine_config_from_json(*v);
  }
  if (const Json* v = j.find("policy")) {
    spec.policy = select_policy_from_json(*v);
  }
  read_uint64(j, "max_cycles", &spec.max_cycles);
  read_bool(j, "verify", &spec.verify);
  read_bool(j, "observe", &spec.observe);
  return spec;
}

CacheStats cache_stats_from_json(const Json& j) {
  CacheStats s;
  s.accesses = j.at("accesses").as_uint();
  s.misses = j.at("misses").as_uint();
  s.writebacks = j.at("writebacks").as_uint();
  return s;
}

PfuStats pfu_stats_from_json(const Json& j) {
  PfuStats s;
  s.lookups = j.at("lookups").as_uint();
  s.hits = j.at("hits").as_uint();
  s.reconfigurations = j.at("reconfigurations").as_uint();
  return s;
}

BranchStats branch_stats_from_json(const Json& j) {
  BranchStats s;
  s.conditional = j.at("conditional").as_uint();
  s.cond_mispredicts = j.at("cond_mispredicts").as_uint();
  s.indirect = j.at("indirect").as_uint();
  s.indirect_mispredicts = j.at("indirect_mispredicts").as_uint();
  return s;
}

SimStats sim_stats_from_json(const Json& j) {
  SimStats s;
  s.cycles = j.at("cycles").as_uint();
  s.committed = j.at("committed").as_uint();
  s.il1 = cache_stats_from_json(j.at("il1"));
  s.dl1 = cache_stats_from_json(j.at("dl1"));
  s.l2 = cache_stats_from_json(j.at("l2"));
  s.itlb = cache_stats_from_json(j.at("itlb"));
  s.dtlb = cache_stats_from_json(j.at("dtlb"));
  s.pfu = pfu_stats_from_json(j.at("pfu"));
  s.branch = branch_stats_from_json(j.at("branch"));
  return s;
}

StallBreakdown stall_breakdown_from_json(const Json& j) {
  StallBreakdown s;
  s.cycles = j.at("cycles").as_uint();
  s.commit_cycles = j.at("commit_cycles").as_uint();
  const Json& causes = j.at("causes");
  for (int c = 0; c < kNumStallCauses; ++c) {
    if (const Json* v =
            causes.find(stall_cause_name(static_cast<StallCause>(c)))) {
      s.causes[c] = v->as_uint();
    }
  }
  return s;
}

RunOutcome run_outcome_from_json(const Json& j) {
  RunOutcome out;
  out.stats = sim_stats_from_json(j.at("stats"));
  out.num_configs = static_cast<int>(j.at("num_configs").as_int());
  out.num_apps = static_cast<int>(j.at("num_apps").as_int());
  out.lengths = int_vector_from_json(j.at("lengths"));
  out.lut_costs = int_vector_from_json(j.at("lut_costs"));
  out.checksum = static_cast<std::uint32_t>(j.at("checksum").as_uint());
  out.trace_steps = j.at("trace_steps").as_uint();
  out.trace_hash = std::stoull(j.at("trace_hash").as_string(), nullptr, 16);
  if (const Json* stalls = j.find("stalls")) {
    out.observed = true;
    out.stalls = stall_breakdown_from_json(*stalls);
  }
  return out;
}

}  // namespace t1000
