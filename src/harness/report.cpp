#include "harness/report.hpp"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace t1000 {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  return std::isdigit(static_cast<unsigned char>(s.front())) != 0 ||
         s.front() == '-' || s.front() == '+';
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      const std::size_t pad = width[c] - cell.size();
      if (looks_numeric(cell) && c > 0) {
        os << "  " << std::string(pad, ' ') << cell;
      } else {
        os << "  " << cell << std::string(pad, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt_ratio(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fx", x);
  return buf;
}

std::string fmt_percent_gain(double speedup_ratio) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", (speedup_ratio - 1.0) * 100.0);
  return buf;
}

std::string fmt_double(double x, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, x);
  return buf;
}

std::string strprintf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  // +1: vsnprintf writes the terminator; std::string owns size()+1 chars.
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string bar(double value, double max_value, int width) {
  if (max_value <= 0) return "";
  int n = static_cast<int>(value / max_value * width + 0.5);
  n = std::clamp(n, 0, width);
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace t1000
