#include "harness/grid.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "harness/serialize.hpp"

namespace t1000 {
namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Per-workload lazily built shared state. The program hash is cheap (one
// assembly pass) and unlocks cache hits without profiling; the full
// WorkloadExperiment (profile + extraction + baseline run) is only built
// when some spec actually misses the cache.
struct WorkloadSlot {
  const Workload* workload = nullptr;

  std::once_flag hash_once;
  std::uint64_t hash = 0;
  std::exception_ptr hash_error;

  std::once_flag experiment_once;
  std::unique_ptr<WorkloadExperiment> experiment;
  std::exception_ptr experiment_error;

  std::uint64_t program_hash_for() {
    std::call_once(hash_once, [this] {
      try {
        hash = program_hash(workload_program(*workload));
      } catch (...) {
        hash_error = std::current_exception();
      }
    });
    if (hash_error) std::rethrow_exception(hash_error);
    return hash;
  }

  const WorkloadExperiment& experiment_for() {
    std::call_once(experiment_once, [this] {
      try {
        experiment = std::make_unique<WorkloadExperiment>(*workload);
      } catch (...) {
        experiment_error = std::current_exception();
      }
    });
    if (experiment_error) std::rethrow_exception(experiment_error);
    return *experiment;
  }
};

}  // namespace

GridResult::GridResult(std::vector<RunResult> runs, EngineStats engine)
    : runs_(std::move(runs)), engine_(engine) {}

const RunResult& GridResult::at(std::string_view workload,
                                std::string_view label) const {
  for (const RunResult& r : runs_) {
    if (r.spec.workload == workload && r.spec.label == label) return r;
  }
  throw std::out_of_range("no grid result for (" + std::string(workload) +
                          ", " + std::string(label) + ")");
}

Json GridResult::results_json() const {
  Json results = Json::array();
  for (const RunResult& r : runs_) {
    Json entry = Json::object();
    entry["spec"] = t1000::to_json(r.spec);
    entry["outcome"] = t1000::to_json(r.outcome);
    results.push_back(std::move(entry));
  }
  return results;
}

Json GridResult::to_json() const {
  Json engine = Json::object();
  engine["jobs"] = Json(engine_.jobs);
  engine["runs"] = Json(engine_.runs);
  engine["simulated"] = Json(engine_.simulated);
  engine["cache_memory_hits"] = Json(engine_.cache.memory_hits);
  engine["cache_disk_hits"] = Json(engine_.cache.disk_hits);
  engine["cache_misses"] = Json(engine_.cache.misses);
  engine["cache_disk_errors"] = Json(engine_.cache.disk_errors);
  engine["traces_recorded"] = Json(engine_.traces_recorded);
  engine["trace_replays"] = Json(engine_.trace_replays);
  engine["wall_ms"] = Json(engine_.wall_ms);
  Json run_wall = Json::array();
  Json run_cached = Json::array();
  for (const RunResult& r : runs_) {
    run_wall.push_back(Json(r.wall_ms));
    run_cached.push_back(Json(r.cache_hit));
  }
  engine["run_wall_ms"] = std::move(run_wall);
  engine["run_cache_hit"] = std::move(run_cached);

  Json doc = Json::object();
  doc["results"] = results_json();
  doc["engine"] = std::move(engine);
  return doc;
}

std::string GridResult::engine_summary() const {
  char buf[224];
  std::snprintf(buf, sizeof buf,
                "[engine] %llu runs in %.0f ms, %d job(s); cache: %llu hit(s)"
                " (%llu memory, %llu disk), %llu simulated; traces: %llu"
                " recorded, %llu replayed",
                static_cast<unsigned long long>(engine_.runs), engine_.wall_ms,
                engine_.jobs,
                static_cast<unsigned long long>(engine_.cache.hits()),
                static_cast<unsigned long long>(engine_.cache.memory_hits),
                static_cast<unsigned long long>(engine_.cache.disk_hits),
                static_cast<unsigned long long>(engine_.simulated),
                static_cast<unsigned long long>(engine_.traces_recorded),
                static_cast<unsigned long long>(engine_.trace_replays));
  return buf;
}

void ExperimentGrid::add_workload(const Workload& workload) {
  const auto it = index_.find(workload.name);
  if (it != index_.end()) {
    workloads_[it->second] = workload;
    return;
  }
  index_.emplace(workload.name, workloads_.size());
  workloads_.push_back(workload);
}

void ExperimentGrid::add_workloads(const std::vector<Workload>& workloads) {
  for (const Workload& w : workloads) add_workload(w);
}

void ExperimentGrid::add(RunSpec spec) {
  if (index_.find(spec.workload) == index_.end()) {
    throw std::invalid_argument("ExperimentGrid: unregistered workload '" +
                                spec.workload + "'");
  }
  // (workload, label) is the lookup key of GridResult::at(); duplicates
  // would shadow each other silently.
  for (const RunSpec& existing : specs_) {
    if (existing.workload == spec.workload && existing.label == spec.label) {
      throw std::invalid_argument("ExperimentGrid: duplicate spec (" +
                                  spec.workload + ", " + spec.label + ")");
    }
  }
  specs_.push_back(std::move(spec));
}

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

GridResult ExperimentGrid::run(const GridOptions& options) const {
  const auto grid_start = std::chrono::steady_clock::now();
  const int jobs = std::max(
      1, std::min<int>(resolve_jobs(options.jobs),
                       static_cast<int>(std::max<std::size_t>(specs_.size(), 1))));

  ResultCache cache(options.cache_dir);
  std::vector<WorkloadSlot> slots(workloads_.size());
  for (std::size_t i = 0; i < workloads_.size(); ++i) {
    slots[i].workload = &workloads_[i];
  }

  std::vector<RunResult> results(specs_.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::mutex error_mu;
  std::exception_ptr first_error;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs_.size() || abort.load(std::memory_order_relaxed)) return;
      const auto run_start = std::chrono::steady_clock::now();
      RunResult& out = results[i];
      out.spec = specs_[i];
      try {
        WorkloadSlot& slot = slots[index_.find(out.spec.workload)->second];
        const CacheKey key = make_cache_key(out.spec, slot.program_hash_for(),
                                            slot.workload->max_steps);
        if (cache.lookup(key, &out.outcome)) {
          out.cache_hit = true;
        } else {
          out.outcome = slot.experiment_for().run(out.spec);
          cache.store(key, out.outcome);
        }
        out.wall_ms = ms_since(run_start);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  EngineStats engine;
  engine.jobs = jobs;
  engine.runs = specs_.size();
  engine.cache = cache.counters();
  engine.simulated = engine.cache.misses;
  for (const WorkloadSlot& slot : slots) {
    if (!slot.experiment) continue;
    const WorkloadExperiment::TraceCounters tc =
        slot.experiment->trace_counters();
    engine.traces_recorded += tc.recorded;
    engine.trace_replays += tc.reused;
  }
  engine.wall_ms = ms_since(grid_start);
  return GridResult(std::move(results), engine);
}

BenchOptions parse_bench_options(int argc, char** argv,
                                 const std::string& name,
                                 const std::string& summary) {
  BenchOptions out;
  const char* env_dir = std::getenv("T1000_CACHE_DIR");
  out.grid.cache_dir = env_dir != nullptr ? env_dir : ".t1000-cache";

  long jobs = 0;
  bool no_cache = false;
  OptionParser parser(name, summary);
  parser.add_int("--jobs", "N", "worker threads (default: all hardware threads)",
                 &jobs);
  parser.add_string("--json", "FILE", "also write results + engine stats as JSON",
                    &out.json_path);
  parser.add_string("--cache-dir", "DIR",
                    "on-disk result cache (default: $T1000_CACHE_DIR or "
                    ".t1000-cache)",
                    &out.grid.cache_dir);
  parser.add_flag("--no-cache", "disable the on-disk result cache", &no_cache);
  parser.set_positional("", 0, 0);
  parser.parse(argc, argv);

  out.grid.jobs = static_cast<int>(jobs);
  if (no_cache) out.grid.cache_dir.clear();
  return out;
}

int finish_bench(const GridResult& result, const BenchOptions& options) {
  if (!options.json_path.empty() &&
      !write_json_file(options.json_path, result.to_json())) {
    return 1;
  }
  std::printf("%s\n", result.engine_summary().c_str());
  return 0;
}

}  // namespace t1000
