#include "harness/grid.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "analysis/diagnostic.hpp"
#include "harness/identity.hpp"
#include "harness/report.hpp"
#include "harness/serialize.hpp"
#include "sim/executor.hpp"

namespace t1000 {
namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Per-workload lazily built shared state. The program hash is cheap (one
// assembly pass) and unlocks cache hits without profiling; the full
// WorkloadExperiment (profile + extraction + baseline run) is only built
// when some spec actually misses the cache.
struct WorkloadSlot {
  const Workload* workload = nullptr;
  ExperimentObs obs;  // set before the workers start

  std::once_flag hash_once;
  std::uint64_t hash = 0;
  std::exception_ptr hash_error;

  std::once_flag experiment_once;
  std::unique_ptr<WorkloadExperiment> experiment;
  std::exception_ptr experiment_error;

  std::uint64_t program_hash_for() {
    std::call_once(hash_once, [this] {
      try {
        hash = program_hash(workload_program(*workload));
      } catch (...) {
        hash_error = std::current_exception();
      }
    });
    if (hash_error) std::rethrow_exception(hash_error);
    return hash;
  }

  const WorkloadExperiment& experiment_for() {
    std::call_once(experiment_once, [this] {
      try {
        experiment = std::make_unique<WorkloadExperiment>(*workload, obs);
      } catch (...) {
        experiment_error = std::current_exception();
      }
    });
    if (experiment_error) std::rethrow_exception(experiment_error);
    return *experiment;
  }
};

}  // namespace

RunErrorKind classify_current_exception(std::string* message) {
  try {
    throw;
  } catch (const VerifyError& e) {
    *message = e.what();
    return RunErrorKind::kVerify;
  } catch (const SimError& e) {
    *message = e.what();
    return RunErrorKind::kSim;
  } catch (const JsonError& e) {
    *message = e.what();
    return RunErrorKind::kJson;
  } catch (const CacheIoError& e) {
    *message = e.what();
    return RunErrorKind::kCacheIo;
  } catch (const std::exception& e) {
    *message = e.what();
    return RunErrorKind::kStdException;
  } catch (...) {
    *message = "non-std::exception thrown";
    return RunErrorKind::kUnknown;
  }
}

GridResult::GridResult(std::vector<RunResult> runs, EngineStats engine)
    : runs_(std::move(runs)), engine_(engine) {}

const RunResult& GridResult::at(std::string_view workload,
                                std::string_view label) const {
  for (const RunResult& r : runs_) {
    if (r.spec.workload == workload && r.spec.label == label) return r;
  }
  std::string what = "no grid result for (" + std::string(workload) + ", " +
                     std::string(label) + ")";
  if (engine_.incomplete() > 0) {
    what += strprintf(" [%llu of %llu runs did not complete]",
                      static_cast<unsigned long long>(engine_.incomplete()),
                      static_cast<unsigned long long>(engine_.runs));
  }
  throw std::out_of_range(what);
}

bool GridResult::workload_ok(std::string_view workload) const {
  bool any = false;
  for (const RunResult& r : runs_) {
    if (r.spec.workload != workload) continue;
    if (!r.ok()) return false;
    any = true;
  }
  return any;
}

const RunOutcome& GridResult::outcome(std::string_view workload,
                                      std::string_view label) const {
  const RunResult& r = at(workload, label);
  if (!r.ok()) {
    throw std::runtime_error(
        "grid run (" + std::string(workload) + ", " + std::string(label) +
        ") did not complete: " + std::string(run_status_name(r.status)) +
        (r.error_kind == RunErrorKind::kNone
             ? ""
             : std::string(" [") + std::string(run_error_kind_name(r.error_kind)) +
                   "]") +
        (r.error.empty() ? "" : ": " + r.error));
  }
  return r.outcome;
}

Json GridResult::results_json() const {
  Json results = Json::array();
  for (const RunResult& r : runs_) {
    results.push_back(t1000::to_json(r));
  }
  return results;
}

Json GridResult::to_json() const {
  Json engine = Json::object();
  engine["jobs"] = Json(engine_.jobs);
  engine["runs"] = Json(engine_.runs);
  engine["simulated"] = Json(engine_.simulated);
  engine["ok"] = Json(engine_.ok);
  engine["failed"] = Json(engine_.failed);
  engine["timeouts"] = Json(engine_.timeouts);
  engine["skipped"] = Json(engine_.skipped);
  engine["cache_memory_hits"] = Json(engine_.cache.memory_hits);
  engine["cache_disk_hits"] = Json(engine_.cache.disk_hits);
  engine["cache_misses"] = Json(engine_.cache.misses);
  engine["cache_disk_errors"] = Json(engine_.cache.disk_errors);
  engine["cache_quarantined"] = Json(engine_.cache.quarantined);
  engine["cache_quarantine_removed"] = Json(engine_.cache.quarantine_removed);
  engine["cache_evicted"] = Json(engine_.cache.evicted);
  engine["cache_size_evicted"] = Json(engine_.cache.size_evicted);
  engine["traces_recorded"] = Json(engine_.traces_recorded);
  engine["trace_replays"] = Json(engine_.trace_replays);
  engine["batches"] = Json(engine_.batches);
  engine["batched_runs"] = Json(engine_.batched_runs);
  engine["observed"] = Json(engine_.observed);
  if (engine_.observed > 0) engine["stalls"] = t1000::to_json(engine_.stalls);
  engine["verified_preps"] = Json(engine_.verified_preps);
  engine["verify_ms"] = Json(engine_.verify_ms);
  engine["wall_ms"] = Json(engine_.wall_ms);
  Json run_wall = Json::array();
  Json run_cached = Json::array();
  for (const RunResult& r : runs_) {
    run_wall.push_back(Json(r.wall_ms));
    run_cached.push_back(Json(r.cache_hit));
  }
  engine["run_wall_ms"] = std::move(run_wall);
  engine["run_cache_hit"] = std::move(run_cached);

  Json doc = Json::object();
  doc["results"] = results_json();
  doc["engine"] = std::move(engine);
  return doc;
}

std::string GridResult::engine_summary() const {
  using ull = unsigned long long;
  // Built with a growing formatter: this line accretes counters across PRs
  // and must never silently truncate (pinned by a test).
  std::string out = strprintf(
      "[engine] %llu runs in %.0f ms, %d job(s); status: %llu ok, %llu"
      " failed, %llu timeout, %llu skipped; cache: %llu hit(s) (%llu memory,"
      " %llu disk), %llu simulated",
      static_cast<ull>(engine_.runs), engine_.wall_ms, engine_.jobs,
      static_cast<ull>(engine_.ok), static_cast<ull>(engine_.failed),
      static_cast<ull>(engine_.timeouts), static_cast<ull>(engine_.skipped),
      static_cast<ull>(engine_.cache.hits()),
      static_cast<ull>(engine_.cache.memory_hits),
      static_cast<ull>(engine_.cache.disk_hits),
      static_cast<ull>(engine_.simulated));
  if (engine_.cache.quarantined > 0 || engine_.cache.quarantine_removed > 0 ||
      engine_.cache.evicted > 0 || engine_.cache.size_evicted > 0 ||
      engine_.cache.disk_errors > 0) {
    // quarantine_removed stays distinct from quarantined: a removed corrupt
    // entry left no .corrupt file behind, and the summary must not claim
    // one exists.
    out += strprintf(
        " (%llu quarantined, %llu corrupt-removed, %llu evicted, %llu"
        " size-evicted, %llu disk error(s))",
        static_cast<ull>(engine_.cache.quarantined),
        static_cast<ull>(engine_.cache.quarantine_removed),
        static_cast<ull>(engine_.cache.evicted),
        static_cast<ull>(engine_.cache.size_evicted),
        static_cast<ull>(engine_.cache.disk_errors));
  }
  out += strprintf("; traces: %llu recorded, %llu replayed",
                   static_cast<ull>(engine_.traces_recorded),
                   static_cast<ull>(engine_.trace_replays));
  if (engine_.batches > 0) {
    out += strprintf("; batches: %llu (%llu lane(s))",
                     static_cast<ull>(engine_.batches),
                     static_cast<ull>(engine_.batched_runs));
  }
  if (engine_.verified_preps > 0) {
    out += strprintf("; verify: %llu preparation(s) in %.1f ms",
                     static_cast<ull>(engine_.verified_preps),
                     engine_.verify_ms);
  }
  if (engine_.observed > 0) {
    const std::uint64_t stall = engine_.stalls.stall_cycles();
    out += strprintf("; stalls: %llu observed run(s), %llu/%llu stall cycle(s)",
                     static_cast<ull>(engine_.observed),
                     static_cast<ull>(stall),
                     static_cast<ull>(engine_.stalls.cycles));
    if (stall > 0) {
      int top = 0;
      for (int c = 1; c < kNumStallCauses; ++c) {
        if (engine_.stalls.causes[c] > engine_.stalls.causes[top]) top = c;
      }
      out += strprintf(
          " (top: %s %.1f%%)",
          std::string(stall_cause_name(static_cast<StallCause>(top))).c_str(),
          100.0 * static_cast<double>(engine_.stalls.causes[top]) /
              static_cast<double>(stall));
    }
  }
  return out;
}

void ExperimentGrid::add_workload(const Workload& workload) {
  const auto it = index_.find(workload.name);
  if (it != index_.end()) {
    workloads_[it->second] = workload;
    return;
  }
  index_.emplace(workload.name, workloads_.size());
  workloads_.push_back(workload);
}

void ExperimentGrid::add_workloads(const std::vector<Workload>& workloads) {
  for (const Workload& w : workloads) add_workload(w);
}

void ExperimentGrid::add(RunSpec spec) {
  if (index_.find(spec.workload) == index_.end()) {
    throw std::invalid_argument("ExperimentGrid: unregistered workload '" +
                                spec.workload + "'");
  }
  // (workload, label) is the lookup key of GridResult::at(); duplicates
  // would shadow each other silently.
  for (const RunSpec& existing : specs_) {
    if (existing.workload == spec.workload && existing.label == spec.label) {
      throw std::invalid_argument("ExperimentGrid: duplicate spec (" +
                                  spec.workload + ", " + spec.label + ")");
    }
  }
  specs_.push_back(std::move(spec));
}

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

GridResult ExperimentGrid::run(const GridOptions& options) const {
  const auto grid_start = std::chrono::steady_clock::now();
  const int jobs = std::max(
      1, std::min<int>(resolve_jobs(options.jobs),
                       static_cast<int>(std::max<std::size_t>(specs_.size(), 1))));

  // Metrics instruments are resolved once, up front; the per-run updates in
  // the workers are then lock-free saturating atomics.
  struct GridInstruments {
    obs::Counter* runs = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* simulated = nullptr;
    obs::Counter* incomplete = nullptr;
    obs::Span* run_wall = nullptr;
    obs::Histogram* run_wall_ms = nullptr;
    obs::Histogram* cache_phase_ms = nullptr;
  } metrics;
  if (options.metrics != nullptr) {
    metrics.runs = options.metrics->counter("grid.runs");
    metrics.cache_hits = options.metrics->counter("grid.cache_hits");
    metrics.simulated = options.metrics->counter("grid.simulated");
    metrics.incomplete = options.metrics->counter("grid.runs_incomplete");
    metrics.run_wall = options.metrics->span("grid.run_wall");
    metrics.run_wall_ms = options.metrics->histogram(
        "grid.run_wall_ms", {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000,
                             5000, 10000});
    metrics.cache_phase_ms = phase_histogram(options.metrics, "cache");
  }

  ResultCache local_cache(options.cache_dir, options.cache_budget_bytes);
  ResultCache& cache = options.cache != nullptr ? *options.cache : local_cache;
  // With a borrowed cache the counters are cumulative across grids; the
  // engine section reports only what this run contributed.
  const ResultCache::Counters cache_baseline = cache.counters();
  std::vector<WorkloadSlot> slots(workloads_.size());
  for (std::size_t i = 0; i < workloads_.size(); ++i) {
    slots[i].workload = &workloads_[i];
    slots[i].obs = ExperimentObs{options.metrics, options.journal};
  }

  // Journal emission helpers: cache operations become timed instants (the
  // "cache" phase), runs and batches become spans the experiment's phase
  // spans parent under. All of it no-ops without a journal + active trace.
  obs::Journal* const journal = options.journal;
  const auto cache_lookup = [&](ResultCache& c, const CacheKey& key,
                                RunOutcome* outcome) {
    const auto start = std::chrono::steady_clock::now();
    const bool hit = c.lookup(key, outcome);
    if (metrics.cache_phase_ms != nullptr) {
      metrics.cache_phase_ms->observe(
          static_cast<std::uint64_t>(ms_since(start)));
    }
    if (journal != nullptr) {
      Json attrs = Json::object();
      attrs["hit"] = Json(hit);
      journal->instant(obs::current_trace_context(), "cache.lookup",
                       std::move(attrs));
    }
    return hit;
  };
  const auto cache_store = [&](ResultCache& c, const CacheKey& key,
                               const RunOutcome& outcome) {
    const auto start = std::chrono::steady_clock::now();
    c.store(key, outcome);
    if (metrics.cache_phase_ms != nullptr) {
      metrics.cache_phase_ms->observe(
          static_cast<std::uint64_t>(ms_since(start)));
    }
    if (journal != nullptr) {
      journal->instant(obs::current_trace_context(), "cache.store");
    }
  };
  const auto run_attrs = [](const RunSpec& spec) {
    Json attrs = Json::object();
    attrs["workload"] = Json(spec.workload);
    attrs["label"] = Json(spec.label);
    return attrs;
  };

  // The scheduling unit is a group of spec indices. Without batching every
  // group is a singleton and the engine behaves exactly as it always has;
  // with batching, specs sharing a batch identity (RunIdentity::batch_key)
  // form one group whose cache misses are timed as lanes of a single
  // simulate_replay_batch sweep. Grouping is greedy in insertion order, so
  // results stay deterministic regardless of jobs or batching.
  const bool batching = options.batch && options.run_budget_ms <= 0;
  std::vector<std::vector<std::size_t>> groups;
  {
    std::map<std::string, std::size_t> group_of;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
      if (!batching) {
        groups.push_back({i});
        continue;
      }
      RunSpec spec = specs_[i];
      if (options.verify) spec.verify = true;  // verify is part of the key
      const auto [it, fresh] =
          group_of.emplace(RunIdentity::batch_key(spec), groups.size());
      if (fresh) groups.emplace_back();
      groups[it->second].push_back(i);
    }
  }

  std::vector<RunResult> results(specs_.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batched_runs{0};
  std::mutex error_mu;
  std::exception_ptr first_error;

  // Called on the worker after a run fails or times out: records the
  // verdict, trips the strict/fail-limit abort, and keeps the first
  // exception for strict mode's post-drain rethrow. Never lets a worker
  // exit early — the queue must drain so every spec gets a status.
  const auto record_failure = [&](RunResult& out, RunStatus status,
                                  RunErrorKind kind, std::string message,
                                  std::exception_ptr error) {
    out.status = status;
    out.error_kind = kind;
    out.error = std::move(message);
    out.outcome = RunOutcome{};  // drop any partially filled outcome
    if (metrics.incomplete != nullptr) metrics.incomplete->add(1);
    const std::uint64_t count =
        failures.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options.strict ||
        (options.fail_limit > 0 && count >= options.fail_limit)) {
      abort.store(true, std::memory_order_relaxed);
    }
    if (options.strict && error) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::move(error);
    }
  };

  const auto worker = [&] {
    // The grid's trace crosses the thread boundary here: each worker
    // installs it so every emission below (and the experiment phases
    // underneath) lands in the right trace.
    const obs::ScopedTraceContext grid_scope(options.trace);
    for (;;) {
      const std::size_t g = next.fetch_add(1, std::memory_order_relaxed);
      if (g >= groups.size()) return;
      const std::vector<std::size_t>& group = groups[g];
      // Stage 1: per-run pre-flight — flag stamping, abort check, fault
      // hook, cache lookup — and, for singleton groups, the run itself:
      // the historical per-spec path, verbatim. Multi-spec groups only
      // defer the simulation of their cache misses to stage 2.
      std::vector<std::size_t> misses;
      std::vector<CacheKey> miss_keys;
      // Specs whose key duplicates an earlier miss in this group: served
      // from the cache after the batch stores, reproducing the sequential
      // path's dedup (one simulation, one memory hit) and its counters.
      std::vector<std::size_t> duplicates;
      std::vector<CacheKey> duplicate_keys;
      for (const std::size_t i : group) {
        RunResult& out = results[i];
        out.spec = specs_[i];
        // Stamp before the cache key is built: verified (or observed) runs
        // must not share entries with unverified (or unobserved) ones.
        if (options.verify) out.spec.verify = true;
        if (options.observe) out.spec.observe = true;
        if (abort.load(std::memory_order_relaxed)) {
          out.status = RunStatus::kSkipped;
          out.error = options.strict
                          ? "skipped: an earlier run failed in strict mode"
                          : "skipped: the grid's fail limit was reached";
          continue;
        }
        const auto run_start = std::chrono::steady_clock::now();
        try {
          if (options.fault_hook) options.fault_hook(out.spec);
          bool deferred = false;
          {
            const auto scope = metrics.run_wall != nullptr
                                   ? std::make_unique<obs::Span::Scope>(
                                         metrics.run_wall)
                                   : nullptr;
            WorkloadSlot& slot = slots[index_.find(out.spec.workload)->second];
            const CacheKey key = make_cache_key(
                out.spec, slot.program_hash_for(), slot.workload->max_steps);
            bool dup = false;
            for (const CacheKey& seen : miss_keys) {
              if (seen.text == key.text) {
                dup = true;
                break;
              }
            }
            if (dup) {
              // Looking it up now would count a spurious miss; sequentially
              // it would have hit the entry its twin already stored.
              duplicates.push_back(i);
              duplicate_keys.push_back(key);
              deferred = true;
            } else if (cache_lookup(cache, key, &out.outcome)) {
              out.cache_hit = true;
            } else if (group.size() > 1) {
              misses.push_back(i);
              miss_keys.push_back(key);
              deferred = true;
            } else {
              obs::Journal::SpanScope run_span(journal,
                                               obs::current_trace_context(),
                                               "run", run_attrs(out.spec));
              const obs::ScopedTraceContext run_scope(run_span.context());
              out.outcome = slot.experiment_for().run(out.spec);
              cache_store(cache, key, out.outcome);
            }
          }
          if (deferred) continue;
          if (metrics.runs != nullptr) {
            metrics.runs->add(1);
            if (out.cache_hit) metrics.cache_hits->add(1);
            else metrics.simulated->add(1);
          }
          out.wall_ms = ms_since(run_start);
          if (metrics.run_wall_ms != nullptr) {
            metrics.run_wall_ms->observe(
                static_cast<std::uint64_t>(out.wall_ms));
          }
          if (options.run_budget_ms > 0 &&
              out.wall_ms > options.run_budget_ms) {
            const std::string msg =
                strprintf("run exceeded wall-clock budget: %.1f ms > %.1f ms",
                          out.wall_ms, options.run_budget_ms);
            record_failure(out, RunStatus::kTimeout, RunErrorKind::kNone, msg,
                           std::make_exception_ptr(GridTimeoutError(msg)));
          } else {
            out.status = RunStatus::kOk;
          }
        } catch (const GridTimeoutError& e) {
          out.wall_ms = ms_since(run_start);
          record_failure(out, RunStatus::kTimeout, RunErrorKind::kNone,
                         e.what(), std::current_exception());
        } catch (...) {
          out.wall_ms = ms_since(run_start);
          std::string message;
          const RunErrorKind kind = classify_current_exception(&message);
          record_failure(out, RunStatus::kError, kind, std::move(message),
                         std::current_exception());
        }
      }
      if (!misses.empty()) {
        // Stage 2: one config-parallel sweep over the group's cache misses.
        // Lane outcomes are byte-identical to sequential runs (pinned by
        // tests); lane failures surface per run, exactly as before.
        const auto batch_start = std::chrono::steady_clock::now();
        std::vector<RunSpec> lane_specs;
        lane_specs.reserve(misses.size());
        for (const std::size_t i : misses) {
          lane_specs.push_back(results[i].spec);
        }
        std::vector<WorkloadExperiment::BatchRunOutcome> lanes;
        bool batch_ok = true;
        try {
          const auto scope =
              metrics.run_wall != nullptr
                  ? std::make_unique<obs::Span::Scope>(metrics.run_wall)
                  : nullptr;
          Json batch_attrs = run_attrs(lane_specs.front());
          batch_attrs["lanes"] = Json(misses.size());
          obs::Journal::SpanScope batch_span(journal,
                                             obs::current_trace_context(),
                                             "batch", std::move(batch_attrs));
          const obs::ScopedTraceContext batch_scope(batch_span.context());
          WorkloadSlot& slot =
              slots[index_.find(lane_specs.front().workload)->second];
          lanes = slot.experiment_for().run_batch(lane_specs);
        } catch (...) {
          // Whole-sweep failure (experiment construction, trace recording):
          // every lane fails identically, as N sequential runs would have.
          batch_ok = false;
          std::string message;
          const RunErrorKind kind = classify_current_exception(&message);
          const std::exception_ptr error = std::current_exception();
          const double per_run_ms = ms_since(batch_start) /
                                    static_cast<double>(misses.size());
          for (const std::size_t i : misses) {
            results[i].wall_ms = per_run_ms;
            record_failure(results[i], RunStatus::kError, kind, message,
                           error);
          }
        }
        if (batch_ok) {
          batches.fetch_add(1, std::memory_order_relaxed);
          batched_runs.fetch_add(misses.size(), std::memory_order_relaxed);
          // The sweep's wall-clock is shared work; attribute it evenly so
          // per-run timings stay comparable across the two paths.
          const double per_run_ms =
              ms_since(batch_start) / static_cast<double>(misses.size());
          for (std::size_t k = 0; k < misses.size(); ++k) {
            RunResult& out = results[misses[k]];
            out.wall_ms = per_run_ms;
            if (lanes[k].error) {
              try {
                std::rethrow_exception(lanes[k].error);
              } catch (...) {
                std::string message;
                const RunErrorKind kind = classify_current_exception(&message);
                record_failure(out, RunStatus::kError, kind,
                               std::move(message), lanes[k].error);
              }
              continue;
            }
            out.outcome = lanes[k].outcome;
            cache_store(cache, miss_keys[k], out.outcome);
            if (metrics.runs != nullptr) {
              metrics.runs->add(1);
              metrics.simulated->add(1);
            }
            if (metrics.run_wall_ms != nullptr) {
              metrics.run_wall_ms->observe(
                  static_cast<std::uint64_t>(out.wall_ms));
            }
            out.status = RunStatus::kOk;
          }
        }
      }
      // Duplicates ride on the entry their twin stored; when the twin's
      // lane failed, the retry lookup misses and the run executes alone,
      // exactly as the sequential path would have.
      for (std::size_t k = 0; k < duplicates.size(); ++k) {
        RunResult& out = results[duplicates[k]];
        if (abort.load(std::memory_order_relaxed)) {
          out.status = RunStatus::kSkipped;
          out.error = options.strict
                          ? "skipped: an earlier run failed in strict mode"
                          : "skipped: the grid's fail limit was reached";
          continue;
        }
        const auto run_start = std::chrono::steady_clock::now();
        try {
          {
            const auto scope = metrics.run_wall != nullptr
                                   ? std::make_unique<obs::Span::Scope>(
                                         metrics.run_wall)
                                   : nullptr;
            if (cache_lookup(cache, duplicate_keys[k], &out.outcome)) {
              out.cache_hit = true;
            } else {
              obs::Journal::SpanScope run_span(journal,
                                               obs::current_trace_context(),
                                               "run", run_attrs(out.spec));
              const obs::ScopedTraceContext run_scope(run_span.context());
              WorkloadSlot& slot =
                  slots[index_.find(out.spec.workload)->second];
              out.outcome = slot.experiment_for().run(out.spec);
              cache_store(cache, duplicate_keys[k], out.outcome);
            }
          }
          if (metrics.runs != nullptr) {
            metrics.runs->add(1);
            if (out.cache_hit) metrics.cache_hits->add(1);
            else metrics.simulated->add(1);
          }
          out.wall_ms = ms_since(run_start);
          if (metrics.run_wall_ms != nullptr) {
            metrics.run_wall_ms->observe(
                static_cast<std::uint64_t>(out.wall_ms));
          }
          out.status = RunStatus::kOk;
        } catch (...) {
          out.wall_ms = ms_since(run_start);
          std::string message;
          const RunErrorKind kind = classify_current_exception(&message);
          record_failure(out, RunStatus::kError, kind, std::move(message),
                         std::current_exception());
        }
      }
    }
  };

  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (options.strict && first_error) std::rethrow_exception(first_error);

  EngineStats engine;
  engine.jobs = jobs;
  engine.runs = specs_.size();
  for (const RunResult& r : results) {
    switch (r.status) {
      case RunStatus::kOk: ++engine.ok; break;
      case RunStatus::kError: ++engine.failed; break;
      case RunStatus::kTimeout: ++engine.timeouts; break;
      case RunStatus::kSkipped: ++engine.skipped; break;
    }
    if (r.ok() && r.outcome.observed) {
      ++engine.observed;
      engine.stalls.accumulate(r.outcome.stalls);
    }
  }
  engine.cache = cache.counters().since(cache_baseline);
  engine.simulated = engine.cache.misses;
  engine.batches = batches.load(std::memory_order_relaxed);
  engine.batched_runs = batched_runs.load(std::memory_order_relaxed);
  for (const WorkloadSlot& slot : slots) {
    if (!slot.experiment) continue;
    const WorkloadExperiment::TraceCounters tc =
        slot.experiment->trace_counters();
    engine.traces_recorded += tc.recorded;
    engine.trace_replays += tc.reused;
    const WorkloadExperiment::VerifyCounters vc =
        slot.experiment->verify_counters();
    engine.verified_preps += vc.reports;
    engine.verify_ms += vc.wall_ms;
  }
  engine.wall_ms = ms_since(grid_start);
  return GridResult(std::move(results), engine);
}

BenchOptions parse_bench_options(int argc, char** argv,
                                 const std::string& name,
                                 const std::string& summary) {
  BenchOptions out;
  const char* env_dir = std::getenv("T1000_CACHE_DIR");
  out.grid.cache_dir = env_dir != nullptr ? env_dir : ".t1000-cache";

  // Far beyond any sane thread count, but small enough that the int cast
  // and per-worker allocations cannot overflow or OOM from a typo'd value.
  constexpr long kMaxJobs = 1 << 15;
  long jobs = 0;
  long cache_budget = 0;
  if (const char* env_budget = std::getenv("T1000_CACHE_BUDGET_BYTES")) {
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(env_budget, &end, 10);
    if (errno == 0 && end != env_budget && *end == '\0' && parsed >= 0) {
      cache_budget = parsed;
    }
  }
  double run_budget_ms = 0.0;
  bool no_cache = false;
  bool no_batch = false;
  OptionParser parser(name, summary);
  parser.add_int("--jobs", "N", "worker threads (default: all hardware threads)",
                 &jobs, 0, kMaxJobs);
  parser.add_string("--json", "FILE", "also write results + engine stats as JSON",
                    &out.json_path);
  parser.add_string("--cache-dir", "DIR",
                    "on-disk result cache (default: $T1000_CACHE_DIR or "
                    ".t1000-cache)",
                    &out.grid.cache_dir);
  parser.add_flag("--no-cache", "disable the on-disk result cache", &no_cache);
  parser.add_int("--cache-budget-bytes", "N",
                 "size budget for the on-disk cache; least-recently-used "
                 "entries are evicted to fit (default: "
                 "$T1000_CACHE_BUDGET_BYTES or unbounded)",
                 &cache_budget, 0, std::numeric_limits<long>::max());
  parser.add_flag("--no-batch",
                  "time each run as an independent replay instead of batching "
                  "runs that share a prepared trace (results are identical)",
                  &no_batch);
  parser.add_flag("--verify",
                  "statically verify every selection/rewrite before "
                  "simulating it (failures are recorded as verify errors)",
                  &out.grid.verify);
  parser.add_flag("--observe",
                  "attribute stall cycles on every run (adds a 'stalls' "
                  "breakdown to each outcome and a grid-level aggregate)",
                  &out.grid.observe);
  parser.add_string("--metrics-out", "FILE",
                    "write the engine's metrics registry (grid.* counters, "
                    "histograms, wall-clock spans) as JSON",
                    &out.metrics_path);
  long journal_max_bytes = 64l << 20;
  parser.add_string("--journal-out", "FILE",
                    "append-only JSONL event journal of the grid's "
                    "run/batch/cache/phase spans (one JSON object per line)",
                    &out.journal_path);
  parser.add_int("--journal-max-bytes", "N",
                 "rotate the journal to FILE.1 past this size (default: "
                 "64 MiB)",
                 &journal_max_bytes, 1, std::numeric_limits<long>::max());
  parser.add_flag("--strict",
                  "abort the grid on the first failing run (default: record "
                  "the failure and keep going)",
                  &out.grid.strict);
  parser.add_flag("--keep-going",
                  "exit 0 even when some runs failed (failures still show in "
                  "the summary and JSON)",
                  &out.keep_going);
  parser.add_double("--run-budget-ms", "MS",
                    "per-run wall-clock budget; slower runs are recorded as "
                    "timeouts (default: unlimited)",
                    &run_budget_ms);
  parser.set_positional("", 0, 0);
  parser.parse(argc, argv);

  out.grid.jobs = static_cast<int>(jobs);
  out.grid.run_budget_ms = run_budget_ms;
  out.grid.batch = !no_batch;
  out.grid.cache_budget_bytes = static_cast<std::uint64_t>(cache_budget);
  if (no_cache) out.grid.cache_dir.clear();
  if (!out.metrics_path.empty()) {
    out.metrics = std::make_shared<obs::MetricsRegistry>();
    out.grid.metrics = out.metrics.get();
  }
  if (!out.journal_path.empty()) {
    obs::Journal::Options jopts;
    jopts.path = out.journal_path;
    jopts.max_bytes = static_cast<std::uint64_t>(journal_max_bytes);
    out.journal = std::make_shared<obs::Journal>(std::move(jopts));
    out.grid.journal = out.journal.get();
    // The whole bench invocation is one trace rooted at span 0.
    out.grid.trace = obs::TraceContext{out.journal->new_id(), 0};
  }
  return out;
}

int finish_bench(const GridResult& result, const BenchOptions& options) {
  if (!options.json_path.empty() &&
      !write_json_file(options.json_path, result.to_json())) {
    return 1;
  }
  if (!options.metrics_path.empty() && options.metrics != nullptr &&
      !write_json_file(options.metrics_path, options.metrics->to_json())) {
    return 1;
  }
  std::printf("%s\n", result.engine_summary().c_str());
  const EngineStats& engine = result.engine();
  if (engine.incomplete() == 0) return 0;
  using ull = unsigned long long;
  std::fprintf(stderr,
               "[engine] %llu of %llu run(s) did not complete (%llu failed, "
               "%llu timeout, %llu skipped)%s\n",
               static_cast<ull>(engine.incomplete()),
               static_cast<ull>(engine.runs), static_cast<ull>(engine.failed),
               static_cast<ull>(engine.timeouts),
               static_cast<ull>(engine.skipped),
               options.keep_going ? "; --keep-going, exiting 0" : "");
  return options.keep_going ? 0 : 1;
}

}  // namespace t1000
