// JSON (de)serialization for the structured results layer: machine
// configurations, simulation statistics, and run outcomes.
//
// Two consumers with different needs share these converters:
//  * the `--json` export in every bench/tool, which wants a faithful,
//    human-diffable rendering of what was simulated, and
//  * the experiment engine's content-keyed result cache, which needs the
//    serialization to be deterministic (member order and number formatting
//    fixed) so equal configurations serialize to equal bytes. json.hpp
//    guarantees both properties.
//
// from_json covers two consumers: what the cache must round-trip (SimStats
// and RunOutcome), and — since the serve layer — full RunSpec re-hydration,
// so a JSON grid request submitted to t1000-serve deserializes into exactly
// the spec that serializes back to the same bytes. Spec-side deserializers
// are lenient about absent members (each defaults as in the struct, so a
// curl-sized request can name only what it changes) but strict about
// unknown ones (a typo'd field name must fail loudly, never silently
// simulate the wrong machine).
#pragma once

#include "harness/experiment.hpp"
#include "harness/grid.hpp"
#include "harness/json.hpp"

namespace t1000 {

Json to_json(const CacheStats& stats);
Json to_json(const PfuStats& stats);
Json to_json(const BranchStats& stats);
Json to_json(const SimStats& stats);
// {"cycles", "commit_cycles", "causes": {<stall_cause_name>: cycles, ...}}
// with every cause present (zeros included), in enumerator order.
Json to_json(const StallBreakdown& stalls);
Json to_json(const RunOutcome& outcome);
// One results-array entry: {"spec", "outcome", "status"} plus, for runs
// that did not complete, an "error" object {"kind", "message"}. Failed
// runs keep a (default-initialized) outcome member so the array stays
// uniformly shaped for downstream tooling.
Json to_json(const RunResult& result);

Json to_json(const CacheConfig& config);
Json to_json(const TlbConfig& config);
Json to_json(const PfuConfig& config);
Json to_json(const BranchPredictorConfig& config);
Json to_json(const MachineConfig& config);
Json to_json(const ExtractPolicy& policy);
Json to_json(const SelectPolicy& policy);
Json to_json(const RunSpec& spec);

CacheConfig cache_config_from_json(const Json& j);
TlbConfig tlb_config_from_json(const Json& j);
PfuConfig pfu_config_from_json(const Json& j);
BranchPredictorConfig branch_predictor_config_from_json(const Json& j);
MachineConfig machine_config_from_json(const Json& j);
ExtractPolicy extract_policy_from_json(const Json& j);
SelectPolicy select_policy_from_json(const Json& j);
// Rebuilds a RunSpec from the to_json(RunSpec) shape: workload (required),
// label, selector, machine, policy, max_cycles, verify, observe. Throws
// JsonError on unknown members, bad types, or unknown selector names.
RunSpec run_spec_from_json(const Json& j);

CacheStats cache_stats_from_json(const Json& j);
PfuStats pfu_stats_from_json(const Json& j);
BranchStats branch_stats_from_json(const Json& j);
SimStats sim_stats_from_json(const Json& j);
StallBreakdown stall_breakdown_from_json(const Json& j);
RunOutcome run_outcome_from_json(const Json& j);

// Stable name for a branch predictor kind ("perfect", "bimodal", ...).
std::string_view branch_predictor_name(BranchPredictorKind kind);
// Returns false (and leaves `out` untouched) for unknown names.
bool branch_predictor_from_name(std::string_view name,
                                BranchPredictorKind* out);

// Stable lowercase names for the run-status taxonomy, used by the results
// JSON, the engine summary, and the tools' structured error exit.
std::string_view run_status_name(RunStatus status);
std::string_view run_error_kind_name(RunErrorKind kind);

}  // namespace t1000
