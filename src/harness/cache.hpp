// Content-keyed memoization of RunOutcomes.
//
// A run is identified by everything that determines its result: the
// workload name, a hash of the assembled program (text encoding + data
// image, so edited kernels never alias stale results), the selector, and
// every machine/policy field — captured as the canonical compact JSON of
// the RunSpec plus the program hash. The cache has two levels:
//
//  * in-memory: a mutex-guarded map shared by the grid's worker threads,
//    so sweeping one axis inside a process never re-simulates a point, and
//  * on-disk (optional): one JSON file per key under a cache directory, so
//    re-running a bench binary only simulates what changed since the last
//    invocation. Files are written to a temp name and renamed into place;
//    a torn or stale file is treated as a miss, never an error.
//
// The on-disk tier is built for a directory *shared across processes* — a
// long-running t1000-serve daemon and any number of CLI tools on one
// $T1000_CACHE_DIR:
//
//  * Mutating operations (store, size-budget eviction, janitor sweep)
//    serialize under an advisory file lock (`<dir>/.lock`, flock(2)), so
//    the collision-eviction probe and the budget accounting are race-free
//    against other lock-holding writers. Lookups never take the lock:
//    rename(2) publication means a reader only ever sees complete entries.
//  * An optional size budget bounds the directory: after each store, the
//    least-recently-used entries (by mtime; disk hits touch their entry)
//    are evicted until the budget holds, so a process that never exits
//    cannot grow the cache without bound.
//  * A janitor sweep removes crash debris — orphaned `.tmp.*` files from
//    writers that died mid-store and aged `.corrupt` quarantine files —
//    older than a caller-chosen TTL, so debris never accumulates.
//
// The on-disk level is self-healing: a corrupt or version-mismatched entry
// (torn write, garbage, truncated-to-empty, valid JSON from an older
// schema) is quarantined exactly once — renamed to `<entry>.corrupt` so
// the bytes survive for debugging but never get re-parsed — and the next
// store rewrites a fresh entry, so one bad file costs one extra
// simulation, not a permanent per-cold-run error.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "harness/experiment.hpp"

namespace t1000 {

// Cache-layer I/O failure. The cache itself never throws (unreadable disks
// degrade to misses and counters); the type exists so layers above it —
// the grid's error taxonomy, test fault hooks — can classify cache I/O
// failures distinctly from simulation or JSON errors.
class CacheIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Stable content hash of a program: FNV-1a over the encoded text segment
// and the data image.
std::uint64_t program_hash(const Program& program);

struct CacheKey {
  std::string text;  // canonical compact JSON of the identity fields
  std::string hash;  // hex fnv1a64(text); names the on-disk entry
};

// `max_steps` is the workload's functional-step bound: the committed trace
// a run replays is a function of (program, selector, policy, max_steps)
// plus the trace format version, so both are part of the identity — a
// changed bound or format can never alias a stale memoized result.
CacheKey make_cache_key(const RunSpec& spec, std::uint64_t program_hash,
                        std::uint64_t max_steps);

class ResultCache {
 public:
  struct Counters {
    std::uint64_t memory_hits = 0;
    std::uint64_t disk_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t disk_errors = 0;  // real I/O failures (read/write/rename)
    // Corrupt or version-mismatched entries moved to <entry>.corrupt; each
    // bad file is quarantined exactly once, then repaired by the next store.
    std::uint64_t quarantined = 0;
    // Corrupt entries that could not be renamed to quarantine but were
    // removed instead: the poison is gone, but no .corrupt file exists, so
    // it must not count as quarantined (the counter would name a file that
    // was never created).
    std::uint64_t quarantine_removed = 0;
    // Healthy entries of a *different* key replaced by a store that
    // collided on the entry hash. The probe-and-rename runs under the
    // directory's advisory file lock, so the count is exact across
    // lock-holding writers sharing the directory.
    std::uint64_t evicted = 0;
    // Entries removed by size-budget enforcement (LRU by mtime).
    std::uint64_t size_evicted = 0;

    std::uint64_t hits() const { return memory_hits + disk_hits; }
    std::uint64_t lookups() const { return hits() + misses; }

    // Member-wise difference against an earlier snapshot of the same
    // cache: what happened between the two reads. Lets a long-lived
    // shared cache (the serve daemon's) attribute per-grid activity.
    Counters since(const Counters& baseline) const;
  };

  // What one janitor pass swept. `tmp_removed` counts orphaned `.tmp.*`
  // writer debris, `corrupt_removed` aged quarantine files.
  struct JanitorReport {
    std::uint64_t tmp_removed = 0;
    std::uint64_t corrupt_removed = 0;
  };

  // `disk_dir` empty = in-memory only. The directory is created on first
  // store. `size_budget_bytes` bounds the summed size of on-disk entries
  // (0 = unbounded); enforcement runs after each store, evicting the
  // least-recently-used entries first. Thread-safe throughout.
  explicit ResultCache(std::string disk_dir = "",
                       std::uint64_t size_budget_bytes = 0);

  // On a hit fills `out` and returns true; a disk hit is also promoted
  // into the in-memory map and touches the entry's mtime so budget
  // eviction stays LRU rather than FIFO.
  bool lookup(const CacheKey& key, RunOutcome* out);

  void store(const CacheKey& key, const RunOutcome& outcome);

  // Sweeps crash debris older than `min_age_seconds` from the cache
  // directory under the advisory lock: orphaned `.tmp.*` files (a writer
  // died between creating its temp and renaming it into place) and
  // `.corrupt` quarantine files (kept for debugging, not forever). A TTL
  // of zero sweeps everything — callers sharing the directory with live
  // writers should keep a TTL comfortably above one store's duration so an
  // in-flight temp is never swept out from under its writer. No-op for an
  // in-memory-only cache or when the directory does not exist.
  JanitorReport janitor_sweep(double min_age_seconds);

  Counters counters() const;
  const std::string& disk_dir() const { return disk_dir_; }
  std::uint64_t size_budget_bytes() const { return size_budget_bytes_; }

  // Summed size of the healthy on-disk entries (what the budget bounds;
  // debris and the lock file are excluded). Exposed for tests and the
  // serve layer's metrics.
  std::uint64_t disk_usage_bytes() const;

  // Where a key's on-disk entry lives; `<entry_path>.corrupt` is its
  // quarantine name. Exposed for the self-healing tests.
  std::string entry_path(const CacheKey& key) const;

 private:
  bool load_from_disk(const CacheKey& key, RunOutcome* out);
  void store_to_disk(const CacheKey& key, const RunOutcome& outcome);
  void quarantine_entry(const std::string& path);
  void enforce_size_budget_locked(const std::string& just_stored);

  std::string disk_dir_;
  std::uint64_t size_budget_bytes_ = 0;
  // Serializes this process's mutating disk operations; the advisory file
  // lock (taken inside, see cache.cpp) serializes against other processes.
  // Distinct from mu_ so counter reads never wait on I/O.
  mutable std::mutex io_mu_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, RunOutcome> memory_;
  Counters counters_;
};

}  // namespace t1000
