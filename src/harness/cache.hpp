// Content-keyed memoization of RunOutcomes.
//
// A run is identified by everything that determines its result: the
// workload name, a hash of the assembled program (text encoding + data
// image, so edited kernels never alias stale results), the selector, and
// every machine/policy field — captured as the canonical compact JSON of
// the RunSpec plus the program hash. The cache has two levels:
//
//  * in-memory: a mutex-guarded map shared by the grid's worker threads,
//    so sweeping one axis inside a process never re-simulates a point, and
//  * on-disk (optional): one JSON file per key under a cache directory, so
//    re-running a bench binary only simulates what changed since the last
//    invocation. Files are written to a temp name and renamed into place;
//    a torn or stale file is treated as a miss, never an error.
//
// The on-disk level is self-healing: a corrupt or version-mismatched entry
// (torn write, garbage, truncated-to-empty, valid JSON from an older
// schema) is quarantined exactly once — renamed to `<entry>.corrupt` so
// the bytes survive for debugging but never get re-parsed — and the next
// store rewrites a fresh entry, so one bad file costs one extra
// simulation, not a permanent per-cold-run error.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "harness/experiment.hpp"

namespace t1000 {

// Cache-layer I/O failure. The cache itself never throws (unreadable disks
// degrade to misses and counters); the type exists so layers above it —
// the grid's error taxonomy, test fault hooks — can classify cache I/O
// failures distinctly from simulation or JSON errors.
class CacheIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Stable content hash of a program: FNV-1a over the encoded text segment
// and the data image.
std::uint64_t program_hash(const Program& program);

struct CacheKey {
  std::string text;  // canonical compact JSON of the identity fields
  std::string hash;  // hex fnv1a64(text); names the on-disk entry
};

// `max_steps` is the workload's functional-step bound: the committed trace
// a run replays is a function of (program, selector, policy, max_steps)
// plus the trace format version, so both are part of the identity — a
// changed bound or format can never alias a stale memoized result.
CacheKey make_cache_key(const RunSpec& spec, std::uint64_t program_hash,
                        std::uint64_t max_steps);

class ResultCache {
 public:
  struct Counters {
    std::uint64_t memory_hits = 0;
    std::uint64_t disk_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t disk_errors = 0;  // real I/O failures (read/write/rename)
    // Corrupt or version-mismatched entries moved to <entry>.corrupt; each
    // bad file is quarantined exactly once, then repaired by the next store.
    std::uint64_t quarantined = 0;
    // Healthy entries of a *different* key replaced by a store that
    // collided on the entry hash (best-effort; racing same-key writers can
    // over-count by one).
    std::uint64_t evicted = 0;

    std::uint64_t hits() const { return memory_hits + disk_hits; }
    std::uint64_t lookups() const { return hits() + misses; }
  };

  // `disk_dir` empty = in-memory only. The directory is created on first
  // store. Thread-safe throughout.
  explicit ResultCache(std::string disk_dir = "");

  // On a hit fills `out` and returns true; a disk hit is also promoted
  // into the in-memory map.
  bool lookup(const CacheKey& key, RunOutcome* out);

  void store(const CacheKey& key, const RunOutcome& outcome);

  Counters counters() const;
  const std::string& disk_dir() const { return disk_dir_; }

  // Where a key's on-disk entry lives; `<entry_path>.corrupt` is its
  // quarantine name. Exposed for the self-healing tests.
  std::string entry_path(const CacheKey& key) const;

 private:
  bool load_from_disk(const CacheKey& key, RunOutcome* out);
  void store_to_disk(const CacheKey& key, const RunOutcome& outcome);
  void quarantine_entry(const std::string& path);

  std::string disk_dir_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, RunOutcome> memory_;
  Counters counters_;
};

}  // namespace t1000
