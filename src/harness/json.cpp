#include "harness/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

namespace t1000 {
namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static const char* kNames[] = {"null",   "bool",  "int",   "double",
                                 "string", "array", "object"};
  throw JsonError(std::string("json: expected ") + want + ", have " +
                  kNames[static_cast<int>(got)]);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) throw JsonError("json: non-finite number");
  char buf[32];
  // Shortest round-trip form: deterministic and locale-independent.
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw JsonError("json: " + why + " at offset " + std::to_string(pos_));
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char get() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (get() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) fail("invalid literal");
    pos_ += word.size();
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect_word("true"); return Json(true);
      case 'f': expect_word("false"); return Json(false);
      case 'n': expect_word("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') { ++pos_; return obj; }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      const char c = get();
      if (c == '}') return obj;
      if (c != ',') { --pos_; fail("expected ',' or '}'"); }
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') { ++pos_; return arr; }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = get();
      if (c == ']') return arr;
      if (c != ',') { --pos_; fail("expected ',' or ']'"); }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = get();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = get();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = get();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs are not
          // combined; the engine never emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9'))) {
      ++pos_;
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("invalid number");
    if (!is_double) {
      std::int64_t v = 0;
      const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) {
        return Json(static_cast<long long>(v));
      }
      // Integer overflow: fall through to double.
    }
    double d = 0.0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size()) {
      fail("invalid number");
    }
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json::Json(unsigned long long v) : type_(Type::kInt) {
  if (v > static_cast<unsigned long long>(
              std::numeric_limits<std::int64_t>::max())) {
    throw JsonError("json: integer exceeds int64 range");
  }
  int_ = static_cast<std::int64_t>(v);
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

std::int64_t Json::as_int() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) {
    const auto v = static_cast<std::int64_t>(double_);
    if (static_cast<double>(v) != double_) type_error("int", type_);
    return v;
  }
  type_error("int", type_);
}

std::uint64_t Json::as_uint() const {
  const std::int64_t v = as_int();
  if (v < 0) throw JsonError("json: expected non-negative integer");
  return static_cast<std::uint64_t>(v);
}

double Json::as_double() const {
  if (type_ == Type::kDouble) return double_;
  if (type_ == Type::kInt) return static_cast<double>(int_);
  type_error("number", type_);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  type_error("array or object", type_);
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::kArray) type_error("array", type_);
  if (index >= array_.size()) throw JsonError("json: array index out of range");
  return array_[index];
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

Json& Json::operator[](std::string_view key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(std::string(key), Json());
  return object_.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr) throw JsonError("json: missing key '" + std::string(key) + "'");
  return *v;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kDouble: append_double(out, double_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        append_escaped(out, object_[i].first);
        out += indent < 0 ? ":" : ": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) {
    // int 3 == double 3.0, as in most JSON implementations.
    if (is_number() && other.is_number()) {
      return as_double() == other.as_double();
    }
    return false;
  }
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kInt: return int_ == other.int_;
    case Type::kDouble: return double_ == other.double_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

std::uint64_t fnv1a64(const void* data, std::size_t bytes, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view text, std::uint64_t seed) {
  return fnv1a64(text.data(), text.size(), seed);
}

std::string to_hex(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

bool write_json_file(const std::string& path, const Json& value) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  os << value.dump(2) << "\n";
  if (!os.flush()) {
    std::fprintf(stderr, "error: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace t1000
