// The parallel experiment engine.
//
// Every paper artifact is a grid of (workload x selector x machine config)
// runs. ExperimentGrid takes that grid declaratively — register workloads,
// add RunSpecs — and schedules it across a std::thread worker pool
// (--jobs N, default hardware concurrency). Two properties make the grid
// strictly better than the hand-rolled nested loops it replaces:
//
//  * the expensive per-workload profile/extraction (AnalyzedProgram) is
//    built once per workload, on whichever worker first needs it, and
//    shared by every spec that touches the workload; and
//  * completed RunOutcomes are memoized in a content-keyed cache
//    (harness/cache.hpp), in-memory and optionally on-disk, so re-running
//    a bench or sweeping one axis only simulates what changed.
//
// Results come back in spec insertion order regardless of the schedule, so
// a parallel run is byte-identical to a serial one (the determinism test
// in tests/harness/grid_test.cpp holds the engine to that). Wall-clock and
// cache hit/miss counters are recorded per run and exported in the JSON
// "engine" section, keeping the perf trajectory observable across PRs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "harness/cache.hpp"
#include "harness/experiment.hpp"
#include "harness/json.hpp"
#include "harness/options.hpp"

namespace t1000 {

struct GridOptions {
  int jobs = 0;           // worker threads; 0 = hardware concurrency
  std::string cache_dir;  // on-disk result cache; empty = disabled
};

struct RunResult {
  RunSpec spec;
  RunOutcome outcome;
  bool cache_hit = false;  // served from memo cache (memory or disk)
  double wall_ms = 0.0;    // this run's wall-clock on its worker
};

struct EngineStats {
  int jobs = 1;
  std::uint64_t runs = 0;
  std::uint64_t simulated = 0;  // cache misses, i.e. actual work
  ResultCache::Counters cache;
  double wall_ms = 0.0;  // whole-grid wall-clock
  // Trace sharing across the simulated runs: distinct committed traces
  // recorded (one per (workload, selector, policy)) vs. timing runs served
  // by replaying an already-recorded trace.
  std::uint64_t traces_recorded = 0;
  std::uint64_t trace_replays = 0;
};

class GridResult {
 public:
  GridResult(std::vector<RunResult> runs, EngineStats engine);

  const std::vector<RunResult>& runs() const { return runs_; }
  const EngineStats& engine() const { return engine_; }

  // Lookup by the (workload, label) pair the bench declared; throws
  // std::out_of_range when absent.
  const RunResult& at(std::string_view workload, std::string_view label) const;
  const RunOutcome& outcome(std::string_view workload,
                            std::string_view label) const {
    return at(workload, label).outcome;
  }
  const SimStats& stats(std::string_view workload,
                        std::string_view label) const {
    return at(workload, label).outcome.stats;
  }

  // Deterministic results section: specs + outcomes in insertion order,
  // independent of scheduling, caching, and timing.
  Json results_json() const;
  // Full document: {"results": [...], "engine": {...}}. The engine section
  // carries the nondeterministic observability data (wall-clock, cache
  // counters) and is excluded from determinism comparisons.
  Json to_json() const;

  // One-line scheduling/caching summary for a bench's stdout footer.
  std::string engine_summary() const;

 private:
  std::vector<RunResult> runs_;
  EngineStats engine_;
};

class ExperimentGrid {
 public:
  // Registers a workload the grid may reference by name. Re-registering
  // the same name replaces the previous definition.
  void add_workload(const Workload& workload);
  void add_workloads(const std::vector<Workload>& workloads);

  // Queues one run. The spec's workload must already be registered.
  void add(RunSpec spec);

  std::size_t size() const { return specs_.size(); }

  // Executes every queued spec and returns results in insertion order.
  // Worker exceptions propagate to the caller after the pool drains.
  GridResult run(const GridOptions& options = {}) const;

 private:
  std::vector<Workload> workloads_;
  std::map<std::string, std::size_t, std::less<>> index_;  // name -> slot
  std::vector<RunSpec> specs_;
};

// Number of workers `options.jobs` resolves to on this host.
int resolve_jobs(int requested);

// Shared command-line surface for the bench binaries: --jobs, --json,
// --cache-dir, --no-cache, --help.
struct BenchOptions {
  GridOptions grid;
  std::string json_path;  // --json <path>; empty = no JSON export
};

// Parses bench argv (exits on --help/errors, like OptionParser). The
// default cache dir is $T1000_CACHE_DIR when set, else ".t1000-cache";
// --no-cache disables the on-disk cache entirely.
BenchOptions parse_bench_options(int argc, char** argv,
                                 const std::string& name,
                                 const std::string& summary);

// Renders the standard bench tail: optional --json export plus the engine
// summary line. Returns 0 on success (the bench's exit code).
int finish_bench(const GridResult& result, const BenchOptions& options);

}  // namespace t1000
