// The parallel experiment engine.
//
// Every paper artifact is a grid of (workload x selector x machine config)
// runs. ExperimentGrid takes that grid declaratively — register workloads,
// add RunSpecs — and schedules it across a std::thread worker pool
// (--jobs N, default hardware concurrency). Two properties make the grid
// strictly better than the hand-rolled nested loops it replaces:
//
//  * the expensive per-workload profile/extraction (AnalyzedProgram) is
//    built once per workload, on whichever worker first needs it, and
//    shared by every spec that touches the workload; and
//  * completed RunOutcomes are memoized in a content-keyed cache
//    (harness/cache.hpp), in-memory and optionally on-disk, so re-running
//    a bench or sweeping one axis only simulates what changed.
//
// Results come back in spec insertion order regardless of the schedule, so
// a parallel run is byte-identical to a serial one (the determinism test
// in tests/harness/grid_test.cpp holds the engine to that). Wall-clock and
// cache hit/miss counters are recorded per run and exported in the JSON
// "engine" section, keeping the perf trajectory observable across PRs.
//
// Execution is fault-isolated: one failing RunSpec is recorded (status +
// error taxonomy + message, see RunStatus/RunErrorKind) while every other
// run completes untouched, so a large sweep degrades to N-1 results
// instead of zero. tests/harness/fault_injection_test.cpp pins that
// contract differentially against a fault-free grid.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include <memory>

#include "harness/cache.hpp"
#include "harness/experiment.hpp"
#include "harness/json.hpp"
#include "harness/options.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace t1000 {

// How one queued RunSpec ended. A failing run no longer aborts the grid:
// the failure is recorded here and the workers keep draining the queue
// (GridOptions::strict restores the old fail-fast rethrow).
enum class RunStatus {
  kOk,       // outcome is valid
  kError,    // run threw; see RunResult::error_kind / error
  kTimeout,  // exceeded GridOptions::run_budget_ms (or a hook-raised budget)
  kSkipped,  // never executed: an earlier failure tripped strict/fail_limit
};

// Coarse taxonomy of what threw, so sweeps over thousands of runs can be
// triaged from the results JSON without re-running anything.
enum class RunErrorKind {
  kNone,          // status is kOk, kTimeout (budget), or kSkipped
  kSim,           // SimError: simulation/validation failure
  kVerify,        // VerifyError: static verification failed (RunSpec::verify)
  kJson,          // JsonError: serialization or cache-entry decode failure
  kCacheIo,       // CacheIoError: result-cache I/O failure
  kStdException,  // any other std::exception
  kUnknown,       // non-std::exception throw
};

// Thrown (by cooperative budget checks and test fault hooks) to mark a run
// as timed out rather than failed.
class GridTimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Classifies the in-flight exception of a catch block into the taxonomy
// and captures its message. Shared by the grid workers and the tools'
// uniform error exit (tools/tool_common.hpp).
RunErrorKind classify_current_exception(std::string* message);

struct GridOptions {
  int jobs = 0;           // worker threads; 0 = hardware concurrency
  std::string cache_dir;  // on-disk result cache; empty = disabled
  // Size budget for the on-disk cache (0 = unbounded): after each store,
  // least-recently-used entries are evicted until the directory fits
  // (harness/cache.hpp). Ignored when `cache` is set — a borrowed cache
  // carries its own budget.
  std::uint64_t cache_budget_bytes = 0;
  // Borrowed long-lived result cache: when set, the grid uses it instead
  // of constructing one per run, so a process that runs many grids (the
  // t1000-serve daemon) keeps one hot in-memory tier across requests.
  // cache_dir/cache_budget_bytes are ignored; EngineStats::cache reports
  // the *delta* this grid contributed. Must outlive run(); thread-safe,
  // but delta attribution assumes grids on one shared cache run one at a
  // time (concurrent grids see a merged delta).
  ResultCache* cache = nullptr;
  // Fail-fast mode: the first failing run aborts the grid and rethrows its
  // exception after the pool drains (the pre-fault-isolation contract,
  // kept for tests that want a hard stop).
  bool strict = false;
  // Per-run wall-clock budget in milliseconds; 0 = unlimited. A run that
  // exceeds it is recorded as RunStatus::kTimeout instead of kOk, turning
  // runaway simulations into a diagnosable outcome rather than a hung
  // sweep. (Step budgets are per-spec: RunSpec::max_cycles.)
  double run_budget_ms = 0.0;
  // Degraded-grid circuit breaker: once this many runs have failed or
  // timed out, remaining unstarted specs are marked kSkipped instead of
  // executed; 0 = no limit.
  std::uint64_t fail_limit = 0;
  // Pre-flight static verification (--verify): forces RunSpec::verify on
  // every queued spec before scheduling, so each distinct (workload,
  // selector, policy) preparation is verified once and a violation surfaces
  // as RunStatus::kError with RunErrorKind::kVerify. Because the flag is
  // part of the cache identity, a cache hit under --verify is a previously
  // verified configuration, not a skipped check.
  bool verify = false;
  // Stall observation (--observe): forces RunSpec::observe on every queued
  // spec before scheduling, so each timing run attributes its stall cycles
  // (RunOutcome::stalls) and the engine aggregates a grid-level breakdown
  // (EngineStats::stalls). Part of the cache identity, like verify.
  bool observe = false;
  // Config-parallel batched replay (--no-batch disables): cache-missing
  // specs that share a batch identity (RunIdentity::batch_key — same
  // workload, selector, policy, and verify flag; the lane-grouping rule)
  // are timed as lanes of one simulate_replay_batch sweep instead of N
  // sequential replays. Per-run status, cache entries, fault isolation,
  // and observe/verify semantics are unchanged, and the results are
  // byte-identical to the sequential path (pinned by tests). Forced off
  // when run_budget_ms > 0: a per-run wall-clock budget needs per-run
  // execution.
  bool batch = true;
  // Optional harness metrics sink (obs/metrics.hpp): when set, the engine
  // records its scheduling/caching counters and per-run wall-clock into it
  // ("grid.*" instruments). Borrowed, never owned; must outlive run().
  // Instruments are shared get-or-create, so one registry can observe many
  // grids — the worker-pool updates are lock-free and TSan-clean.
  obs::MetricsRegistry* metrics = nullptr;
  // Optional event journal (obs/journal.hpp): when set together with an
  // active `trace`, every worker installs the trace as its thread-local
  // context and emits run/batch spans and cache.lookup/cache.store
  // instants into the journal — and the experiment's phase spans
  // (decode/record/replay/verify) parent under the enclosing run span.
  // Borrowed, never owned; must outlive run(). A null journal or an
  // inactive trace (trace_id == 0) makes every emission a no-op.
  obs::Journal* journal = nullptr;
  // The trace this grid's runs belong to — a serve job's id, a bench's
  // root span. Threaded explicitly across the thread boundary: each
  // worker installs it via ScopedTraceContext before touching a spec.
  obs::TraceContext trace;
  // Test-only fault injection: invoked on the worker thread before each
  // run executes (cache lookup included); may throw or delay to simulate
  // failures. Exceptions it raises are classified like any other.
  std::function<void(const RunSpec&)> fault_hook;
};

struct RunResult {
  RunSpec spec;
  RunOutcome outcome;      // valid only when status == RunStatus::kOk
  RunStatus status = RunStatus::kOk;
  RunErrorKind error_kind = RunErrorKind::kNone;
  std::string error;       // captured what() / diagnostic; empty when ok
  bool cache_hit = false;  // served from memo cache (memory or disk)
  double wall_ms = 0.0;    // this run's wall-clock on its worker

  bool ok() const { return status == RunStatus::kOk; }
};

struct EngineStats {
  int jobs = 1;
  std::uint64_t runs = 0;
  std::uint64_t simulated = 0;  // cache misses, i.e. actual work
  // Outcome-status tally: ok + failed + timeouts + skipped == runs.
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t skipped = 0;
  ResultCache::Counters cache;
  double wall_ms = 0.0;  // whole-grid wall-clock
  // Trace sharing across the simulated runs: distinct committed traces
  // recorded (one per (workload, selector, policy)) vs. timing runs served
  // by replaying an already-recorded trace.
  std::uint64_t traces_recorded = 0;
  std::uint64_t trace_replays = 0;
  // Config-parallel batching: sweeps dispatched (>= 2 cache misses sharing
  // a prepared trace, timed in one batched replay) and the runs that were
  // timed as lanes of one.
  std::uint64_t batches = 0;
  std::uint64_t batched_runs = 0;
  // Grid-level stall attribution: how many ok runs carried a breakdown
  // (RunSpec::observe), and their element-wise sum.
  std::uint64_t observed = 0;
  StallBreakdown stalls;
  // Static-verification overhead under --verify: distinct preparations
  // verified (memoized once per (workload, selector, policy)) and the
  // wall-clock the verifier cost across them.
  std::uint64_t verified_preps = 0;
  double verify_ms = 0.0;

  std::uint64_t incomplete() const { return failed + timeouts + skipped; }
};

class GridResult {
 public:
  GridResult(std::vector<RunResult> runs, EngineStats engine);

  const std::vector<RunResult>& runs() const { return runs_; }
  const EngineStats& engine() const { return engine_; }

  // Lookup by the (workload, label) pair the bench declared; throws
  // std::out_of_range when absent. The returned RunResult carries its
  // status — callers that can degrade gracefully check r.ok().
  const RunResult& at(std::string_view workload, std::string_view label) const;
  // True when every run of `workload` completed ok — the benches' guard
  // for skipping a table row instead of crashing on a failed cell (the
  // split still reaches stderr and the exit code via finish_bench).
  bool workload_ok(std::string_view workload) const;
  // Outcome accessors refuse to hand out a failed run's (zeroed) outcome:
  // they throw std::runtime_error carrying the run's status, error kind,
  // and message, so a bench reading a poisoned cell fails loudly instead
  // of plotting garbage.
  const RunOutcome& outcome(std::string_view workload,
                            std::string_view label) const;
  const SimStats& stats(std::string_view workload,
                        std::string_view label) const {
    return outcome(workload, label).stats;
  }

  // Deterministic results section: specs + outcomes in insertion order,
  // independent of scheduling, caching, and timing.
  Json results_json() const;
  // Full document: {"results": [...], "engine": {...}}. The engine section
  // carries the nondeterministic observability data (wall-clock, cache
  // counters) and is excluded from determinism comparisons.
  Json to_json() const;

  // One-line scheduling/caching summary for a bench's stdout footer.
  std::string engine_summary() const;

 private:
  std::vector<RunResult> runs_;
  EngineStats engine_;
};

class ExperimentGrid {
 public:
  // Registers a workload the grid may reference by name. Re-registering
  // the same name replaces the previous definition.
  void add_workload(const Workload& workload);
  void add_workloads(const std::vector<Workload>& workloads);

  // Queues one run. The spec's workload must already be registered.
  void add(RunSpec spec);

  std::size_t size() const { return specs_.size(); }

  // Executes every queued spec and returns results in insertion order.
  // A failing spec is recorded in its RunResult (status + taxonomy +
  // message) while the rest of the grid keeps running; the grid only
  // throws for infrastructure errors outside any one run, or when
  // options.strict rethrows the first per-run failure after the pool
  // drains.
  GridResult run(const GridOptions& options = {}) const;

 private:
  std::vector<Workload> workloads_;
  std::map<std::string, std::size_t, std::less<>> index_;  // name -> slot
  std::vector<RunSpec> specs_;
};

// Number of workers `options.jobs` resolves to on this host.
int resolve_jobs(int requested);

// Shared command-line surface for the bench binaries: --jobs, --json,
// --cache-dir, --no-cache, --strict, --keep-going, --run-budget-ms,
// --help.
struct BenchOptions {
  GridOptions grid;
  std::string json_path;  // --json <path>; empty = no JSON export
  // --metrics-out <path>: dump the engine's metrics registry as JSON after
  // the grid drains. The registry is created by parse_bench_options and
  // wired into grid.metrics; empty path = no registry, no export.
  std::string metrics_path;
  std::shared_ptr<obs::MetricsRegistry> metrics;
  // --journal-out <path>: append-only JSONL event journal of the grid's
  // run/batch/cache/phase spans (obs/journal.hpp). Created by
  // parse_bench_options with a fresh root trace and wired into
  // grid.journal/grid.trace; empty path = no journal.
  std::string journal_path;
  std::shared_ptr<obs::Journal> journal;
  // --keep-going: exit 0 even when some runs failed (the failures still
  // show in the results JSON and engine summary). Default is to exit
  // nonzero so CI catches degraded sweeps.
  bool keep_going = false;
};

// Parses bench argv (exits on --help/errors, like OptionParser). The
// default cache dir is $T1000_CACHE_DIR when set, else ".t1000-cache";
// --no-cache disables the on-disk cache entirely.
BenchOptions parse_bench_options(int argc, char** argv,
                                 const std::string& name,
                                 const std::string& summary);

// Renders the standard bench tail: optional --json export plus the engine
// summary line. Returns the bench's exit code: 0 when every run completed
// ok (or --keep-going was given), 1 when the JSON export failed or any
// run failed/timed out/was skipped.
int finish_bench(const GridResult& result, const BenchOptions& options);

}  // namespace t1000
