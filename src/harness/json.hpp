// Minimal self-contained JSON value: build, serialize, and parse.
//
// The experiment engine uses JSON in three places: the `--json` export every
// bench/tool grew in this layer, the content-keyed on-disk result cache
// (entries are JSON files), and the determinism tests that compare a
// parallel grid run byte-for-byte with a serial one. That last use imposes
// the two properties this implementation guarantees and the standard
// library does not:
//
//  * object members keep insertion order (no hash/map reordering), and
//  * numbers render deterministically (integers exactly; doubles via
//    shortest-round-trip std::to_chars).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace t1000 {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(long v) : type_(Type::kInt), int_(v) {}
  Json(long long v) : type_(Type::kInt), int_(v) {}
  Json(unsigned v) : type_(Type::kInt), int_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long v) : Json(static_cast<unsigned long long>(v)) {}
  Json(unsigned long long v);  // throws JsonError above INT64_MAX
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::kString), string_(s) {}

  static Json array() { return Json(Type::kArray); }
  static Json object() { return Json(Type::kObject); }

  template <typename T>
  static Json array_of(const std::vector<T>& values) {
    Json a = array();
    for (const T& v : values) a.push_back(Json(v));
    return a;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const;
  std::int64_t as_int() const;     // exact; throws on doubles with fraction
  std::uint64_t as_uint() const;   // as_int, rejecting negatives
  double as_double() const;        // ints promote
  const std::string& as_string() const;

  // Array access.
  std::size_t size() const;  // array/object element count
  const Json& at(std::size_t index) const;
  void push_back(Json value);
  const std::vector<Json>& items() const;

  // Object access. operator[] inserts a null member on first use (build
  // side); find/at are the lookup side.
  Json& operator[](std::string_view key);
  const Json* find(std::string_view key) const;  // nullptr when absent
  const Json& at(std::string_view key) const;    // throws when absent
  const std::vector<std::pair<std::string, Json>>& members() const;

  // Serialization. indent < 0 emits the compact single-line form used for
  // cache keys; indent >= 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  // Strict RFC-8259 parser (no comments, no trailing commas).
  static Json parse(std::string_view text);

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

 private:
  explicit Json(Type t) : type_(t) {}
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

// FNV-1a 64-bit, the engine's content-hash primitive (cache keys, program
// identity). Stable across platforms and runs by construction.
std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed = 0xCBF29CE484222325ull);
std::uint64_t fnv1a64(std::string_view text,
                      std::uint64_t seed = 0xCBF29CE484222325ull);
std::string to_hex(std::uint64_t value);

// Writes `value` (pretty-printed, trailing newline) to `path`. Returns
// false and prints to stderr on I/O failure. Shared by the benches'
// finish_bench() and the tools' --json export.
bool write_json_file(const std::string& path, const Json& value);

}  // namespace t1000
