#include "harness/cache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string_view>
#include <utility>
#include <vector>

#include "harness/identity.hpp"
#include "harness/serialize.hpp"
#include "sim/trace.hpp"
#include "sim/ucode.hpp"

namespace t1000 {
namespace {

namespace fs = std::filesystem;

// v2: replay-backed runs — keys grew the trace identity (max_steps +
// trace format version), outcomes grew trace_steps/trace_hash.
// v3: keys grew the verify flag — a verified run is a distinct entry from
// an unverified one of the same configuration.
// v4: traces are recorded through the pre-decoded uop interpreter — keys
// grew the decoded-format version, and the trace fingerprint changed
// (wider content-hash folding).
constexpr int kEntryVersion = 4;

enum class ReadStatus {
  kOk,       // file read; *out holds its bytes (possibly empty)
  kMissing,  // ENOENT: a plain cache miss, not an error
  kError,    // open or read failed for a present path (EACCES, EISDIR, ...)
};

// Distinguishes "no entry" from "entry we cannot read": only the latter is
// a disk error, and an empty-but-present file is a corrupt entry rather
// than a miss. stdio keeps errno observable — iostreams fold ENOENT,
// EACCES, and EISDIR into one failbit.
ReadStatus read_file(const std::string& path, std::string* out) {
  errno = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return errno == ENOENT ? ReadStatus::kMissing : ReadStatus::kError;
  }
  std::string text;
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof buf, f);
    text.append(buf, n);
    if (n < sizeof buf) {
      const bool failed = std::ferror(f) != 0;
      std::fclose(f);
      if (failed) return ReadStatus::kError;
      break;
    }
  }
  *out = std::move(text);
  return ReadStatus::kOk;
}

// Advisory cross-process lock on a cache directory: `<dir>/.lock` held via
// flock(2) for the scope of the object. Mutating disk operations (store,
// eviction, janitor) take it so probe-and-rename sequences are atomic with
// respect to every other lock-holding writer on the same directory; the
// read path never does (rename publication keeps readers safe for free).
// Degrades gracefully: if the lock file cannot be opened or locked the
// operation proceeds unlocked — exactly the pre-lock behaviour — because
// an advisory lock that fails open must not turn a working cache into a
// dead one.
class DirLock {
 public:
  explicit DirLock(const std::string& dir) {
    const std::string path = dir + "/.lock";
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0666);
    if (fd_ < 0) return;
    int rc;
    do {
      rc = ::flock(fd_, LOCK_EX);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;
  ~DirLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  bool held() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

// Healthy entry files are named `<16 hex>.json`; everything else in the
// directory (lock file, temp files, quarantine files) is not an entry and
// is never budget-counted or budget-evicted.
bool is_entry_name(const std::string& name) {
  constexpr std::string_view kExt = ".json";
  if (name.size() != 16 + kExt.size()) return false;
  if (std::string_view(name).substr(16) != kExt) return false;
  return std::all_of(name.begin(), name.begin() + 16, [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  });
}

bool name_is_temp(const std::string& name) {
  return name.find(".tmp.") != std::string::npos;
}

bool name_is_corrupt(const std::string& name) {
  constexpr std::string_view kExt = ".corrupt";
  return name.size() >= kExt.size() &&
         std::string_view(name).substr(name.size() - kExt.size()) == kExt;
}

double file_age_seconds(const fs::directory_entry& entry,
                        std::error_code& ec) {
  const fs::file_time_type mtime = entry.last_write_time(ec);
  if (ec) return 0.0;
  const auto age = fs::file_time_type::clock::now() - mtime;
  return std::chrono::duration<double>(age).count();
}

}  // namespace

std::uint64_t program_hash(const Program& program) {
  const std::vector<std::uint32_t> words = program.encode_text();
  std::uint64_t h = fnv1a64(words.data(), words.size() * sizeof(words[0]));
  if (!program.data.empty()) {
    h = fnv1a64(program.data.data(), program.data.size(), h);
  }
  // Hash the sizes too so (empty text, data X) and (text X, empty data)
  // cannot alias.
  const std::uint64_t sizes[2] = {words.size(), program.data.size()};
  return fnv1a64(sizes, sizeof sizes, h);
}

CacheKey make_cache_key(const RunSpec& spec, std::uint64_t program_hash,
                        std::uint64_t max_steps) {
  Json identity = Json::object();
  identity["version"] = Json(kEntryVersion);
  identity["workload"] = Json(spec.workload);
  identity["program"] = Json(to_hex(program_hash));
  // The spec's result-determining fields, assembled by the one shared
  // helper (harness/identity.hpp) so the cache key, the results JSON, and
  // the grid's batch grouping can never disagree on the field list.
  RunIdentity::append_result_fields(spec, &identity);
  // Trace identity: what the replayed committed trace depends on beyond
  // the fields above (see sim/trace.hpp).
  Json trace = Json::object();
  trace["max_steps"] = Json(max_steps);
  trace["format"] = Json(kTraceFormatVersion);
  // The decoded stream the trace is recorded through: a lowering change
  // that alters observable execution must invalidate memoized outcomes.
  trace["ucode"] = Json(kUcodeFormatVersion);
  identity["trace"] = std::move(trace);
  // Note: spec.label is presentation, not identity — two labels for the
  // same configuration share one cache entry.
  CacheKey key;
  key.text = identity.dump();
  key.hash = to_hex(fnv1a64(key.text));
  return key;
}

ResultCache::Counters ResultCache::Counters::since(
    const Counters& baseline) const {
  Counters d;
  d.memory_hits = memory_hits - baseline.memory_hits;
  d.disk_hits = disk_hits - baseline.disk_hits;
  d.misses = misses - baseline.misses;
  d.stores = stores - baseline.stores;
  d.disk_errors = disk_errors - baseline.disk_errors;
  d.quarantined = quarantined - baseline.quarantined;
  d.quarantine_removed = quarantine_removed - baseline.quarantine_removed;
  d.evicted = evicted - baseline.evicted;
  d.size_evicted = size_evicted - baseline.size_evicted;
  return d;
}

ResultCache::ResultCache(std::string disk_dir, std::uint64_t size_budget_bytes)
    : disk_dir_(std::move(disk_dir)), size_budget_bytes_(size_budget_bytes) {}

bool ResultCache::lookup(const CacheKey& key, RunOutcome* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = memory_.find(key.text);
    if (it != memory_.end()) {
      *out = it->second;
      ++counters_.memory_hits;
      return true;
    }
  }
  if (!disk_dir_.empty() && load_from_disk(key, out)) {
    // Touch the entry so size-budget eviction is least-recently-*used*,
    // not least-recently-written. Best-effort: a concurrent eviction may
    // have removed the file between the read and the touch.
    std::error_code ec;
    fs::last_write_time(entry_path(key), fs::file_time_type::clock::now(),
                        ec);
    std::lock_guard<std::mutex> lock(mu_);
    memory_.emplace(key.text, *out);
    ++counters_.disk_hits;
    return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.misses;
  return false;
}

void ResultCache::store(const CacheKey& key, const RunOutcome& outcome) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    memory_.insert_or_assign(key.text, outcome);
    ++counters_.stores;
  }
  if (!disk_dir_.empty()) store_to_disk(key, outcome);
}

ResultCache::Counters ResultCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::string ResultCache::entry_path(const CacheKey& key) const {
  return disk_dir_ + "/" + key.hash + ".json";
}

std::uint64_t ResultCache::disk_usage_bytes() const {
  if (disk_dir_.empty()) return 0;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(disk_dir_, ec)) {
    if (!is_entry_name(entry.path().filename().string())) continue;
    std::error_code sec;
    const std::uintmax_t size = entry.file_size(sec);
    if (!sec) total += size;
  }
  return total;
}

bool ResultCache::load_from_disk(const CacheKey& key, RunOutcome* out) {
  const std::string path = entry_path(key);
  std::string text;
  switch (read_file(path, &text)) {
    case ReadStatus::kMissing:
      return false;  // plain miss: nothing was ever stored here
    case ReadStatus::kError: {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.disk_errors;
      return false;
    }
    case ReadStatus::kOk:
      break;
  }
  if (text.empty()) {
    // Present but empty: a truncated entry, not a miss. Quarantine it so
    // it is never re-parsed (and re-counted) on later cold runs.
    quarantine_entry(path);
    return false;
  }
  try {
    const Json entry = Json::parse(text);
    if (entry.at("version").as_int() != kEntryVersion) {
      // An older (or newer) schema cannot be trusted to round-trip through
      // this build's deserializer; quarantine it like any corrupt entry.
      quarantine_entry(path);
      return false;
    }
    // Guard against hash collisions: the stored identity must match the
    // full key, not just the file name. A mismatch is a healthy entry for
    // a *different* key — a plain miss, left in place (storing this key
    // later evicts it).
    if (entry.at("key").as_string() != key.text) return false;
    *out = run_outcome_from_json(entry.at("outcome"));
    return true;
  } catch (const std::exception&) {
    // Unparseable bytes or a JSON shape run_outcome_from_json rejects:
    // corrupt either way. Keep the bytes under quarantine for debugging.
    quarantine_entry(path);
    return false;
  }
}

void ResultCache::quarantine_entry(const std::string& path) {
  std::error_code ec;
  fs::rename(path, path + ".corrupt", ec);
  if (!ec) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.quarantined;
    return;
  }
  // Rename failed (cross-device, permissions, a directory squatting on the
  // quarantine name, ...): fall back to removing the entry so it cannot
  // poison future runs. That outcome is *not* a quarantine — no .corrupt
  // file exists — so it gets its own counter. A remove that finds nothing
  // lost a race with another process's quarantine/removal and counts as
  // neither: the entry is gone either way.
  std::error_code rec;
  const bool removed = fs::remove(path, rec);
  std::lock_guard<std::mutex> lock(mu_);
  if (rec) {
    ++counters_.disk_errors;
  } else if (removed) {
    ++counters_.quarantine_removed;
  }
}

void ResultCache::store_to_disk(const CacheKey& key,
                                const RunOutcome& outcome) {
  std::error_code ec;
  fs::create_directories(disk_dir_, ec);
  if (ec) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.disk_errors;
    return;
  }

  Json entry = Json::object();
  entry["version"] = Json(kEntryVersion);
  entry["key"] = Json(key.text);
  entry["outcome"] = to_json(outcome);
  const std::string text = entry.dump(2) + "\n";

  // Unique temp name per writer, renamed into place so concurrent writers
  // and readers only ever see complete entries.
  static std::atomic<std::uint64_t> temp_seq{0};
  const std::string temp = entry_path(key) + ".tmp." +
                           std::to_string(::getpid()) + "." +
                           std::to_string(temp_seq.fetch_add(1));

  std::lock_guard<std::mutex> io(io_mu_);
  // Every failure path below must remove the temp: a leaked temp is crash
  // debris the janitor would otherwise have to sweep (and pre-janitor, it
  // accumulated forever). Only a successful rename consumes it.
  const auto fail_with_temp = [&] {
    std::error_code rmec;
    fs::remove(temp, rmec);
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.disk_errors;
  };

  // stdio rather than iostreams so write/close failures are observable
  // per-call (a full disk or an RLIMIT_FSIZE cap surfaces at fwrite, not
  // as one folded failbit).
  std::FILE* f = std::fopen(temp.c_str(), "wb");
  if (f == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.disk_errors;
    return;
  }
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) ==
                     text.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    fail_with_temp();
    return;
  }

  // The probe-and-rename runs under the directory lock, so the eviction
  // verdict cannot be torn by another process storing the same entry
  // between the probe and the rename (the pre-lock fs::exists probe was
  // exactly that TOCTOU, and its counter drifted under contention).
  DirLock lock(disk_dir_);
  const bool evicts = fs::exists(entry_path(key), ec);
  fs::rename(temp, entry_path(key), ec);
  if (ec) {
    fail_with_temp();
    return;
  }
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (evicts) ++counters_.evicted;
  }
  if (size_budget_bytes_ > 0) enforce_size_budget_locked(entry_path(key));
}

// Called with io_mu_ held and the directory lock held (or at least
// attempted) by the caller's scope: evicts least-recently-used entries
// until the summed entry size fits the budget. The just-stored entry is
// exempt — storing must always succeed, even when one entry alone exceeds
// the budget (the cache then holds exactly that entry).
void ResultCache::enforce_size_budget_locked(const std::string& just_stored) {
  struct EntryInfo {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t size = 0;
  };
  std::vector<EntryInfo> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(disk_dir_, ec)) {
    if (!is_entry_name(entry.path().filename().string())) continue;
    std::error_code sec;
    EntryInfo info;
    info.path = entry.path();
    info.size = entry.file_size(sec);
    if (sec) continue;
    info.mtime = entry.last_write_time(sec);
    if (sec) continue;
    total += info.size;
    entries.push_back(std::move(info));
  }
  if (total <= size_budget_bytes_) return;
  // Oldest first; ties broken by name so two same-mtime caches evict
  // identically.
  std::sort(entries.begin(), entries.end(),
            [](const EntryInfo& a, const EntryInfo& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.path < b.path;
            });
  std::uint64_t evictions = 0;
  for (const EntryInfo& info : entries) {
    if (total <= size_budget_bytes_) break;
    if (info.path == just_stored) continue;
    std::error_code rec;
    if (fs::remove(info.path, rec) && !rec) {
      total -= info.size;
      ++evictions;
    }
  }
  if (evictions > 0) {
    std::lock_guard<std::mutex> guard(mu_);
    counters_.size_evicted += evictions;
  }
}

ResultCache::JanitorReport ResultCache::janitor_sweep(double min_age_seconds) {
  JanitorReport report;
  if (disk_dir_.empty()) return report;
  std::error_code ec;
  if (!fs::is_directory(disk_dir_, ec)) return report;

  std::lock_guard<std::mutex> io(io_mu_);
  DirLock lock(disk_dir_);
  for (const auto& entry : fs::directory_iterator(disk_dir_, ec)) {
    const std::string name = entry.path().filename().string();
    const bool is_temp = name_is_temp(name);
    const bool is_corrupt = !is_temp && name_is_corrupt(name);
    if (!is_temp && !is_corrupt) continue;
    std::error_code aec;
    if (file_age_seconds(entry, aec) < min_age_seconds || aec) continue;
    std::error_code rec;
    if (!fs::remove(entry.path(), rec) || rec) continue;
    if (is_temp) {
      ++report.tmp_removed;
    } else {
      ++report.corrupt_removed;
    }
  }
  return report;
}

}  // namespace t1000
