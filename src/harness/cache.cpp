#include "harness/cache.hpp"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "harness/identity.hpp"
#include "harness/serialize.hpp"
#include "sim/trace.hpp"
#include "sim/ucode.hpp"

namespace t1000 {
namespace {

// v2: replay-backed runs — keys grew the trace identity (max_steps +
// trace format version), outcomes grew trace_steps/trace_hash.
// v3: keys grew the verify flag — a verified run is a distinct entry from
// an unverified one of the same configuration.
// v4: traces are recorded through the pre-decoded uop interpreter — keys
// grew the decoded-format version, and the trace fingerprint changed
// (wider content-hash folding).
constexpr int kEntryVersion = 4;

enum class ReadStatus {
  kOk,       // file read; *out holds its bytes (possibly empty)
  kMissing,  // ENOENT: a plain cache miss, not an error
  kError,    // open or read failed for a present path (EACCES, EISDIR, ...)
};

// Distinguishes "no entry" from "entry we cannot read": only the latter is
// a disk error, and an empty-but-present file is a corrupt entry rather
// than a miss. stdio keeps errno observable — iostreams fold ENOENT,
// EACCES, and EISDIR into one failbit.
ReadStatus read_file(const std::string& path, std::string* out) {
  errno = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return errno == ENOENT ? ReadStatus::kMissing : ReadStatus::kError;
  }
  std::string text;
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof buf, f);
    text.append(buf, n);
    if (n < sizeof buf) {
      const bool failed = std::ferror(f) != 0;
      std::fclose(f);
      if (failed) return ReadStatus::kError;
      break;
    }
  }
  *out = std::move(text);
  return ReadStatus::kOk;
}

}  // namespace

std::uint64_t program_hash(const Program& program) {
  const std::vector<std::uint32_t> words = program.encode_text();
  std::uint64_t h = fnv1a64(words.data(), words.size() * sizeof(words[0]));
  if (!program.data.empty()) {
    h = fnv1a64(program.data.data(), program.data.size(), h);
  }
  // Hash the sizes too so (empty text, data X) and (text X, empty data)
  // cannot alias.
  const std::uint64_t sizes[2] = {words.size(), program.data.size()};
  return fnv1a64(sizes, sizeof sizes, h);
}

CacheKey make_cache_key(const RunSpec& spec, std::uint64_t program_hash,
                        std::uint64_t max_steps) {
  Json identity = Json::object();
  identity["version"] = Json(kEntryVersion);
  identity["workload"] = Json(spec.workload);
  identity["program"] = Json(to_hex(program_hash));
  // The spec's result-determining fields, assembled by the one shared
  // helper (harness/identity.hpp) so the cache key, the results JSON, and
  // the grid's batch grouping can never disagree on the field list.
  RunIdentity::append_result_fields(spec, &identity);
  // Trace identity: what the replayed committed trace depends on beyond
  // the fields above (see sim/trace.hpp).
  Json trace = Json::object();
  trace["max_steps"] = Json(max_steps);
  trace["format"] = Json(kTraceFormatVersion);
  // The decoded stream the trace is recorded through: a lowering change
  // that alters observable execution must invalidate memoized outcomes.
  trace["ucode"] = Json(kUcodeFormatVersion);
  identity["trace"] = std::move(trace);
  // Note: spec.label is presentation, not identity — two labels for the
  // same configuration share one cache entry.
  CacheKey key;
  key.text = identity.dump();
  key.hash = to_hex(fnv1a64(key.text));
  return key;
}

ResultCache::ResultCache(std::string disk_dir)
    : disk_dir_(std::move(disk_dir)) {}

bool ResultCache::lookup(const CacheKey& key, RunOutcome* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = memory_.find(key.text);
    if (it != memory_.end()) {
      *out = it->second;
      ++counters_.memory_hits;
      return true;
    }
  }
  if (!disk_dir_.empty() && load_from_disk(key, out)) {
    std::lock_guard<std::mutex> lock(mu_);
    memory_.emplace(key.text, *out);
    ++counters_.disk_hits;
    return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.misses;
  return false;
}

void ResultCache::store(const CacheKey& key, const RunOutcome& outcome) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    memory_.insert_or_assign(key.text, outcome);
    ++counters_.stores;
  }
  if (!disk_dir_.empty()) store_to_disk(key, outcome);
}

ResultCache::Counters ResultCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::string ResultCache::entry_path(const CacheKey& key) const {
  return disk_dir_ + "/" + key.hash + ".json";
}

bool ResultCache::load_from_disk(const CacheKey& key, RunOutcome* out) {
  const std::string path = entry_path(key);
  std::string text;
  switch (read_file(path, &text)) {
    case ReadStatus::kMissing:
      return false;  // plain miss: nothing was ever stored here
    case ReadStatus::kError: {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.disk_errors;
      return false;
    }
    case ReadStatus::kOk:
      break;
  }
  if (text.empty()) {
    // Present but empty: a truncated entry, not a miss. Quarantine it so
    // it is never re-parsed (and re-counted) on later cold runs.
    quarantine_entry(path);
    return false;
  }
  try {
    const Json entry = Json::parse(text);
    if (entry.at("version").as_int() != kEntryVersion) {
      // An older (or newer) schema cannot be trusted to round-trip through
      // this build's deserializer; quarantine it like any corrupt entry.
      quarantine_entry(path);
      return false;
    }
    // Guard against hash collisions: the stored identity must match the
    // full key, not just the file name. A mismatch is a healthy entry for
    // a *different* key — a plain miss, left in place (storing this key
    // later evicts it).
    if (entry.at("key").as_string() != key.text) return false;
    *out = run_outcome_from_json(entry.at("outcome"));
    return true;
  } catch (const std::exception&) {
    // Unparseable bytes or a JSON shape run_outcome_from_json rejects:
    // corrupt either way. Keep the bytes under quarantine for debugging.
    quarantine_entry(path);
    return false;
  }
}

void ResultCache::quarantine_entry(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::rename(path, path + ".corrupt", ec);
  if (ec) {
    // Rename failed (cross-device, permissions, ...): fall back to removing
    // the entry so it cannot poison future runs.
    fs::remove(path, ec);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (ec) {
    ++counters_.disk_errors;
  } else {
    ++counters_.quarantined;
  }
}

void ResultCache::store_to_disk(const CacheKey& key, const RunOutcome& outcome) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(disk_dir_, ec);
  if (ec) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.disk_errors;
    return;
  }

  Json entry = Json::object();
  entry["version"] = Json(kEntryVersion);
  entry["key"] = Json(key.text);
  entry["outcome"] = to_json(outcome);
  const std::string text = entry.dump(2) + "\n";

  // Unique temp name per writer, renamed into place so concurrent writers
  // and readers only ever see complete entries.
  static std::atomic<std::uint64_t> temp_seq{0};
  const std::string temp = entry_path(key) + ".tmp." +
                           std::to_string(::getpid()) + "." +
                           std::to_string(temp_seq.fetch_add(1));
  {
    std::ofstream os(temp, std::ios::binary | std::ios::trunc);
    if (!os) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.disk_errors;
      return;
    }
    os << text;
    if (!os.flush()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.disk_errors;
      return;
    }
  }
  // A pre-existing file at the entry path can only belong to a different
  // key that collided on the hash (this store follows a miss, and corrupt
  // entries were quarantined away by the lookup): renaming over it evicts
  // the previous occupant.
  const bool evicts = fs::exists(entry_path(key), ec);
  fs::rename(temp, entry_path(key), ec);
  std::lock_guard<std::mutex> lock(mu_);
  if (ec) {
    fs::remove(temp, ec);
    ++counters_.disk_errors;
  } else if (evicts) {
    ++counters_.evicted;
  }
}

}  // namespace t1000
