#include "harness/cache.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "harness/serialize.hpp"
#include "sim/trace.hpp"

namespace t1000 {
namespace {

// v2: replay-backed runs — keys grew the trace identity (max_steps +
// trace format version), outcomes grew trace_steps/trace_hash.
constexpr int kEntryVersion = 2;

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return {};
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

}  // namespace

std::uint64_t program_hash(const Program& program) {
  const std::vector<std::uint32_t> words = program.encode_text();
  std::uint64_t h = fnv1a64(words.data(), words.size() * sizeof(words[0]));
  if (!program.data.empty()) {
    h = fnv1a64(program.data.data(), program.data.size(), h);
  }
  // Hash the sizes too so (empty text, data X) and (text X, empty data)
  // cannot alias.
  const std::uint64_t sizes[2] = {words.size(), program.data.size()};
  return fnv1a64(sizes, sizeof sizes, h);
}

CacheKey make_cache_key(const RunSpec& spec, std::uint64_t program_hash,
                        std::uint64_t max_steps) {
  Json identity = Json::object();
  identity["version"] = Json(kEntryVersion);
  identity["workload"] = Json(spec.workload);
  identity["program"] = Json(to_hex(program_hash));
  identity["selector"] = Json(selector_name(spec.selector));
  identity["machine"] = to_json(spec.machine);
  identity["policy"] = to_json(spec.policy);
  identity["max_cycles"] = Json(spec.max_cycles);
  // Trace identity: what the replayed committed trace depends on beyond
  // the fields above (see sim/trace.hpp).
  Json trace = Json::object();
  trace["max_steps"] = Json(max_steps);
  trace["format"] = Json(kTraceFormatVersion);
  identity["trace"] = std::move(trace);
  // Note: spec.label is presentation, not identity — two labels for the
  // same configuration share one cache entry.
  CacheKey key;
  key.text = identity.dump();
  key.hash = to_hex(fnv1a64(key.text));
  return key;
}

ResultCache::ResultCache(std::string disk_dir)
    : disk_dir_(std::move(disk_dir)) {}

bool ResultCache::lookup(const CacheKey& key, RunOutcome* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = memory_.find(key.text);
    if (it != memory_.end()) {
      *out = it->second;
      ++counters_.memory_hits;
      return true;
    }
  }
  if (!disk_dir_.empty() && load_from_disk(key, out)) {
    std::lock_guard<std::mutex> lock(mu_);
    memory_.emplace(key.text, *out);
    ++counters_.disk_hits;
    return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.misses;
  return false;
}

void ResultCache::store(const CacheKey& key, const RunOutcome& outcome) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    memory_.insert_or_assign(key.text, outcome);
    ++counters_.stores;
  }
  if (!disk_dir_.empty()) store_to_disk(key, outcome);
}

ResultCache::Counters ResultCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::string ResultCache::entry_path(const CacheKey& key) const {
  return disk_dir_ + "/" + key.hash + ".json";
}

bool ResultCache::load_from_disk(const CacheKey& key, RunOutcome* out) {
  const std::string text = read_file(entry_path(key));
  if (text.empty()) return false;
  try {
    const Json entry = Json::parse(text);
    if (entry.at("version").as_int() != kEntryVersion) return false;
    // Guard against hash collisions and schema drift: the stored identity
    // must match the full key, not just the file name.
    if (entry.at("key").as_string() != key.text) return false;
    *out = run_outcome_from_json(entry.at("outcome"));
    return true;
  } catch (const JsonError&) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.disk_errors;
    return false;
  }
}

void ResultCache::store_to_disk(const CacheKey& key, const RunOutcome& outcome) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(disk_dir_, ec);
  if (ec) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.disk_errors;
    return;
  }

  Json entry = Json::object();
  entry["version"] = Json(kEntryVersion);
  entry["key"] = Json(key.text);
  entry["outcome"] = to_json(outcome);
  const std::string text = entry.dump(2) + "\n";

  // Unique temp name per writer, renamed into place so concurrent writers
  // and readers only ever see complete entries.
  static std::atomic<std::uint64_t> temp_seq{0};
  const std::string temp = entry_path(key) + ".tmp." +
                           std::to_string(::getpid()) + "." +
                           std::to_string(temp_seq.fetch_add(1));
  {
    std::ofstream os(temp, std::ios::binary | std::ios::trunc);
    if (!os) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.disk_errors;
      return;
    }
    os << text;
    if (!os.flush()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.disk_errors;
      return;
    }
  }
  fs::rename(temp, entry_path(key), ec);
  if (ec) {
    fs::remove(temp, ec);
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.disk_errors;
  }
}

}  // namespace t1000
