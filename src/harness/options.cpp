#include "harness/options.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace t1000 {
namespace {

// strtol with full error detection: trailing junk, empty input, and — the
// part plain strtol silently clamps — ERANGE overflow all return false.
bool parse_long(const std::string& v, long* out) {
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(v.c_str(), &end, 0);
  if (end == v.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = parsed;
  return true;
}

}  // namespace

OptionParser::OptionParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void OptionParser::add_flag(std::string name, std::string help, bool* out) {
  options_.push_back(Option{std::move(name), "", std::move(help),
                            [out](const std::string&) {
                              *out = true;
                              return true;
                            },
                            ""});
}

void OptionParser::add_string(std::string name, std::string value_name,
                              std::string help, std::string* out) {
  options_.push_back(Option{std::move(name), std::move(value_name),
                            std::move(help),
                            [out](const std::string& v) {
                              *out = v;
                              return true;
                            },
                            ""});
}

void OptionParser::add_int(std::string name, std::string value_name,
                           std::string help, long* out) {
  options_.push_back(Option{std::move(name), std::move(value_name),
                            std::move(help),
                            [out](const std::string& v) {
                              return parse_long(v, out);
                            },
                            "an integer"});
}

void OptionParser::add_int(std::string name, std::string value_name,
                           std::string help, long* out, long min, long max) {
  options_.push_back(Option{std::move(name), std::move(value_name),
                            std::move(help),
                            [out, min, max](const std::string& v) {
                              long parsed = 0;
                              if (!parse_long(v, &parsed)) return false;
                              if (parsed < min || parsed > max) return false;
                              *out = parsed;
                              return true;
                            },
                            "an integer in [" + std::to_string(min) + ", " +
                                std::to_string(max) + "]"});
}

void OptionParser::add_double(std::string name, std::string value_name,
                              std::string help, double* out) {
  options_.push_back(Option{std::move(name), std::move(value_name),
                            std::move(help),
                            [out](const std::string& v) {
                              char* end = nullptr;
                              const double parsed =
                                  std::strtod(v.c_str(), &end);
                              if (end == v.c_str() || *end != '\0') return false;
                              *out = parsed;
                              return true;
                            },
                            "a number"});
}

void OptionParser::set_positional(std::string name, int min, int max) {
  positional_name_ = std::move(name);
  positional_min_ = min;
  positional_max_ = max;
}

std::string OptionParser::usage() const {
  std::string out = "usage: " + program_;
  if (!options_.empty()) out += " [options]";
  if (positional_max_ != 0) {
    out += " " + (positional_min_ == 0 ? "[" + positional_name_ + "]"
                                       : positional_name_);
    if (positional_max_ < 0 || positional_max_ > 1) out += "...";
  }
  out += "\n";
  if (!summary_.empty()) out += summary_ + "\n";
  if (!options_.empty()) out += "\noptions:\n";
  for (const Option& o : options_) {
    std::string lhs = "  " + o.name;
    if (!o.value_name.empty()) lhs += " <" + o.value_name + ">";
    if (lhs.size() < 26) lhs.append(26 - lhs.size(), ' ');
    out += lhs + "  " + o.help + "\n";
  }
  out += "  --help                    show this message\n";
  return out;
}

void OptionParser::fail(const std::string& message) const {
  std::fprintf(stderr, "%s: %s\n%s", program_.c_str(), message.c_str(),
               usage().c_str());
  std::exit(2);
}

std::vector<std::string> OptionParser::parse(int argc, char** argv) const {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", usage().c_str());
      std::exit(0);
    }
    if (arg.size() < 2 || arg[0] != '-' || arg == "-" ||
        (arg[0] == '-' && (std::isdigit(static_cast<unsigned char>(arg[1])) != 0))) {
      positional.push_back(arg);
      continue;
    }
    const Option* match = nullptr;
    for (const Option& o : options_) {
      if (o.name == arg) {
        match = &o;
        break;
      }
    }
    if (match == nullptr) fail("unknown option '" + arg + "'");
    std::string value;
    if (!match->value_name.empty()) {
      if (i + 1 >= argc) fail("option '" + arg + "' expects a value");
      value = argv[++i];
    }
    if (!match->apply(value)) {
      fail("bad value '" + value + "' for option '" + arg + "'" +
           (match->constraint.empty() ? ""
                                      : " (expected " + match->constraint + ")"));
    }
  }
  const int n = static_cast<int>(positional.size());
  if (n < positional_min_ ||
      (positional_max_ >= 0 && n > positional_max_)) {
    fail("expected " +
         (positional_min_ == positional_max_
              ? std::to_string(positional_min_)
              : "between " + std::to_string(positional_min_) + " and " +
                    (positional_max_ < 0 ? std::string("N")
                                         : std::to_string(positional_max_))) +
         " positional argument(s), got " + std::to_string(n));
  }
  return positional;
}

}  // namespace t1000
