// Experiment harness: runs one workload through profile -> select ->
// rewrite -> timing simulation under a machine configuration, validating
// that every rewrite preserves the workload's checksum.
//
// The unit of work is a declarative `RunSpec` ({workload, selector,
// machine, policy, max_cycles}). Direct callers hand a RunSpec to
// `WorkloadExperiment::run`; the bench binaries instead declare whole grids
// of RunSpecs and hand them to the parallel `ExperimentGrid` engine
// (harness/grid.hpp), which shares the expensive per-workload analysis and
// memoizes completed outcomes.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/verifier.hpp"
#include "extinst/rewrite.hpp"
#include "extinst/select.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"
#include "uarch/timing.hpp"
#include "workloads/workload.hpp"

namespace t1000 {

// Optional observability sinks for the experiment's internal phases.
// When `metrics` is set, each phase's wall-clock lands in a per-phase
// latency histogram (`exp.phase_ms|phase=decode/record/replay/verify`;
// the grid engine adds `phase=cache` for its cache operations). When
// `journal` is set, each phase emits a begin/end span pair parented
// under the calling thread's current TraceContext (obs/journal.hpp) —
// this is how one serve request's trace reaches the phases without
// every signature in between carrying a context. Both sinks are
// borrowed, never owned, and must outlive the experiment; an empty
// ExperimentObs (the default) makes every hook a no-op.
struct ExperimentObs {
  obs::MetricsRegistry* metrics = nullptr;
  obs::Journal* journal = nullptr;
};

// Shared bucket bounds for the `exp.phase_ms|phase=...` histograms: the
// registry aborts on a bounds mismatch for one name, so every creation
// site funnels through phase_histogram().
obs::Histogram* phase_histogram(obs::MetricsRegistry* metrics,
                                std::string_view phase);

enum class Selector {
  kNone,       // plain superscalar baseline
  kGreedy,     // Section 4
  kSelective,  // Section 5
};

// Stable lowercase names ("none"/"greedy"/"selective"), used by JSON
// serialization and cache keys.
std::string_view selector_name(Selector selector);
// Returns false (and leaves `out` untouched) for unknown names.
bool selector_from_name(std::string_view name, Selector* out);

// One declarative experiment: everything needed to reproduce a single
// (workload, selector, machine) simulation. Value-semantic and hashable by
// content, which is what makes grid scheduling and result memoization
// possible.
struct RunSpec {
  std::string workload;  // registered workload name (grid engine lookup)
  std::string label;     // series/column label, e.g. "2 PFUs" (grid lookup)
  Selector selector = Selector::kNone;
  MachineConfig machine;
  SelectPolicy policy;
  std::uint64_t max_cycles = 1ull << 32;  // timing-simulation bound
  // Opt-in pre-flight static verification (analysis/verifier.hpp): the
  // selection and rewrite are verified before any timing simulation, and a
  // failed verification aborts the run with VerifyError (surfaced by the
  // grid as RunErrorKind::kVerify). Part of the run's identity: verified
  // and unverified runs occupy distinct result-cache entries, so a cache
  // hit under verify=true is an identical, previously-verified
  // configuration.
  bool verify = false;
  // Opt-in stall-cause attribution (uarch/timing.hpp): the timing run is
  // observed, and the outcome carries a StallBreakdown charging every
  // non-committing cycle to one cause. Observation never changes SimStats
  // (pinned by tests), but — like verify — the flag is part of the run's
  // identity so observed and unobserved runs occupy distinct result-cache
  // entries and a cached observed run can round-trip its breakdown.
  bool observe = false;
};

struct RunOutcome {
  SimStats stats;
  int num_configs = 0;     // distinct extended instructions
  int num_apps = 0;        // rewrite sites
  std::vector<int> lengths;    // per config, micro-ops
  std::vector<int> lut_costs;  // per config, estimated LUTs
  std::uint32_t checksum = 0;  // functional $v0 (validated)
  // Identity of the committed trace the timing run replayed: its length in
  // functional steps and its content fingerprint (sim/trace.hpp).
  std::uint64_t trace_steps = 0;
  std::uint64_t trace_hash = 0;
  // Stall-cause attribution, filled when the run was observed
  // (RunSpec::observe); serialized with the outcome so cached observed
  // runs keep their breakdown.
  bool observed = false;
  StallBreakdown stalls;
};

// Per-workload experiment context; the (expensive) profile + extraction is
// computed once and shared across machine configurations.
class WorkloadExperiment {
 public:
  explicit WorkloadExperiment(const Workload& workload,
                              ExperimentObs obs = {});

  // The analysis pointers reference owned members; moving would dangle them.
  WorkloadExperiment(const WorkloadExperiment&) = delete;
  WorkloadExperiment& operator=(const WorkloadExperiment&) = delete;

  const Workload& workload() const { return workload_; }
  const AnalyzedProgram& analysis() const { return analysis_; }

  // The analysis a spec with this extract policy selects from. Extraction
  // is shape-sensitive (ExtractPolicy::max_width/max_inputs/max_outputs
  // gate which sites exist at all), so each distinct policy gets its own
  // memoized AnalyzedProgram; the default policy resolves to the eagerly
  // built `analysis()` without re-profiling. Thread-safe like the rest of
  // the memoization (once-guarded), and the reference stays valid for the
  // experiment's lifetime.
  const AnalyzedProgram& analysis_for(const ExtractPolicy& policy) const;

  // Runs the workload under `spec` (spec.workload/label are carried for the
  // caller's bookkeeping and ignored here). For kSelective,
  // `spec.policy.num_pfus` should match spec.machine.pfu.count (the
  // selection must know the budget it is compiling for); the
  // selective_spec() factory keeps the two in sync. Throws SimError if a
  // rewritten program's checksum diverges from the baseline.
  //
  // Timing runs replay the committed trace shared by every spec with the
  // same (selector, policy): functional execution — and for rewritten
  // programs the selection and rewrite — is paid once, then any number of
  // machine configurations are swept by replay (simulate_replay).
  //
  // const; internal memoization is mutex/once-guarded: concurrent run()
  // calls on one experiment are safe, which the grid engine relies on.
  RunOutcome run(const RunSpec& spec) const;

  // Config-parallel batched execution: times every spec as one lane of a
  // single simulate_replay_batch sweep over the shared prepared trace.
  // Every spec must share one batch identity (RunIdentity::batch_key —
  // same selector/policy/verify; machine, max_cycles, and observe vary
  // per lane); throws std::invalid_argument otherwise. Lane outcomes are
  // byte-identical to N sequential run() calls. Failures are per-lane:
  // a lane that throws (cycle bound, failed verification) carries its
  // exception in `error` while the other lanes complete — the grid's
  // fault isolation passes through unchanged.
  struct BatchRunOutcome {
    RunOutcome outcome;        // valid when !error
    std::exception_ptr error;  // null on success
  };
  std::vector<BatchRunOutcome> run_batch(
      const std::vector<RunSpec>& specs) const;

  // The shared immutable inputs `spec`'s timing run replays: the (possibly
  // rewritten) program, its EXT table (null when the program has none),
  // and the committed trace. Exposed for differential testing and tools;
  // the pointers stay valid for the experiment's lifetime.
  struct PreparedView {
    const Program* program = nullptr;
    const ExtInstTable* table = nullptr;
    const CommittedTrace* trace = nullptr;
    // The pre-decoded uop stream the trace was recorded through
    // (sim/ucode.hpp); differential tests re-execute from it directly.
    const UopProgram* ucode = nullptr;
  };
  PreparedView prepared(const RunSpec& spec) const;

  // Static verification of `spec`'s prepared run (analysis/verifier.hpp):
  // module checks for the baseline, the full selection/rewrite legality and
  // equivalence battery for rewritten programs. Memoized per (selector,
  // policy) alongside the prepared run itself — the report's deterministic
  // part is identical for every spec sharing a preparation. Does not throw
  // on diagnostics; callers decide (run() throws VerifyError on a failed
  // report when spec.verify is set).
  const VerifyReport& verify(const RunSpec& spec) const;

  // Trace-sharing observability: how many distinct (selector, policy)
  // traces were recorded, and how many run()/prepared() calls were served
  // from an already-recorded trace.
  struct TraceCounters {
    std::uint64_t recorded = 0;
    std::uint64_t reused = 0;
  };
  TraceCounters trace_counters() const {
    return {traces_recorded_.load(), trace_reuses_.load()};
  }

  // Verification observability: distinct preparations actually verified
  // (memoized verify() executions) and the wall-clock they cost — the
  // grid's `--verify` overhead, reported in its engine summary.
  struct VerifyCounters {
    std::uint64_t reports = 0;
    double wall_ms = 0.0;
  };
  VerifyCounters verify_counters() const {
    return {verify_reports_.load(),
            static_cast<double>(verify_wall_us_.load()) / 1000.0};
  }

 private:
  // Everything derived from one (selector, policy): built once, immutable
  // afterwards, shared by every machine configuration swept over it.
  struct PreparedRun {
    Selection selection;     // empty table for the baseline
    bool rewritten = false;  // false = time the pristine program
    RewriteResult rewrite;   // owned; meaningful when rewritten
    // Pre-decoded uop stream for the program this preparation executes
    // (rewrite.program + selection.table when rewritten, else the
    // experiment's baseline ucode). Decoded once under the once_flag,
    // shared read-only by every machine configuration swept over it.
    std::shared_ptr<const UopProgram> ucode;
    CommittedTrace trace;
    RunOutcome partial;  // all fields except stats (filled per machine)
  };
  struct PreparedSlot {
    std::once_flag once;
    std::shared_ptr<const PreparedRun> run;
    std::exception_ptr error;
  };
  struct VerifySlot {
    std::once_flag once;
    std::shared_ptr<const VerifyReport> report;
    std::exception_ptr error;
  };
  struct AnalysisSlot {
    std::once_flag once;
    std::shared_ptr<const AnalyzedProgram> analysis;
    std::exception_ptr error;
  };

  const PreparedRun& prepared_run(const RunSpec& spec) const;
  std::shared_ptr<const PreparedRun> build_prepared(const RunSpec& spec) const;

  Workload workload_;
  ExperimentObs obs_;
  Program program_;
  AnalyzedProgram analysis_;       // default extract policy
  std::string default_extract_key_;
  std::uint32_t base_checksum_ = 0;

  mutable std::mutex prep_mu_;  // guards the memoization map shapes
  mutable std::map<std::string, std::shared_ptr<PreparedSlot>> prepared_;
  mutable std::map<std::string, std::shared_ptr<VerifySlot>> verified_;
  mutable std::map<std::string, std::shared_ptr<AnalysisSlot>> analyses_;
  mutable std::atomic<std::uint64_t> traces_recorded_{0};
  mutable std::atomic<std::uint64_t> trace_reuses_{0};
  mutable std::atomic<std::uint64_t> verify_reports_{0};
  mutable std::atomic<std::uint64_t> verify_wall_us_{0};
};

// cycles(baseline) / cycles(variant): >1 means the variant is faster. This
// is the paper's "execution time speedup" axis in Figures 2 and 6.
double speedup(const SimStats& baseline, const SimStats& variant);

// The machine configurations used throughout the paper's evaluation.
MachineConfig baseline_machine();
MachineConfig pfu_machine(int pfus, int reconfig_latency);

// RunSpec factories for the paper's three standard configurations. `pfus`
// accepts PfuConfig::kUnlimited; selective_spec() keeps policy.num_pfus
// consistent with the machine's PFU count.
RunSpec baseline_spec(std::string workload, std::string label = "baseline");
RunSpec greedy_spec(std::string workload, std::string label, int pfus,
                    int reconfig_latency);
RunSpec selective_spec(std::string workload, std::string label, int pfus,
                       int reconfig_latency);

}  // namespace t1000
