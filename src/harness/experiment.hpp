// Experiment harness: runs one workload through profile -> select ->
// rewrite -> timing simulation under a machine configuration, validating
// that every rewrite preserves the workload's checksum. The bench binaries
// (one per paper table/figure) are thin drivers over this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "extinst/rewrite.hpp"
#include "extinst/select.hpp"
#include "uarch/timing.hpp"
#include "workloads/workload.hpp"

namespace t1000 {

enum class Selector {
  kNone,       // plain superscalar baseline
  kGreedy,     // Section 4
  kSelective,  // Section 5
};

struct RunOutcome {
  SimStats stats;
  int num_configs = 0;     // distinct extended instructions
  int num_apps = 0;        // rewrite sites
  std::vector<int> lengths;    // per config, micro-ops
  std::vector<int> lut_costs;  // per config, estimated LUTs
  std::uint32_t checksum = 0;  // functional $v0 (validated)
};

// Per-workload experiment context; the (expensive) profile + extraction is
// computed once and shared across machine configurations.
class WorkloadExperiment {
 public:
  explicit WorkloadExperiment(const Workload& workload);

  const Workload& workload() const { return workload_; }
  const AnalyzedProgram& analysis() const { return analysis_; }

  // Runs the workload under `machine`. For kSelective, `policy.num_pfus`
  // should match machine.pfu.count (the selection must know the budget it
  // is compiling for). Throws SimError if a rewritten program's checksum
  // diverges from the baseline.
  RunOutcome run(Selector selector, const MachineConfig& machine,
                 const SelectPolicy& policy = {});

 private:
  Workload workload_;
  Program program_;
  AnalyzedProgram analysis_;
  std::uint32_t base_checksum_ = 0;
};

// cycles(baseline) / cycles(variant): >1 means the variant is faster. This
// is the paper's "execution time speedup" axis in Figures 2 and 6.
double speedup(const SimStats& baseline, const SimStats& variant);

// The machine configurations used throughout the paper's evaluation.
MachineConfig baseline_machine();
MachineConfig pfu_machine(int pfus, int reconfig_latency);

}  // namespace t1000
