#include "harness/experiment.hpp"

#include <string>
#include <utility>

#include "sim/executor.hpp"

namespace t1000 {
namespace {

std::uint32_t run_functional(const Program& p, const ExtInstTable* table,
                             std::uint64_t max_steps) {
  Executor e(p, table);
  e.run(max_steps);
  if (!e.halted()) throw SimError("workload did not halt");
  return e.reg(kRegV0);
}

}  // namespace

std::string_view selector_name(Selector selector) {
  switch (selector) {
    case Selector::kNone: return "none";
    case Selector::kGreedy: return "greedy";
    case Selector::kSelective: return "selective";
  }
  return "unknown";
}

bool selector_from_name(std::string_view name, Selector* out) {
  for (const Selector s :
       {Selector::kNone, Selector::kGreedy, Selector::kSelective}) {
    if (selector_name(s) == name) {
      *out = s;
      return true;
    }
  }
  return false;
}

WorkloadExperiment::WorkloadExperiment(const Workload& workload)
    : workload_(workload), program_(workload_program(workload)) {
  analysis_ = analyze_program(program_, workload_.max_steps);
  base_checksum_ = run_functional(program_, nullptr, workload_.max_steps);
}

RunOutcome WorkloadExperiment::run(const RunSpec& spec) const {
  RunOutcome out;
  if (spec.selector == Selector::kNone) {
    out.checksum = base_checksum_;
    out.stats = simulate(program_, nullptr, spec.machine, spec.max_cycles);
    return out;
  }

  Selection sel = spec.selector == Selector::kGreedy
                      ? select_greedy(analysis_, spec.policy.lut_budget)
                      : select_selective(analysis_, spec.policy);
  const RewriteResult rr = rewrite_program(program_, sel.apps);

  out.checksum = run_functional(rr.program, &sel.table, workload_.max_steps);
  if (out.checksum != base_checksum_) {
    throw SimError("rewrite changed " + workload_.name + " checksum");
  }
  out.num_configs = sel.num_configs();
  out.num_apps = static_cast<int>(sel.apps.size());
  out.lengths = sel.lengths;
  out.lut_costs = sel.lut_costs;
  out.stats = simulate(rr.program, &sel.table, spec.machine, spec.max_cycles);
  return out;
}

double speedup(const SimStats& baseline, const SimStats& variant) {
  return static_cast<double>(baseline.cycles) /
         static_cast<double>(variant.cycles);
}

MachineConfig baseline_machine() { return MachineConfig{}; }

MachineConfig pfu_machine(int pfus, int reconfig_latency) {
  MachineConfig cfg;
  cfg.pfu.count = pfus;
  cfg.pfu.reconfig_latency = reconfig_latency;
  return cfg;
}

RunSpec baseline_spec(std::string workload, std::string label) {
  RunSpec spec;
  spec.workload = std::move(workload);
  spec.label = std::move(label);
  spec.selector = Selector::kNone;
  spec.machine = baseline_machine();
  return spec;
}

RunSpec greedy_spec(std::string workload, std::string label, int pfus,
                    int reconfig_latency) {
  RunSpec spec;
  spec.workload = std::move(workload);
  spec.label = std::move(label);
  spec.selector = Selector::kGreedy;
  spec.machine = pfu_machine(pfus, reconfig_latency);
  return spec;
}

RunSpec selective_spec(std::string workload, std::string label, int pfus,
                       int reconfig_latency) {
  RunSpec spec;
  spec.workload = std::move(workload);
  spec.label = std::move(label);
  spec.selector = Selector::kSelective;
  spec.machine = pfu_machine(pfus, reconfig_latency);
  spec.policy.num_pfus =
      pfus == PfuConfig::kUnlimited ? kUnlimitedPfus : pfus;
  return spec;
}

}  // namespace t1000
