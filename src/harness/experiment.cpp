#include "harness/experiment.hpp"

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "harness/identity.hpp"
#include "harness/serialize.hpp"
#include "sim/trace.hpp"

namespace t1000 {
namespace {

// Memoization key for a prepared run — the shared identity helper's
// preparation grain (see harness/identity.hpp for why machine config is
// deliberately absent).
std::string prep_key(const RunSpec& spec) {
  return RunIdentity::preparation_key(spec);
}

// Memoization key for a shape-sensitive analysis: the extract policy's
// canonical JSON (harness/serialize.cpp), so any future policy field joins
// the key automatically — exactly how RunIdentity handles the result cache.
std::string extract_key(const ExtractPolicy& policy) {
  return to_json(policy).dump();
}

// RAII phase instrumentation: one histogram observation
// (exp.phase_ms|phase=<name>) plus one journal span (phase.<name>) under
// the calling thread's current trace context. Both sinks optional; an
// empty ExperimentObs costs one steady_clock read per phase.
class PhaseTimer {
 public:
  PhaseTimer(const ExperimentObs& obs, std::string_view phase)
      : obs_(obs),
        phase_(phase),
        span_(obs.journal, obs::current_trace_context(),
              "phase." + std::string(phase)),
        start_(std::chrono::steady_clock::now()) {}

  ~PhaseTimer() {
    if (obs_.metrics == nullptr) return;
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    phase_histogram(obs_.metrics, phase_)
        ->observe(static_cast<std::uint64_t>(ms));
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  const ExperimentObs& obs_;
  std::string_view phase_;
  obs::Journal::SpanScope span_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

obs::Histogram* phase_histogram(obs::MetricsRegistry* metrics,
                                std::string_view phase) {
  if (metrics == nullptr) return nullptr;
  return metrics->histogram(
      "exp.phase_ms|phase=" + std::string(phase),
      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000});
}

std::string_view selector_name(Selector selector) {
  switch (selector) {
    case Selector::kNone: return "none";
    case Selector::kGreedy: return "greedy";
    case Selector::kSelective: return "selective";
  }
  return "unknown";
}

bool selector_from_name(std::string_view name, Selector* out) {
  for (const Selector s :
       {Selector::kNone, Selector::kGreedy, Selector::kSelective}) {
    if (selector_name(s) == name) {
      *out = s;
      return true;
    }
  }
  return false;
}

WorkloadExperiment::WorkloadExperiment(const Workload& workload,
                                       ExperimentObs obs)
    : workload_(workload), obs_(obs), program_(workload_program(workload)) {
  analysis_ = analyze_program(program_, workload_.max_steps);
  default_extract_key_ = extract_key(analysis_.extract);

  // Record the baseline trace eagerly: it doubles as the functional
  // checksum run every rewritten variant is validated against. The
  // analysis already decoded the baseline program (for profiling); the
  // recording replays that same uop stream.
  auto base = std::make_shared<PreparedRun>();
  base->ucode = analysis_.ucode;
  {
    const PhaseTimer phase(obs_, "record");
    base->trace = record_trace(*base->ucode, workload_.max_steps);
  }
  base_checksum_ = base->trace.checksum();
  base->partial.checksum = base_checksum_;
  base->partial.trace_steps = base->trace.size();
  base->partial.trace_hash = base->trace.content_hash();

  auto slot = std::make_shared<PreparedSlot>();
  // Consume the once_flag so later lookups see the slot as built.
  std::call_once(slot->once, [&] { slot->run = std::move(base); });
  prepared_.emplace("none", std::move(slot));
  traces_recorded_.store(1);
}

const AnalyzedProgram& WorkloadExperiment::analysis_for(
    const ExtractPolicy& policy) const {
  const std::string key = extract_key(policy);
  if (key == default_extract_key_) return analysis_;
  std::shared_ptr<AnalysisSlot> slot;
  {
    std::lock_guard<std::mutex> lock(prep_mu_);
    std::shared_ptr<AnalysisSlot>& entry = analyses_[key];
    if (!entry) entry = std::make_shared<AnalysisSlot>();
    slot = entry;
  }
  std::call_once(slot->once, [&] {
    try {
      slot->analysis = std::make_shared<const AnalyzedProgram>(
          analyze_program(program_, workload_.max_steps, policy));
    } catch (...) {
      slot->error = std::current_exception();
    }
  });
  if (slot->error) std::rethrow_exception(slot->error);
  return *slot->analysis;
}

std::shared_ptr<const WorkloadExperiment::PreparedRun>
WorkloadExperiment::build_prepared(const RunSpec& spec) const {
  // Selection reads the candidate shape from the analysis it selects over
  // (ap.extract is authoritative for the sites), so a spec with a widened
  // extract policy must select from the matching shape-sensitive analysis.
  const AnalyzedProgram& ap = analysis_for(spec.policy.extract);
  auto run = std::make_shared<PreparedRun>();
  {
    // Everything between the analysis and the trace recording — selection,
    // rewrite, uop decode — is the "decode" phase: producing the executable
    // uop stream for this preparation.
    const PhaseTimer phase(obs_, "decode");
    run->selection = spec.selector == Selector::kGreedy
                         ? select_greedy(ap, spec.policy.lut_budget)
                         : select_selective(ap, spec.policy);
    run->rewrite = rewrite_program(program_, run->selection.apps);
    run->rewritten = true;
    // PreparedRun is heap-allocated and immutable once built, so the
    // decoded stream's borrowed pointers (rewrite.program, selection.table)
    // stay valid for as long as the ucode itself is reachable.
    run->ucode = std::make_shared<const UopProgram>(
        UopProgram::build(run->rewrite.program, &run->selection.table));
  }
  {
    const PhaseTimer phase(obs_, "record");
    run->trace = record_trace(*run->ucode, workload_.max_steps);
  }
  if (run->trace.checksum() != base_checksum_) {
    throw SimError("rewrite changed " + workload_.name + " checksum");
  }
  run->partial.checksum = run->trace.checksum();
  run->partial.num_configs = run->selection.num_configs();
  run->partial.num_apps = static_cast<int>(run->selection.apps.size());
  run->partial.lengths = run->selection.lengths;
  run->partial.lut_costs = run->selection.lut_costs;
  run->partial.trace_steps = run->trace.size();
  run->partial.trace_hash = run->trace.content_hash();
  return run;
}

const WorkloadExperiment::PreparedRun& WorkloadExperiment::prepared_run(
    const RunSpec& spec) const {
  std::shared_ptr<PreparedSlot> slot;
  {
    std::lock_guard<std::mutex> lock(prep_mu_);
    std::shared_ptr<PreparedSlot>& entry = prepared_[prep_key(spec)];
    if (!entry) entry = std::make_shared<PreparedSlot>();
    slot = entry;
  }
  bool built = false;
  std::call_once(slot->once, [&] {
    built = true;
    try {
      slot->run = build_prepared(spec);
      traces_recorded_.fetch_add(1);
    } catch (...) {
      slot->error = std::current_exception();
    }
  });
  if (slot->error) std::rethrow_exception(slot->error);
  if (!built) trace_reuses_.fetch_add(1);
  return *slot->run;
}

WorkloadExperiment::PreparedView WorkloadExperiment::prepared(
    const RunSpec& spec) const {
  const PreparedRun& prep = prepared_run(spec);
  PreparedView view;
  view.program = prep.rewritten ? &prep.rewrite.program : &program_;
  view.table = prep.rewritten ? &prep.selection.table : nullptr;
  view.trace = &prep.trace;
  view.ucode = prep.ucode.get();
  return view;
}

const VerifyReport& WorkloadExperiment::verify(const RunSpec& spec) const {
  const PreparedRun& prep = prepared_run(spec);
  std::shared_ptr<VerifySlot> slot;
  {
    std::lock_guard<std::mutex> lock(prep_mu_);
    std::shared_ptr<VerifySlot>& entry = verified_[prep_key(spec)];
    if (!entry) entry = std::make_shared<VerifySlot>();
    slot = entry;
  }
  std::call_once(slot->once, [&] {
    const PhaseTimer phase(obs_, "verify");
    const auto start = std::chrono::steady_clock::now();
    try {
      const VerifyOptions options = verify_options_for(spec.policy);
      slot->report = std::make_shared<VerifyReport>(
          prep.rewritten
              ? verify_selection(analysis_for(spec.policy.extract),
                                 prep.selection, prep.rewrite, options)
              : verify_module(program_, nullptr, options));
    } catch (...) {
      slot->error = std::current_exception();
    }
    verify_reports_.fetch_add(1);
    verify_wall_us_.fetch_add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  });
  if (slot->error) std::rethrow_exception(slot->error);
  return *slot->report;
}

RunOutcome WorkloadExperiment::run(const RunSpec& spec) const {
  const PreparedRun& prep = prepared_run(spec);
  if (spec.verify) {
    const VerifyReport& report = verify(spec);
    if (!report.ok()) {
      throw VerifyError(workload_.name + " (" +
                        std::string(selector_name(spec.selector)) +
                        ") failed verification: " + report.summary());
    }
  }
  const Program& program = prep.rewritten ? prep.rewrite.program : program_;
  const ExtInstTable* table = prep.rewritten ? &prep.selection.table : nullptr;
  RunOutcome out = prep.partial;
  const PhaseTimer phase(obs_, "replay");
  if (spec.observe) {
    SimObservation obs;
    out.stats = simulate({.program = &program,
                          .ext_table = table,
                          .trace = &prep.trace,
                          .machine = spec.machine,
                          .max_cycles = spec.max_cycles,
                          .observation = &obs});
    out.observed = true;
    out.stalls = obs.stalls;
  } else {
    out.stats = simulate({.program = &program,
                          .ext_table = table,
                          .trace = &prep.trace,
                          .machine = spec.machine,
                          .max_cycles = spec.max_cycles});
  }
  return out;
}

std::vector<WorkloadExperiment::BatchRunOutcome> WorkloadExperiment::run_batch(
    const std::vector<RunSpec>& specs) const {
  std::vector<BatchRunOutcome> out(specs.size());
  if (specs.empty()) return out;
  const RunSpec& first = specs.front();
  for (const RunSpec& spec : specs) {
    if (RunIdentity::batch_key(spec) != RunIdentity::batch_key(first)) {
      throw std::invalid_argument(
          "run_batch: specs do not share a batch identity (see "
          "RunIdentity::batch_key)");
    }
  }
  // One prepared_run call per spec, exactly as N sequential run() calls
  // would make: the first may record the trace, the rest count as reuses,
  // keeping the trace counters identical across the two paths.
  const PreparedRun& prep = prepared_run(first);
  for (std::size_t i = 1; i < specs.size(); ++i) prepared_run(specs[i]);
  if (first.verify) {
    const VerifyReport& report = verify(first);
    if (!report.ok()) {
      // Verification is a property of the shared preparation: every lane
      // fails identically, as N sequential runs would.
      const std::string what =
          workload_.name + " (" + std::string(selector_name(first.selector)) +
          ") failed verification: " + report.summary();
      for (BatchRunOutcome& o : out) {
        o.error = std::make_exception_ptr(VerifyError(what));
      }
      return out;
    }
  }
  const Program& program = prep.rewritten ? prep.rewrite.program : program_;
  const ExtInstTable* table = prep.rewritten ? &prep.selection.table : nullptr;

  BatchSimRequest request;
  request.program = &program;
  request.ext_table = table;
  request.trace = &prep.trace;
  request.lanes.resize(specs.size());
  std::vector<SimObservation> observations(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    request.lanes[i].machine = specs[i].machine;
    request.lanes[i].max_cycles = specs[i].max_cycles;
    if (specs[i].observe) request.lanes[i].observation = &observations[i];
  }
  std::vector<BatchLaneResult> lanes;
  {
    const PhaseTimer phase(obs_, "replay");
    lanes = simulate_replay_batch(request);
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (lanes[i].error) {
      out[i].error = lanes[i].error;
      continue;
    }
    out[i].outcome = prep.partial;
    out[i].outcome.stats = lanes[i].stats;
    if (specs[i].observe) {
      out[i].outcome.observed = true;
      out[i].outcome.stalls = observations[i].stalls;
    }
  }
  return out;
}

double speedup(const SimStats& baseline, const SimStats& variant) {
  return static_cast<double>(baseline.cycles) /
         static_cast<double>(variant.cycles);
}

MachineConfig baseline_machine() { return MachineConfig{}; }

MachineConfig pfu_machine(int pfus, int reconfig_latency) {
  MachineConfig cfg;
  cfg.pfu.count = pfus;
  cfg.pfu.reconfig_latency = reconfig_latency;
  return cfg;
}

RunSpec baseline_spec(std::string workload, std::string label) {
  RunSpec spec;
  spec.workload = std::move(workload);
  spec.label = std::move(label);
  spec.selector = Selector::kNone;
  spec.machine = baseline_machine();
  return spec;
}

RunSpec greedy_spec(std::string workload, std::string label, int pfus,
                    int reconfig_latency) {
  RunSpec spec;
  spec.workload = std::move(workload);
  spec.label = std::move(label);
  spec.selector = Selector::kGreedy;
  spec.machine = pfu_machine(pfus, reconfig_latency);
  return spec;
}

RunSpec selective_spec(std::string workload, std::string label, int pfus,
                       int reconfig_latency) {
  RunSpec spec;
  spec.workload = std::move(workload);
  spec.label = std::move(label);
  spec.selector = Selector::kSelective;
  spec.machine = pfu_machine(pfus, reconfig_latency);
  spec.policy.num_pfus =
      pfus == PfuConfig::kUnlimited ? kUnlimitedPfus : pfus;
  return spec;
}

}  // namespace t1000
