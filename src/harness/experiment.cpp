#include "harness/experiment.hpp"

#include <string>

#include "sim/executor.hpp"

namespace t1000 {
namespace {

std::uint32_t run_functional(const Program& p, const ExtInstTable* table,
                             std::uint64_t max_steps) {
  Executor e(p, table);
  e.run(max_steps);
  if (!e.halted()) throw SimError("workload did not halt");
  return e.reg(kRegV0);
}

}  // namespace

WorkloadExperiment::WorkloadExperiment(const Workload& workload)
    : workload_(workload), program_(workload_program(workload)) {
  analysis_ = analyze_program(program_, workload_.max_steps);
  base_checksum_ = run_functional(program_, nullptr, workload_.max_steps);
}

RunOutcome WorkloadExperiment::run(Selector selector,
                                   const MachineConfig& machine,
                                   const SelectPolicy& policy) {
  RunOutcome out;
  if (selector == Selector::kNone) {
    out.checksum = base_checksum_;
    out.stats = simulate(program_, nullptr, machine);
    return out;
  }

  Selection sel = selector == Selector::kGreedy
                      ? select_greedy(analysis_, policy.lut_budget)
                      : select_selective(analysis_, policy);
  const RewriteResult rr = rewrite_program(program_, sel.apps);

  out.checksum = run_functional(rr.program, &sel.table, workload_.max_steps);
  if (out.checksum != base_checksum_) {
    throw SimError("rewrite changed " + workload_.name + " checksum");
  }
  out.num_configs = sel.num_configs();
  out.num_apps = static_cast<int>(sel.apps.size());
  out.lengths = sel.lengths;
  out.lut_costs = sel.lut_costs;
  out.stats = simulate(rr.program, &sel.table, machine);
  return out;
}

double speedup(const SimStats& baseline, const SimStats& variant) {
  return static_cast<double>(baseline.cycles) /
         static_cast<double>(variant.cycles);
}

MachineConfig baseline_machine() { return MachineConfig{}; }

MachineConfig pfu_machine(int pfus, int reconfig_latency) {
  MachineConfig cfg;
  cfg.pfu.count = pfus;
  cfg.pfu.reconfig_latency = reconfig_latency;
  return cfg;
}

}  // namespace t1000
