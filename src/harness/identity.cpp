#include "harness/identity.hpp"

#include "harness/serialize.hpp"

namespace t1000 {

void RunIdentity::append_result_fields(const RunSpec& spec, Json* out) {
  (*out)["selector"] = Json(selector_name(spec.selector));
  (*out)["machine"] = to_json(spec.machine);
  (*out)["policy"] = to_json(spec.policy);
  (*out)["max_cycles"] = Json(spec.max_cycles);
  // A verified run is a distinct identity: a cache hit under verify=true
  // must mean "this configuration was verified when it was produced".
  (*out)["verify"] = Json(spec.verify);
  // An observed run carries extra result payload (the stall breakdown), so
  // it must never satisfy — or be satisfied by — an unobserved identity.
  (*out)["observe"] = Json(spec.observe);
}

std::string RunIdentity::preparation_key(const RunSpec& spec) {
  // The committed trace (and, for rewritten programs, the selection
  // itself) depends on the selector and on every policy field, and on
  // nothing else — in particular not on the machine configuration, which
  // is the whole point of sharing.
  if (spec.selector == Selector::kNone) return "none";
  return std::string(selector_name(spec.selector)) + "|" +
         to_json(spec.policy).dump();
}

std::string RunIdentity::batch_key(const RunSpec& spec) {
  // Workload scopes the preparation to one program; verify stays uniform
  // across a batch so a failed verification fails every lane identically,
  // exactly as N sequential runs would.
  std::string key = spec.workload;
  key += '\x1f';
  key += preparation_key(spec);
  key += '\x1f';
  key += spec.verify ? "verified" : "unverified";
  return key;
}

}  // namespace t1000
