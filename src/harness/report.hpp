// Minimal fixed-width text tables for the bench binaries, so each
// reproduced figure prints the same rows/series the paper reports.
#pragma once

#include <string>
#include <vector>

namespace t1000 {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Renders with column alignment; numeric-looking cells right-align.
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a ratio like 1.2345 as "1.23x" / a percentage like "+23.4%".
std::string fmt_ratio(double x);
std::string fmt_percent_gain(double speedup_ratio);
std::string fmt_double(double x, int decimals);

// printf into a std::string sized to fit — the growable alternative to a
// fixed char buffer, for lines (like the engine summary) that accrete
// fields over time and must never silently truncate.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
std::string
strprintf(const char* fmt, ...);

// A crude horizontal bar for figure-style output (length ~ value).
std::string bar(double value, double max_value, int width = 40);

}  // namespace t1000
