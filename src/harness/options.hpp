// Declarative command-line option parser shared by the bench binaries and
// the t1000-* tools (via tools/tool_common.hpp). Each binary declares its
// flags once; `--help` output, value parsing, and unknown-flag errors are
// generated uniformly instead of being hand-rolled per binary.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace t1000 {

class OptionParser {
 public:
  OptionParser(std::string program, std::string summary);

  // `name` includes the dashes ("--jobs"). Flags take no value; options
  // consume the following argument. Targets must outlive parse().
  void add_flag(std::string name, std::string help, bool* out);
  void add_string(std::string name, std::string value_name, std::string help,
                  std::string* out);
  void add_int(std::string name, std::string value_name, std::string help,
               long* out);
  // As add_int, but rejects values outside [min, max] (inclusive) with a
  // diagnostic that names the accepted range. Overflowing `long` itself
  // (ERANGE) is always rejected, in both variants.
  void add_int(std::string name, std::string value_name, std::string help,
               long* out, long min, long max);
  void add_double(std::string name, std::string value_name, std::string help,
                  double* out);

  // Positional-argument contract, used for usage text and arity checking.
  // max < 0 means unbounded.
  void set_positional(std::string name, int min, int max);

  // Parses argv. On --help prints usage and exits 0; on any error prints a
  // diagnostic plus usage to stderr and exits 2. Returns the positional
  // arguments.
  std::vector<std::string> parse(int argc, char** argv) const;

  std::string usage() const;

 private:
  struct Option {
    std::string name;
    std::string value_name;  // empty for flags
    std::string help;
    std::function<bool(const std::string&)> apply;  // false = bad value
    std::string constraint;  // appended to bad-value diagnostics when set
  };

  [[noreturn]] void fail(const std::string& message) const;

  std::string program_;
  std::string summary_;
  std::string positional_name_ = "";
  int positional_min_ = 0;
  int positional_max_ = 0;
  std::vector<Option> options_;
};

}  // namespace t1000
