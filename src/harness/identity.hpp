// The single authoritative assembly of a run's identity.
//
// Three harness layers need to agree, field for field, on what determines
// a run's result: the result cache (harness/cache.hpp) keys memoized
// outcomes on it, the serializer (harness/serialize.hpp) embeds it in the
// results JSON, and the grid's batch scheduler (harness/grid.cpp) groups
// RunSpecs that may share one replay sweep. Before this helper each site
// re-listed the RunSpec fields by hand, and a field added to one but not
// the others would silently serve stale cache entries or batch
// incompatible lanes. RunIdentity is that list, written once.
//
// Three grains of identity, coarsest to finest:
//
//  * preparation_key(): what the prepared run (selection, rewrite,
//    committed trace) depends on — the selector and every policy field,
//    and nothing else. Specs sharing it replay the same trace.
//  * batch_key(): the grid's lane-grouping rule — specs with equal batch
//    keys may be timed as lanes of one simulate_replay_batch sweep. The
//    preparation plus the workload and the verify flag; the machine,
//    max_cycles, and observe vary freely across lanes.
//  * append_result_fields(): every RunSpec field that can change the
//    simulation result, appended in the canonical serialization order.
//    The cache key and the results JSON are both built on it.
#pragma once

#include <string>

#include "harness/experiment.hpp"
#include "harness/json.hpp"

namespace t1000 {

struct RunIdentity {
  // Appends the result-determining RunSpec fields to `out` in canonical
  // order: selector, machine, policy, max_cycles, verify, observe.
  // Workload and label are the caller's business (the cache key includes
  // the workload and the program hash; the label is presentation only).
  static void append_result_fields(const RunSpec& spec, Json* out);

  // Identity of the prepared run `spec` replays (see
  // WorkloadExperiment::prepared_run): "none" for the baseline, else
  // selector name + every policy field. Machine configuration is
  // deliberately absent — sharing one trace across machines is the point.
  static std::string preparation_key(const RunSpec& spec);

  // The grid's lane-grouping rule: specs with equal batch keys replay the
  // same prepared trace under the same verify regime and may run as lanes
  // of one batched sweep. Machine, max_cycles, and observe are per-lane.
  static std::string batch_key(const RunSpec& spec);
};

}  // namespace t1000
