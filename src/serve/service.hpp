// SimService: the t1000-serve daemon's core, separated from the HTTP
// transport so tests can drive the whole API through handle_http() without
// opening a socket.
//
// The service owns the long-lived state a daemon accumulates across
// requests and a CLI process never needs:
//
//  * one shared ResultCache (in-memory tier stays hot across grids; the
//    on-disk tier carries the size budget and is safe to share with
//    concurrent CLI tools, see harness/cache.hpp),
//  * one MetricsRegistry observing both the serve layer ("serve.*") and
//    every grid it runs ("grid.*"), exported verbatim at GET /metrics, and
//  * one TraceEventLog recording each job's queued/run lifecycle as
//    Perfetto slices (ts = milliseconds since service start), exported at
//    GET /v1/trace.
//
// Jobs run on a single runner thread, strictly in submission order — the
// grid inside a job already parallelizes across `jobs` workers, and serial
// job execution is what makes the shared cache's per-grid counter deltas
// attributable. Admission control is a bounded queue: submissions beyond
// `queue_limit` queued-but-unstarted jobs are rejected with 429 and a
// status body, never silently dropped or unboundedly buffered.
//
// API (all bodies JSON unless noted):
//   GET  /healthz                 liveness + version of the API surface
//   POST /v1/jobs                 submit a grid request -> 202 {job, state}
//   GET  /v1/jobs                 list all jobs with states
//   GET  /v1/jobs/<id>            one job's status document
//   GET  /v1/jobs/<id>/results    full results doc (202 + status while
//                                 pending, 404 unknown)
//   GET  /v1/jobs/<id>/summary    status + this job's cache-counter deltas
//                                 (hits/misses/evictions attributed to the
//                                 job via Counters::since)
//   GET  /v1/jobs/<id>/events     chunked NDJSON stream of the job's
//                                 journal events (trace spans, cache ops,
//                                 experiment phases) as they happen;
//                                 idle-heartbeat lines {"heartbeat":true};
//                                 ends when the job finishes and drains
//   GET  /v1/summary              text/plain engine-summary line per done job
//   GET  /metrics                 metrics registry + cache/disk gauges;
//                                 content-negotiated — Accept: text/plain
//                                 renders Prometheus text exposition
//                                 (version 0.0.4), default stays the JSON
//                                 document, byte-identical to before
//   GET  /v1/trace                Perfetto traceEvents for the job timeline
//                                 (queued/run slices + per-job flow events
//                                 correlated by trace id)
//   POST /v1/janitor              sweep cache debris now -> report
//   POST /v1/shutdown             request daemon exit (polled by the tool)
//
// Tracing: every job gets a trace id (minted from the journal) at
// submission. The runner wraps the job's grid in a "job" span and threads
// the context into the grid via GridOptions.trace/journal, so the grid's
// run/batch/cache events and the experiment's phase spans all land in the
// job's trace — streamable live at /v1/jobs/<id>/events and, when the
// daemon was started with --journal-out, on disk as JSONL.
//
// A grid request is:
//   {"runs": [<RunSpec JSON, as serialized by to_json(RunSpec)>...],
//    "options": {"verify": b, "observe": b, "batch": b,
//                "run_budget_ms": ms, "fail_limit": n}}
// Every member of "options" is optional; unknown members anywhere are a
// 400, and per-request budgets are clamped to the service's configured
// maximum so one client cannot opt out of the operator's limits.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "harness/cache.hpp"
#include "harness/grid.hpp"
#include "harness/json.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_event.hpp"
#include "serve/http.hpp"

namespace t1000::serve {

enum class JobState { kQueued, kRunning, kDone, kFailed };
std::string_view job_state_name(JobState state);

struct ServiceOptions {
  int jobs = 0;           // grid worker threads per job; 0 = hardware
  std::string cache_dir;  // shared on-disk cache; empty = in-memory only
  std::uint64_t cache_budget_bytes = 0;  // 0 = unbounded
  // Default per-run wall-clock budget applied when a request names none,
  // and the cap a request's own run_budget_ms is clamped to (0 = no
  // default / no cap respectively).
  double default_run_budget_ms = 0.0;
  double max_run_budget_ms = 0.0;
  std::uint64_t fail_limit = 0;  // default per-job circuit breaker
  // Queued-but-unstarted jobs beyond this are rejected with 429.
  std::size_t queue_limit = 8;
  // On-disk JSONL event journal (--journal-out); empty = in-memory ring
  // only, which still powers the /v1/jobs/<id>/events stream.
  std::string journal_path;
  std::uint64_t journal_max_bytes = 64ull << 20;
};

class SimService {
 public:
  explicit SimService(ServiceOptions options);
  ~SimService();  // drains the current job, discards the queue

  SimService(const SimService&) = delete;
  SimService& operator=(const SimService&) = delete;

  // Routes one API request; thread-safe (called from the HTTP handler
  // pool). Unknown routes are 404, wrong methods 405.
  HttpResponse handle_http(const HttpRequest& request);

  // Runs a grid request synchronously in-process — same parser, same
  // GridOptions assembly, same shared cache/metrics as a submitted job,
  // but no queue and no job bookkeeping. Powers `t1000-serve --local` and
  // the byte-identity checks. Throws JsonError on a malformed request.
  Json run_local(const Json& request);

  // Sweeps cache debris older than `min_age_seconds` (POST /v1/janitor
  // uses the same entry point).
  ResultCache::JanitorReport sweep_now(double min_age_seconds);

  // Set once POST /v1/shutdown is accepted; the hosting tool polls it.
  bool shutdown_requested() const;

  ResultCache& cache() { return cache_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  obs::Journal& journal() { return journal_; }

  // Test-only: runs on the runner thread after a job is dequeued and
  // marked running, before its grid executes. Lets the admission tests
  // hold the runner mid-job deterministically.
  std::function<void()> test_run_hook;

 private:
  struct Job {
    std::uint64_t id = 0;
    JobState state = JobState::kQueued;
    std::size_t runs = 0;
    std::uint64_t trace_id = 0;  // journal trace (minted at submission)
    double wall_ms = 0.0;   // grid wall-clock once done
    std::string summary;    // engine summary once done
    std::string error;      // diagnostic once failed
    Json results;           // full results document once done
    // The shared cache's counter movement attributed to this job
    // (Counters::since over snapshots around the grid), filled once the
    // job finishes; exported at /v1/jobs/<id>/summary.
    ResultCache::Counters cache_delta;
  };

  struct ParsedRequest {
    std::vector<RunSpec> specs;
    GridOptions options;  // budgets/flags only; cache/metrics wired later
  };

  // Throws JsonError with a client-appropriate message on any problem.
  ParsedRequest parse_request(const Json& request) const;
  GridResult execute(const ParsedRequest& parsed, obs::TraceContext trace);

  // The routing body behind handle_http; `route_label` gets the bounded
  // route template ("GET /v1/jobs/<id>", never a raw path) the per-route
  // latency histogram is keyed by.
  HttpResponse route_request(const HttpRequest& request,
                             const std::string& path,
                             std::string* route_label);

  HttpResponse handle_submit(const HttpRequest& request);
  HttpResponse handle_job_list() const;
  HttpResponse handle_job_status(std::uint64_t id) const;
  HttpResponse handle_job_results(std::uint64_t id) const;
  HttpResponse handle_job_summary(std::uint64_t id) const;
  HttpResponse handle_job_events(std::uint64_t id);
  HttpResponse handle_summary() const;
  HttpResponse handle_metrics(const HttpRequest& request) const;
  HttpResponse handle_trace() const;
  HttpResponse handle_janitor();
  HttpResponse handle_shutdown();

  Json job_status_json(const Job& job) const;
  double now_ms() const;  // milliseconds since service start

  void runner_main();

  ServiceOptions options_;
  ResultCache cache_;
  obs::MetricsRegistry metrics_;
  obs::Journal journal_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Job> jobs_;
  std::deque<std::uint64_t> queue_;  // submitted, not yet started
  // Requests parsed at submission, consumed by the runner. Kept apart
  // from Job so the (copied) status documents stay small.
  std::map<std::uint64_t, ParsedRequest> parsed_;
  std::uint64_t next_job_id_ = 1;
  bool stopping_ = false;
  bool shutdown_requested_ = false;

  mutable std::mutex trace_mu_;
  obs::TraceEventLog trace_;
  std::chrono::steady_clock::time_point start_time_;

  std::thread runner_;
};

}  // namespace t1000::serve
