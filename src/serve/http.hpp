// Minimal HTTP/1.1 server for the t1000-serve daemon.
//
// The toolchain has no HTTP dependency and the serve API does not need
// one: requests are small JSON documents, responses are JSON or trace
// dumps, and every exchange is one request/one response on a short-lived
// connection (the server always answers `Connection: close`). This file
// implements exactly that subset over POSIX sockets — request line,
// headers, Content-Length-delimited body — plus one addition the
// streaming job-events route needs: a response may carry a `streamer`
// instead of a body, in which case the server answers with
// `Transfer-Encoding: chunked` and the streamer pushes chunks until it
// returns or the peer disconnects. Still no keep-alive, no TLS, and no
// chunked *requests*.
//
// Concurrency model: one accept thread feeds a *bounded* queue of
// connection fds drained by a small handler pool. Admission control lives
// at this boundary — when the queue is full the accept thread answers 503
// inline and closes, so a burst of clients degrades to fast rejections
// instead of unbounded memory growth or an accept backlog stall. The
// handler callback itself must be thread-safe (SimService's is).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace t1000::serve {

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string target;  // request path, e.g. "/v1/jobs/3/results"
  std::string body;
  // Every request header, in wire order, names lowercased (values
  // untouched beyond trimming the leading space). The API reads these for
  // content negotiation (GET /metrics honors Accept).
  std::vector<std::pair<std::string, std::string>> headers;

  // First value of `name` (lowercase), or "" when absent.
  std::string_view header(std::string_view name) const;
};

// Pushes one chunk to the client; returns false once the peer is gone
// (the streamer should stop — further writes are dropped).
using ChunkWriter = std::function<bool(std::string_view)>;

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  // Streaming alternative to `body`: when set, the server sends the
  // status line + headers with `Transfer-Encoding: chunked`, invokes the
  // streamer with a ChunkWriter, and closes the stream when it returns.
  // The streamer runs on the handler thread, so a long-lived stream
  // occupies one handler slot for its duration; `body` is ignored.
  std::function<void(const ChunkWriter&)> streamer;
};

// Standard reason phrase for the handful of statuses the API uses.
std::string_view http_status_reason(int status);

// Serializes status line + headers + body, ready to write to a socket.
std::string render_http_response(const HttpResponse& response);

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  // 0 = ephemeral; the bound port is port() after start
    int handler_threads = 4;
    int backlog = 64;
    // Per-socket receive timeout: a client that connects and never sends a
    // complete request is dropped after this long, so a stalled peer can
    // never pin a handler thread.
    int recv_timeout_ms = 5000;
    // Requests with a larger declared or received body are answered 413.
    std::size_t max_body_bytes = 8u << 20;
    // Accepted-but-not-yet-handled connection queue bound; overflow is
    // answered 503 by the accept thread.
    std::size_t pending_connections = 64;
  };

  HttpServer(Options options, HttpHandler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens, and launches the accept/handler threads. Returns false
  // (with a diagnostic in `*error`) when the socket cannot be bound.
  bool start(std::string* error);
  // Stops accepting, drains the handler pool, closes every queued
  // connection. Idempotent; the destructor calls it.
  void stop();

  // Port actually bound (resolves an ephemeral request); valid after a
  // successful start().
  int port() const { return port_; }

 private:
  struct Impl;
  Impl* impl_;
  int port_ = 0;
};

}  // namespace t1000::serve
