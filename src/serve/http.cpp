#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace t1000::serve {
namespace {

// Sends the whole buffer, tolerating short writes; returns false once the
// peer is gone (the chunked streamer uses that to stop). MSG_NOSIGNAL
// turns a peer that hung up into EPIPE instead of a process-killing
// SIGPIPE.
bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // peer gone; nothing useful to do with a response
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void send_response(int fd, const HttpResponse& response) {
  send_all(fd, render_http_response(response));
}

// ASCII case-insensitive prefix match for header names.
bool iprefix(const std::string& line, std::string_view prefix) {
  if (line.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(line[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return true;
}

// Reads one request off the socket. Returns the status to fail with (0 =
// success): 400 malformed, 408 timed out / disconnected mid-request, 413
// too large.
int read_request(int fd, std::size_t max_body_bytes, HttpRequest* out) {
  std::string buf;
  std::size_t header_end = std::string::npos;
  char chunk[4096];
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return 408;
    buf.append(chunk, static_cast<std::size_t>(n));
    header_end = buf.find("\r\n\r\n");
    if (header_end == std::string::npos && buf.size() > max_body_bytes) {
      return 413;
    }
  }

  // Request line: METHOD SP TARGET SP VERSION.
  const std::size_t line_end = buf.find("\r\n");
  const std::string request_line = buf.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return 400;
  out->method = request_line.substr(0, sp1);
  out->target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (out->method.empty() || out->target.empty() ||
      out->target[0] != '/') {
    return 400;
  }

  // Headers: Content-Length drives framing; everything else is kept for
  // the handler (the API negotiates on Accept), names lowercased.
  std::size_t content_length = 0;
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t eol = buf.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) eol = header_end;
    const std::string line = buf.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = line.substr(0, colon);
      for (char& c : name) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      std::size_t value_begin = colon + 1;
      while (value_begin < line.size() && line[value_begin] == ' ') {
        ++value_begin;
      }
      out->headers.emplace_back(std::move(name), line.substr(value_begin));
    }
    if (iprefix(line, "content-length:")) {
      errno = 0;
      char* end = nullptr;
      const unsigned long long v =
          std::strtoull(line.c_str() + 15, &end, 10);
      while (end != nullptr && *end == ' ') ++end;
      if (errno != 0 || end == nullptr || *end != '\0') return 400;
      content_length = static_cast<std::size_t>(v);
    }
  }
  if (content_length > max_body_bytes) return 413;

  out->body = buf.substr(header_end + 4);
  while (out->body.size() < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return 408;
    out->body.append(chunk, static_cast<std::size_t>(n));
    if (out->body.size() > max_body_bytes) return 413;
  }
  out->body.resize(content_length);
  return 0;
}

HttpResponse error_response(int status, std::string_view message) {
  HttpResponse r;
  r.status = status;
  r.body = "{\"error\": \"";
  r.body += message;
  r.body += "\"}\n";
  return r;
}

// Streams a response that carries a `streamer`: status line + headers
// with Transfer-Encoding: chunked, then one HTTP chunk per ChunkWriter
// call, then the terminating zero chunk. A failed send latches — the
// streamer sees `false` and is expected to wind down.
void send_streaming_response(int fd, const HttpResponse& response) {
  std::string head = "HTTP/1.1 ";
  head += std::to_string(response.status);
  head += ' ';
  head += http_status_reason(response.status);
  head += "\r\nContent-Type: ";
  head += response.content_type;
  head += "\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
  bool alive = send_all(fd, head);
  const ChunkWriter write = [fd, &alive](std::string_view data) {
    if (!alive) return false;
    if (data.empty()) return true;  // a zero-size chunk would end the stream
    char size_line[32];
    std::snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
    std::string chunk = size_line;
    chunk += data;
    chunk += "\r\n";
    alive = send_all(fd, chunk);
    return alive;
  };
  response.streamer(write);
  if (alive) send_all(fd, "0\r\n\r\n");
}

}  // namespace

std::string_view HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return {};
}

std::string_view http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string render_http_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += http_status_reason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

struct HttpServer::Impl {
  Options options;
  HttpHandler handler;

  int listen_fd = -1;
  std::thread accept_thread;
  std::vector<std::thread> handlers;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<int> pending;  // accepted connection fds awaiting a handler
  bool stopping = false;

  void handle_connection(int fd) {
    HttpRequest request;
    const int fail = read_request(fd, options.max_body_bytes, &request);
    if (fail != 0) {
      // 408 from a peer that sent nothing at all is just a dropped
      // connection; answering is best-effort either way.
      send_response(fd, error_response(fail, http_status_reason(fail)));
    } else {
      const HttpResponse response = handler(request);
      if (response.streamer) {
        send_streaming_response(fd, response);
      } else {
        send_response(fd, response);
      }
    }
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }

  void handler_main() {
    for (;;) {
      int fd = -1;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stopping || !pending.empty(); });
        if (pending.empty()) return;  // stopping and drained
        fd = pending.front();
        pending.pop_front();
      }
      handle_connection(fd);
    }
  }

  void accept_main() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        // Transient conditions (interrupts, peers that reset before we
        // accepted, fd-limit pressure) must not kill the accept loop;
        // only stop() closing the listen socket should.
        if (errno == EINTR || errno == ECONNABORTED || errno == EMFILE ||
            errno == ENFILE) {
          continue;
        }
        return;  // listen socket closed by stop()
      }
      if (options.recv_timeout_ms > 0) {
        // On the *accepted* socket only: SO_RCVTIMEO on the listening
        // socket would also time out accept() itself and feed this loop
        // spurious EAGAINs.
        struct timeval tv;
        tv.tv_sec = options.recv_timeout_ms / 1000;
        tv.tv_usec = (options.recv_timeout_ms % 1000) * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        if (stopping) {
          ::close(fd);
          return;
        }
        if (pending.size() < options.pending_connections) {
          pending.push_back(fd);
          cv.notify_one();
          continue;
        }
      }
      // Queue full: reject inline on the accept thread. Deliberately not
      // queued — the whole point is that overload answers immediately.
      send_response(fd, error_response(503, "connection queue full"));
      ::close(fd);
    }
  }
};

HttpServer::HttpServer(Options options, HttpHandler handler)
    : impl_(new Impl) {
  impl_->options = std::move(options);
  impl_->handler = std::move(handler);
}

HttpServer::~HttpServer() {
  stop();
  delete impl_;
}

bool HttpServer::start(std::string* error) {
  const Options& opt = impl_->options;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opt.port));
  if (::inet_pton(AF_INET, opt.host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad host address: " + opt.host;
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (error != nullptr) {
      *error = "bind " + opt.host + ":" + std::to_string(opt.port) + ": " +
               strerror(errno);
    }
    ::close(fd);
    return false;
  }
  if (::listen(fd, opt.backlog) < 0) {
    if (error != nullptr) *error = "listen: " + std::string(strerror(errno));
    ::close(fd);
    return false;
  }

  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  impl_->listen_fd = fd;
  const int threads = opt.handler_threads < 1 ? 1 : opt.handler_threads;
  impl_->handlers.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    impl_->handlers.emplace_back([this] { impl_->handler_main(); });
  }
  impl_->accept_thread = std::thread([this] { impl_->accept_main(); });
  return true;
}

void HttpServer::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->stopping) return;
    impl_->stopping = true;
  }
  // Closing the listen socket makes the blocked accept() return; handlers
  // drain whatever was already queued, then see `stopping` and exit.
  if (impl_->listen_fd >= 0) {
    ::shutdown(impl_->listen_fd, SHUT_RDWR);
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
  }
  impl_->cv.notify_all();
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  for (std::thread& t : impl_->handlers) {
    if (t.joinable()) t.join();
  }
  for (const int fd : impl_->pending) ::close(fd);
  impl_->pending.clear();
}

}  // namespace t1000::serve
