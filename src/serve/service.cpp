#include "serve/service.hpp"

#include <cstdlib>
#include <utility>

#include "harness/serialize.hpp"
#include "obs/prometheus.hpp"
#include "workloads/workload.hpp"

namespace t1000::serve {
namespace {

HttpResponse json_response(int status, const Json& body) {
  HttpResponse r;
  r.status = status;
  r.body = body.dump(2);
  r.body += '\n';
  return r;
}

HttpResponse error_json(int status, std::string_view message) {
  Json body = Json::object();
  body["error"] = Json(message);
  return json_response(status, body);
}

// Parses the decimal job id segment; returns false on anything else
// (callers answer 404 — a malformed id names no job).
bool parse_job_id(std::string_view segment, std::uint64_t* out) {
  if (segment.empty() || segment.size() > 18) return false;
  std::uint64_t value = 0;
  for (const char c : segment) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

std::string_view job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

SimService::SimService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_dir, options_.cache_budget_bytes),
      journal_(obs::Journal::Options{options_.journal_path,
                                     options_.journal_max_bytes,
                                     /*ring_capacity=*/8192}),
      start_time_(std::chrono::steady_clock::now()) {
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    trace_.name_process(1, "t1000-serve");
  }
  runner_ = std::thread([this] { runner_main(); });
}

SimService::~SimService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (runner_.joinable()) runner_.join();
}

double SimService::now_ms() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_time_;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

bool SimService::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_requested_;
}

SimService::ParsedRequest SimService::parse_request(
    const Json& request) const {
  for (const auto& member : request.members()) {
    if (member.first != "runs" && member.first != "options") {
      throw JsonError("unknown member \"" + member.first +
                      "\" in grid request");
    }
  }

  ParsedRequest parsed;
  parsed.options.jobs = options_.jobs;
  parsed.options.run_budget_ms = options_.default_run_budget_ms;
  parsed.options.fail_limit = options_.fail_limit;

  if (const Json* opts = request.find("options")) {
    for (const auto& member : opts->members()) {
      const std::string& name = member.first;
      const Json& value = member.second;
      if (name == "verify") {
        parsed.options.verify = value.as_bool();
      } else if (name == "observe") {
        parsed.options.observe = value.as_bool();
      } else if (name == "batch") {
        parsed.options.batch = value.as_bool();
      } else if (name == "run_budget_ms") {
        const double ms = value.as_double();
        if (ms < 0) throw JsonError("run_budget_ms must be >= 0");
        parsed.options.run_budget_ms = ms;
      } else if (name == "fail_limit") {
        parsed.options.fail_limit = value.as_uint();
      } else {
        throw JsonError("unknown member \"" + name +
                        "\" in grid request options");
      }
    }
  }
  // The operator's cap wins over whatever the request asked for; a request
  // of 0 ("unlimited") under a configured cap becomes the cap.
  if (options_.max_run_budget_ms > 0 &&
      (parsed.options.run_budget_ms <= 0 ||
       parsed.options.run_budget_ms > options_.max_run_budget_ms)) {
    parsed.options.run_budget_ms = options_.max_run_budget_ms;
  }

  const Json& runs = request.at("runs");
  if (!runs.is_array() || runs.size() == 0) {
    throw JsonError("\"runs\" must be a non-empty array");
  }
  parsed.specs.reserve(runs.size());
  for (const Json& spec_json : runs.items()) {
    RunSpec spec = run_spec_from_json(spec_json);
    if (find_workload(spec.workload) == nullptr) {
      throw JsonError("unknown workload \"" + spec.workload + "\"");
    }
    parsed.specs.push_back(std::move(spec));
  }
  return parsed;
}

GridResult SimService::execute(const ParsedRequest& parsed,
                               obs::TraceContext trace) {
  ExperimentGrid grid;
  // Everything find_workload() can name — the paper suite, the extended
  // one, and the compiled-kernel set — so parse-time validation and grid
  // registration agree exactly.
  grid.add_workloads(all_workloads());
  grid.add_workloads(extended_workloads());
  grid.add_workloads(compiled_workloads());
  for (const RunSpec& spec : parsed.specs) grid.add(spec);

  GridOptions options = parsed.options;
  // The service's shared long-lived tiers, not per-grid ones.
  options.cache = &cache_;
  options.metrics = &metrics_;
  options.journal = &journal_;
  options.trace = trace;
  options.cache_dir.clear();
  return grid.run(options);
}

Json SimService::run_local(const Json& request) {
  const ParsedRequest parsed = parse_request(request);
  // A --local run is its own trace, rooted like a job's but without the
  // queue bookkeeping.
  return execute(parsed, obs::TraceContext{journal_.new_id(), 0}).to_json();
}

ResultCache::JanitorReport SimService::sweep_now(double min_age_seconds) {
  return cache_.janitor_sweep(min_age_seconds);
}

void SimService::runner_main() {
  for (;;) {
    std::uint64_t id = 0;
    std::uint64_t trace_id = 0;
    ParsedRequest parsed;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // queued-but-unstarted jobs die with us
      id = queue_.front();
      queue_.pop_front();
      auto it = parsed_.find(id);
      parsed = std::move(it->second);
      parsed_.erase(it);
      jobs_[id].state = JobState::kRunning;
      trace_id = jobs_[id].trace_id;
    }
    {
      std::lock_guard<std::mutex> lock(trace_mu_);
      const auto ts = static_cast<std::uint64_t>(now_ms());
      trace_.end(ts, 1, static_cast<int>(id));  // "queued"
      trace_.begin("run", ts, 1, static_cast<int>(id));
      // Closes the flow the submission opened: in Perfetto, the arrow
      // lands on this job's "run" slice on the runner's track.
      trace_.flow_end("job", trace_id, ts, 1, static_cast<int>(id));
    }
    if (test_run_hook) test_run_hook();

    Job finished;
    finished.state = JobState::kFailed;
    const ResultCache::Counters cache_before = cache_.counters();
    {
      Json attrs = Json::object();
      attrs["job"] = Json(id);
      attrs["runs"] = Json(parsed.specs.size());
      obs::Journal::SpanScope job_span(&journal_,
                                       obs::TraceContext{trace_id, 0}, "job",
                                       std::move(attrs));
      try {
        const obs::Span::Scope timer(metrics_.span("serve.job_wall"));
        const GridResult result = execute(parsed, job_span.context());
        finished.state = JobState::kDone;
        finished.wall_ms = result.engine().wall_ms;
        finished.summary = result.engine_summary();
        finished.results = result.to_json();
      } catch (const std::exception& e) {
        finished.error = e.what();
      } catch (...) {
        finished.error = "non-standard exception";
      }
      Json end_attrs = Json::object();
      end_attrs["state"] = Json(job_state_name(finished.state));
      job_span.set_end_attrs(std::move(end_attrs));
    }
    finished.cache_delta = cache_.counters().since(cache_before);

    {
      std::lock_guard<std::mutex> lock(trace_mu_);
      trace_.end(static_cast<std::uint64_t>(now_ms()), 1,
                 static_cast<int>(id));  // "run"
    }
    metrics_
        .counter(finished.state == JobState::kDone ? "serve.jobs_completed"
                                                   : "serve.jobs_failed")
        ->add();
    {
      std::lock_guard<std::mutex> lock(mu_);
      Job& job = jobs_[id];
      job.state = finished.state;
      job.wall_ms = finished.wall_ms;
      job.summary = std::move(finished.summary);
      job.error = std::move(finished.error);
      job.results = std::move(finished.results);
      job.cache_delta = finished.cache_delta;
    }
  }
}

Json SimService::job_status_json(const Job& job) const {
  Json j = Json::object();
  j["job"] = Json(job.id);
  j["state"] = Json(job_state_name(job.state));
  j["runs"] = Json(job.runs);
  j["trace"] = Json(to_hex(job.trace_id));
  if (job.state == JobState::kDone) {
    j["wall_ms"] = Json(job.wall_ms);
    j["summary"] = Json(job.summary);
  }
  if (job.state == JobState::kFailed) j["error"] = Json(job.error);
  return j;
}

HttpResponse SimService::handle_submit(const HttpRequest& request) {
  Json body;
  ParsedRequest parsed;
  try {
    body = Json::parse(request.body);
    parsed = parse_request(body);
  } catch (const JsonError& e) {
    metrics_.counter("serve.jobs_rejected")->add();
    return error_json(400, e.what());
  }

  std::uint64_t id = 0;
  const std::uint64_t trace_id = journal_.new_id();
  const std::size_t runs = parsed.specs.size();
  // The ack snapshot is taken inside the same critical section that
  // enqueues the job: once mu_ is released the runner may pick the job up
  // at any moment, and the 202 body must still say "queued".
  Json ack;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= options_.queue_limit) {
      metrics_.counter("serve.jobs_rejected")->add();
      Json reject = Json::object();
      reject["error"] = Json("job queue full");
      reject["queued"] = Json(queue_.size());
      reject["queue_limit"] = Json(options_.queue_limit);
      return json_response(429, reject);
    }
    id = next_job_id_++;
    Job& job = jobs_[id];
    job.id = id;
    job.runs = parsed.specs.size();
    job.trace_id = trace_id;
    parsed_[id] = std::move(parsed);
    queue_.push_back(id);
    ack = job_status_json(job);
  }
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    const auto ts = static_cast<std::uint64_t>(now_ms());
    trace_.name_thread(1, static_cast<int>(id),
                       "job " + std::to_string(id));
    trace_.begin("queued", ts, 1, static_cast<int>(id));
    // Opens the request's flow: the runner closes it when the job starts,
    // correlating the submission with its execution in Perfetto.
    trace_.flow_begin("job", trace_id, ts, 1, static_cast<int>(id));
  }
  {
    Json attrs = Json::object();
    attrs["job"] = Json(id);
    attrs["runs"] = Json(runs);
    journal_.instant(obs::TraceContext{trace_id, 0}, "job.submitted",
                     std::move(attrs));
  }
  metrics_.counter("serve.jobs_submitted")->add();
  cv_.notify_one();
  return json_response(202, ack);
}

HttpResponse SimService::handle_job_list() const {
  Json jobs = Json::array();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : jobs_) {
      jobs.push_back(job_status_json(entry.second));
    }
  }
  Json body = Json::object();
  body["jobs"] = std::move(jobs);
  return json_response(200, body);
}

HttpResponse SimService::handle_job_status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return error_json(404, "unknown job");
  return json_response(200, job_status_json(it->second));
}

HttpResponse SimService::handle_job_results(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return error_json(404, "unknown job");
  const Job& job = it->second;
  switch (job.state) {
    case JobState::kQueued:
    case JobState::kRunning:
      // Not an error: the job exists, the results just aren't ready.
      return json_response(202, job_status_json(job));
    case JobState::kFailed:
      return json_response(500, job_status_json(job));
    case JobState::kDone:
      return json_response(200, job.results);
  }
  return error_json(500, "unreachable job state");
}

HttpResponse SimService::handle_job_summary(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return error_json(404, "unknown job");
  const Job& job = it->second;
  if (job.state == JobState::kQueued || job.state == JobState::kRunning) {
    // The deltas only exist once the grid has run; same contract as
    // /results — 202 with the status document while pending.
    return json_response(202, job_status_json(job));
  }
  Json body = job_status_json(job);
  // This job's movement of the shared cache (Counters::since over
  // snapshots around its grid): how much it hit, missed, stored, and
  // evicted — attribution the global /metrics counters cannot give.
  Json cache = Json::object();
  const ResultCache::Counters& d = job.cache_delta;
  cache["memory_hits"] = Json(d.memory_hits);
  cache["disk_hits"] = Json(d.disk_hits);
  cache["misses"] = Json(d.misses);
  cache["stores"] = Json(d.stores);
  cache["disk_errors"] = Json(d.disk_errors);
  cache["quarantined"] = Json(d.quarantined);
  cache["quarantine_removed"] = Json(d.quarantine_removed);
  cache["evicted"] = Json(d.evicted);
  cache["size_evicted"] = Json(d.size_evicted);
  body["cache"] = std::move(cache);
  return json_response(200, body);
}

HttpResponse SimService::handle_job_events(std::uint64_t id) {
  std::uint64_t trace_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return error_json(404, "unknown job");
    trace_id = it->second.trace_id;
  }
  const auto job_finished = [this, id] {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    return it == jobs_.end() || it->second.state == JobState::kDone ||
           it->second.state == JobState::kFailed;
  };
  HttpResponse r;
  r.content_type = "application/x-ndjson";
  // Chunked NDJSON: one journal event per line, as they happen. Idle
  // periods emit {"heartbeat":true} lines (~2/s) so a vanished client is
  // detected by the failing write instead of pinning the handler thread.
  // The stream ends once the job has finished and the ring is drained.
  r.streamer = [this, trace_id, job_finished](const ChunkWriter& write) {
    std::uint64_t after = 0;
    for (;;) {
      // Order matters: check finished *before* polling, so events landing
      // between the poll and the check are picked up next iteration
      // rather than lost.
      const bool finished = job_finished();
      const std::vector<obs::JournalEvent> events =
          journal_.poll(after, trace_id, std::chrono::milliseconds(500));
      if (events.empty()) {
        if (finished) return;
        if (!write("{\"heartbeat\":true}\n")) return;
        continue;
      }
      for (const obs::JournalEvent& event : events) {
        after = event.seq;
        if (!write(obs::journal_event_line(event) + "\n")) return;
      }
    }
  };
  return r;
}

HttpResponse SimService::handle_summary() const {
  std::string lines;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : jobs_) {
      const Job& job = entry.second;
      lines += "job ";
      lines += std::to_string(job.id);
      lines += ": ";
      if (job.state == JobState::kDone) {
        lines += job.summary;
      } else if (job.state == JobState::kFailed) {
        lines += "failed: ";
        lines += job.error;
      } else {
        lines += job_state_name(job.state);
      }
      lines += '\n';
    }
  }
  HttpResponse r;
  r.content_type = "text/plain";
  r.body = std::move(lines);
  return r;
}

HttpResponse SimService::handle_metrics(const HttpRequest& request) const {
  const ResultCache::Counters c = cache_.counters();
  // Content negotiation: a scraper that asks for text/plain gets the
  // Prometheus exposition; everyone else (no Accept, */*, JSON clients)
  // keeps the JSON document, byte-identical to what it always was.
  const std::string_view accept = request.header("accept");
  if (accept.find("text/plain") != std::string_view::npos) {
    std::vector<obs::PrometheusGauge> gauges;
    const auto cache_gauge = [&gauges](const char* kind, double value) {
      gauges.push_back({std::string("serve.cache|counter=") + kind, value});
    };
    cache_gauge("memory_hits", static_cast<double>(c.memory_hits));
    cache_gauge("disk_hits", static_cast<double>(c.disk_hits));
    cache_gauge("misses", static_cast<double>(c.misses));
    cache_gauge("stores", static_cast<double>(c.stores));
    cache_gauge("disk_errors", static_cast<double>(c.disk_errors));
    cache_gauge("quarantined", static_cast<double>(c.quarantined));
    cache_gauge("quarantine_removed",
                static_cast<double>(c.quarantine_removed));
    cache_gauge("evicted", static_cast<double>(c.evicted));
    cache_gauge("size_evicted", static_cast<double>(c.size_evicted));
    gauges.push_back({"serve.cache_disk_usage_bytes",
                      static_cast<double>(cache_.disk_usage_bytes())});
    gauges.push_back({"serve.cache_size_budget_bytes",
                      static_cast<double>(cache_.size_budget_bytes())});
    gauges.push_back({"serve.journal_events",
                      static_cast<double>(journal_.events_appended())});
    gauges.push_back({"serve.journal_disk_errors",
                      static_cast<double>(journal_.disk_errors())});
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = obs::render_prometheus(metrics_, gauges);
    return r;
  }
  Json body = Json::object();
  body["metrics"] = metrics_.to_json();
  Json cache = Json::object();
  cache["memory_hits"] = Json(c.memory_hits);
  cache["disk_hits"] = Json(c.disk_hits);
  cache["misses"] = Json(c.misses);
  cache["stores"] = Json(c.stores);
  cache["disk_errors"] = Json(c.disk_errors);
  cache["quarantined"] = Json(c.quarantined);
  cache["quarantine_removed"] = Json(c.quarantine_removed);
  cache["evicted"] = Json(c.evicted);
  cache["size_evicted"] = Json(c.size_evicted);
  cache["disk_usage_bytes"] = Json(cache_.disk_usage_bytes());
  cache["size_budget_bytes"] = Json(cache_.size_budget_bytes());
  body["cache"] = std::move(cache);
  return json_response(200, body);
}

HttpResponse SimService::handle_trace() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return json_response(200, trace_.to_json());
}

HttpResponse SimService::handle_janitor() {
  // TTL 0: an explicit janitor request means "sweep everything now"; the
  // periodic sweeps the tool schedules use its --janitor-ttl-s.
  const ResultCache::JanitorReport report = sweep_now(0.0);
  Json body = Json::object();
  body["tmp_removed"] = Json(report.tmp_removed);
  body["corrupt_removed"] = Json(report.corrupt_removed);
  return json_response(200, body);
}

HttpResponse SimService::handle_shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_requested_ = true;
  }
  Json body = Json::object();
  body["state"] = Json("shutting down");
  return json_response(200, body);
}

HttpResponse SimService::route_request(const HttpRequest& request,
                                       const std::string& path,
                                       std::string* route_label) {
  const bool get = request.method == "GET";
  const bool post = request.method == "POST";

  if (path == "/healthz") {
    if (!get) return error_json(405, "use GET");
    Json body = Json::object();
    body["status"] = Json("ok");
    body["api"] = Json("v1");
    return json_response(200, body);
  }
  if (path == "/metrics") {
    if (!get) return error_json(405, "use GET");
    return handle_metrics(request);
  }
  if (path == "/v1/jobs") {
    if (post) return handle_submit(request);
    if (get) return handle_job_list();
    return error_json(405, "use GET or POST");
  }
  if (path.rfind("/v1/jobs/", 0) == 0) {
    if (!get) return error_json(405, "use GET");
    std::string_view rest = std::string_view(path).substr(9);
    // Sub-resource suffix, stripped from the id segment. The route label
    // keeps the template, never the raw id — per-route histogram
    // cardinality stays bounded by the API surface.
    std::string_view suffix;
    for (const std::string_view candidate : {"/results", "/summary",
                                             "/events"}) {
      if (rest.size() > candidate.size() &&
          rest.substr(rest.size() - candidate.size()) == candidate) {
        suffix = candidate;
        rest = rest.substr(0, rest.size() - candidate.size());
        break;
      }
    }
    *route_label = "/v1/jobs/<id>" + std::string(suffix);
    std::uint64_t id = 0;
    if (!parse_job_id(rest, &id)) return error_json(404, "unknown job");
    if (suffix == "/results") return handle_job_results(id);
    if (suffix == "/summary") return handle_job_summary(id);
    if (suffix == "/events") return handle_job_events(id);
    return handle_job_status(id);
  }
  if (path == "/v1/summary") {
    if (!get) return error_json(405, "use GET");
    return handle_summary();
  }
  if (path == "/v1/trace") {
    if (!get) return error_json(405, "use GET");
    return handle_trace();
  }
  if (path == "/v1/janitor") {
    if (!post) return error_json(405, "use POST");
    return handle_janitor();
  }
  if (path == "/v1/shutdown") {
    if (!post) return error_json(405, "use POST");
    return handle_shutdown();
  }
  *route_label = "other";
  return error_json(404, "no such route");
}

HttpResponse SimService::handle_http(const HttpRequest& request) {
  metrics_.counter("serve.requests")->add();
  const auto start = std::chrono::steady_clock::now();

  // Strip any query string; the API is path-routed only.
  std::string path = request.target;
  if (const std::size_t q = path.find('?'); q != std::string::npos) {
    path.resize(q);
  }

  std::string route_label = path;
  HttpResponse response = route_request(request, path, &route_label);

  // Per-route latency histogram, labeled "<METHOD> <route template>".
  // Both label parts are bounded: the template come from route_request
  // (raw ids never leak into it) and unknown methods collapse to OTHER.
  const std::string method = request.method == "GET"    ? "GET"
                             : request.method == "POST" ? "POST"
                                                        : "OTHER";
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  metrics_
      .histogram("serve.route_ms|route=" + method + " " + route_label,
                 {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
                  10000})
      ->observe(static_cast<std::uint64_t>(ms));
  return response;
}

}  // namespace t1000::serve
