// Ablation (ours): does the paper's perfect-branch-prediction assumption
// drive its conclusions? Re-runs the Figure 6 comparison (selective, 2
// PFUs, 10-cycle reconfiguration) under a realistic bimodal predictor with
// a 3-cycle redirect penalty. The *relative* benefit of PFUs should
// survive, even though absolute IPC drops.
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace t1000;

int main() {
  std::printf(
      "Ablation: selective speedup (2 PFUs) under perfect vs. bimodal\n"
      "branch prediction\n\n");

  Table table({"benchmark", "perfect bpred", "bimodal bpred",
               "bimodal accuracy"});
  for (const Workload& w : all_workloads()) {
    WorkloadExperiment exp(w);
    SelectPolicy policy;
    policy.num_pfus = 2;

    const RunOutcome base_p = exp.run(Selector::kNone, baseline_machine());
    const RunOutcome sel_p =
        exp.run(Selector::kSelective, pfu_machine(2, 10), policy);

    MachineConfig base_cfg = baseline_machine();
    base_cfg.branch.kind = BranchPredictorKind::kBimodal;
    MachineConfig pfu_cfg = pfu_machine(2, 10);
    pfu_cfg.branch.kind = BranchPredictorKind::kBimodal;
    const RunOutcome base_b = exp.run(Selector::kNone, base_cfg);
    const RunOutcome sel_b =
        exp.run(Selector::kSelective, pfu_cfg, policy);

    table.add_row({w.name, fmt_ratio(speedup(base_p.stats, sel_p.stats)),
                   fmt_ratio(speedup(base_b.stats, sel_b.stats)),
                   fmt_double(sel_b.stats.branch.cond_accuracy() * 100.0, 1) +
                       "%"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: speedups shift only modestly, confirming the paper's\n"
      "perfect-prediction simplification does not drive its conclusions.\n");
  return 0;
}
