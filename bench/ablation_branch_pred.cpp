// Ablation (ours): does the paper's perfect-branch-prediction assumption
// drive its conclusions? Re-runs the Figure 6 comparison (selective, 2
// PFUs, 10-cycle reconfiguration) under a realistic bimodal predictor with
// a 3-cycle redirect penalty. The *relative* benefit of PFUs should
// survive, even though absolute IPC drops.
#include <cstdio>

#include "harness/grid.hpp"
#include "harness/report.hpp"

using namespace t1000;

namespace {

RunSpec with_bimodal(RunSpec spec, std::string label) {
  spec.label = std::move(label);
  spec.machine.branch.kind = BranchPredictorKind::kBimodal;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(
      argc, argv, "ablation_branch_pred",
      "Ablation: selective speedup under perfect vs. bimodal prediction");

  ExperimentGrid grid;
  grid.add_workloads(all_workloads());
  for (const Workload& w : all_workloads()) {
    grid.add(baseline_spec(w.name, "base-perfect"));
    grid.add(selective_spec(w.name, "sel-perfect", 2, 10));
    grid.add(with_bimodal(baseline_spec(w.name), "base-bimodal"));
    grid.add(with_bimodal(selective_spec(w.name, "", 2, 10), "sel-bimodal"));
  }
  const GridResult res = grid.run(opts.grid);

  std::printf(
      "Ablation: selective speedup (2 PFUs) under perfect vs. bimodal\n"
      "branch prediction\n\n");

  Table table({"benchmark", "perfect bpred", "bimodal bpred",
               "bimodal accuracy"});
  for (const Workload& w : all_workloads()) {
    // A failed/timed-out run zeroes its outcome; skip the row rather
    // than print garbage (finish_bench reports the split + exit code).
    if (!res.workload_ok(w.name)) continue;
    const SimStats& sel_b = res.stats(w.name, "sel-bimodal");
    table.add_row(
        {w.name,
         fmt_ratio(speedup(res.stats(w.name, "base-perfect"),
                           res.stats(w.name, "sel-perfect"))),
         fmt_ratio(speedup(res.stats(w.name, "base-bimodal"), sel_b)),
         fmt_double(sel_b.branch.cond_accuracy() * 100.0, 1) + "%"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: speedups shift only modestly, confirming the paper's\n"
      "perfect-prediction simplification does not drive its conclusions.\n");
  return finish_bench(res, opts);
}
