// Reproduces the Section 4.1 statistics: "the greedy algorithm identifies
// between 6 and 43 distinct extended instructions, and sequence lengths
// range from 2 to 8 instructions."
//
// The synthetic kernels are smaller than full MediaBench programs, so the
// distinct-configuration counts sit at the low end of the paper's range;
// the length range and the per-benchmark ordering are the reproducible
// shape.
//
// Dynamic-instruction counts come straight from the committed column of the
// baseline run, so this bench needs no direct access to the analysis.
#include <algorithm>
#include <cstdio>

#include "harness/grid.hpp"
#include "harness/report.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(
      argc, argv, "table_seqstats",
      "Section 4.1: greedy-algorithm sequence statistics");

  ExperimentGrid grid;
  grid.add_workloads(all_workloads());
  for (const Workload& w : all_workloads()) {
    grid.add(baseline_spec(w.name));
    grid.add(greedy_spec(w.name, "unlimited", PfuConfig::kUnlimited, 0));
  }
  const GridResult res = grid.run(opts.grid);

  std::printf(
      "Section 4.1: distinct extended instructions and sequence lengths\n"
      "found by the greedy algorithm\n\n");

  Table table({"benchmark", "distinct configs", "sites", "min len", "max len",
               "dynamic instrs"});
  int global_min = 99;
  int global_max = 0;
  for (const Workload& w : all_workloads()) {
    // A failed/timed-out run zeroes its outcome; skip the row rather
    // than print garbage (finish_bench reports the split + exit code).
    if (!res.workload_ok(w.name)) continue;
    const RunOutcome& r = res.outcome(w.name, "unlimited");
    int lo = 0;
    int hi = 0;
    if (!r.lengths.empty()) {
      lo = *std::min_element(r.lengths.begin(), r.lengths.end());
      hi = *std::max_element(r.lengths.begin(), r.lengths.end());
      global_min = std::min(global_min, lo);
      global_max = std::max(global_max, hi);
    }
    table.add_row({w.name, std::to_string(r.num_configs),
                   std::to_string(r.num_apps), std::to_string(lo),
                   std::to_string(hi),
                   std::to_string(res.stats(w.name, "baseline").committed)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper: 6..43 distinct instructions per benchmark, lengths 2..8.\n"
      "Measured length range here: %d..%d.\n",
      global_min, global_max);
  return finish_bench(res, opts);
}
