// Candidate-shape sweep (ours, beyond the paper): what does relaxing the
// 2-in/1-out restriction of Section 4 buy, and what does it cost in LUTs?
//
// The paper fixes the candidate shape at two register inputs and one
// register output because its EXT encoding has exactly rs/rt/rd to spend.
// Our MIMO encoding packs extra operand bindings into the EXT's otherwise
// unused imm field (isa/instruction.hpp), so the extractor can widen the
// shape: more external inputs admit chains that previously split at a
// third operand, and a second output lets a chain fuse *through* a live
// intermediate instead of breaking at it.
//
// Every configuration runs with --verify semantics forced on: the full
// static battery — including the translation validator (`equiv.*`,
// analysis/equiv.hpp) — must prove each widened selection
// semantics-preserving before its cycles are reported.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/grid.hpp"
#include "harness/report.hpp"

using namespace t1000;

namespace {

struct Shape {
  int max_inputs;
  int max_outputs;
  std::string label() const {
    return std::to_string(max_inputs) + "in" + std::to_string(max_outputs) +
           "out";
  }
};

// Default paper shape first, then the two widened steps the encoding
// supports: more inputs alone, then inputs and outputs together.
const Shape kShapes[] = {{2, 1}, {4, 1}, {4, 2}};

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = parse_bench_options(
      argc, argv, "ablation_shapes",
      "Candidate-shape sweep: speedup and LUT cost as 2-in/1-out widens");
  // The whole point of the sweep is that widened rewrites are *proven*
  // correct, not assumed: force pre-flight verification on every run.
  opts.grid.verify = true;

  ExperimentGrid grid;
  grid.add_workloads(all_workloads());
  for (const Workload& w : all_workloads()) {
    grid.add(baseline_spec(w.name));
    for (const Shape& shape : kShapes) {
      RunSpec spec = selective_spec(w.name, shape.label(), 4, 10);
      spec.policy.extract.max_inputs = shape.max_inputs;
      spec.policy.extract.max_outputs = shape.max_outputs;
      grid.add(std::move(spec));
    }
  }
  const GridResult res = grid.run(opts.grid);

  std::printf(
      "Candidate-shape sweep: selective selection (4 PFUs, 10-cycle\n"
      "reconfiguration) as the candidate shape widens from the paper's\n"
      "2-in/1-out; every selection statically verified (equiv.* battery)\n\n");

  std::vector<std::string> headers{"benchmark"};
  for (const Shape& shape : kShapes) {
    headers.push_back("speedup " + shape.label());
    headers.push_back("max LUTs " + shape.label());
  }
  Table table(headers);
  for (const Workload& w : all_workloads()) {
    // A failed/timed-out run zeroes its outcome; skip the row rather
    // than print garbage (finish_bench reports the split + exit code).
    if (!res.workload_ok(w.name)) continue;
    const SimStats& base = res.stats(w.name, "baseline");
    std::vector<std::string> row{w.name};
    for (const Shape& shape : kShapes) {
      const RunOutcome& r = res.outcome(w.name, shape.label());
      const int max_lut =
          r.lut_costs.empty()
              ? 0
              : *std::max_element(r.lut_costs.begin(), r.lut_costs.end());
      row.push_back(fmt_ratio(speedup(base, r.stats)));
      row.push_back(std::to_string(max_lut));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: widening never loses verified speedup; gains appear\n"
      "where chains were split by a third input or a live intermediate,\n"
      "at a LUT cost that stays within the 150-LUT PFU (Figure 7 axis).\n");
  return finish_bench(res, opts);
}
