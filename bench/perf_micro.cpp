// Infrastructure microbenchmarks (google-benchmark): throughput of the
// functional simulator, the timing model, the extractor, and the selection
// algorithms. These gate the practicality of the toolchain itself rather
// than reproducing a paper figure.
#include <benchmark/benchmark.h>

#include "harness/experiment.hpp"
#include "sim/executor.hpp"

namespace t1000 {
namespace {

const Workload& bench_workload() { return *find_workload("gsm_dec"); }

void BM_FunctionalSim(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    Executor e(p);
    instructions += e.run(1u << 24);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_FunctionalSim)->Unit(benchmark::kMillisecond);

void BM_TimingSim(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const SimStats st = simulate(p, nullptr, baseline_machine());
    instructions += st.committed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_TimingSim)->Unit(benchmark::kMillisecond);

void BM_ProfileAndExtract(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_program(p, 1u << 24));
  }
}
BENCHMARK(BM_ProfileAndExtract)->Unit(benchmark::kMillisecond);

void BM_SelectGreedy(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  const AnalyzedProgram ap = analyze_program(p, 1u << 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(select_greedy(ap));
  }
}
BENCHMARK(BM_SelectGreedy)->Unit(benchmark::kMicrosecond);

void BM_SelectSelective(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  const AnalyzedProgram ap = analyze_program(p, 1u << 24);
  SelectPolicy policy;
  policy.num_pfus = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(select_selective(ap, policy));
  }
}
BENCHMARK(BM_SelectSelective)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_RewriteProgram(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  const AnalyzedProgram ap = analyze_program(p, 1u << 24);
  const Selection sel = select_greedy(ap);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rewrite_program(p, sel.apps));
  }
}
BENCHMARK(BM_RewriteProgram)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace t1000

BENCHMARK_MAIN();
