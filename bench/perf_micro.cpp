// Infrastructure microbenchmarks (google-benchmark): throughput of the
// functional simulator, the timing model, the extractor, the selection
// algorithms, and the experiment engine. These gate the practicality of
// the toolchain itself rather than reproducing a paper figure.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "analysis/dataflow.hpp"
#include "analysis/equiv.hpp"
#include "analysis/verifier.hpp"
#include "harness/grid.hpp"
#include "sim/executor.hpp"
#include "sim/trace.hpp"
#include "sim/ucode.hpp"

namespace t1000 {
namespace {

const Workload& bench_workload() { return *find_workload("gsm_dec"); }

void BM_FunctionalSim(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    Executor e(p);
    instructions += e.run(1u << 24);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_FunctionalSim)->Unit(benchmark::kMillisecond);

void BM_TimingSim(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const SimStats st = simulate({.program = &p, .machine = baseline_machine()});
    instructions += st.committed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_TimingSim)->Unit(benchmark::kMillisecond);

// Cost of capturing the committed trace: functional execution plus the
// 14-byte-per-step SoA append (sim/trace.hpp). Compare with
// BM_FunctionalSim for the pure recording overhead.
void BM_RecordTrace(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const CommittedTrace trace = record_trace(p, nullptr, 1u << 24);
    steps += trace.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_RecordTrace)->Unit(benchmark::kMillisecond);

// Recording through an already-decoded uop stream — the harness's steady
// state, where one UopProgram per preparation is decoded once and shared
// (AnalyzedProgram::ucode / PreparedRun::ucode). The delta against
// BM_RecordTrace is the decode cost record_trace(program, ...) pays per
// call; the delta against BM_FunctionalSim is the pure cost of committing
// the 14-byte SoA steps.
void BM_ExecuteUops(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  const UopProgram ucode = UopProgram::build(p, /*ext_table=*/nullptr);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const CommittedTrace trace = record_trace(ucode, 1u << 24);
    steps += trace.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_ExecuteUops)->Unit(benchmark::kMillisecond);

// Replay-backed timing run over a pre-recorded trace — the per-config
// marginal cost of a grid sweep. Compare with BM_TimingSim, which pays
// functional execution inside the pipeline on every run.
void BM_ReplayTimingSim(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  const CommittedTrace trace = record_trace(p, nullptr, 1u << 24);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const SimStats st = simulate({.program = &p, .trace = &trace, .machine = baseline_machine()});
    instructions += st.committed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_ReplayTimingSim)->Unit(benchmark::kMillisecond);

// Config-parallel batched replay: N machine configurations timed as lanes
// of one simulate_replay_batch sweep over a shared pre-recorded trace.
// items/s counts committed instructions across all lanes, so comparing
// against BM_ReplayTimingSim at Arg(1) shows the batch dispatch overhead
// and the higher Args show the amortization of the shared trace decode.
void BM_ReplayBatch(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  const CommittedTrace trace = record_trace(p, nullptr, 1u << 24);
  const int lanes = static_cast<int>(state.range(0));
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    BatchSimRequest request;
    request.program = &p;
    request.trace = &trace;
    request.lanes.resize(static_cast<std::size_t>(lanes));
    for (int i = 0; i < lanes; ++i) {
      MachineConfig cfg = baseline_machine();
      cfg.branch.mispredict_penalty += i;  // distinct but comparable lanes
      request.lanes[static_cast<std::size_t>(i)].machine = cfg;
    }
    for (const BatchLaneResult& lane : simulate_replay_batch(request)) {
      instructions += lane.stats.committed;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_ReplayBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Observed timing run (stall attribution + PFU timeline, no event trace):
// the marginal cost of RunSpec::observe over BM_TimingSim. The unobserved
// pipeline compiles the observation layer out entirely, so BM_TimingSim
// itself is the "free when disabled" reference.
void BM_StallAttribution(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    SimObservation obs;
    const SimStats st =
        simulate({.program = &p, .machine = baseline_machine(), .observation = &obs});
    benchmark::DoNotOptimize(obs.stalls);
    instructions += st.committed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_StallAttribution)->Unit(benchmark::kMillisecond);

// Full event-trace recording (per-instruction lifecycle slices) plus the
// Chrome trace-event JSON serialization — the cost of --trace-out.
void BM_EmitTrace(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  std::uint64_t events = 0;
  for (auto _ : state) {
    SimObservation obs;
    obs.want_trace = true;
    simulate({.program = &p, .machine = baseline_machine(), .observation = &obs});
    benchmark::DoNotOptimize(obs.trace.to_json());
    events += obs.trace.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EmitTrace)->Unit(benchmark::kMillisecond);

void BM_ProfileAndExtract(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_program(p, 1u << 24));
  }
}
BENCHMARK(BM_ProfileAndExtract)->Unit(benchmark::kMillisecond);

void BM_SelectGreedy(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  const AnalyzedProgram ap = analyze_program(p, 1u << 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(select_greedy(ap));
  }
}
BENCHMARK(BM_SelectGreedy)->Unit(benchmark::kMicrosecond);

void BM_SelectSelective(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  const AnalyzedProgram ap = analyze_program(p, 1u << 24);
  SelectPolicy policy;
  policy.num_pfus = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(select_selective(ap, policy));
  }
}
BENCHMARK(BM_SelectSelective)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_RewriteProgram(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  const AnalyzedProgram ap = analyze_program(p, 1u << 24);
  const Selection sel = select_greedy(ap);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rewrite_program(p, sel.apps));
  }
}
BENCHMARK(BM_RewriteProgram)->Unit(benchmark::kMicrosecond);

// Full static verification of a selected+rewritten workload — the price a
// grid point pays under --verify before it simulates (wf.* module checks,
// per-application legality, and the semantic-equivalence proof).
void BM_VerifyWorkload(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  const AnalyzedProgram ap = analyze_program(p, 1u << 24);
  const Selection sel = select_greedy(ap);
  const RewriteResult rr = rewrite_program(p, sel.apps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_selection(ap, sel, rr));
  }
}
BENCHMARK(BM_VerifyWorkload)->Unit(benchmark::kMicrosecond);

// The translation-validation slice alone (equiv.* rules: index-map walk,
// survivor byte-identity, branch retargeting, symbolic per-application
// proof, dead-kill leak scan). The delta against BM_VerifyWorkload is the
// cost of the wf.* module checks plus legality recomputation.
void BM_ValidateRewrite(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  const AnalyzedProgram ap = analyze_program(p, 1u << 24);
  const Selection sel = select_greedy(ap);
  const RewriteResult rr = rewrite_program(p, sel.apps);
  const VerifyOptions options;
  for (auto _ : state) {
    VerifyReport report;
    check_translation(ap, sel, rr, options, report);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_ValidateRewrite)->Unit(benchmark::kMicrosecond);

// Per-instruction backward liveness over the rewritten program — the
// fixed-point analysis the dead-kill proof leans on. Priced separately
// because it is the only super-linear piece of the validator.
void BM_Liveness(benchmark::State& state) {
  const Program p = workload_program(bench_workload());
  const AnalyzedProgram ap = analyze_program(p, 1u << 24);
  const Selection sel = select_greedy(ap);
  const RewriteResult rr = rewrite_program(p, sel.apps);
  const Cfg cfg = Cfg::build(rr.program);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InstLiveness(rr.program, cfg));
  }
}
BENCHMARK(BM_Liveness)->Unit(benchmark::kMicrosecond);

ExperimentGrid engine_grid() {
  ExperimentGrid grid;
  grid.add_workload(bench_workload());
  const std::string name = bench_workload().name;
  grid.add(baseline_spec(name));
  for (const int pfus : {1, 2, 4}) {
    grid.add(selective_spec(name, std::to_string(pfus) + "pfu", pfus, 10));
  }
  return grid;
}

// Cold grid: every point simulated (shared analysis, no disk cache).
void BM_GridEngineCold(benchmark::State& state) {
  const ExperimentGrid grid = engine_grid();
  GridOptions options;
  options.jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.run(options));
  }
}
BENCHMARK(BM_GridEngineCold)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// Warm grid: 100% on-disk cache hits; measures the memoization path
// (program hash + key + JSON load) that re-running a bench pays per point.
void BM_GridEngineMemoized(benchmark::State& state) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "t1000-perf-micro-cache";
  fs::remove_all(dir);
  const ExperimentGrid grid = engine_grid();
  GridOptions options;
  options.jobs = 1;
  options.cache_dir = dir.string();
  grid.run(options);  // populate
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.run(options));
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_GridEngineMemoized)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace t1000

BENCHMARK_MAIN();
