// Extended evaluation (ours): the paper's comparison applied to four more
// MediaBench-family analogs, including `pegwit`, a wide-arithmetic crypto
// kernel built as a negative control - its values exceed the 18-bit
// candidate width, so the selective algorithm should find (nearly) nothing
// and, crucially, must not make the program slower.
#include <cstdio>

#include "harness/grid.hpp"
#include "harness/report.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(
      argc, argv, "extended_suite",
      "Extended suite: selective algorithm on four additional benchmarks");

  ExperimentGrid grid;
  grid.add_workloads(extended_workloads());
  for (const Workload& w : extended_workloads()) {
    grid.add(baseline_spec(w.name));
    grid.add(selective_spec(w.name, "2pfu", 2, 10));
    grid.add(selective_spec(w.name, "4pfu", 4, 10));
    grid.add(greedy_spec(w.name, "greedy-unlimited", PfuConfig::kUnlimited, 0));
  }
  const GridResult res = grid.run(opts.grid);

  std::printf(
      "Extended suite: selective algorithm on four additional benchmarks\n"
      "(2 and 4 PFUs, 10-cycle reconfiguration)\n\n");

  Table table({"benchmark", "selective 2 PFUs", "selective 4 PFUs",
               "configs@4", "greedy unlimited"});
  for (const Workload& w : extended_workloads()) {
    // A failed/timed-out run zeroes its outcome; skip the row rather
    // than print garbage (finish_bench reports the split + exit code).
    if (!res.workload_ok(w.name)) continue;
    const SimStats& base = res.stats(w.name, "baseline");
    const RunOutcome& four = res.outcome(w.name, "4pfu");
    table.add_row(
        {w.name, fmt_ratio(speedup(base, res.stats(w.name, "2pfu"))),
         fmt_ratio(speedup(base, four.stats)),
         std::to_string(four.num_configs),
         fmt_ratio(speedup(base, res.stats(w.name, "greedy-unlimited")))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading guide: the ADPCM pair and jpeg_enc behave like their paper\n"
      "siblings; pegwit's wide arithmetic defeats the narrow-width filter,\n"
      "so it gains ~nothing - and, correctly, loses nothing either.\n");
  return finish_bench(res, opts);
}
