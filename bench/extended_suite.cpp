// Extended evaluation (ours): the paper's comparison applied to four more
// MediaBench-family analogs, including `pegwit`, a wide-arithmetic crypto
// kernel built as a negative control - its values exceed the 18-bit
// candidate width, so the selective algorithm should find (nearly) nothing
// and, crucially, must not make the program slower.
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace t1000;

int main() {
  std::printf(
      "Extended suite: selective algorithm on four additional benchmarks\n"
      "(2 and 4 PFUs, 10-cycle reconfiguration)\n\n");

  Table table({"benchmark", "selective 2 PFUs", "selective 4 PFUs",
               "configs@4", "greedy unlimited"});
  for (const Workload& w : extended_workloads()) {
    WorkloadExperiment exp(w);
    const RunOutcome base = exp.run(Selector::kNone, baseline_machine());
    SelectPolicy two_policy;
    two_policy.num_pfus = 2;
    const RunOutcome two =
        exp.run(Selector::kSelective, pfu_machine(2, 10), two_policy);
    SelectPolicy four_policy;
    four_policy.num_pfus = 4;
    const RunOutcome four =
        exp.run(Selector::kSelective, pfu_machine(4, 10), four_policy);
    const RunOutcome best =
        exp.run(Selector::kGreedy, pfu_machine(PfuConfig::kUnlimited, 0));
    table.add_row({w.name, fmt_ratio(speedup(base.stats, two.stats)),
                   fmt_ratio(speedup(base.stats, four.stats)),
                   std::to_string(four.num_configs),
                   fmt_ratio(speedup(base.stats, best.stats))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading guide: the ADPCM pair and jpeg_enc behave like their paper\n"
      "siblings; pegwit's wide arithmetic defeats the narrow-width filter,\n"
      "so it gains ~nothing - and, correctly, loses nothing either.\n");
  return 0;
}
