// Ablation (ours): how much of the selective algorithm's benefit comes from
// the k x k subsequence matrix (Section 5.1's common-subsequence choice)
// versus simply capping the number of maximal sequences per loop?
//
// With few PFUs, the matrix lets one short common subsequence stand in for
// several distinct maximal sequences; disabling it forces whole-sequence
// choices and loses coverage in loops with more shapes than PFUs.
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace t1000;

int main() {
  std::printf(
      "Ablation: selective with vs. without the subsequence matrix\n"
      "(1 and 2 PFUs, 10-cycle reconfiguration)\n\n");

  Table table({"benchmark", "matrix @1", "maximal-only @1", "matrix @2",
               "maximal-only @2"});
  for (const Workload& w : all_workloads()) {
    WorkloadExperiment exp(w);
    const RunOutcome base = exp.run(Selector::kNone, baseline_machine());
    std::vector<std::string> row{w.name};
    for (const int pfus : {1, 2}) {
      for (const bool use_matrix : {true, false}) {
        SelectPolicy policy;
        policy.num_pfus = pfus;
        policy.use_subsequence_matrix = use_matrix;
        const RunOutcome r =
            exp.run(Selector::kSelective, pfu_machine(pfus, 10), policy);
        row.push_back(fmt_ratio(speedup(base.stats, r.stats)));
      }
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: the matrix variant is never worse, and wins where hot\n"
      "loops hold more distinct chain shapes than PFUs with shared "
      "subsequences.\n");
  return 0;
}
