// Ablation (ours): how much of the selective algorithm's benefit comes from
// the k x k subsequence matrix (Section 5.1's common-subsequence choice)
// versus simply capping the number of maximal sequences per loop?
//
// With few PFUs, the matrix lets one short common subsequence stand in for
// several distinct maximal sequences; disabling it forces whole-sequence
// choices and loses coverage in loops with more shapes than PFUs.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/grid.hpp"
#include "harness/report.hpp"

using namespace t1000;

namespace {

std::string variant_label(int pfus, bool use_matrix) {
  return std::string(use_matrix ? "matrix" : "maximal") + "@" +
         std::to_string(pfus);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(
      argc, argv, "ablation_matrix",
      "Ablation: selective with vs. without the subsequence matrix");

  ExperimentGrid grid;
  grid.add_workloads(all_workloads());
  for (const Workload& w : all_workloads()) {
    grid.add(baseline_spec(w.name));
    for (const int pfus : {1, 2}) {
      for (const bool use_matrix : {true, false}) {
        RunSpec spec = selective_spec(w.name, variant_label(pfus, use_matrix),
                                      pfus, 10);
        spec.policy.use_subsequence_matrix = use_matrix;
        grid.add(std::move(spec));
      }
    }
  }
  const GridResult res = grid.run(opts.grid);

  std::printf(
      "Ablation: selective with vs. without the subsequence matrix\n"
      "(1 and 2 PFUs, 10-cycle reconfiguration)\n\n");

  Table table({"benchmark", "matrix @1", "maximal-only @1", "matrix @2",
               "maximal-only @2"});
  for (const Workload& w : all_workloads()) {
    // A failed/timed-out run zeroes its outcome; skip the row rather
    // than print garbage (finish_bench reports the split + exit code).
    if (!res.workload_ok(w.name)) continue;
    const SimStats& base = res.stats(w.name, "baseline");
    std::vector<std::string> row{w.name};
    for (const int pfus : {1, 2}) {
      for (const bool use_matrix : {true, false}) {
        row.push_back(fmt_ratio(speedup(
            base, res.stats(w.name, variant_label(pfus, use_matrix)))));
      }
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: the matrix variant is never worse, and wins where hot\n"
      "loops hold more distinct chain shapes than PFUs with shared "
      "subsequences.\n");
  return finish_bench(res, opts);
}
