// The observability counterpart of Figures 2 and 6. Section 5's argument
// is that the greedy mapping loses its speedup to PFU reconfiguration
// serialization while the selective algorithm nearly eliminates it; with
// stall-cause attribution that claim is directly measurable instead of
// inferred from reconfiguration counts: the cycles the pipeline head
// spends waiting on an in-flight configuration load (ext_reconfig) are a
// visible share of the greedy machine's time and collapse to ~0 under the
// selective mapping at the same 2-PFU budget.
#include <cstdio>
#include <string>

#include "harness/grid.hpp"
#include "harness/report.hpp"

using namespace t1000;

namespace {

RunSpec observed(RunSpec spec) {
  spec.observe = true;
  return spec;
}

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0
             ? 0.0
             : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(
      argc, argv, "stall_breakdown",
      "Section 5 via stall attribution: reconfiguration-stall share of "
      "cycles, greedy vs. selective at 2 PFUs");

  constexpr int kPfus = 2;
  constexpr int kReconfigCycles = 10;

  ExperimentGrid grid;
  grid.add_workloads(all_workloads());
  for (const Workload& w : all_workloads()) {
    grid.add(observed(baseline_spec(w.name)));
    grid.add(observed(greedy_spec(w.name, "greedy", kPfus, kReconfigCycles)));
    grid.add(
        observed(selective_spec(w.name, "selective", kPfus, kReconfigCycles)));
  }
  const GridResult res = grid.run(opts.grid);

  std::printf(
      "Reconfiguration-stall share of total cycles (%d PFUs, %d-cycle "
      "reconfiguration)\n\n",
      kPfus, kReconfigCycles);
  Table table({"workload", "greedy speedup", "greedy reconf", "sel. speedup",
               "sel. reconf"});
  for (const Workload& w : all_workloads()) {
    // A failed/timed-out run zeroes its outcome; skip the row rather than
    // print garbage (finish_bench reports the split + exit code).
    if (!res.workload_ok(w.name)) continue;
    const SimStats& base = res.stats(w.name, "baseline");
    const RunOutcome& greedy = res.outcome(w.name, "greedy");
    const RunOutcome& sel = res.outcome(w.name, "selective");
    table.add_row(
        {w.name, fmt_ratio(speedup(base, greedy.stats)),
         strprintf("%.2f%%", pct(greedy.stalls.of(StallCause::kExtReconfig),
                                 greedy.stalls.cycles)),
         fmt_ratio(speedup(base, sel.stats)),
         strprintf("%.2f%%", pct(sel.stalls.of(StallCause::kExtReconfig),
                                 sel.stalls.cycles))});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nPaper shape: the greedy mapping spends a visible share of its\n"
      "cycles stalled on reconfigurations; the selective mapping drives\n"
      "that share toward zero while keeping the speedup.\n");
  return finish_bench(res, opts);
}
