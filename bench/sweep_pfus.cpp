// Reproduces the Section 5.2 claim that the selective algorithm "adjusts
// itself well to the number of PFUs available": speedup vs. PFU count,
// showing four PFUs typically match the unlimited configuration.
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace t1000;

int main() {
  std::printf(
      "Section 5.2: selective speedup vs. PFU count "
      "(10-cycle reconfiguration)\n\n");

  Table table({"benchmark", "1 PFU", "2 PFUs", "4 PFUs", "8 PFUs",
               "unlimited"});
  for (const Workload& w : all_workloads()) {
    WorkloadExperiment exp(w);
    const RunOutcome base = exp.run(Selector::kNone, baseline_machine());
    std::vector<std::string> row{w.name};
    for (const int pfus : {1, 2, 4, 8, PfuConfig::kUnlimited}) {
      SelectPolicy policy;
      policy.num_pfus = pfus == PfuConfig::kUnlimited ? kUnlimitedPfus : pfus;
      const RunOutcome r =
          exp.run(Selector::kSelective, pfu_machine(pfus, 10), policy);
      row.push_back(fmt_ratio(speedup(base.stats, r.stats)));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper shape: monotone in PFU count; four PFUs are typically enough\n"
      "to match the unlimited configuration.\n");
  return 0;
}
