// Reproduces the Section 5.2 claim that the selective algorithm "adjusts
// itself well to the number of PFUs available": speedup vs. PFU count,
// showing four PFUs typically match the unlimited configuration.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/grid.hpp"
#include "harness/report.hpp"

using namespace t1000;

namespace {

std::string pfu_label(int pfus) {
  return pfus == PfuConfig::kUnlimited ? "unlimited"
                                       : std::to_string(pfus) + "pfu";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(
      argc, argv, "sweep_pfus",
      "Section 5.2: selective speedup vs. PFU count");

  const int pfu_counts[] = {1, 2, 4, 8, PfuConfig::kUnlimited};

  ExperimentGrid grid;
  grid.add_workloads(all_workloads());
  for (const Workload& w : all_workloads()) {
    grid.add(baseline_spec(w.name));
    for (const int pfus : pfu_counts) {
      grid.add(selective_spec(w.name, pfu_label(pfus), pfus, 10));
    }
  }
  const GridResult res = grid.run(opts.grid);

  std::printf(
      "Section 5.2: selective speedup vs. PFU count "
      "(10-cycle reconfiguration)\n\n");

  Table table({"benchmark", "1 PFU", "2 PFUs", "4 PFUs", "8 PFUs",
               "unlimited"});
  for (const Workload& w : all_workloads()) {
    // A failed/timed-out run zeroes its outcome; skip the row rather
    // than print garbage (finish_bench reports the split + exit code).
    if (!res.workload_ok(w.name)) continue;
    const SimStats& base = res.stats(w.name, "baseline");
    std::vector<std::string> row{w.name};
    for (const int pfus : pfu_counts) {
      row.push_back(fmt_ratio(speedup(base, res.stats(w.name, pfu_label(pfus)))));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper shape: monotone in PFU count; four PFUs are typically enough\n"
      "to match the unlimited configuration.\n");
  return finish_bench(res, opts);
}
