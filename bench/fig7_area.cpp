// Reproduces Figure 7: the distribution of configurable-hardware cost
// (Xilinx-style 4-input LUTs) across the extended instructions chosen by
// the selective algorithm over all eight benchmarks.
//
// Paper result: most selected instructions need little hardware thanks to
// profiled narrow operand widths; the largest needs 105 LUTs, comfortably
// inside a ~150-LUT PFU.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/grid.hpp"
#include "harness/report.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(
      argc, argv, "fig7_area",
      "Figure 7: LUT-cost distribution of selected extended instructions");

  ExperimentGrid grid;
  grid.add_workloads(all_workloads());
  for (const Workload& w : all_workloads()) {
    grid.add(selective_spec(w.name, "4pfu", 4, 10));
  }
  const GridResult res = grid.run(opts.grid);

  std::printf(
      "Figure 7: LUT-cost distribution of the extended instructions chosen\n"
      "by the selective algorithm (4 PFUs, 10-cycle reconfiguration)\n\n");

  std::vector<int> costs;
  Table per_bench({"benchmark", "configs", "min LUTs", "max LUTs"});
  for (const Workload& w : all_workloads()) {
    // A failed/timed-out run zeroes its outcome; skip the row rather
    // than print garbage (finish_bench reports the split + exit code).
    if (!res.workload_ok(w.name)) continue;
    const RunOutcome& r = res.outcome(w.name, "4pfu");
    int lo = 0;
    int hi = 0;
    if (!r.lut_costs.empty()) {
      lo = *std::min_element(r.lut_costs.begin(), r.lut_costs.end());
      hi = *std::max_element(r.lut_costs.begin(), r.lut_costs.end());
    }
    per_bench.add_row({w.name, std::to_string(r.num_configs),
                       std::to_string(lo), std::to_string(hi)});
    costs.insert(costs.end(), r.lut_costs.begin(), r.lut_costs.end());
  }
  std::printf("%s\n", per_bench.to_string().c_str());

  // Histogram in 15-LUT buckets, as a text rendering of the figure.
  constexpr int kBucket = 15;
  constexpr int kBuckets = 10;  // up to 150 LUTs
  std::vector<int> hist(kBuckets, 0);
  int max_cost = 0;
  for (const int c : costs) {
    hist[static_cast<std::size_t>(std::min(c / kBucket, kBuckets - 1))] += 1;
    max_cost = std::max(max_cost, c);
  }
  const int peak = *std::max_element(hist.begin(), hist.end());
  std::printf("# of extended instructions per LUT-cost bucket:\n");
  for (int b = 0; b < kBuckets; ++b) {
    std::printf("  %3d-%3d LUTs  %2d  %s\n", b * kBucket,
                (b + 1) * kBucket - 1, hist[static_cast<std::size_t>(b)],
                bar(hist[static_cast<std::size_t>(b)], peak, 30).c_str());
  }
  std::printf(
      "\nLargest selected instruction: %d LUTs (paper: 105; PFU budget "
      "150).\n%s\n",
      max_cost,
      max_cost <= 150 ? "All selected instructions fit the PFU."
                      : "ERROR: an instruction exceeds the PFU budget!");
  if (max_cost > 150) return 1;
  return finish_bench(res, opts);
}
