// Reproduces the Section 5.2 claim: "our experiments show that we retain
// our excellent speedups even with reconfiguration times as high as 500
// cycles" - because the selective algorithm nearly eliminates
// reconfigurations, the speedup is flat in the penalty.
//
// For contrast, the same sweep under the *greedy* mapping (2 PFUs)
// collapses as the penalty grows.
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace t1000;

int main() {
  const int penalties[] = {0, 10, 50, 100, 250, 500};

  std::printf(
      "Section 5.2 sensitivity: selective speedup (2 PFUs) vs.\n"
      "reconfiguration penalty, with the greedy mapping for contrast\n\n");

  for (const Workload& w : all_workloads()) {
    WorkloadExperiment exp(w);
    const RunOutcome base = exp.run(Selector::kNone, baseline_machine());
    Table table({"reconfig cycles", "selective 2 PFUs", "greedy 2 PFUs"});
    double sel_min = 1e9;
    double sel_max = 0;
    for (const int penalty : penalties) {
      SelectPolicy policy;
      policy.num_pfus = 2;
      const RunOutcome sel =
          exp.run(Selector::kSelective, pfu_machine(2, penalty), policy);
      const RunOutcome greedy =
          exp.run(Selector::kGreedy, pfu_machine(2, penalty));
      const double s = speedup(base.stats, sel.stats);
      sel_min = std::min(sel_min, s);
      sel_max = std::max(sel_max, s);
      table.add_row({std::to_string(penalty), fmt_ratio(s),
                     fmt_ratio(speedup(base.stats, greedy.stats))});
    }
    std::printf("%s\n%s", w.name.c_str(), table.to_string().c_str());
    std::printf("  selective spread across penalties: %.1f%%\n\n",
                (sel_max - sel_min) * 100.0);
  }
  std::printf(
      "Paper shape: the selective column is nearly flat through 500 cycles;\n"
      "the greedy column degrades steeply with the penalty.\n");
  return 0;
}
