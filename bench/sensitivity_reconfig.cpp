// Reproduces the Section 5.2 claim: "our experiments show that we retain
// our excellent speedups even with reconfiguration times as high as 500
// cycles" - because the selective algorithm nearly eliminates
// reconfigurations, the speedup is flat in the penalty.
//
// For contrast, the same sweep under the *greedy* mapping (2 PFUs)
// collapses as the penalty grows.
#include <algorithm>
#include <cstdio>
#include <string>

#include "harness/grid.hpp"
#include "harness/report.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(
      argc, argv, "sensitivity_reconfig",
      "Section 5.2: speedup sensitivity to the reconfiguration penalty");

  const int penalties[] = {0, 10, 50, 100, 250, 500};

  ExperimentGrid grid;
  grid.add_workloads(all_workloads());
  for (const Workload& w : all_workloads()) {
    grid.add(baseline_spec(w.name));
    for (const int penalty : penalties) {
      const std::string suffix = "@" + std::to_string(penalty);
      grid.add(selective_spec(w.name, "selective" + suffix, 2, penalty));
      grid.add(greedy_spec(w.name, "greedy" + suffix, 2, penalty));
    }
  }
  const GridResult res = grid.run(opts.grid);

  std::printf(
      "Section 5.2 sensitivity: selective speedup (2 PFUs) vs.\n"
      "reconfiguration penalty, with the greedy mapping for contrast\n\n");

  for (const Workload& w : all_workloads()) {
    // A failed/timed-out run zeroes its outcome; skip the row rather
    // than print garbage (finish_bench reports the split + exit code).
    if (!res.workload_ok(w.name)) continue;
    const SimStats& base = res.stats(w.name, "baseline");
    Table table({"reconfig cycles", "selective 2 PFUs", "greedy 2 PFUs"});
    double sel_min = 1e9;
    double sel_max = 0;
    for (const int penalty : penalties) {
      const std::string suffix = "@" + std::to_string(penalty);
      const double s =
          speedup(base, res.stats(w.name, "selective" + suffix));
      sel_min = std::min(sel_min, s);
      sel_max = std::max(sel_max, s);
      table.add_row({std::to_string(penalty), fmt_ratio(s),
                     fmt_ratio(speedup(base, res.stats(w.name,
                                                       "greedy" + suffix)))});
    }
    std::printf("%s\n%s", w.name.c_str(), table.to_string().c_str());
    std::printf("  selective spread across penalties: %.1f%%\n\n",
                (sel_max - sel_min) * 100.0);
  }
  std::printf(
      "Paper shape: the selective column is nearly flat through 500 cycles;\n"
      "the greedy column degrades steeply with the penalty.\n");
  return finish_bench(res, opts);
}
