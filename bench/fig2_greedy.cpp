// Reproduces Figure 2: speedups from the *greedy* selection algorithm.
//
// Paper setup: baseline 4-issue superscalar without PFUs (normalized 1.0);
// T1000 with unlimited PFUs and zero reconfiguration cost (best case,
// speedups of 4.5%..44%); and T1000 with 2 PFUs at a 10-cycle
// reconfiguration penalty, where the greedy mapping thrashes and typically
// lands *below* the baseline.
#include <cstdio>

#include "harness/grid.hpp"
#include "harness/report.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(
      argc, argv, "fig2_greedy",
      "Figure 2: greedy selection speedups over the no-PFU superscalar");

  ExperimentGrid grid;
  grid.add_workloads(all_workloads());
  for (const Workload& w : all_workloads()) {
    grid.add(baseline_spec(w.name));
    grid.add(greedy_spec(w.name, "unlimited", PfuConfig::kUnlimited, 0));
    grid.add(greedy_spec(w.name, "2pfu", 2, 10));
  }
  const GridResult res = grid.run(opts.grid);

  std::printf(
      "Figure 2: greedy selection speedups over the no-PFU superscalar\n"
      "  col 2: unlimited PFUs, zero reconfiguration cost (best case)\n"
      "  col 3: 2 PFUs, 10-cycle reconfiguration penalty (thrashing)\n\n");

  Table table({"benchmark", "base cycles", "T1000 unlimited", "T1000 2 PFUs",
               "configs", "reconfigs@2"});
  for (const Workload& w : all_workloads()) {
    // A failed/timed-out run zeroes its outcome; skip the row rather
    // than print garbage (finish_bench reports the split + exit code).
    if (!res.workload_ok(w.name)) continue;
    const SimStats& base = res.stats(w.name, "baseline");
    const RunOutcome& best = res.outcome(w.name, "unlimited");
    const RunOutcome& two = res.outcome(w.name, "2pfu");
    table.add_row({w.name, std::to_string(base.cycles),
                   fmt_ratio(speedup(base, best.stats)),
                   fmt_ratio(speedup(base, two.stats)),
                   std::to_string(best.num_configs),
                   std::to_string(two.stats.pfu.reconfigurations)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper shape: unlimited-PFU speedups span ~1.045 (g721_dec) to ~1.44\n"
      "(gsm_dec); with only 2 PFUs the greedy mapping reconfigures "
      "constantly\nand drops below 1.0 for most benchmarks.\n");
  return finish_bench(res, opts);
}
