// Reproduces Figure 6: speedups from the *selective* algorithm.
//
// Paper setup: 10-cycle reconfiguration penalty everywhere; T1000 with 2
// PFUs, 4 PFUs, and unlimited PFUs, all relative to the no-PFU baseline.
// Selective speedups run 2..27%; four PFUs are typically enough to match
// the unlimited configuration because the per-loop cap adapts the chosen
// sequences to the available units.
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace t1000;

namespace {

RunOutcome run_selective(WorkloadExperiment& exp, int pfus, int latency) {
  SelectPolicy policy;
  policy.num_pfus = pfus == PfuConfig::kUnlimited ? kUnlimitedPfus : pfus;
  return exp.run(Selector::kSelective, pfu_machine(pfus, latency), policy);
}

}  // namespace

int main() {
  std::printf(
      "Figure 6: selective-algorithm speedups over the no-PFU superscalar\n"
      "  all configurations pay a 10-cycle reconfiguration penalty\n\n");

  Table table({"benchmark", "T1000 2 PFUs", "T1000 4 PFUs", "T1000 unlimited",
               "reconfigs@2", "reconfigs@4"});
  for (const Workload& w : all_workloads()) {
    WorkloadExperiment exp(w);
    const RunOutcome base = exp.run(Selector::kNone, baseline_machine());
    const RunOutcome two = run_selective(exp, 2, 10);
    const RunOutcome four = run_selective(exp, 4, 10);
    const RunOutcome unl = run_selective(exp, PfuConfig::kUnlimited, 10);
    table.add_row({w.name, fmt_ratio(speedup(base.stats, two.stats)),
                   fmt_ratio(speedup(base.stats, four.stats)),
                   fmt_ratio(speedup(base.stats, unl.stats)),
                   std::to_string(two.stats.pfu.reconfigurations),
                   std::to_string(four.stats.pfu.reconfigurations)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper shape: 2-PFU speedups of roughly 2%%..27%%, all above 1.0 (no\n"
      "thrashing); 4 PFUs recover nearly the unlimited-PFU speedups.\n");
  return 0;
}
