// Reproduces Figure 6: speedups from the *selective* algorithm.
//
// Paper setup: 10-cycle reconfiguration penalty everywhere; T1000 with 2
// PFUs, 4 PFUs, and unlimited PFUs, all relative to the no-PFU baseline.
// Selective speedups run 2..27%; four PFUs are typically enough to match
// the unlimited configuration because the per-loop cap adapts the chosen
// sequences to the available units.
#include <cstdio>

#include "harness/grid.hpp"
#include "harness/report.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(
      argc, argv, "fig6_selective",
      "Figure 6: selective-algorithm speedups over the no-PFU superscalar");

  ExperimentGrid grid;
  grid.add_workloads(all_workloads());
  for (const Workload& w : all_workloads()) {
    grid.add(baseline_spec(w.name));
    grid.add(selective_spec(w.name, "2pfu", 2, 10));
    grid.add(selective_spec(w.name, "4pfu", 4, 10));
    grid.add(selective_spec(w.name, "unlimited", PfuConfig::kUnlimited, 10));
  }
  const GridResult res = grid.run(opts.grid);

  std::printf(
      "Figure 6: selective-algorithm speedups over the no-PFU superscalar\n"
      "  all configurations pay a 10-cycle reconfiguration penalty\n\n");

  Table table({"benchmark", "T1000 2 PFUs", "T1000 4 PFUs", "T1000 unlimited",
               "reconfigs@2", "reconfigs@4"});
  for (const Workload& w : all_workloads()) {
    // A failed/timed-out run zeroes its outcome; skip the row rather
    // than print garbage (finish_bench reports the split + exit code).
    if (!res.workload_ok(w.name)) continue;
    const SimStats& base = res.stats(w.name, "baseline");
    const RunOutcome& two = res.outcome(w.name, "2pfu");
    const RunOutcome& four = res.outcome(w.name, "4pfu");
    const RunOutcome& unl = res.outcome(w.name, "unlimited");
    table.add_row({w.name, fmt_ratio(speedup(base, two.stats)),
                   fmt_ratio(speedup(base, four.stats)),
                   fmt_ratio(speedup(base, unl.stats)),
                   std::to_string(two.stats.pfu.reconfigurations),
                   std::to_string(four.stats.pfu.reconfigurations)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper shape: 2-PFU speedups of roughly 2%%..27%%, all above 1.0 (no\n"
      "thrashing); 4 PFUs recover nearly the unlimited-PFU speedups.\n");
  return finish_bench(res, opts);
}
