// Ablation (ours): the paper assumes extended instructions evaluate in a
// single PFU cycle and picks sequences for which that is plausible, noting
// that variable execution times would be easy to support on an out-of-order
// machine. This bench enables depth-derived latencies (one cycle per 3 LUT
// levels) and compares: the speedups should degrade only mildly because the
// selected chains are shallow.
#include <cstdio>

#include "harness/grid.hpp"
#include "harness/report.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(
      argc, argv, "ablation_ext_latency",
      "Ablation: single-cycle vs. depth-derived EXT latency");

  ExperimentGrid grid;
  grid.add_workloads(all_workloads());
  for (const Workload& w : all_workloads()) {
    grid.add(baseline_spec(w.name));
    grid.add(selective_spec(w.name, "single", 4, 10));

    RunSpec depth = selective_spec(w.name, "depth", 4, 10);
    depth.machine.pfu.multi_cycle_ext = true;
    grid.add(std::move(depth));

    RunSpec strict = selective_spec(w.name, "strict", 4, 10);
    strict.machine.pfu.multi_cycle_ext = true;
    strict.machine.pfu.levels_per_cycle = 1;  // every LUT level costs a cycle
    grid.add(std::move(strict));
  }
  const GridResult res = grid.run(opts.grid);

  std::printf(
      "Ablation: selective speedup (4 PFUs) with single-cycle vs.\n"
      "logic-depth-derived extended-instruction latency\n\n");

  Table table({"benchmark", "single-cycle EXT", "depth-derived EXT",
               "1 level/cycle EXT"});
  for (const Workload& w : all_workloads()) {
    // A failed/timed-out run zeroes its outcome; skip the row rather
    // than print garbage (finish_bench reports the split + exit code).
    if (!res.workload_ok(w.name)) continue;
    const SimStats& base = res.stats(w.name, "baseline");
    table.add_row({w.name,
                   fmt_ratio(speedup(base, res.stats(w.name, "single"))),
                   fmt_ratio(speedup(base, res.stats(w.name, "depth"))),
                   fmt_ratio(speedup(base, res.stats(w.name, "strict")))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: columns 2-3 match (every selected chain maps to <= 3 LUT\n"
      "levels, i.e. one PFU cycle, validating the paper's assumption for its\n"
      "selection policy); even charging one cycle per LUT level (col 4) only\n"
      "trims the gains, since the out-of-order core hides PFU latency.\n");
  return finish_bench(res, opts);
}
