// Ablation (ours): the paper assumes extended instructions evaluate in a
// single PFU cycle and picks sequences for which that is plausible, noting
// that variable execution times would be easy to support on an out-of-order
// machine. This bench enables depth-derived latencies (one cycle per 3 LUT
// levels) and compares: the speedups should degrade only mildly because the
// selected chains are shallow.
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace t1000;

int main() {
  std::printf(
      "Ablation: selective speedup (4 PFUs) with single-cycle vs.\n"
      "logic-depth-derived extended-instruction latency\n\n");

  Table table({"benchmark", "single-cycle EXT", "depth-derived EXT",
               "1 level/cycle EXT"});
  for (const Workload& w : all_workloads()) {
    WorkloadExperiment exp(w);
    SelectPolicy policy;
    policy.num_pfus = 4;
    const RunOutcome base = exp.run(Selector::kNone, baseline_machine());
    const RunOutcome single =
        exp.run(Selector::kSelective, pfu_machine(4, 10), policy);
    MachineConfig multi = pfu_machine(4, 10);
    multi.pfu.multi_cycle_ext = true;
    const RunOutcome depth = exp.run(Selector::kSelective, multi, policy);
    MachineConfig fast_clock = pfu_machine(4, 10);
    fast_clock.pfu.multi_cycle_ext = true;
    fast_clock.pfu.levels_per_cycle = 1;  // every LUT level costs a cycle
    const RunOutcome strict = exp.run(Selector::kSelective, fast_clock, policy);
    table.add_row({w.name, fmt_ratio(speedup(base.stats, single.stats)),
                   fmt_ratio(speedup(base.stats, depth.stats)),
                   fmt_ratio(speedup(base.stats, strict.stats))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: columns 2-3 match (every selected chain maps to <= 3 LUT\n"
      "levels, i.e. one PFU cycle, validating the paper's assumption for its\n"
      "selection policy); even charging one cycle per LUT level (col 4) only\n"
      "trims the gains, since the out-of-order core hides PFU latency.\n");
  return 0;
}
