// Extension bench (ours): the paper's comparison applied to kernels
// *compiled from C* rather than hand-written assembly - the setting the
// paper actually operated in (MediaBench compiled by gcc for SimpleScalar).
// Three MiniC kernels cover the suite's spectrum: a chain-rich filter, a
// block transform with memory traffic, and a branchy quantizer.
#include <cstdio>
#include <string>

#include "asmkit/assembler.hpp"
#include "extinst/rewrite.hpp"
#include "extinst/select.hpp"
#include "harness/report.hpp"
#include "minic/minic.hpp"
#include "sim/executor.hpp"
#include "uarch/timing.hpp"

using namespace t1000;

namespace {

struct CompiledKernel {
  const char* name;
  const char* source;
};

const CompiledKernel kKernels[] = {
    {"c_filter", R"(
      int frame[256];
      int main() {
        int state = 0; int acc = 0;
        for (int r = 0; r < 40; r = r + 1) {
          for (int i = 0; i < 256; i = i + 1) {
            frame[i] = (i * 73 + r * 19) & 0x1FFF;
          }
          for (int i = 0; i < 256; i = i + 1) {
            int x = frame[i];
            int y = ((x << 2) + state >> 1) + 33;
            y = y + x;
            state = (y >> 2) & 0xFFF;
            acc = acc + ((x << 1) ^ y);
          }
        }
        return acc & 0xFFFFFF;
      }
    )"},
    {"c_transform", R"(
      int blk[512];
      int out[512];
      int main() {
        int acc = 0;
        for (int r = 0; r < 30; r = r + 1) {
          for (int i = 0; i < 512; i = i + 1) {
            blk[i] = (i * 31 + r) & 0xFF;
          }
          for (int i = 0; i < 256; i = i + 1) {
            int a = blk[2 * i];
            int b = blk[2 * i + 1];
            int s = (a + b + 4) >> 3;
            int d = (a - b + 4) >> 3;
            out[2 * i] = s;
            out[2 * i + 1] = d;
            acc = acc + ((s ^ d) & 0x3FF);
          }
        }
        return acc & 0xFFFFFF;
      }
    )"},
    {"c_quantizer", R"(
      int samples[256];
      int main() {
        int step = 16; int acc = 0;
        for (int r = 0; r < 40; r = r + 1) {
          for (int i = 0; i < 256; i = i + 1) {
            samples[i] = (i * 97 + r * 13) & 0x1FFF;
          }
          for (int i = 0; i < 256; i = i + 1) {
            int x = samples[i];
            int code = 0;
            if (x >= step) { code = code + 4; x = x - step; }
            if (x >= step / 2) { code = code + 2; x = x - step / 2; }
            if (x >= step / 4) { code = code + 1; }
            if (code < 3) { step = step - 1; if (step < 2) { step = 2; } }
            else { step = step + 4; if (step > 2000) { step = 2000; } }
            acc = acc + (code ^ (x & 0xF));
          }
        }
        return acc & 0xFFFFFF;
      }
    )"},
};

}  // namespace

int main() {
  std::printf(
      "Compiled kernels: selective algorithm on MiniC-compiled code\n"
      "(2 PFUs, 10-cycle reconfiguration)\n\n");

  Table table({"kernel", "chains found", "configs", "selective 2 PFUs",
               "checksum ok"});
  for (const CompiledKernel& k : kKernels) {
    const Program p = minic::compile(k.source);
    const AnalyzedProgram ap = analyze_program(p, 1u << 26);
    SelectPolicy policy;
    policy.num_pfus = 2;
    Selection sel = select_selective(ap, policy);
    const RewriteResult rr = rewrite_program(p, sel.apps);

    Executor ref(p);
    ref.run(1u << 26);
    Executor opt(rr.program, &sel.table);
    opt.run(1u << 26);
    const bool ok = ref.halted() && opt.halted() && ref.reg(2) == opt.reg(2);

    MachineConfig base_cfg;
    MachineConfig pfu_cfg;
    pfu_cfg.pfu = {.count = 2, .reconfig_latency = 10};
    const SimStats base = simulate(p, nullptr, base_cfg);
    const SimStats fast = simulate(rr.program, &sel.table, pfu_cfg);

    table.add_row({k.name, std::to_string(ap.sites.size()),
                   std::to_string(sel.num_configs()),
                   fmt_ratio(static_cast<double>(base.cycles) /
                             static_cast<double>(fast.cycles)),
                   ok ? "yes" : "NO"});
    if (!ok) return 1;
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "The selector mines compiler output just as it mines hand-written\n"
      "assembly: chain-rich code gains the most, branchy quantization the\n"
      "least - the Figure 2/6 ordering, recovered from C.\n");
  return 0;
}
