// Extension bench (ours): the paper's comparison applied to kernels
// *compiled from C* rather than hand-written assembly - the setting the
// paper actually operated in (MediaBench compiled by gcc for SimpleScalar).
// Three MiniC kernels cover the suite's spectrum: a chain-rich filter, a
// block transform with memory traffic, and a branchy quantizer.
//
// Each kernel is compiled to assembly and registered as a synthetic
// Workload, so the grid engine (and its result cache, keyed by the hash of
// the *compiled* program) treats compiler output exactly like the
// hand-written suite.
#include <cstdio>
#include <vector>

#include "harness/grid.hpp"
#include "harness/report.hpp"
#include "minic/minic.hpp"
#include "workloads/workload.hpp"

using namespace t1000;

namespace {

struct CompiledKernel {
  const char* name;
  const char* source;
};

const CompiledKernel kKernels[] = {
    {"c_filter", R"(
      int frame[256];
      int main() {
        int state = 0; int acc = 0;
        for (int r = 0; r < 40; r = r + 1) {
          for (int i = 0; i < 256; i = i + 1) {
            frame[i] = (i * 73 + r * 19) & 0x1FFF;
          }
          for (int i = 0; i < 256; i = i + 1) {
            int x = frame[i];
            int y = ((x << 2) + state >> 1) + 33;
            y = y + x;
            state = (y >> 2) & 0xFFF;
            acc = acc + ((x << 1) ^ y);
          }
        }
        return acc & 0xFFFFFF;
      }
    )"},
    {"c_transform", R"(
      int blk[512];
      int out[512];
      int main() {
        int acc = 0;
        for (int r = 0; r < 30; r = r + 1) {
          for (int i = 0; i < 512; i = i + 1) {
            blk[i] = (i * 31 + r) & 0xFF;
          }
          for (int i = 0; i < 256; i = i + 1) {
            int a = blk[2 * i];
            int b = blk[2 * i + 1];
            int s = (a + b + 4) >> 3;
            int d = (a - b + 4) >> 3;
            out[2 * i] = s;
            out[2 * i + 1] = d;
            acc = acc + ((s ^ d) & 0x3FF);
          }
        }
        return acc & 0xFFFFFF;
      }
    )"},
    {"c_quantizer", R"(
      int samples[256];
      int main() {
        int step = 16; int acc = 0;
        for (int r = 0; r < 40; r = r + 1) {
          for (int i = 0; i < 256; i = i + 1) {
            samples[i] = (i * 97 + r * 13) & 0x1FFF;
          }
          for (int i = 0; i < 256; i = i + 1) {
            int x = samples[i];
            int code = 0;
            if (x >= step) { code = code + 4; x = x - step; }
            if (x >= step / 2) { code = code + 2; x = x - step / 2; }
            if (x >= step / 4) { code = code + 1; }
            if (code < 3) { step = step - 1; if (step < 2) { step = 2; } }
            else { step = step + 4; if (step > 2000) { step = 2000; } }
            acc = acc + (code ^ (x & 0xF));
          }
        }
        return acc & 0xFFFFFF;
      }
    )"},
};

Workload compiled_workload(const CompiledKernel& kernel) {
  Workload w;
  w.name = kernel.name;
  w.description = "MiniC-compiled kernel";
  w.source = minic::compile_to_assembly(kernel.source);
  w.max_steps = 1u << 26;
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(
      argc, argv, "compiled_kernels",
      "Compiled kernels: selective algorithm on MiniC-compiled code");

  ExperimentGrid grid;
  std::vector<std::string> names;
  for (const CompiledKernel& k : kKernels) {
    grid.add_workload(compiled_workload(k));
    names.push_back(k.name);
  }
  // The bundled compiled suite (src/workloads/compiled.cpp) rides the same
  // comparison: the CI-verified cikernel next to the bench-local kernels.
  for (const Workload& w : compiled_workloads()) {
    grid.add_workload(w);
    names.push_back(w.name);
  }
  for (const std::string& name : names) {
    grid.add(baseline_spec(name));
    grid.add(selective_spec(name, "2pfu", 2, 10));
  }
  const GridResult res = grid.run(opts.grid);

  std::printf(
      "Compiled kernels: selective algorithm on MiniC-compiled code\n"
      "(2 PFUs, 10-cycle reconfiguration)\n\n");

  Table table({"kernel", "configs", "sites", "selective 2 PFUs",
               "checksum ok"});
  bool all_ok = true;
  for (const std::string& name : names) {
    // A failed/timed-out run zeroes its outcome; skip the row rather
    // than print garbage (finish_bench reports the split + exit code).
    if (!res.workload_ok(name)) continue;
    const RunOutcome& base = res.outcome(name, "baseline");
    const RunOutcome& fast = res.outcome(name, "2pfu");
    // The engine already validated the rewrite against the baseline run
    // and would have thrown on divergence; this re-checks the recorded
    // checksums end-to-end.
    const bool ok = base.checksum == fast.checksum;
    all_ok = all_ok && ok;
    table.add_row({name, std::to_string(fast.num_configs),
                   std::to_string(fast.num_apps),
                   fmt_ratio(speedup(base.stats, fast.stats)),
                   ok ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "The selector mines compiler output just as it mines hand-written\n"
      "assembly: chain-rich code gains the most, branchy quantization the\n"
      "least - the Figure 2/6 ordering, recovered from C.\n");
  if (!all_ok) return 1;
  return finish_bench(res, opts);
}
