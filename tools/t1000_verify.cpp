// t1000-verify: the static-analysis entry point (analysis/verifier.hpp).
// Verifies IR well-formedness and, when a selection pipeline runs, the
// extended-instruction legality / semantic-equivalence / bitwidth rules the
// paper's Sections 3-5 rest on. DESIGN.md Section 11 has the rule catalog.
//
//   t1000-verify input.{s,obj} [--selector S] [...]   one program
//   t1000-verify --workloads   [--selector S] [...]   every bundled workload
//
// For assembly inputs (and --workloads) the tool runs the full pipeline per
// selector — profile, select, rewrite — and verifies the selection against
// the original program. Object files that already carry EXT instructions
// get module-level verification against their configuration table (the
// selection that produced them is not recoverable from the binary).
//
// Exit code 0 iff no error-severity diagnostics. The --json report splits
// deterministic content (diagnostics, stats, width audit — byte-identical
// across runs) from per-phase wall-clock under "timing"; compare with
// `jq 'del(.. | .timing?)'`.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/verifier.hpp"
#include "extinst/rewrite.hpp"
#include "extinst/select.hpp"
#include "tool_common.hpp"
#include "workloads/workload.hpp"

using namespace t1000;

namespace {

struct VerifyJob {
  std::string name;      // workload name or input path
  Selector selector = Selector::kNone;
  Program program;
  const ExtInstTable* table = nullptr;  // pre-built binaries: module-only
  bool pipeline = false;                // run select+rewrite, then verify
  std::uint64_t max_steps = 1u << 26;
};

VerifyReport run_job(const VerifyJob& job, const SelectPolicy& policy,
                     VerifyOptions options) {
  if (!job.pipeline || job.selector == Selector::kNone) {
    return verify_module(job.program, job.table, options);
  }
  const AnalyzedProgram ap =
      analyze_program(job.program, job.max_steps, policy.extract);
  const Selection sel = job.selector == Selector::kGreedy
                            ? select_greedy(ap, policy.lut_budget)
                            : select_selective(ap, policy);
  const RewriteResult rr = rewrite_program(job.program, sel.apps);
  return verify_selection(ap, sel, rr, options);
}

Json job_json(const VerifyJob& job, const VerifyReport& report) {
  Json j = Json::object();
  j["name"] = Json(job.name);
  j["selector"] = Json(selector_name(job.selector));
  j["report"] = to_json(report);
  j["timing"] = to_json(report.timing);
  return j;
}

void print_job(const VerifyJob& job, const VerifyReport& report) {
  const VerifyStats& s = report.stats;
  std::printf(
      "%s [%.*s]: %s (%d config(s), %d app(s); equivalence: %d structural, "
      "%d exhaustive, %d sampled, %llu evaluation(s); translation: %d "
      "proven) in %.1f ms\n",
      job.name.c_str(), static_cast<int>(selector_name(job.selector).size()),
      selector_name(job.selector).data(), report.summary().c_str(), s.configs,
      s.apps, s.equiv_structural, s.equiv_exhaustive, s.equiv_sampled,
      static_cast<unsigned long long>(s.equiv_evals), s.translation_proven,
      report.timing.total_ms);
  for (const Diagnostic& d : report.diagnostics) {
    std::fprintf(stderr, "  %.*s: %s @ %s: %s\n",
                 static_cast<int>(severity_name(d.severity).size()),
                 severity_name(d.severity).data(), d.rule_id.c_str(),
                 d.location.c_str(), d.message.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  tools::ToolOptions common;
  bool workloads = false;
  bool pedantic = false;
  bool no_matrix = false;
  long pfus = kUnlimitedPfus;
  double threshold = 0.005;
  std::string selector_arg = "all";
  OptionParser parser = common.make_parser(
      "t1000-verify",
      "statically verify IR well-formedness and extended-instruction "
      "legality/equivalence");
  parser.add_flag("--workloads",
                  "verify every bundled workload instead of an input file",
                  &workloads);
  parser.add_string("--selector", "S",
                    "none, greedy, selective, or all (default: all)",
                    &selector_arg);
  parser.add_int("--pfus", "N", "PFU budget for selective selection", &pfus);
  parser.add_double("--threshold", "F",
                    "selective time threshold (default: 0.005)", &threshold);
  parser.add_flag("--no-matrix", "disable the subsequence matrix",
                  &no_matrix);
  long max_inputs = 2;
  long max_outputs = 1;
  parser.add_int("--max-inputs", "N",
                 "candidate shape: external register inputs (default: 2)",
                 &max_inputs);
  parser.add_int("--max-outputs", "N",
                 "candidate shape: register outputs (default: 1)",
                 &max_outputs);
  parser.add_flag("--pedantic",
                  "report profile-only width reliance as warnings",
                  &pedantic);
  parser.set_positional("input.{s,obj}", 0, 1);
  const std::vector<std::string> inputs = parser.parse(argc, argv);

  if (workloads != inputs.empty()) {
    std::fprintf(stderr,
                 "error: pass exactly one of an input file or --workloads\n");
    return 2;
  }

  std::vector<Selector> selectors;
  if (selector_arg == "all") {
    selectors = {Selector::kNone, Selector::kGreedy, Selector::kSelective};
  } else {
    Selector s = Selector::kNone;
    if (!selector_from_name(selector_arg, &s)) {
      std::fprintf(stderr, "error: unknown selector '%s'\n",
                   selector_arg.c_str());
      return 2;
    }
    selectors = {s};
  }

  SelectPolicy policy;
  policy.num_pfus = static_cast<int>(pfus);
  policy.time_threshold = threshold;
  policy.use_subsequence_matrix = !no_matrix;
  policy.extract.max_inputs = static_cast<int>(max_inputs);
  policy.extract.max_outputs = static_cast<int>(max_outputs);

  try {
    // Keep loaded objects alive for the duration (jobs hold table pointers).
    std::vector<LoadedObject> loaded;
    std::vector<VerifyJob> jobs;
    if (workloads) {
      std::vector<Workload> all = all_workloads();
      for (const Workload& w : extended_workloads()) all.push_back(w);
      for (const Workload& w : compiled_workloads()) all.push_back(w);
      for (const Workload& w : all) {
        for (const Selector s : selectors) {
          VerifyJob job;
          job.name = w.name;
          job.selector = s;
          job.program = workload_program(w);
          job.pipeline = true;
          job.max_steps = w.max_steps;
          jobs.push_back(std::move(job));
        }
      }
    } else {
      loaded.push_back(tools::load_input(inputs[0]));
      const LoadedObject& obj = loaded.back();
      if (obj.ext_table.size() > 0) {
        // A pre-rewritten binary: the selection is gone, module checks only.
        VerifyJob job;
        job.name = inputs[0];
        job.program = obj.program;
        job.table = &obj.ext_table;
        jobs.push_back(std::move(job));
      } else {
        for (const Selector s : selectors) {
          VerifyJob job;
          job.name = inputs[0];
          job.selector = s;
          job.program = obj.program;
          job.pipeline = true;
          jobs.push_back(std::move(job));
        }
      }
    }

    VerifyOptions options = verify_options_for(policy);
    options.pedantic = pedantic;

    int total_errors = 0;
    int total_warnings = 0;
    Json runs = Json::array();
    for (const VerifyJob& job : jobs) {
      const VerifyReport report = run_job(job, policy, options);
      print_job(job, report);
      total_errors += report.errors();
      total_warnings += report.warnings();
      runs.push_back(job_json(job, report));
    }

    Json doc = Json::object();
    doc["tool"] = Json("t1000-verify");
    doc["ok"] = Json(total_errors == 0);
    doc["errors"] = Json(total_errors);
    doc["warnings"] = Json(total_warnings);
    doc["runs"] = std::move(runs);
    std::printf("%zu verification run(s): %d error(s), %d warning(s)\n",
                jobs.size(), total_errors, total_warnings);
    const int json_rc = common.finish(doc);
    return json_rc != 0 ? json_rc : (total_errors == 0 ? 0 : 1);
  } catch (...) {
    return tools::finish_current_exception(common, "t1000-verify");
  }
}
