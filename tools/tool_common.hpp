// Shared surface for the t1000-* command-line tools: load a program from
// either an assembly source (.s/.asm) or a T1K1 object file, plus the
// uniform option handling every tool shares. Flag parsing itself is the
// harness OptionParser (src/harness/options.hpp) — each tool declares its
// specific flags on top of the common ones added here, and gets --help,
// value parsing, and unknown-flag diagnostics for free.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "asmkit/assembler.hpp"
#include "asmkit/objfile.hpp"
#include "harness/json.hpp"
#include "harness/options.hpp"
#include "harness/serialize.hpp"

namespace t1000::tools {

inline bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Loads `path`: assembly when it ends in .s/.asm, otherwise a T1K1 object.
inline LoadedObject load_input(const std::string& path) {
  if (has_suffix(path, ".s") || has_suffix(path, ".asm")) {
    std::ifstream is(path);
    if (!is) {
      std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
      std::exit(1);
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    LoadedObject obj;
    obj.program = assemble(buf.str());
    return obj;
  }
  return load_object_file(path);
}

// The option surface every tool shares. Call make_parser(), declare the
// tool-specific flags, parse, and end main() with finish(doc) to honor
// --json uniformly.
struct ToolOptions {
  std::string json_path;  // --json FILE; empty = no JSON export

  OptionParser make_parser(const std::string& name, const std::string& summary,
                           const std::string& input_name = "input.{s,obj}") {
    OptionParser parser(name, summary);
    parser.add_string("--json", "FILE",
                      "write a machine-readable summary as JSON", &json_path);
    parser.set_positional(input_name, 1, 1);
    return parser;
  }

  // Writes `doc` when --json was given. Returns the tool's exit code.
  int finish(const Json& doc) const {
    if (!json_path.empty() && !write_json_file(json_path, doc)) return 1;
    return 0;
  }
};

// Uniform structured error exit, callable only from a catch block: prints
// "name: error[kind]: message" using the harness error taxonomy
// (harness/grid.hpp) and, when --json was requested, writes
// {"tool", "status": "error", "error": {"kind", "message"}} so automation
// driving a failed tool run still gets machine-readable diagnostics.
// Returns the tool's exit code (1).
inline int finish_current_exception(const ToolOptions& opts,
                                    const std::string& name) {
  std::string message;
  const RunErrorKind kind = classify_current_exception(&message);
  std::fprintf(stderr, "%s: error[%.*s]: %s\n", name.c_str(),
               static_cast<int>(run_error_kind_name(kind).size()),
               run_error_kind_name(kind).data(), message.c_str());
  if (!opts.json_path.empty()) {
    Json doc = Json::object();
    doc["tool"] = Json(name);
    doc["status"] = Json("error");
    Json error = Json::object();
    error["kind"] = Json(run_error_kind_name(kind));
    error["message"] = Json(message);
    doc["error"] = std::move(error);
    write_json_file(opts.json_path, doc);
  }
  return 1;
}

}  // namespace t1000::tools
