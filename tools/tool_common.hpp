// Shared helpers for the command-line tools: load a program from either an
// assembly source (.s/.asm) or a T1K1 object file, plus minimal flag
// parsing.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "asmkit/assembler.hpp"
#include "asmkit/objfile.hpp"

namespace t1000::tools {

inline bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Loads `path`: assembly when it ends in .s/.asm, otherwise a T1K1 object.
inline LoadedObject load_input(const std::string& path) {
  if (has_suffix(path, ".s") || has_suffix(path, ".asm")) {
    std::ifstream is(path);
    if (!is) {
      std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
      std::exit(1);
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    LoadedObject obj;
    obj.program = assemble(buf.str());
    return obj;
  }
  return load_object_file(path);
}

// Tiny flag scanner: collects positional args, exposes --flag [value].
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool flag(const std::string& name) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == name) {
        args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  std::string option(const std::string& name, const std::string& fallback) {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) {
        const std::string value = args_[i + 1];
        args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i),
                    args_.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        return value;
      }
    }
    return fallback;
  }

  long option_int(const std::string& name, long fallback) {
    const std::string v = option(name, "");
    return v.empty() ? fallback : std::strtol(v.c_str(), nullptr, 0);
  }

  const std::vector<std::string>& positional() const { return args_; }

 private:
  std::vector<std::string> args_;
};

}  // namespace t1000::tools
