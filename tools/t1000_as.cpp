// t1000-as: assemble a source file into a T1K1 object.
//
//   t1000-as input.s [-o output.obj] [--disassemble] [--json FILE]
#include <cstdio>

#include "tool_common.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  tools::ToolOptions common;
  bool disasm = false;
  std::string out = "a.obj";
  OptionParser parser =
      common.make_parser("t1000-as", "assemble a source file into a T1K1 object");
  parser.add_flag("--disassemble", "print the disassembly instead of writing",
                  &disasm);
  parser.add_string("-o", "FILE", "output object file (default: a.obj)", &out);
  const std::string input = parser.parse(argc, argv)[0];
  try {
    const LoadedObject obj = tools::load_input(input);
    if (disasm) {
      std::printf("%s", disassemble(obj.program).c_str());
    } else {
      save_object_file(out, obj.program,
                       obj.ext_table.size() > 0 ? &obj.ext_table : nullptr);
      std::printf("%s: %d instructions, %zu data bytes -> %s\n", input.c_str(),
                  obj.program.size(), obj.program.data.size(), out.c_str());
    }
    Json doc = Json::object();
    doc["tool"] = Json("t1000-as");
    doc["input"] = Json(input);
    doc["instructions"] = Json(obj.program.size());
    doc["data_bytes"] = Json(obj.program.data.size());
    if (!disasm) doc["output"] = Json(out);
    return common.finish(doc);
  } catch (...) {
    return tools::finish_current_exception(common, "t1000-as");
  }
}
