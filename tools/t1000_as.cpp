// t1000-as: assemble a source file into a T1K1 object.
//
//   t1000-as input.s [-o output.obj] [--disassemble]
#include <cstdio>

#include "tool_common.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  tools::Args args(argc, argv);
  const bool disasm = args.flag("--disassemble");
  const std::string out = args.option("-o", "a.obj");
  if (args.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: t1000-as input.s [-o output.obj] [--disassemble]\n");
    return 2;
  }
  try {
    const LoadedObject obj = tools::load_input(args.positional()[0]);
    if (disasm) {
      std::printf("%s", disassemble(obj.program).c_str());
      return 0;
    }
    save_object_file(out, obj.program,
                     obj.ext_table.size() > 0 ? &obj.ext_table : nullptr);
    std::printf("%s: %d instructions, %zu data bytes -> %s\n",
                args.positional()[0].c_str(), obj.program.size(),
                obj.program.data.size(), out.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
