#!/usr/bin/env python3
"""Perf-regression gate over t1000-bench-report output.

    check_bench_report.py BASELINE FRESH [--wall-tolerance-pct PCT]

Compares a freshly generated report against the committed baseline
(BENCH_10.json):

  * the schema string must match and the two reports must cover the same
    set of benches (a bench silently disappearing is itself a regression);
  * every deterministic counter (run counts, traces recorded, replays,
    batches, cache hit/miss/store tallies) must match EXACTLY — these are
    functions of the source tree, not the hardware, so any drift is a
    behavioral change that belongs in the baseline diff of the PR that
    caused it;
  * wall_ms may exceed the baseline by at most --wall-tolerance-pct
    (default 300%, i.e. 4x) per bench. CI runners are noisy and share
    tenancy, so the wall gate only catches order-of-magnitude cliffs; the
    counters carry the precision.

Exit 0 when everything holds, 1 with a per-bench diagnostic otherwise.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "t1000-bench-report/v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return {b["name"]: b for b in doc["benches"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--wall-tolerance-pct", type=float, default=300.0,
                        help="max wall_ms growth over baseline (default 300)")
    parser.add_argument("--min-benches", type=int, default=6,
                        help="reports with fewer benches fail (default 6)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    failures = []
    if len(fresh) < args.min_benches:
        failures.append(f"only {len(fresh)} benches in fresh report, "
                        f"need >= {args.min_benches}")
    if set(baseline) != set(fresh):
        gone = sorted(set(baseline) - set(fresh))
        new = sorted(set(fresh) - set(baseline))
        failures.append(f"bench set drifted: missing={gone} unexpected={new} "
                        "(regenerate BENCH_10.json in this PR)")

    for name in sorted(set(baseline) & set(fresh)):
        base, cur = baseline[name], fresh[name]
        if base["counters"] != cur["counters"]:
            diffs = []
            keys = sorted(set(base["counters"]) | set(cur["counters"]))
            for key in keys:
                b = base["counters"].get(key)
                c = cur["counters"].get(key)
                if b != c:
                    diffs.append(f"{key}: {b} -> {c}")
            failures.append(f"{name}: counter drift ({', '.join(diffs)}) — "
                            "behavioral change; update the baseline "
                            "deliberately if intended")
        limit = base["wall_ms"] * (1.0 + args.wall_tolerance_pct / 100.0)
        if cur["wall_ms"] > limit:
            failures.append(
                f"{name}: wall_ms {cur['wall_ms']:.1f} exceeds "
                f"{limit:.1f} (baseline {base['wall_ms']:.1f} "
                f"+{args.wall_tolerance_pct:.0f}%)")

    if failures:
        for failure in failures:
            print(f"check_bench_report: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"check_bench_report: OK — {len(fresh)} benches, counters exact, "
          f"wall within +{args.wall_tolerance_pct:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
