// t1000-bench-report: the repo's machine-readable perf trajectory.
//
//   t1000-bench-report [--json FILE] [--list] [--only NAME] [--jobs N]
//
// Runs a registered subset of the bench suite's scenarios in-process —
// small, fast grids chosen to cover every engine path whose performance
// the repo cares about (greedy/selective selection, batched vs. serial
// replay, cache round-trips, compiled code, verified sweeps) — and emits
// one JSON document per invocation:
//
//   {"schema": "t1000-bench-report/v1",
//    "host":    {...compiler/cpu fingerprint...},
//    "benches": [{"name":..., "wall_ms":..., "counters": {...}}, ...]}
//
// The counters are *deterministic* for a given source tree (run counts,
// traces recorded, replays, batches, cache hit/miss/store tallies): CI
// diffs them exactly against the committed BENCH_10.json baseline, so any
// change to scheduling, caching, or batching behavior shows up as a
// counter diff, reviewable like a golden file. wall_ms is hardware- and
// load-dependent; the gate (tools/check_bench_report.py) only bounds it
// with a generous percentage tolerance to catch order-of-magnitude
// regressions without flaking on runner variance.
//
// Every scenario runs on a private in-memory cache (no cache_dir, or an
// explicitly shared ResultCache for the round-trip scenario), so the
// counters cannot be perturbed by an ambient $T1000_CACHE_DIR.
#include <sys/utsname.h>

#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/grid.hpp"
#include "harness/json.hpp"
#include "harness/options.hpp"
#include "workloads/workload.hpp"

using namespace t1000;

namespace {

struct BenchOutcome {
  double wall_ms = 0.0;
  EngineStats engine;          // counters of the (final) grid
  ResultCache::Counters cache; // cache movement across the whole scenario
};

struct RegisteredBench {
  const char* name;
  const char* what;  // one line for --list
  std::function<BenchOutcome(int jobs)> run;
};

// Registers the bundled workloads a scenario may name.
void add_suites(ExperimentGrid* grid) {
  grid->add_workloads(all_workloads());
  grid->add_workloads(extended_workloads());
  grid->add_workloads(compiled_workloads());
}

BenchOutcome run_grid(const ExperimentGrid& grid, GridOptions options) {
  const GridResult res = grid.run(options);
  BenchOutcome out;
  out.wall_ms = res.engine().wall_ms;
  out.engine = res.engine();
  out.cache = res.engine().cache;
  return out;
}

// The paper's two selection algorithms over two MediaBench analogs.
BenchOutcome bench_paper_greedy(int jobs) {
  ExperimentGrid grid;
  add_suites(&grid);
  for (const char* w : {"gsm_dec", "g721_dec"}) {
    grid.add(baseline_spec(w));
    grid.add(greedy_spec(w, "greedy2", 2, 10));
  }
  GridOptions options;
  options.jobs = jobs;
  return run_grid(grid, options);
}

BenchOutcome bench_paper_selective(int jobs) {
  ExperimentGrid grid;
  add_suites(&grid);
  for (const char* w : {"gsm_dec", "g721_dec"}) {
    grid.add(baseline_spec(w));
    grid.add(selective_spec(w, "sel2", 2, 10));
  }
  GridOptions options;
  options.jobs = jobs;
  return run_grid(grid, options);
}

// A reconfiguration-latency sweep whose cache-missing lanes share a batch
// identity: the batched engine must engage (batches > 0).
void add_latency_sweep(ExperimentGrid* grid) {
  grid->add(baseline_spec("gsm_dec"));
  for (const int latency : {5, 10, 20, 40}) {
    grid->add(selective_spec("gsm_dec", "L" + std::to_string(latency), 2,
                             latency));
  }
}

BenchOutcome bench_batched_replay(int jobs) {
  ExperimentGrid grid;
  add_suites(&grid);
  add_latency_sweep(&grid);
  GridOptions options;
  options.jobs = jobs;
  options.batch = true;
  return run_grid(grid, options);
}

// The same sweep timed one replay at a time — the batched engine's
// reference point (byte-identical results, batches == 0).
BenchOutcome bench_single_replay(int jobs) {
  ExperimentGrid grid;
  add_suites(&grid);
  add_latency_sweep(&grid);
  GridOptions options;
  options.jobs = jobs;
  options.batch = false;
  return run_grid(grid, options);
}

// Two identical grids over one shared in-memory cache: the first run is
// all misses+stores, the second all memory hits. The combined counters pin
// the cache contract (hits == stores == misses == runs of one grid).
BenchOutcome bench_cache_roundtrip(int jobs) {
  ExperimentGrid grid;
  add_suites(&grid);
  grid.add(baseline_spec("g721_enc"));
  grid.add(selective_spec("g721_enc", "sel2", 2, 10));

  ResultCache cache;  // in-memory tier only
  GridOptions options;
  options.jobs = jobs;
  options.cache = &cache;

  const BenchOutcome cold = run_grid(grid, options);
  BenchOutcome warm = run_grid(grid, options);
  warm.wall_ms += cold.wall_ms;
  warm.cache = cache.counters();  // whole-scenario movement
  return warm;
}

// Compiler output through the same machinery: the bundled t1000-cc
// kernel's compile + select + replay path.
BenchOutcome bench_compiled_kernel(int jobs) {
  ExperimentGrid grid;
  add_suites(&grid);
  grid.add(baseline_spec("cc_cikernel"));
  grid.add(selective_spec("cc_cikernel", "sel2", 2, 10));
  GridOptions options;
  options.jobs = jobs;
  return run_grid(grid, options);
}

// Static verification in the loop (--verify): the verifier's wall-clock
// rides the same trajectory as the simulator's.
BenchOutcome bench_verified_sweep(int jobs) {
  ExperimentGrid grid;
  add_suites(&grid);
  grid.add(baseline_spec("mpeg2_dec"));
  grid.add(selective_spec("mpeg2_dec", "sel2", 2, 10));
  GridOptions options;
  options.jobs = jobs;
  options.verify = true;
  return run_grid(grid, options);
}

// Stall observation on: per-cycle attribution is the observability layer's
// hot path and must stay cheap relative to the unobserved run.
BenchOutcome bench_observed_sweep(int jobs) {
  ExperimentGrid grid;
  add_suites(&grid);
  grid.add(baseline_spec("epic"));
  grid.add(selective_spec("epic", "sel2", 2, 10));
  GridOptions options;
  options.jobs = jobs;
  options.observe = true;
  return run_grid(grid, options);
}

const std::vector<RegisteredBench>& registered_benches() {
  static const std::vector<RegisteredBench> benches = {
      {"paper_greedy", "greedy selection over gsm_dec + g721_dec",
       bench_paper_greedy},
      {"paper_selective", "selective selection over gsm_dec + g721_dec",
       bench_paper_selective},
      {"batched_replay", "reconfig-latency sweep, batched lanes engaged",
       bench_batched_replay},
      {"single_replay", "the same sweep, one replay at a time",
       bench_single_replay},
      {"cache_roundtrip", "cold + warm grid over one shared cache",
       bench_cache_roundtrip},
      {"compiled_kernel", "t1000-cc cikernel compile + select + replay",
       bench_compiled_kernel},
      {"verified_sweep", "selective sweep with static verification on",
       bench_verified_sweep},
      {"observed_sweep", "selective sweep with stall observation on",
       bench_observed_sweep},
  };
  return benches;
}

Json counters_json(const BenchOutcome& out) {
  const EngineStats& e = out.engine;
  Json j = Json::object();
  j["runs"] = Json(e.runs);
  j["ok"] = Json(e.ok);
  j["failed"] = Json(e.failed + e.timeouts + e.skipped);
  j["simulated"] = Json(e.simulated);
  j["traces_recorded"] = Json(e.traces_recorded);
  j["trace_replays"] = Json(e.trace_replays);
  j["batches"] = Json(e.batches);
  j["batched_runs"] = Json(e.batched_runs);
  j["verified_preps"] = Json(e.verified_preps);
  j["observed"] = Json(e.observed);
  j["cache_hits"] = Json(out.cache.hits());
  j["cache_misses"] = Json(out.cache.misses);
  j["cache_stores"] = Json(out.cache.stores);
  return j;
}

// Where the numbers came from: enough to tell two runners apart in a
// baseline diff, nothing that varies run-to-run on one machine.
Json host_json() {
  Json j = Json::object();
  j["cpus"] = Json(std::thread::hardware_concurrency());
  j["compiler"] = Json(std::string(__VERSION__));
  j["pointer_bits"] = Json(static_cast<double>(sizeof(void*) * 8));
#ifdef NDEBUG
  j["assertions"] = Json(false);
#else
  j["assertions"] = Json(true);
#endif
  utsname u{};
  if (uname(&u) == 0) {
    j["os"] = Json(std::string(u.sysname));
    j["machine"] = Json(std::string(u.machine));
  }
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string only;
  long jobs = 1;  // deterministic default: counters must not depend on host
  bool list = false;

  OptionParser parser("t1000-bench-report",
                      "perf-trajectory report over registered bench "
                      "scenarios (BENCH_*.json)");
  parser.add_string("--json", "FILE", "write the report here (default "
                    "stdout)", &json_path);
  parser.add_string("--only", "NAME", "run a single registered scenario",
                    &only);
  parser.add_int("--jobs", "N", "grid worker threads (default 1, so the "
                 "counters are schedule-independent)", &jobs, 1, 4096);
  parser.add_flag("--list", "list registered scenarios and exit", &list);
  parser.parse(argc, argv);

  if (list) {
    for (const RegisteredBench& b : registered_benches()) {
      std::printf("%-18s %s\n", b.name, b.what);
    }
    return 0;
  }

  Json benches = Json::array();
  bool matched = false;
  for (const RegisteredBench& b : registered_benches()) {
    if (!only.empty() && only != b.name) continue;
    matched = true;
    BenchOutcome out;
    try {
      out = b.run(static_cast<int>(jobs));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "t1000-bench-report: %s: %s\n", b.name, e.what());
      return 1;
    }
    if (out.engine.runs != out.engine.ok) {
      std::fprintf(stderr,
                   "t1000-bench-report: %s: %llu of %llu runs not ok\n",
                   b.name,
                   static_cast<unsigned long long>(out.engine.runs -
                                                   out.engine.ok),
                   static_cast<unsigned long long>(out.engine.runs));
      return 1;
    }
    Json entry = Json::object();
    entry["name"] = Json(std::string(b.name));
    entry["wall_ms"] = Json(out.wall_ms);
    entry["counters"] = counters_json(out);
    benches.push_back(std::move(entry));
    std::fprintf(stderr, "t1000-bench-report: %-18s %8.1f ms\n", b.name,
                 out.wall_ms);
  }
  if (!matched) {
    std::fprintf(stderr, "t1000-bench-report: unknown scenario '%s'\n",
                 only.c_str());
    return 2;
  }

  Json doc = Json::object();
  doc["schema"] = Json(std::string("t1000-bench-report/v1"));
  doc["host"] = host_json();
  doc["benches"] = std::move(benches);
  const std::string text = doc.dump(2) + "\n";

  if (json_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "t1000-bench-report: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return 0;
}
