// t1000-sim: cycle-accurate simulation of a program on a configurable
// T1000 machine.
//
//   t1000-sim input.{s,obj} [--pfus N|unlimited] [--reconfig N]
//             [--bimodal] [--multi-cycle-ext] [--ruu N] [--width N]
//             [--stall-breakdown] [--trace-out FILE] [--json FILE]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "harness/serialize.hpp"
#include "sim/profiler.hpp"
#include "sim/trace.hpp"
#include "tool_common.hpp"
#include "uarch/timing.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  tools::ToolOptions common;
  std::string pfus = "0";
  long reconfig = 10;
  bool multi_cycle_ext = false;
  bool bimodal = false;
  long ruu = MachineConfig{}.ruu_size;
  long width = 4;
  OptionParser parser = common.make_parser(
      "t1000-sim", "cycle-accurate simulation on a configurable T1000 machine");
  parser.add_string("--pfus", "N|unlimited", "programmable functional units",
                    &pfus);
  parser.add_int("--reconfig", "N", "PFU reconfiguration latency in cycles",
                 &reconfig, 0, 1 << 20);
  parser.add_flag("--bimodal", "bimodal branch predictor (default: perfect)",
                  &bimodal);
  parser.add_flag("--multi-cycle-ext", "EXT ops take their full base latency",
                  &multi_cycle_ext);
  parser.add_int("--ruu", "N", "register update unit entries", &ruu, 1,
                 1 << 20);
  parser.add_int("--width", "N", "fetch/decode/issue/commit width", &width, 1,
                 64);
  bool replay = false;
  parser.add_flag("--replay",
                  "time via committed-trace record + replay instead of "
                  "execution-driven simulation (must be cycle-exact)",
                  &replay);
  bool stall_breakdown = false;
  parser.add_flag("--stall-breakdown",
                  "attribute every non-committing cycle to one stall cause "
                  "and print the breakdown",
                  &stall_breakdown);
  std::string trace_out;
  parser.add_string("--trace-out", "FILE",
                    "write a Chrome/Perfetto trace-event JSON of the "
                    "pipeline (instruction lifecycles, PFU reconfiguration "
                    "spans, profiler hot-region annotations)",
                    &trace_out);
  const std::string input = parser.parse(argc, argv)[0];

  MachineConfig cfg;
  if (pfus == "unlimited") {
    cfg.pfu.count = PfuConfig::kUnlimited;
  } else {
    char* end = nullptr;
    cfg.pfu.count = static_cast<int>(std::strtol(pfus.c_str(), &end, 0));
    if (end == pfus.c_str() || *end != '\0' || cfg.pfu.count < 0) {
      std::fprintf(stderr, "t1000-sim: bad value '%s' for option '--pfus'\n",
                   pfus.c_str());
      return 2;
    }
  }
  cfg.pfu.reconfig_latency = static_cast<int>(reconfig);
  cfg.pfu.multi_cycle_ext = multi_cycle_ext;
  if (bimodal) cfg.branch.kind = BranchPredictorKind::kBimodal;
  cfg.ruu_size = static_cast<int>(ruu);
  cfg.fetch_width = cfg.decode_width = cfg.issue_width = cfg.commit_width =
      static_cast<int>(width);

  try {
    const LoadedObject obj = tools::load_input(input);
    const ExtInstTable* table =
        obj.ext_table.size() > 0 ? &obj.ext_table : nullptr;
    SimStats st;
    CommittedTrace trace;
    SimObservation obs;
    obs.want_trace = !trace_out.empty();
    const bool observe = stall_breakdown || obs.want_trace;
    SimObservation* obs_ptr = observe ? &obs : nullptr;
    if (replay) {
      trace = record_trace(obj.program, table, 1ull << 32);
      st = simulate({.program = &obj.program, .ext_table = table, .trace = &trace, .machine = cfg, .observation = obs_ptr});
      std::printf("trace:             %llu steps, %llu KiB, hash %s\n",
                  static_cast<unsigned long long>(trace.size()),
                  static_cast<unsigned long long>(trace.memory_bytes() / 1024),
                  to_hex(trace.content_hash()).c_str());
    } else {
      st = simulate({.program = &obj.program, .ext_table = table, .machine = cfg, .observation = obs_ptr});
    }
    std::printf("cycles:            %llu\n",
                static_cast<unsigned long long>(st.cycles));
    std::printf("instructions:      %llu  (IPC %.3f)\n",
                static_cast<unsigned long long>(st.committed), st.ipc());
    std::printf("IL1 miss rate:     %.4f  (%llu/%llu)\n", st.il1.miss_rate(),
                static_cast<unsigned long long>(st.il1.misses),
                static_cast<unsigned long long>(st.il1.accesses));
    std::printf("DL1 miss rate:     %.4f  (%llu/%llu)\n", st.dl1.miss_rate(),
                static_cast<unsigned long long>(st.dl1.misses),
                static_cast<unsigned long long>(st.dl1.accesses));
    std::printf("L2  miss rate:     %.4f\n", st.l2.miss_rate());
    if (st.branch.conditional > 0) {
      std::printf("branch accuracy:   %.4f\n", st.branch.cond_accuracy());
    }
    if (st.pfu.lookups > 0) {
      std::printf("PFU lookups:       %llu  (hits %llu, reconfigs %llu)\n",
                  static_cast<unsigned long long>(st.pfu.lookups),
                  static_cast<unsigned long long>(st.pfu.hits),
                  static_cast<unsigned long long>(st.pfu.reconfigurations));
    }
    if (stall_breakdown) {
      const StallBreakdown& sb = obs.stalls;
      std::printf("stall breakdown:   %llu of %llu cycles stalled (%.1f%%)\n",
                  static_cast<unsigned long long>(sb.stall_cycles()),
                  static_cast<unsigned long long>(sb.cycles),
                  sb.cycles == 0 ? 0.0
                                 : 100.0 *
                                       static_cast<double>(sb.stall_cycles()) /
                                       static_cast<double>(sb.cycles));
      for (int c = 0; c < kNumStallCauses; ++c) {
        if (sb.causes[c] == 0) continue;
        std::printf("  %-14s   %llu  (%.1f%% of stalls)\n",
                    std::string(stall_cause_name(static_cast<StallCause>(c)))
                        .c_str(),
                    static_cast<unsigned long long>(sb.causes[c]),
                    100.0 * static_cast<double>(sb.causes[c]) /
                        static_cast<double>(sb.stall_cycles()));
      }
    }
    if (!trace_out.empty()) {
      // Hot-region annotations come from the functional profiler, exactly
      // as the selection algorithms see them.
      const Profile prof = profile_program(obj.program, 1ull << 32, table);
      annotate_hot_regions(prof, obj.program, &obs.trace);
      // Compact form: event traces are large and consumed by viewers, not
      // humans.
      std::ofstream f(trace_out, std::ios::binary);
      f << obs.trace.to_json().dump() << '\n';
      if (!f) {
        std::fprintf(stderr, "t1000-sim: cannot write '%s'\n",
                     trace_out.c_str());
        return 1;
      }
      std::printf("trace events:      %llu -> %s\n",
                  static_cast<unsigned long long>(obs.trace.size()),
                  trace_out.c_str());
    }
    Json doc = Json::object();
    doc["tool"] = Json("t1000-sim");
    doc["input"] = Json(input);
    doc["machine"] = to_json(cfg);
    doc["stats"] = to_json(st);
    if (observe) doc["stalls"] = to_json(obs.stalls);
    if (replay) {
      Json tj = Json::object();
      tj["steps"] = Json(static_cast<std::uint64_t>(trace.size()));
      tj["memory_bytes"] = Json(trace.memory_bytes());
      tj["content_hash"] = Json(to_hex(trace.content_hash()));
      doc["trace"] = std::move(tj);
    }
    return common.finish(doc);
  } catch (...) {
    return tools::finish_current_exception(common, "t1000-sim");
  }
}
