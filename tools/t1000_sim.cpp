// t1000-sim: cycle-accurate simulation of a program on a configurable
// T1000 machine.
//
//   t1000-sim input.{s,obj} [--pfus N|unlimited] [--reconfig N]
//             [--bimodal] [--multi-cycle-ext] [--ruu N] [--width N]
#include <cstdio>

#include "tool_common.hpp"
#include "uarch/timing.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  tools::Args args(argc, argv);
  MachineConfig cfg;
  const std::string pfus = args.option("--pfus", "0");
  cfg.pfu.count = pfus == "unlimited" ? PfuConfig::kUnlimited
                                      : static_cast<int>(std::strtol(
                                            pfus.c_str(), nullptr, 0));
  cfg.pfu.reconfig_latency =
      static_cast<int>(args.option_int("--reconfig", 10));
  cfg.pfu.multi_cycle_ext = args.flag("--multi-cycle-ext");
  if (args.flag("--bimodal")) {
    cfg.branch.kind = BranchPredictorKind::kBimodal;
  }
  cfg.ruu_size = static_cast<int>(args.option_int("--ruu", cfg.ruu_size));
  const int width = static_cast<int>(args.option_int("--width", 4));
  cfg.fetch_width = cfg.decode_width = cfg.issue_width = cfg.commit_width =
      width;
  if (args.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: t1000-sim input.{s,obj} [--pfus N|unlimited] "
                 "[--reconfig N] [--bimodal] [--multi-cycle-ext] [--ruu N] "
                 "[--width N]\n");
    return 2;
  }
  try {
    const LoadedObject obj = tools::load_input(args.positional()[0]);
    const ExtInstTable* table =
        obj.ext_table.size() > 0 ? &obj.ext_table : nullptr;
    const SimStats st = simulate(obj.program, table, cfg);
    std::printf("cycles:            %llu\n",
                static_cast<unsigned long long>(st.cycles));
    std::printf("instructions:      %llu  (IPC %.3f)\n",
                static_cast<unsigned long long>(st.committed), st.ipc());
    std::printf("IL1 miss rate:     %.4f  (%llu/%llu)\n", st.il1.miss_rate(),
                static_cast<unsigned long long>(st.il1.misses),
                static_cast<unsigned long long>(st.il1.accesses));
    std::printf("DL1 miss rate:     %.4f  (%llu/%llu)\n", st.dl1.miss_rate(),
                static_cast<unsigned long long>(st.dl1.misses),
                static_cast<unsigned long long>(st.dl1.accesses));
    std::printf("L2  miss rate:     %.4f\n", st.l2.miss_rate());
    if (st.branch.conditional > 0) {
      std::printf("branch accuracy:   %.4f\n", st.branch.cond_accuracy());
    }
    if (st.pfu.lookups > 0) {
      std::printf("PFU lookups:       %llu  (hits %llu, reconfigs %llu)\n",
                  static_cast<unsigned long long>(st.pfu.lookups),
                  static_cast<unsigned long long>(st.pfu.hits),
                  static_cast<unsigned long long>(st.pfu.reconfigurations));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
