// t1000-serve: a long-running simulation service over the experiment grid.
//
//   t1000-serve [--host H] [--port P] [--port-file FILE] [--jobs N]
//               [--cache-dir DIR | --no-cache] [--cache-budget-bytes N]
//               [--queue-limit N] [--run-budget-ms MS]
//               [--max-run-budget-ms MS] [--fail-limit N]
//               [--janitor-ttl-s S] [--janitor-interval-s S]
//               [--http-threads N] [--journal-out FILE]
//               [--journal-max-bytes N]
//   t1000-serve --local FILE [--verify] [--observe] ...
//
// Daemon mode speaks deterministic JSON over HTTP (see
// src/serve/service.hpp for the API): submit a grid request, poll status,
// fetch results byte-identical to the in-process engine, scrape metrics or
// a Perfetto trace of the job timeline. The shared on-disk result cache
// stays bounded (--cache-budget-bytes) and a periodic janitor sweeps crash
// debris, so the process can run indefinitely on a cache directory it
// shares with concurrent CLI tools.
//
// --local FILE short-circuits the daemon entirely: parse the same grid
// request from FILE (or "-" for stdin), run it in-process with the same
// parser and engine wiring, print the results document to stdout, and exit
// nonzero if any run failed. CI uses it as the byte-identity reference for
// daemon-fetched results.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "harness/grid.hpp"
#include "harness/options.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"

using namespace t1000;

namespace {

volatile std::sig_atomic_t g_signal = 0;

void handle_signal(int sig) { g_signal = sig; }

// Reads a whole file (or stdin for "-") into a string; exits on error.
std::string read_request_file(const std::string& path) {
  std::FILE* f = path == "-" ? stdin : std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "t1000-serve: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::string text;
  char chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    text.append(chunk, n);
  }
  const bool failed = std::ferror(f) != 0;
  if (f != stdin) std::fclose(f);
  if (failed) {
    std::fprintf(stderr, "t1000-serve: error reading %s\n", path.c_str());
    std::exit(2);
  }
  return text;
}

// Exit code for --local: nonzero when any run did not complete ok, same
// contract as the benches' finish_bench.
int local_exit_code(const Json& doc) {
  for (const Json& run : doc.at("results").items()) {
    if (run.at("status").as_string() != "ok") return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  long port = 0;
  std::string port_file;
  long jobs = 0;
  const char* cache_env = std::getenv("T1000_CACHE_DIR");
  std::string cache_dir = cache_env != nullptr ? cache_env : ".t1000-cache";
  bool no_cache = false;
  long cache_budget = 0;
  if (const char* env = std::getenv("T1000_CACHE_BUDGET_BYTES")) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    if (errno == 0 && end != nullptr && *end == '\0' && v >= 0) {
      cache_budget = v;
    }
  }
  long queue_limit = 8;
  double run_budget_ms = 0.0;
  double max_run_budget_ms = 0.0;
  long fail_limit = 0;
  double janitor_ttl_s = 3600.0;
  double janitor_interval_s = 60.0;
  long http_threads = 4;
  std::string journal_out;
  long journal_max_bytes = 64l << 20;
  std::string local_file;
  bool verify = false;
  bool observe = false;

  OptionParser parser("t1000-serve",
                      "simulation grid daemon (JSON over HTTP)");
  parser.add_string("--host", "ADDR", "bind address (default 127.0.0.1)",
                    &host);
  parser.add_int("--port", "P", "listen port; 0 = ephemeral", &port, 0,
                 65535);
  parser.add_string("--port-file", "FILE",
                    "write the bound port here once listening", &port_file);
  parser.add_int("--jobs", "N", "grid worker threads per job; 0 = hardware",
                 &jobs, 0, 4096);
  parser.add_string("--cache-dir", "DIR",
                    "shared on-disk result cache (default $T1000_CACHE_DIR "
                    "or .t1000-cache)",
                    &cache_dir);
  parser.add_flag("--no-cache", "disable the on-disk result cache",
                  &no_cache);
  parser.add_int("--cache-budget-bytes", "N",
                 "evict LRU cache entries beyond this size; 0 = unbounded "
                 "(default $T1000_CACHE_BUDGET_BYTES)",
                 &cache_budget, 0, std::numeric_limits<long>::max());
  parser.add_int("--queue-limit", "N",
                 "reject submissions beyond N queued jobs", &queue_limit, 1,
                 1 << 20);
  parser.add_double("--run-budget-ms", "MS",
                    "default per-run wall-clock budget; 0 = unlimited",
                    &run_budget_ms);
  parser.add_double("--max-run-budget-ms", "MS",
                    "cap per-request budgets at MS; 0 = no cap",
                    &max_run_budget_ms);
  parser.add_int("--fail-limit", "N",
                 "default per-job circuit breaker; 0 = no limit",
                 &fail_limit, 0, std::numeric_limits<long>::max());
  parser.add_double("--janitor-ttl-s", "S",
                    "sweep cache debris older than S seconds", &janitor_ttl_s);
  parser.add_double("--janitor-interval-s", "S",
                    "seconds between janitor sweeps; 0 = never",
                    &janitor_interval_s);
  parser.add_int("--http-threads", "N", "HTTP handler threads",
                 &http_threads, 1, 64);
  parser.add_string("--journal-out", "FILE",
                    "append-only JSONL event journal of every job's trace "
                    "(spans, cache ops, experiment phases)",
                    &journal_out);
  parser.add_int("--journal-max-bytes", "N",
                 "rotate the journal to FILE.1 past this size (default: "
                 "64 MiB)",
                 &journal_max_bytes, 1, std::numeric_limits<long>::max());
  parser.add_string("--local", "FILE",
                    "run one grid request in-process and exit (\"-\" = "
                    "stdin)",
                    &local_file);
  parser.add_flag("--verify", "force static verification on --local runs",
                  &verify);
  parser.add_flag("--observe", "force stall observation on --local runs",
                  &observe);
  parser.parse(argc, argv);

  serve::ServiceOptions options;
  options.jobs = static_cast<int>(jobs);
  options.cache_dir = no_cache ? std::string() : cache_dir;
  options.cache_budget_bytes = static_cast<std::uint64_t>(cache_budget);
  options.default_run_budget_ms = run_budget_ms;
  options.max_run_budget_ms = max_run_budget_ms;
  options.fail_limit = static_cast<std::uint64_t>(fail_limit);
  options.queue_limit = static_cast<std::size_t>(queue_limit);
  options.journal_path = journal_out;
  options.journal_max_bytes = static_cast<std::uint64_t>(journal_max_bytes);

  if (!local_file.empty()) {
    try {
      Json request = Json::parse(read_request_file(local_file));
      if (verify || observe) {
        // The CLI flags override the request's own options, mirroring how
        // the benches' --verify/--observe force the grid-wide setting.
        Json opts = request.find("options") != nullptr
                        ? *request.find("options")
                        : Json::object();
        if (verify) opts["verify"] = Json(true);
        if (observe) opts["observe"] = Json(true);
        request["options"] = std::move(opts);
      }
      serve::SimService service(options);
      const Json doc = service.run_local(request);
      std::printf("%s\n", doc.dump(2).c_str());
      return local_exit_code(doc);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "t1000-serve: %s\n", e.what());
      return 1;
    }
  }

  serve::SimService service(options);

  serve::HttpServer::Options http_options;
  http_options.host = host;
  http_options.port = static_cast<int>(port);
  http_options.handler_threads = static_cast<int>(http_threads);
  serve::HttpServer server(
      http_options,
      [&service](const serve::HttpRequest& request) {
        return service.handle_http(request);
      });
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "t1000-serve: %s\n", error.c_str());
    return 1;
  }

  std::printf("t1000-serve listening on %s:%d\n", host.c_str(),
              server.port());
  std::fflush(stdout);
  if (!port_file.empty()) {
    if (std::FILE* f = std::fopen(port_file.c_str(), "w")) {
      std::fprintf(f, "%d\n", server.port());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "t1000-serve: cannot write %s\n",
                   port_file.c_str());
      server.stop();
      return 1;
    }
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  // Startup sweep clears debris left by crashed processes before any new
  // work lands; TTL still applies so a concurrent writer's live temp file
  // survives.
  service.sweep_now(janitor_ttl_s);

  auto last_sweep = std::chrono::steady_clock::now();
  while (g_signal == 0 && !service.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (janitor_interval_s > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_sweep).count() >=
          janitor_interval_s) {
        service.sweep_now(janitor_ttl_s);
        last_sweep = now;
      }
    }
  }

  std::printf("t1000-serve shutting down%s\n",
              g_signal != 0 ? " (signal)" : "");
  server.stop();
  return 0;
}
