// t1000-run: functional (architectural) execution of a program.
//
//   t1000-run input.{s,obj} [--max-steps N] [--trace N] [--regs]
//             [--json FILE]
//
// Prints the executed instruction count and the $v0/$v1 result registers;
// --trace N echoes the first N executed instructions, --regs dumps the
// final register file.
#include <cstdio>

#include "sim/executor.hpp"
#include "tool_common.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  tools::ToolOptions common;
  long max_steps = 1 << 26;
  long trace = 0;
  bool dump_regs = false;
  OptionParser parser = common.make_parser(
      "t1000-run", "functional (architectural) execution of a program");
  parser.add_int("--max-steps", "N", "stop after N instructions", &max_steps);
  parser.add_int("--trace", "N", "echo the first N executed instructions",
                 &trace);
  parser.add_flag("--regs", "dump the final register file", &dump_regs);
  const std::string input = parser.parse(argc, argv)[0];
  try {
    const LoadedObject obj = tools::load_input(input);
    Executor exec(obj.program,
                  obj.ext_table.size() > 0 ? &obj.ext_table : nullptr);
    long traced = 0;
    while (!exec.halted() &&
           exec.steps_executed() < static_cast<std::uint64_t>(max_steps)) {
      const StepInfo info = exec.step();
      if (traced < trace) {
        std::printf("%6lld  @%-5d %s\n",
                    static_cast<long long>(exec.steps_executed()), info.index,
                    to_string(info.ins).c_str());
        ++traced;
      }
    }
    if (!exec.halted()) {
      std::fprintf(stderr, "stopped after %lld steps without halting\n",
                   static_cast<long long>(exec.steps_executed()));
      return 1;
    }
    std::printf("halted after %lld instructions\n",
                static_cast<long long>(exec.steps_executed()));
    std::printf("$v0 = 0x%08X  $v1 = 0x%08X\n", exec.reg(2), exec.reg(3));
    if (dump_regs) {
      for (int r = 0; r < kNumRegs; ++r) {
        std::printf("%-6s 0x%08X%s",
                    std::string(reg_name(static_cast<Reg>(r))).c_str(),
                    exec.reg(static_cast<Reg>(r)), r % 4 == 3 ? "\n" : "  ");
      }
    }
    Json doc = Json::object();
    doc["tool"] = Json("t1000-run");
    doc["input"] = Json(input);
    doc["instructions"] = Json(exec.steps_executed());
    doc["v0"] = Json(exec.reg(2));
    doc["v1"] = Json(exec.reg(3));
    return common.finish(doc);
  } catch (...) {
    return tools::finish_current_exception(common, "t1000-run");
  }
}
