// t1000-opt: the extended-instruction "compiler" pass. Profiles a program,
// selects extended instructions (greedy or selective), rewrites the binary,
// and writes a T1K1 object carrying the PFU configurations.
//
//   t1000-opt input.{s,obj} [-o out.obj] [--greedy] [--pfus N]
//             [--threshold F] [--no-matrix] [--report] [--json FILE]
#include <cstdio>

#include "extinst/rewrite.hpp"
#include "extinst/select.hpp"
#include "hwcost/lut_model.hpp"
#include "sim/executor.hpp"
#include "tool_common.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  tools::ToolOptions common;
  bool greedy = false;
  bool report = false;
  bool no_matrix = false;
  long pfus = kUnlimitedPfus;
  double threshold = 0.005;
  std::string out = "opt.obj";
  OptionParser parser = common.make_parser(
      "t1000-opt", "select extended instructions and rewrite the binary");
  parser.add_flag("--greedy", "greedy selection (default: selective)", &greedy);
  parser.add_int("--pfus", "N", "PFU budget for selective selection", &pfus);
  parser.add_double("--threshold", "F",
                    "selective time threshold (default: 0.005)", &threshold);
  parser.add_flag("--no-matrix", "disable the subsequence matrix", &no_matrix);
  parser.add_flag("--report", "print each selected configuration", &report);
  parser.add_string("-o", "FILE", "output object file (default: opt.obj)",
                    &out);
  const std::string input = parser.parse(argc, argv)[0];
  try {
    const LoadedObject obj = tools::load_input(input);
    if (obj.ext_table.size() > 0) {
      std::fprintf(stderr, "error: input already contains EXT instructions\n");
      return 1;
    }
    const AnalyzedProgram ap = analyze_program(obj.program, 1u << 26);

    SelectPolicy policy;
    policy.num_pfus = static_cast<int>(pfus);
    policy.time_threshold = threshold;
    policy.use_subsequence_matrix = !no_matrix;
    Selection sel = greedy ? select_greedy(ap) : select_selective(ap, policy);
    const RewriteResult rr = rewrite_program(obj.program, sel.apps);

    // Validate semantics before emitting anything.
    Executor ref(obj.program);
    ref.run(1u << 26);
    Executor opt(rr.program, &sel.table);
    opt.run(1u << 26);
    if (!ref.halted() || !opt.halted() || ref.reg(2) != opt.reg(2) ||
        ref.reg(3) != opt.reg(3)) {
      std::fprintf(stderr, "internal error: rewrite changed semantics\n");
      return 1;
    }

    save_object_file(out, rr.program, &sel.table);
    std::printf("%s: %d -> %d instructions, %d configuration(s), "
                "%zu site(s) -> %s\n",
                input.c_str(), obj.program.size(), rr.program.size(),
                sel.num_configs(), sel.apps.size(), out.c_str());
    if (report) {
      for (int c = 0; c < sel.num_configs(); ++c) {
        const ExtInstDef& def = sel.table.at(static_cast<ConfId>(c));
        std::printf("  Conf %d: %d ops, ~%d LUTs, saves %d cycle(s)/use:", c,
                    def.length(), sel.lut_costs[static_cast<std::size_t>(c)],
                    def.base_cycles() - 1);
        for (const MicroOp& u : def.uops()) {
          std::printf(" %s", std::string(mnemonic(u.op)).c_str());
        }
        std::printf("\n");
      }
    }
    Json doc = Json::object();
    doc["tool"] = Json("t1000-opt");
    doc["input"] = Json(input);
    doc["output"] = Json(out);
    doc["selector"] = Json(greedy ? "greedy" : "selective");
    doc["original_instructions"] = Json(obj.program.size());
    doc["rewritten_instructions"] = Json(rr.program.size());
    doc["num_configs"] = Json(sel.num_configs());
    doc["num_sites"] = Json(sel.apps.size());
    doc["lut_costs"] = Json::array_of(sel.lut_costs);
    return common.finish(doc);
  } catch (...) {
    return tools::finish_current_exception(common, "t1000-opt");
  }
}
