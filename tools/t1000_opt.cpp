// t1000-opt: the extended-instruction "compiler" pass. Profiles a program,
// selects extended instructions (greedy or selective), rewrites the binary,
// and writes a T1K1 object carrying the PFU configurations.
//
//   t1000-opt input.{s,obj} [-o out.obj] [--greedy] [--pfus N]
//             [--threshold F] [--no-matrix] [--report]
#include <cstdio>

#include "extinst/rewrite.hpp"
#include "extinst/select.hpp"
#include "hwcost/lut_model.hpp"
#include "sim/executor.hpp"
#include "tool_common.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  tools::Args args(argc, argv);
  const bool greedy = args.flag("--greedy");
  const bool report = args.flag("--report");
  const bool no_matrix = args.flag("--no-matrix");
  const long pfus = args.option_int("--pfus", kUnlimitedPfus);
  const double threshold =
      std::strtod(args.option("--threshold", "0.005").c_str(), nullptr);
  const std::string out = args.option("-o", "opt.obj");
  if (args.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: t1000-opt input.{s,obj} [-o out.obj] [--greedy] "
                 "[--pfus N] [--threshold F] [--no-matrix] [--report]\n");
    return 2;
  }
  try {
    const LoadedObject obj = tools::load_input(args.positional()[0]);
    if (obj.ext_table.size() > 0) {
      std::fprintf(stderr, "error: input already contains EXT instructions\n");
      return 1;
    }
    const AnalyzedProgram ap = analyze_program(obj.program, 1u << 26);

    SelectPolicy policy;
    policy.num_pfus = static_cast<int>(pfus);
    policy.time_threshold = threshold;
    policy.use_subsequence_matrix = !no_matrix;
    Selection sel =
        greedy ? select_greedy(ap) : select_selective(ap, policy);
    const RewriteResult rr = rewrite_program(obj.program, sel.apps);

    // Validate semantics before emitting anything.
    Executor ref(obj.program);
    ref.run(1u << 26);
    Executor opt(rr.program, &sel.table);
    opt.run(1u << 26);
    if (!ref.halted() || !opt.halted() || ref.reg(2) != opt.reg(2) ||
        ref.reg(3) != opt.reg(3)) {
      std::fprintf(stderr, "internal error: rewrite changed semantics\n");
      return 1;
    }

    save_object_file(out, rr.program, &sel.table);
    std::printf("%s: %d -> %d instructions, %d configuration(s), "
                "%zu site(s) -> %s\n",
                args.positional()[0].c_str(), obj.program.size(),
                rr.program.size(), sel.num_configs(), sel.apps.size(),
                out.c_str());
    if (report) {
      for (int c = 0; c < sel.num_configs(); ++c) {
        const ExtInstDef& def = sel.table.at(static_cast<ConfId>(c));
        std::printf("  Conf %d: %d ops, ~%d LUTs, saves %d cycle(s)/use:", c,
                    def.length(), sel.lut_costs[static_cast<std::size_t>(c)],
                    def.base_cycles() - 1);
        for (const MicroOp& u : def.uops()) {
          std::printf(" %s", std::string(mnemonic(u.op)).c_str());
        }
        std::printf("\n");
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
