// t1000-cc: compile MiniC to T1000 assembly or a T1K1 object.
//
//   t1000-cc input.c [-o out.obj] [-S]      (-S prints assembly to stdout)
#include <cstdio>
#include <fstream>
#include <sstream>

#include "minic/minic.hpp"
#include "tool_common.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  tools::Args args(argc, argv);
  const bool emit_asm = args.flag("-S");
  const std::string out = args.option("-o", "a.obj");
  if (args.positional().size() != 1) {
    std::fprintf(stderr, "usage: t1000-cc input.c [-o out.obj] [-S]\n");
    return 2;
  }
  try {
    std::ifstream is(args.positional()[0]);
    if (!is) {
      std::fprintf(stderr, "error: cannot open %s\n",
                   args.positional()[0].c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string asm_text = minic::compile_to_assembly(buf.str());
    if (emit_asm) {
      std::printf("%s", asm_text.c_str());
      return 0;
    }
    const Program program = assemble(asm_text);
    save_object_file(out, program);
    std::printf("%s: %d instructions -> %s\n", args.positional()[0].c_str(),
                program.size(), out.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
