// t1000-cc: compile MiniC to T1000 assembly or a T1K1 object.
//
//   t1000-cc input.c [-o out.obj] [-S] [--json FILE]
//
// -S prints assembly to stdout instead of writing an object.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "minic/minic.hpp"
#include "tool_common.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  tools::ToolOptions common;
  bool emit_asm = false;
  std::string out = "a.obj";
  OptionParser parser = common.make_parser(
      "t1000-cc", "compile MiniC to T1000 assembly or a T1K1 object",
      "input.c");
  parser.add_flag("-S", "print assembly to stdout instead of an object",
                  &emit_asm);
  parser.add_string("-o", "FILE", "output object file (default: a.obj)", &out);
  const std::string input = parser.parse(argc, argv)[0];
  try {
    std::ifstream is(input);
    if (!is) {
      std::fprintf(stderr, "error: cannot open %s\n", input.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string asm_text = minic::compile_to_assembly(buf.str());
    Json doc = Json::object();
    doc["tool"] = Json("t1000-cc");
    doc["input"] = Json(input);
    if (emit_asm) {
      std::printf("%s", asm_text.c_str());
      doc["assembly_lines"] =
          Json(std::count(asm_text.begin(), asm_text.end(), '\n'));
      return common.finish(doc);
    }
    const Program program = assemble(asm_text);
    save_object_file(out, program);
    std::printf("%s: %d instructions -> %s\n", input.c_str(), program.size(),
                out.c_str());
    doc["instructions"] = Json(program.size());
    doc["output"] = Json(out);
    return common.finish(doc);
  } catch (...) {
    return tools::finish_current_exception(common, "t1000-cc");
  }
}
