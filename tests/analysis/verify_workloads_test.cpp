// Zero-diagnostic sweep: every bundled workload, under no selection and
// under both selection algorithms — at the paper's default 2-in/1-out
// candidate shape and at two widened shapes (4-in/1-out, 4-in/2-out) —
// verifies clean, translation proof included. This is the repo-level
// guarantee behind the CI t1000-verify gate.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "analysis/verifier.hpp"
#include "extinst/rewrite.hpp"
#include "extinst/select.hpp"
#include "sim/profiler.hpp"
#include "workloads/workload.hpp"

namespace t1000 {
namespace {

std::vector<Workload> every_workload() {
  std::vector<Workload> all = all_workloads();
  for (const Workload& w : extended_workloads()) all.push_back(w);
  return all;
}

enum class Mode { kNone, kGreedy, kSelective };

struct Shape {
  int max_inputs;
  int max_outputs;
};
// Default paper shape plus the two widened steps the EXT encoding
// supports (mirrors bench/ablation_shapes.cpp).
constexpr Shape kShapes[] = {{2, 1}, {4, 1}, {4, 2}};

class VerifyWorkloads
    : public ::testing::TestWithParam<std::tuple<int, Mode, int>> {};

TEST_P(VerifyWorkloads, ZeroDiagnostics) {
  const Workload w =
      every_workload()[static_cast<std::size_t>(std::get<0>(GetParam()))];
  const Mode mode = std::get<1>(GetParam());
  const Shape shape = kShapes[static_cast<std::size_t>(std::get<2>(GetParam()))];
  const Program p = workload_program(w);
  SelectPolicy policy;
  policy.extract.max_inputs = shape.max_inputs;
  policy.extract.max_outputs = shape.max_outputs;
  const VerifyOptions options = verify_options_for(policy);

  VerifyReport report;
  if (mode == Mode::kNone) {
    report = verify_module(p, nullptr, options);
  } else {
    const AnalyzedProgram ap =
        analyze_program(p, w.max_steps, policy.extract);
    const Selection sel = mode == Mode::kGreedy
                              ? select_greedy(ap, policy.lut_budget)
                              : select_selective(ap, policy);
    const RewriteResult rr = rewrite_program(p, sel.apps);
    report = verify_selection(ap, sel, rr, options);
    // Equivalence must be proven, not sampled, for every application —
    // by the enumeration phase and by the symbolic translation proof.
    EXPECT_EQ(report.stats.equiv_sampled, 0);
    EXPECT_EQ(report.stats.equiv_structural + report.stats.equiv_exhaustive,
              report.stats.apps);
    EXPECT_EQ(report.stats.translation_proven, report.stats.apps);
  }
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.diagnostics.empty()) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(
    All, VerifyWorkloads,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Values(Mode::kNone, Mode::kGreedy,
                                         Mode::kSelective),
                       ::testing::Values(0)),
    [](const ::testing::TestParamInfo<std::tuple<int, Mode, int>>& info) {
      const Mode mode = std::get<1>(info.param);
      const std::string suffix = mode == Mode::kNone     ? "none"
                                 : mode == Mode::kGreedy ? "greedy"
                                                         : "selective";
      return every_workload()[static_cast<std::size_t>(
                 std::get<0>(info.param))]
                 .name +
             "_" + suffix;
    });

// The widened candidate shapes re-run only the selection modes (module
// verification is shape-independent).
INSTANTIATE_TEST_SUITE_P(
    WidenedShapes, VerifyWorkloads,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Values(Mode::kGreedy, Mode::kSelective),
                       ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<std::tuple<int, Mode, int>>& info) {
      const Mode mode = std::get<1>(info.param);
      const Shape shape =
          kShapes[static_cast<std::size_t>(std::get<2>(info.param))];
      return every_workload()[static_cast<std::size_t>(
                 std::get<0>(info.param))]
                 .name +
             (mode == Mode::kGreedy ? "_greedy_" : "_selective_") +
             std::to_string(shape.max_inputs) + "in" +
             std::to_string(shape.max_outputs) + "out";
    });

}  // namespace
}  // namespace t1000
