// Zero-diagnostic sweep: every bundled workload, under no selection and
// under both selection algorithms, verifies clean. This is the repo-level
// guarantee behind the CI t1000-verify gate.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "analysis/verifier.hpp"
#include "extinst/rewrite.hpp"
#include "extinst/select.hpp"
#include "sim/profiler.hpp"
#include "workloads/workload.hpp"

namespace t1000 {
namespace {

std::vector<Workload> every_workload() {
  std::vector<Workload> all = all_workloads();
  for (const Workload& w : extended_workloads()) all.push_back(w);
  return all;
}

enum class Mode { kNone, kGreedy, kSelective };

class VerifyWorkloads
    : public ::testing::TestWithParam<std::tuple<int, Mode>> {};

TEST_P(VerifyWorkloads, ZeroDiagnostics) {
  const Workload w =
      every_workload()[static_cast<std::size_t>(std::get<0>(GetParam()))];
  const Mode mode = std::get<1>(GetParam());
  const Program p = workload_program(w);
  const SelectPolicy policy;
  const VerifyOptions options = verify_options_for(policy);

  VerifyReport report;
  if (mode == Mode::kNone) {
    report = verify_module(p, nullptr, options);
  } else {
    AnalyzedProgram ap;
    ap.program = &p;
    ap.cfg = Cfg::build(p);
    ap.liveness = compute_liveness(p, ap.cfg);
    ap.profile = profile_program(p, w.max_steps);
    ap.sites = extract_sites(p, ap.cfg, ap.liveness, ap.profile,
                             policy.extract);
    const Selection sel = mode == Mode::kGreedy
                              ? select_greedy(ap, policy.lut_budget)
                              : select_selective(ap, policy);
    const RewriteResult rr = rewrite_program(p, sel.apps);
    report = verify_selection(ap, sel, rr, options);
    // Equivalence must be proven, not sampled, for every application.
    EXPECT_EQ(report.stats.equiv_sampled, 0);
    EXPECT_EQ(report.stats.equiv_structural + report.stats.equiv_exhaustive,
              report.stats.apps);
  }
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.diagnostics.empty()) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(
    All, VerifyWorkloads,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Values(Mode::kNone, Mode::kGreedy,
                                         Mode::kSelective)),
    [](const ::testing::TestParamInfo<std::tuple<int, Mode>>& info) {
      const Mode mode = std::get<1>(info.param);
      const std::string suffix = mode == Mode::kNone     ? "none"
                                 : mode == Mode::kGreedy ? "greedy"
                                                         : "selective";
      return every_workload()[static_cast<std::size_t>(
                 std::get<0>(info.param))]
                 .name +
             "_" + suffix;
    });

}  // namespace
}  // namespace t1000
